"""CI corruption smoke: save a server, flip bytes, prove the ladder holds.

Runs next to the lossy fig13 smoke and gates the durability story:

1. save a wardriven server to both a flat ``.npz`` and a generational
   :class:`repro.core.persistence.ServerStateStore`;
2. ``repro verify-state`` must exit 0 on both while clean;
3. flip bytes in each with :class:`repro.store.StorageFaultInjector`;
4. ``repro verify-state`` must now exit nonzero on both;
5. the store must still *load* — rollback to the last-good generation
   recovers a server whose oracle counters match the saved state;
6. ``--rebuild-venue`` must reconstruct an unrecoverable store.

Usage: ``PYTHONPATH=src python ci/corruption_smoke.py [workdir]``
Exits nonzero on the first broken invariant.
"""

from __future__ import annotations

import subprocess
import sys
import tempfile
from pathlib import Path

import numpy as np

from repro.core import VisualPrintConfig, VisualPrintServer
from repro.core.persistence import ServerStateStore, save_server
from repro.store import SnapshotCorruptError, StorageFaultInjector
from repro.util.rng import rng_for
from repro.wardrive.environment import random_sift_descriptor

_CHECKS: list[str] = []


def check(label: str, ok: bool) -> None:
    _CHECKS.append(f"  {'ok' if ok else 'FAIL'}  {label}")
    print(_CHECKS[-1], flush=True)
    if not ok:
        print("corruption smoke FAILED", flush=True)
        sys.exit(1)


def verify_state_exit(path: Path, *extra: str) -> int:
    result = subprocess.run(
        [sys.executable, "-m", "repro", "verify-state", str(path), *extra],
        capture_output=True,
        text=True,
    )
    sys.stdout.write(result.stdout)
    sys.stderr.write(result.stderr)
    return result.returncode


def main(workdir: Path) -> int:
    rng = rng_for(2016, "ci/corruption-smoke")
    server = VisualPrintServer(
        VisualPrintConfig(descriptor_capacity=4096, fingerprint_size=10),
        bounds=(np.zeros(3), np.array([10.0, 10.0, 3.0])),
    )
    descriptors = np.array([random_sift_descriptor(rng) for _ in range(150)])
    server.ingest(descriptors, rng.uniform(0, 10, (150, 3)))
    saved_counters = server.oracle.counting.counters.copy()

    npz_path = workdir / "state.npz"
    store_root = workdir / "store"
    save_server(server, npz_path)
    store = ServerStateStore(store_root)
    store.save(server)
    newest = store.save(server)

    check("clean npz verifies", verify_state_exit(npz_path) == 0)
    check("clean store verifies", verify_state_exit(store_root) == 0)

    injector = StorageFaultInjector(seed=7)
    injector.corrupt_file(npz_path, kind="bit_flip")
    injector.corrupt_file(
        store_root / f"gen-{newest:06d}" / "counters.npy", kind="bit_flip"
    )

    check("corrupt npz exits nonzero", verify_state_exit(npz_path) != 0)
    check("corrupt store exits nonzero", verify_state_exit(store_root) != 0)

    restored, loaded = ServerStateStore(store_root).load()
    check("rollback skipped the corrupt generation", loaded.rolled_back == 1)
    check(
        "rollback recovered bit-identical counters",
        bool(np.array_equal(restored.oracle.counting.counters, saved_counters)),
    )

    # Burn the remaining generation too: the store must refuse to load,
    # and --rebuild-venue must reconstruct it from a fresh wardrive.
    injector.corrupt_file(
        store_root / f"gen-{newest - 1:06d}" / "MANIFEST.json", kind="truncate"
    )
    try:
        ServerStateStore(store_root).load()
        check("unrecoverable store refuses to load", False)
    except SnapshotCorruptError:
        check("unrecoverable store refuses to load", True)
    check(
        "rebuild-from-wardrive commits a fresh generation",
        verify_state_exit(store_root, "--rebuild-venue", "office", "--seed", "3")
        != 0,  # nonzero: corrupt generations remain on disk...
    )
    rebuilt, loaded = ServerStateStore(store_root).load()
    check("rebuilt store loads", rebuilt.num_mappings > 0)

    print("corruption smoke OK")
    return 0


if __name__ == "__main__":
    if len(sys.argv) > 1:
        sys.exit(main(Path(sys.argv[1])))
    with tempfile.TemporaryDirectory(prefix="corruption-smoke-") as tmp:
        sys.exit(main(Path(tmp)))
