"""CI gate for the adaptive-smoke job.

Reads the metrics snapshot of a ``repro adaptive --fast`` run and
enforces the PR's acceptance bar on the *seeded, deterministic*
counters:

* at the bursty Gilbert–Elliott operating point, the adaptive arm must
  waste strictly fewer transfer bytes than the reactive baseline and
  must not abandon more queries (no accuracy regression);
* across all regimes, adaptive must strictly reduce wasted bytes in at
  least two of the three.

Usage: ``python ci/adaptive_gate.py adaptive-metrics.json``
"""

from __future__ import annotations

import json
import sys

REGIMES = ("stationary", "bursty", "ramp")


def _counter(snapshot: dict, name: str, **labels) -> float:
    rendered = ",".join(f"{k}={v}" for k, v in sorted(labels.items()))
    entry = snapshot["counters"].get(f"{name}{{{rendered}}}")
    return float(entry["value"]) if entry else 0.0


def main(path: str) -> int:
    with open(path, encoding="utf-8") as handle:
        snapshot = json.load(handle)
    failures: list[str] = []
    improved = 0
    for regime in REGIMES:
        adaptive = _counter(
            snapshot, "network_wasted_bytes_total", channel=f"{regime}-adaptive"
        )
        reactive = _counter(
            snapshot, "network_wasted_bytes_total", channel=f"{regime}-reactive"
        )
        improved += adaptive < reactive
        print(
            f"{regime:<11} wasted bytes: adaptive {adaptive:>12.0f}  "
            f"reactive {reactive:>12.0f}  "
            f"({'better' if adaptive < reactive else 'NOT better'})"
        )
    bursty_adaptive = _counter(
        snapshot, "network_wasted_bytes_total", channel="bursty-adaptive"
    )
    bursty_reactive = _counter(
        snapshot, "network_wasted_bytes_total", channel="bursty-reactive"
    )
    if not bursty_adaptive < bursty_reactive:
        failures.append(
            "bursty operating point: adaptive wasted bytes "
            f"({bursty_adaptive:.0f}) not below reactive ({bursty_reactive:.0f})"
        )
    abandoned_adaptive = _counter(
        snapshot, "queries_abandoned_total", channel="bursty-adaptive"
    )
    abandoned_reactive = _counter(
        snapshot, "queries_abandoned_total", channel="bursty-reactive"
    )
    print(
        f"bursty abandoned: adaptive {abandoned_adaptive:.0f}  "
        f"reactive {abandoned_reactive:.0f}"
    )
    if abandoned_adaptive > abandoned_reactive:
        failures.append(
            "bursty operating point: adaptive abandoned more queries "
            f"({abandoned_adaptive:.0f} > {abandoned_reactive:.0f})"
        )
    if improved < 2:
        failures.append(
            f"adaptive improved wasted bytes in only {improved}/3 regimes "
            "(needs >= 2)"
        )
    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    print(f"adaptive gate ok: improved {improved}/3 regimes")
    return 0


if __name__ == "__main__":
    if len(sys.argv) != 2:
        print(__doc__, file=sys.stderr)
        sys.exit(2)
    sys.exit(main(sys.argv[1]))
