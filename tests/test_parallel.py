"""Tests for ``repro.parallel`` and the parallel/vectorized hot paths.

Covers: parallel_map ordering and fallback semantics, shared-context
delivery, chunk_setup, metrics-registry merge determinism, shard_seeds,
bit-identical parallel workload builds and oracle ingest, and the
vectorized ``lookup_batch`` against its retained scalar reference
(including a hypothesis property over random descriptors and the
ranked-perturbation schedule against its scalar form).
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.core.config import VisualPrintConfig
from repro.core.oracle import UniquenessOracle
from repro.evaluation.datasets import build_workload
from repro.lsh.multiprobe import perturbation_sets, ranked_perturbations
from repro.obs import MetricsRegistry, resolve_registry, use_registry
from repro.parallel import default_workers, get_shared, parallel_map, shard_seeds
from repro.util.rng import rng_for


# ---------------------------------------------------------------------------
# Worker bodies must be module-level so the pool can pickle them.
# ---------------------------------------------------------------------------


def _square(value: int) -> int:
    return value * value


def _square_plus_shared(value: int) -> int:
    return value * value + get_shared()


def _record_and_double(value: int) -> int:
    registry = resolve_registry(None)
    registry.counter("items_total").inc()
    registry.histogram("item_value", buckets=(1.0, 10.0, 100.0)).observe(value)
    return 2 * value


def _add_context(value: int, context: int) -> int:
    return value + context


def _context_from_shared() -> int:
    return get_shared() * 10


class TestParallelMap:
    def test_empty(self):
        assert parallel_map(_square, [], workers=4) == []

    def test_order_preserved_serial_and_pooled(self):
        items = list(range(23))
        expected = [v * v for v in items]
        assert parallel_map(_square, items, workers=1) == expected
        assert parallel_map(_square, items, workers=3) == expected
        assert parallel_map(_square, items, workers=3, chunk_size=2) == expected

    def test_workers_capped_to_item_count(self):
        assert parallel_map(_square, [3], workers=64) == [9]

    def test_shared_delivered_to_workers(self):
        items = list(range(8))
        expected = [v * v + 5 for v in items]
        assert parallel_map(_square_plus_shared, items, workers=1, shared=5) == expected
        assert parallel_map(_square_plus_shared, items, workers=2, shared=5) == expected

    def test_shared_restored_after_inprocess_run(self):
        parallel_map(_square_plus_shared, [1], workers=1, shared=7)
        assert get_shared() is None

    def test_chunk_setup_context_passed_to_every_call(self):
        result = parallel_map(
            _add_context,
            [1, 2, 3, 4],
            workers=2,
            shared=3,
            chunk_setup=_context_from_shared,
        )
        assert result == [31, 32, 33, 34]

    def test_invalid_chunk_size(self):
        with pytest.raises(ValueError):
            parallel_map(_square, [1, 2], workers=1, chunk_size=0)

    def test_default_workers_positive(self):
        assert default_workers() >= 1


class TestRegistryMerge:
    def _run(self, workers: int) -> MetricsRegistry:
        registry = MetricsRegistry()
        with use_registry(registry):
            parallel_map(_record_and_double, list(range(12)), workers=workers)
        return registry

    def test_counters_and_histograms_merge(self):
        registry = self._run(workers=3)
        assert registry.counter("items_total").value == 12
        histogram = registry.histogram("item_value", buckets=(1.0, 10.0, 100.0))
        assert histogram.count == 12
        assert histogram.sum == sum(range(12))

    def test_merge_is_identical_across_worker_counts(self):
        serial = self._run(workers=1).state()
        pooled = self._run(workers=4).state()
        assert serial == pooled

    def test_explicit_registry_param(self):
        registry = MetricsRegistry()
        parallel_map(
            _record_and_double, list(range(5)), workers=2, registry=registry
        )
        assert registry.counter("items_total").value == 5


class TestShardSeeds:
    def test_deterministic(self):
        assert shard_seeds(7, "stage", 16) == shard_seeds(7, "stage", 16)

    def test_distinct_across_items_names_and_seeds(self):
        seeds = shard_seeds(7, "stage", 64)
        assert len(set(seeds)) == 64
        assert shard_seeds(7, "other", 64) != seeds
        assert shard_seeds(8, "stage", 64) != seeds

    def test_prefix_stability(self):
        # Item i's seed must not depend on how many items the stage has.
        assert shard_seeds(7, "stage", 32)[:8] == shard_seeds(7, "stage", 8)

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            shard_seeds(7, "stage", -1)


_WORKLOAD_PARAMS = dict(
    seed=13,
    num_scenes=3,
    num_distractors=4,
    views_per_scene=2,
    image_size=96,
    cache_dir=None,
)


def _workload_arrays(workload) -> list[np.ndarray]:
    arrays_out: list[np.ndarray] = [
        np.array(workload.database_labels),
        np.array(workload.query_labels),
    ]
    for keypoints in workload.database_keypoints + workload.query_keypoints:
        arrays_out.extend(
            [keypoints.positions, keypoints.scales, keypoints.descriptors]
        )
    return arrays_out


class TestParallelPipelines:
    def test_build_workload_parallel_bit_identical(self):
        serial = build_workload(**_WORKLOAD_PARAMS, workers=1)
        pooled = build_workload(**_WORKLOAD_PARAMS, workers=4)
        for a, b in zip(_workload_arrays(serial), _workload_arrays(pooled)):
            assert np.array_equal(a, b)

    def test_build_workload_parallel_populates_shared_cache(self, tmp_path):
        pooled = build_workload(
            **{**_WORKLOAD_PARAMS, "cache_dir": tmp_path}, workers=2
        )
        # Second call must hit the cache entry the parallel build wrote.
        cached = build_workload(
            **{**_WORKLOAD_PARAMS, "cache_dir": tmp_path}, workers=1
        )
        assert len(list(tmp_path.glob("workload_*.npz"))) == 1
        for a, b in zip(_workload_arrays(pooled), _workload_arrays(cached)):
            assert np.allclose(a, b)

    def test_oracle_parallel_insert_matches_serial(self):
        config = VisualPrintConfig()
        descriptors = (
            rng_for(5, "parallel-insert").normal(0, 30, size=(6000, 128))
        ).astype(np.float32)
        serial = UniquenessOracle(config)
        serial.insert(descriptors, batch_size=1500, workers=1)
        pooled = UniquenessOracle(config)
        pooled.insert(descriptors, batch_size=1500, workers=3)
        assert np.array_equal(serial.counting.counters, pooled.counting.counters)
        assert serial.verification.packed_bytes() == pooled.verification.packed_bytes()
        assert serial.inserted_count == pooled.inserted_count == 6000


# ---------------------------------------------------------------------------
# Vectorized lookup_batch vs the scalar reference walk.
# ---------------------------------------------------------------------------


@pytest.fixture(scope="module")
def trained_oracle() -> UniquenessOracle:
    oracle = UniquenessOracle(VisualPrintConfig())
    database = rng_for(21, "lookup-db").normal(0, 30, size=(3000, 128))
    oracle.insert(database.astype(np.float32))
    return oracle


@pytest.fixture(scope="module")
def lookup_queries(trained_oracle) -> np.ndarray:
    rng = rng_for(22, "lookup-queries")
    database = rng_for(21, "lookup-db").normal(0, 30, size=(3000, 128))
    near = database[:60] + rng.normal(0, 5, size=(60, 128))
    far = rng.normal(0, 30, size=(60, 128))
    return np.concatenate([near, far]).astype(np.float32)


class TestVectorizedLookup:
    def test_matches_scalar_reference(self, trained_oracle, lookup_queries):
        vectorized = trained_oracle.lookup_batch(lookup_queries)
        scalar = trained_oracle._lookup_batch_scalar(lookup_queries)
        assert vectorized == scalar

    def test_matches_scalar_metrics(self, lookup_queries):
        def run(method: str) -> dict:
            registry = MetricsRegistry()
            oracle = UniquenessOracle(VisualPrintConfig(), registry=registry)
            database = rng_for(21, "lookup-db").normal(0, 30, size=(3000, 128))
            oracle.insert(database.astype(np.float32))
            getattr(oracle, method)(lookup_queries)
            return {
                inst["name"]: inst["state"]["value"]
                for inst in registry.state()["instruments"]
                if inst["kind"] == "counter"
            }

        assert run("lookup_batch") == run("_lookup_batch_scalar")

    def test_single_row_lookup_wrapper(self, trained_oracle, lookup_queries):
        row = lookup_queries[0]
        assert trained_oracle.lookup(row) == trained_oracle.lookup_batch(
            row[np.newaxis, :]
        )[0]

    @given(
        arrays(
            dtype=np.float32,
            shape=st.tuples(st.integers(1, 8), st.just(128)),
            elements=st.floats(-200, 200, width=32),
        )
    )
    @settings(max_examples=25, deadline=None)
    def test_property_vectorized_equals_scalar(self, trained_oracle, descriptors):
        assert trained_oracle.lookup_batch(
            descriptors
        ) == trained_oracle._lookup_batch_scalar(descriptors)

    @given(
        arrays(
            dtype=np.float64,
            shape=st.tuples(st.integers(1, 6), st.just(7)),
            elements=st.floats(0, 1, exclude_max=True),
        ),
        st.integers(0, 20),
    )
    @settings(max_examples=50, deadline=None)
    def test_ranked_perturbations_match_scalar_schedule(self, residuals, max_probes):
        projections, deltas = ranked_perturbations(residuals, max_probes)
        for row in range(residuals.shape[0]):
            expected = perturbation_sets(residuals[row], max_probes)
            actual = list(zip(projections[row].tolist(), deltas[row].tolist()))
            assert actual == expected
