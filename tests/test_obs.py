"""Tests for the observability layer (repro.obs) and its pipeline wiring.

Covers: histogram quantiles, Prometheus escaping and round-trip, span
nesting, the contextual registry, removal of the ClientStats /
median_latency deprecation-cycle shims, oracle lookup_batch vs scalar
lookup (including a hypothesis property for counts), incremental
LshIndex.insert equivalence, and the CLI --metrics-json path.
"""

from __future__ import annotations

import json
import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import UniquenessOracle, VisualPrintClient, VisualPrintConfig
from repro.features.keypoint import KeypointSet
from repro.lsh import LshIndex
from repro.network import CHANNEL_PRESETS
from repro.obs import (
    Counter,
    Histogram,
    MetricsRegistry,
    Tracer,
    current_registry,
    parse_prometheus,
    use_registry,
)
from repro.wardrive.environment import random_sift_descriptor


@pytest.fixture(scope="module")
def config():
    return VisualPrintConfig(descriptor_capacity=20_000, fingerprint_size=20)


@pytest.fixture(scope="module")
def trained_oracle(config, descriptors_1k):
    oracle = UniquenessOracle(config)
    for _ in range(5):
        oracle.insert(descriptors_1k[:100])
    oracle.insert(descriptors_1k[100:400])
    return oracle


def _keypoints_from(descriptors):
    n = descriptors.shape[0]
    return KeypointSet(
        positions=np.zeros((n, 2), np.float32),
        scales=np.ones(n, np.float32),
        orientations=np.zeros(n, np.float32),
        responses=np.ones(n, np.float32),
        descriptors=descriptors.astype(np.float32),
    )


class TestCounterGauge:
    def test_counter_accumulates(self):
        registry = MetricsRegistry()
        counter = registry.counter("frames_total")
        counter.inc()
        counter.inc(4)
        assert counter.value == 5

    def test_counter_rejects_negative(self):
        with pytest.raises(ValueError):
            Counter("x").inc(-1)

    def test_gauge_moves_both_ways(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("saturation")
        gauge.set(0.5)
        gauge.inc(0.25)
        gauge.dec(0.5)
        assert gauge.value == pytest.approx(0.25)

    def test_get_or_create_returns_same_instrument(self):
        registry = MetricsRegistry()
        assert registry.counter("a") is registry.counter("a")
        assert registry.counter("a", stage="x") is not registry.counter("a")

    def test_kind_conflict_rejected(self):
        registry = MetricsRegistry()
        registry.counter("a")
        with pytest.raises(ValueError):
            registry.gauge("a")

    def test_disabled_registry_hands_out_noops(self):
        registry = MetricsRegistry(enabled=False)
        counter = registry.counter("a")
        counter.inc(10)
        assert counter.value == 0.0
        histogram = registry.histogram("h")
        with histogram.time():
            pass
        histogram.observe(1.0)
        assert histogram.count == 0
        assert len(registry) == 0


class TestHistogram:
    def test_quantiles_on_known_distribution(self):
        histogram = Histogram("h")
        for value in range(1, 101):  # 1..100
            histogram.observe(float(value))
        assert histogram.quantile(0.0) == 1.0
        assert histogram.quantile(1.0) == 100.0
        assert histogram.quantile(0.5) == pytest.approx(50.5)
        assert histogram.quantile(0.9) == pytest.approx(90.1)
        assert histogram.count == 100
        assert histogram.sum == pytest.approx(5050.0)
        assert histogram.mean == pytest.approx(50.5)

    def test_quantile_bounds_checked(self):
        histogram = Histogram("h")
        histogram.observe(1.0)
        with pytest.raises(ValueError):
            histogram.quantile(1.5)

    def test_empty_histogram_quantiles_zero(self):
        histogram = Histogram("h")
        assert histogram.quantile(0.5) == 0.0
        assert histogram.quantiles() == {0.5: 0.0, 0.9: 0.0, 0.99: 0.0}

    def test_bucket_counts_cumulative_and_inclusive(self):
        histogram = Histogram("h", buckets=(1.0, 2.0, 4.0))
        for value in (0.5, 1.0, 1.5, 3.0, 100.0):
            histogram.observe(value)
        pairs = dict(histogram.bucket_counts())
        assert pairs[1.0] == 2  # le is inclusive: 0.5 and 1.0
        assert pairs[2.0] == 3
        assert pairs[4.0] == 4
        assert pairs[float("inf")] == 5

    def test_buckets_must_increase(self):
        with pytest.raises(ValueError):
            Histogram("h", buckets=(2.0, 1.0))

    def test_reservoir_stays_bounded(self):
        histogram = Histogram("h")
        for value in range(5000):
            histogram.observe(float(value))
        assert len(histogram.values()) == 1024
        assert histogram.count == 5000
        # The subsample still summarizes the distribution reasonably.
        assert 1500 < histogram.quantile(0.5) < 3500

    def test_time_context_manager(self):
        histogram = Histogram("h")
        with histogram.time():
            _ = sum(range(1000))
        assert histogram.count == 1
        assert histogram.values()[0] >= 0.0


class TestPrometheus:
    def test_escaping_of_label_values_and_help(self):
        registry = MetricsRegistry()
        registry.counter(
            "weird_total",
            help='has "quotes", back\\slash\nand newline',
            path='c:\\temp\n"quoted"',
        ).inc(3)
        text = registry.to_prometheus()
        assert '\\"quoted\\"' in text
        assert "c:\\\\temp\\n" in text
        assert "# HELP weird_total" in text
        assert "\\nand newline" in text
        parsed = parse_prometheus(text)
        assert parsed == registry.samples()
        assert parsed[0][1] == (("path", 'c:\\temp\n"quoted"'),)

    def test_round_trip_full_registry(self):
        registry = MetricsRegistry()
        registry.counter("c_total", help="a counter").inc(7)
        registry.gauge("g", help="a gauge").set(-2.5)
        histogram = registry.histogram("h_seconds", buckets=(0.1, 1.0), stage="sift")
        for value in (0.05, 0.5, 5.0):
            histogram.observe(value)
        text = registry.to_prometheus()
        assert "# TYPE h_seconds histogram" in text
        assert 'h_seconds_bucket{stage="sift",le="+Inf"} 3' in text
        parsed = parse_prometheus(text)
        assert parsed == registry.samples()

    def test_infinite_bucket_value_renders(self):
        registry = MetricsRegistry()
        registry.histogram("h").observe(1e30)  # beyond every finite bucket
        samples = dict(
            ((name, labels), value)
            for name, labels, value in parse_prometheus(registry.to_prometheus())
        )
        assert samples[("h_bucket", (("le", "+Inf"),))] == 1.0


class TestJsonSnapshot:
    def test_to_dict_and_write_json(self, tmp_path):
        registry = MetricsRegistry()
        registry.counter("frames_total").inc(2)
        registry.histogram("lat_seconds").observe(0.01)
        path = tmp_path / "metrics.json"
        registry.write_json(str(path))
        snapshot = json.loads(path.read_text())
        assert snapshot["counters"]["frames_total"]["value"] == 2
        histogram = snapshot["histograms"]["lat_seconds"]
        assert histogram["count"] == 1
        assert histogram["p50"] == pytest.approx(0.01)
        assert histogram["buckets"][-1]["count"] == 1
        assert math.isinf(histogram["buckets"][-1]["le"])

    def test_reset_zeroes_but_keeps_instruments(self):
        registry = MetricsRegistry()
        registry.counter("c").inc(5)
        registry.histogram("h").observe(1.0)
        registry.reset()
        assert registry.counter("c").value == 0
        assert registry.histogram("h").count == 0
        assert len(registry) == 2


class TestSpans:
    def test_nesting_and_durations(self):
        tracer = Tracer()
        with tracer.span("frame") as frame:
            with tracer.span("sift"):
                pass
            with tracer.span("oracle") as oracle_span:
                with tracer.span("quantize"):
                    pass
        assert [child.name for child in frame.children] == ["sift", "oracle"]
        assert oracle_span.child("quantize") is not None
        assert frame.finished
        assert frame.duration_seconds >= sum(
            child.duration_seconds for child in frame.children
        ) * 0.5  # children nest inside the parent's wall-clock
        assert tracer.last_root() is frame
        assert tracer.current is None

    def test_span_attributes_and_dict(self):
        tracer = Tracer()
        with tracer.span("frame", frame_index=3) as span:
            span.set("keypoints", 42)
        tree = span.to_dict()
        assert tree["attributes"] == {"frame_index": 3, "keypoints": 42}
        assert tree["children"] == []

    def test_tracer_mirrors_into_registry(self):
        registry = MetricsRegistry()
        tracer = Tracer(registry)
        with tracer.span("frame"):
            with tracer.span("sift"):
                pass
        assert registry.histogram("span_frame_seconds").count == 1
        assert registry.histogram("span_sift_seconds").count == 1

    def test_sibling_roots_are_retained_in_order(self):
        tracer = Tracer()
        with tracer.span("a"):
            pass
        with tracer.span("b"):
            pass
        assert [root.name for root in tracer.roots] == ["a", "b"]


class TestContextualRegistry:
    def test_use_registry_scopes(self):
        registry = MetricsRegistry()
        assert current_registry() is None
        with use_registry(registry):
            assert current_registry() is registry
            inner = MetricsRegistry()
            with use_registry(inner):
                assert current_registry() is inner
            assert current_registry() is registry
        assert current_registry() is None

    def test_components_report_into_contextual_registry(self, config, descriptors_1k):
        registry = MetricsRegistry()
        with use_registry(registry):
            oracle = UniquenessOracle(config)
            client = VisualPrintClient(oracle, config)
        oracle.insert(descriptors_1k[:100])
        client.fingerprint_keypoints(_keypoints_from(descriptors_1k[:50]))
        assert client.metrics is registry
        assert oracle.metrics is registry
        assert registry.counter("client_frames_total").value == 1
        assert registry.counter("oracle_descriptors_inserted_total").value == 100

    def test_channel_records_only_under_context(self):
        channel = CHANNEL_PRESETS["wifi"]
        channel.transfer_seconds(1000)  # no context: must not blow up
        registry = MetricsRegistry()
        with use_registry(registry):
            channel.transfer_seconds(1000)
        histogram = registry.get(
            "network_transfer_seconds", channel="wifi", direction="up"
        )
        assert histogram is not None and histogram.count == 1
        counter = registry.get("network_upload_bytes_total", channel="wifi")
        assert counter.value == 1000


class TestClientMetricsApi:
    def test_latency_quantiles(self, trained_oracle, config, descriptors_1k):
        client = VisualPrintClient(trained_oracle, config)
        client.fingerprint_keypoints(_keypoints_from(descriptors_1k[:50]))
        quantiles = client.latency_quantiles("oracle")
        assert set(quantiles) == {0.5, 0.9, 0.99}
        assert quantiles[0.5] > 0.0
        assert client.latency_quantiles("sift")[0.5] == 0.0  # no sift ran
        with pytest.raises(ValueError):
            client.latency_quantiles("gpu")

    def test_upload_accounting(self, trained_oracle, config, descriptors_1k):
        client = VisualPrintClient(trained_oracle, config)
        client.fingerprint_keypoints(_keypoints_from(descriptors_1k[:50]))
        registry = client.metrics
        assert registry.counter("client_keypoints_uploaded_total").value == 20
        assert registry.counter("client_upload_bytes_total").value > 0
        assert registry.histogram("client_upload_bytes").count == 1
        assert registry.histogram("client_serialize_seconds").count == 1

    def test_frame_spans_nest_stages(self, trained_oracle, config, descriptors_1k):
        client = VisualPrintClient(trained_oracle, config)
        image = np.zeros((32, 32), dtype=np.float64)
        client.process_frame(image, frame_index=5)
        root = client.tracer.last_root()
        assert root.name == "frame"
        assert root.attributes["frame_index"] == 5
        assert root.child("sift") is not None
        assert root.child("serialize") is not None


class TestDeprecationCycleComplete:
    """The ClientStats / median_latency shims finished their cycle."""

    def test_shims_are_gone(self, trained_oracle, config):
        import repro.core.client as client_module

        client = VisualPrintClient(trained_oracle, config)
        assert not hasattr(client_module, "ClientStats")
        assert not hasattr(client, "stats")
        assert not hasattr(client, "median_latency")
        assert "ClientStats" not in client_module.__all__

    def test_replacement_surface(self, trained_oracle, config, descriptors_1k):
        client = VisualPrintClient(trained_oracle, config)
        client.fingerprint_keypoints(_keypoints_from(descriptors_1k[:50]))
        client.fingerprint_keypoints(_keypoints_from(descriptors_1k[50:100]))
        assert client.metrics.counter("client_frames_total").value == 2
        assert client.metrics.counter("client_keypoints_extracted_total").value == 100
        assert client.metrics.counter("client_upload_bytes_total").value > 0
        quantiles = client.latency_quantiles("oracle")
        assert set(quantiles) == {0.5, 0.9, 0.99}
        with pytest.raises(ValueError):
            client.latency_quantiles("gpu")


class TestOracleLookupBatch:
    def test_batch_matches_scalar(self, trained_oracle, descriptors_1k):
        batch = descriptors_1k[:40]
        batched = trained_oracle.lookup_batch(batch)
        for row, result in enumerate(batched):
            assert result == trained_oracle.lookup(batch[row])

    def test_empty_batch(self, trained_oracle):
        assert trained_oracle.lookup_batch(np.empty((0, 128), np.float32)) == []

    def test_rejects_non_2d(self, trained_oracle, descriptors_1k):
        with pytest.raises(ValueError):
            trained_oracle.lookup_batch(descriptors_1k[0])

    def test_lookup_instrumentation(self, config, descriptors_1k):
        oracle = UniquenessOracle(config, registry=MetricsRegistry())
        oracle.insert(descriptors_1k[:200])
        oracle.lookup_batch(descriptors_1k[:25])
        registry = oracle.metrics
        assert registry.counter("oracle_lookups_total").value == 25
        assert registry.histogram("oracle_lookup_seconds").count == 1
        assert registry.counter("oracle_descriptors_inserted_total").value == 200
        assert 0.0 <= registry.gauge("oracle_counter_saturation").value <= 1.0

    @given(seed=st.integers(0, 2**31 - 1), count=st.integers(1, 12))
    @settings(max_examples=15, deadline=None)
    def test_counts_equals_lookup_count_property(self, seed, count):
        """Vectorized counts(D)[i] agrees with scalar lookup(D[i]).count."""
        rng = np.random.default_rng(seed)
        config = VisualPrintConfig(descriptor_capacity=5_000)
        oracle = UniquenessOracle(config)
        oracle.insert(
            np.array([random_sift_descriptor(rng) for _ in range(100)])
        )
        queries = np.array([random_sift_descriptor(rng) for _ in range(count)])
        counts = oracle.counts(queries)
        batched = oracle.lookup_batch(queries)
        for row in range(count):
            assert counts[row] == oracle.lookup(queries[row]).count
            assert batched[row].count == counts[row]


class TestLshIncrementalInsert:
    def test_insert_matches_build(self, descriptors_1k):
        built = LshIndex(seed=3)
        built.build(descriptors_1k, np.arange(1000))

        incremental = LshIndex(seed=3)
        for start in range(0, 1000, 130):
            chunk = descriptors_1k[start : start + 130]
            incremental.insert(
                chunk, np.arange(start, start + chunk.shape[0])
            )

        assert incremental.size == built.size == 1000
        queries = descriptors_1k[::97]
        for built_matches, incremental_matches in zip(
            built.query_batch(queries, num_neighbors=3),
            incremental.query_batch(queries, num_neighbors=3),
        ):
            assert built_matches == incremental_matches

    def test_insert_validates_shapes(self, descriptors_1k):
        index = LshIndex(seed=3)
        with pytest.raises(ValueError):
            index.insert(descriptors_1k[:10], np.arange(9))
        index.insert(descriptors_1k[:10], np.arange(10))
        with pytest.raises(ValueError):
            index.insert(np.zeros((4, 64), np.float32), np.arange(4))

    def test_empty_insert_is_noop(self):
        index = LshIndex(seed=3)
        index.insert(np.empty((0, 128), np.float32), np.empty(0, np.int64))
        assert index.size == 0
        with pytest.raises(RuntimeError):
            index.query(np.zeros(128, np.float32))

    def test_memory_accounting_after_inserts(self, descriptors_1k):
        index = LshIndex(seed=3)
        index.insert(descriptors_1k[:500], np.arange(500))
        assert index.memory_bytes() > descriptors_1k[:500].astype(np.float32).nbytes


class TestCliMetrics:
    def test_fig16_fast_writes_metrics_json(self, tmp_path, capsys):
        from repro.cli import main

        json_path = tmp_path / "out.json"
        prom_path = tmp_path / "out.prom"
        assert (
            main(
                [
                    "fig16",
                    "--fast",
                    "--metrics-json",
                    str(json_path),
                    "--metrics-prom",
                    str(prom_path),
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "=== metrics" in out
        snapshot = json.loads(json_path.read_text())
        histograms = snapshot["histograms"]
        assert histograms["client_sift_seconds"]["count"] > 0
        assert histograms["client_oracle_seconds"]["count"] > 0
        transfer_keys = [k for k in histograms if k.startswith("network_transfer_seconds")]
        assert transfer_keys and histograms[transfer_keys[0]]["count"] > 0
        assert snapshot["counters"]["client_upload_bytes_total"]["value"] > 0
        # The Prometheus rendering round-trips the same registry.
        parsed = parse_prometheus(prom_path.read_text())
        by_name = {name for name, _, _ in parsed}
        assert "client_sift_seconds_bucket" in by_name
        assert "client_upload_bytes_total" in by_name

class TestMetricsDiffEdgeCases:
    """The diff gate's corner cases: missing scalars, zero baselines,
    non-finite values (satellite coverage for repro.obs.diff)."""

    def _snap(self, **counters):
        return {
            "counters": {
                name: {"value": value} for name, value in counters.items()
            }
        }

    def test_baseline_metric_missing_in_current_is_violation(self):
        from repro.obs import diff_metrics

        checked, violations = diff_metrics(
            self._snap(frames_total=5.0), self._snap()
        )
        assert checked == 1
        assert len(violations) == 1
        assert violations[0].current is None
        assert "missing" in violations[0].describe()

    def test_current_only_metric_is_ignored(self):
        from repro.obs import diff_metrics

        checked, violations = diff_metrics(
            self._snap(), self._snap(new_counter=7.0)
        )
        assert checked == 0 and violations == []

    def test_zero_baseline_relative_tolerance(self):
        from repro.obs import diff_metrics

        # rel_tol scales with |baseline| = 0, so any drift from a zero
        # baseline needs abs_tol to pass.
        _, violations = diff_metrics(
            self._snap(errors_total=0.0), self._snap(errors_total=1.0)
        )
        assert len(violations) == 1
        _, violations = diff_metrics(
            self._snap(errors_total=0.0),
            self._snap(errors_total=1.0),
            abs_tol=1.0,
        )
        assert violations == []
        # An exactly-zero current matches a zero baseline at any tolerance.
        _, violations = diff_metrics(
            self._snap(errors_total=0.0), self._snap(errors_total=0.0)
        )
        assert violations == []

    def test_nan_current_is_violation(self):
        from repro.obs import diff_metrics

        _, violations = diff_metrics(
            self._snap(ratio=1.0), self._snap(ratio=float("nan"))
        )
        assert len(violations) == 1

    def test_nan_baseline_matched_by_nan_current(self):
        from repro.obs import diff_metrics

        _, violations = diff_metrics(
            self._snap(ratio=float("nan")), self._snap(ratio=float("nan"))
        )
        assert violations == []
        _, violations = diff_metrics(
            self._snap(ratio=float("nan")), self._snap(ratio=1.0)
        )
        assert len(violations) == 1

    def test_matching_infinities_pass_diverging_fail(self):
        from repro.obs import diff_metrics

        inf = float("inf")
        _, violations = diff_metrics(
            self._snap(peak=inf), self._snap(peak=inf)
        )
        assert violations == []
        _, violations = diff_metrics(
            self._snap(peak=inf), self._snap(peak=1.0)
        )
        assert len(violations) == 1  # inf - 1 = inf > any allowed
        _, violations = diff_metrics(
            self._snap(peak=1.0), self._snap(peak=inf)
        )
        assert len(violations) == 1

    def test_sketch_counts_enter_the_contract(self):
        from repro.obs import diff_metrics, scalar_samples

        registry = MetricsRegistry()
        registry.sketch("e2e_seconds").observe(0.5)
        snapshot = registry.to_dict()
        assert scalar_samples(snapshot)["e2e_seconds.count"] == 1.0
        _, violations = diff_metrics(snapshot, registry.to_dict())
        assert violations == []


class TestLabelCardinalityGuard:
    def test_new_label_sets_collapse_past_the_cap(self):
        registry = MetricsRegistry(max_label_sets=3)
        for index in range(3):
            registry.counter("requests_total", venue=f"v{index}").inc()
        overflow = registry.counter("requests_total", venue="v3")
        assert overflow.labels == {"overflow": "true"}
        overflow.inc(2)
        # Every further new label set lands on the same overflow instrument.
        assert registry.counter("requests_total", venue="v4") is overflow
        dropped = registry.counter(
            "metrics_label_sets_dropped_total", metric="requests_total"
        )
        assert dropped.value == 2

    def test_existing_label_sets_unaffected_by_cap(self):
        registry = MetricsRegistry(max_label_sets=2)
        first = registry.counter("requests_total", venue="a")
        registry.counter("requests_total", venue="b")
        registry.counter("requests_total", venue="c")  # capped
        assert registry.counter("requests_total", venue="a") is first

    def test_cap_is_per_metric_name(self):
        registry = MetricsRegistry(max_label_sets=1)
        registry.counter("a_total", venue="x")
        other = registry.counter("b_total", venue="x")
        assert other.labels == {"venue": "x"}

    def test_invalid_cap_rejected(self):
        with pytest.raises(ValueError):
            MetricsRegistry(max_label_sets=0)

    def test_default_cap_is_roomy(self):
        from repro.obs import DEFAULT_MAX_LABEL_SETS

        assert MetricsRegistry().max_label_sets == DEFAULT_MAX_LABEL_SETS
        assert DEFAULT_MAX_LABEL_SETS >= 1000
