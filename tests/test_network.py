"""Unit + property tests for the uplink model, FPS math, upload traces."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.network import (
    CHANNEL_PRESETS,
    UplinkChannel,
    fps_curve,
    simulate_stream,
    sustainable_fps,
)
from repro.obs import (
    MetricsRegistry,
    TraceCollector,
    TraceContext,
    use_collector,
    use_registry,
    use_trace_context,
)


class TestChannel:
    def test_serialization_time_linear(self):
        channel = UplinkChannel("t", bandwidth_mbps=8.0, rtt_ms=0.001)
        assert channel.serialization_seconds(2_000_000) == pytest.approx(
            2 * channel.serialization_seconds(1_000_000)
        )

    def test_one_megabit_per_second(self):
        channel = UplinkChannel("t", bandwidth_mbps=1.0)
        assert channel.serialization_seconds(125_000) == pytest.approx(1.0)

    def test_transfer_includes_rtt(self):
        channel = UplinkChannel("t", bandwidth_mbps=100.0, rtt_ms=100.0)
        assert channel.transfer_seconds(1) >= 0.05

    def test_jitter_varies(self):
        channel = UplinkChannel("t", bandwidth_mbps=8.0, jitter_sigma=0.5)
        rng = np.random.default_rng(0)
        samples = {channel.transfer_seconds(1000, rng) for _ in range(10)}
        assert len(samples) > 1

    def test_round_trip_adds_terms(self):
        channel = UplinkChannel("t", bandwidth_mbps=8.0, jitter_sigma=0.0)
        total = channel.round_trip_seconds(10_000, server_seconds=0.5)
        assert total > 0.5

    def test_presets_exist(self):
        assert {"3g", "lte", "wifi"} <= set(CHANNEL_PRESETS)
        assert CHANNEL_PRESETS["wifi"].bandwidth_mbps > CHANNEL_PRESETS["3g"].bandwidth_mbps

    def test_invalid_bandwidth(self):
        with pytest.raises(ValueError):
            UplinkChannel("t", bandwidth_mbps=0.0)


class TestChannelMetrics:
    """The channel model's reporting into the contextual registry."""

    def _channel(self) -> UplinkChannel:
        # Jitterless: 1 Mbps => 125 kB/s, 40 ms RTT => 0.02 s half-RTT.
        return UplinkChannel("t", bandwidth_mbps=1.0, rtt_ms=40.0, jitter_sigma=0.0)

    def test_transfer_seconds_histogram(self):
        registry = MetricsRegistry()
        channel = self._channel()
        with use_registry(registry):
            seconds = channel.transfer_seconds(125_000)
        histogram = registry.histogram(
            "network_transfer_seconds", channel="t", direction="up"
        )
        assert histogram.count == 1
        assert histogram.sum == pytest.approx(seconds)
        assert seconds == pytest.approx(1.02)  # 1 s serialization + half RTT

    def test_upload_byte_instruments(self):
        registry = MetricsRegistry()
        channel = self._channel()
        with use_registry(registry):
            channel.transfer_seconds(1000)
            channel.transfer_seconds(2500)
        histogram = registry.histogram("network_upload_bytes", channel="t")
        assert histogram.count == 2
        assert histogram.sum == pytest.approx(3500)
        assert registry.counter("network_upload_bytes_total", channel="t").value == 3500

    def test_round_trip_is_two_transfers(self):
        registry = MetricsRegistry()
        channel = self._channel()
        with use_registry(registry):
            channel.round_trip_seconds(10_000, response_bytes=256)
        up = registry.histogram(
            "network_transfer_seconds", channel="t", direction="up"
        )
        down = registry.histogram(
            "network_transfer_seconds", channel="t", direction="down"
        )
        assert up.count == 1 and down.count == 1
        # Only the uplink leg counts as upload; the response is downlink.
        assert (
            registry.counter("network_upload_bytes_total", channel="t").value == 10_000
        )
        assert (
            registry.counter("network_download_bytes_total", channel="t").value == 256
        )

    def test_response_leg_uses_downlink_rate(self):
        # 1 Mbps up / 4 Mbps down: the response must be 4x faster than
        # the same payload sent uplink (the old model rated both legs
        # at the uplink bandwidth).
        channel = UplinkChannel(
            "t", bandwidth_mbps=1.0, rtt_ms=40.0, jitter_sigma=0.0, downlink_mbps=4.0
        )
        up = channel.transfer_seconds(125_000) - 0.02
        down = channel.response_seconds(125_000) - 0.02
        assert up == pytest.approx(4 * down)
        assert channel.response_serialization_seconds(125_000) == pytest.approx(0.25)

    def test_symmetric_by_default(self):
        channel = self._channel()
        assert channel.downlink_mbps is None
        assert channel.response_seconds(5000) == pytest.approx(
            channel.transfer_seconds(5000)
        )

    def test_cellular_presets_are_asymmetric(self):
        for name in ("3g", "lte"):
            preset = CHANNEL_PRESETS[name]
            assert preset.downlink_mbps is not None
            assert preset.downlink_mbps > preset.bandwidth_mbps

    def test_no_registry_no_side_effects(self):
        # Outside use_registry the metrics (and spans) are a no-op.
        assert self._channel().transfer_seconds(1000) > 0

    def test_transfer_span_joins_ambient_context(self):
        collector = TraceCollector()
        channel = self._channel()
        context = TraceContext(trace_id="trace-q7", span_id="frame-q7")
        with use_collector(collector):
            with use_trace_context(context):
                seconds = channel.transfer_seconds(4096)
        assert len(collector.roots) == 1
        span = collector.roots[0]
        assert span.name == "network.transfer"
        assert span.trace_id == "trace-q7"
        assert span.parent_id == "frame-q7"
        assert span.duration_seconds == pytest.approx(seconds)
        assert span.attributes["bytes"] == 4096
        assert span.attributes["channel"] == "t"
        assert span.attributes["direction"] == "up"


class TestFps:
    def test_paper_png_example(self):
        # ~523 KB lossless frame on 2 Mbps: well under 1 FPS.
        assert sustainable_fps(2.0, 523 * 1024) < 0.5

    def test_linear_in_bandwidth(self):
        assert sustainable_fps(16.0, 10_000) == pytest.approx(
            2 * sustainable_fps(8.0, 10_000)
        )

    def test_curve_matches_scalar(self):
        bandwidths = np.array([1.0, 2.0, 4.0])
        curve = fps_curve(bandwidths, 50_000)
        for bandwidth, value in zip(bandwidths, curve):
            assert value == pytest.approx(sustainable_fps(bandwidth, 50_000))

    @given(
        st.floats(min_value=0.1, max_value=100),
        st.integers(min_value=100, max_value=10**7),
    )
    @settings(max_examples=30)
    def test_positive(self, bandwidth, frame_bytes):
        assert sustainable_fps(bandwidth, frame_bytes) > 0

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            sustainable_fps(0.0, 100)
        with pytest.raises(ValueError):
            fps_curve(np.array([-1.0]), 100)


class TestUploadTrace:
    def test_cumulative_monotone(self):
        channel = UplinkChannel("t", bandwidth_mbps=8.0)
        trace = simulate_stream("s", [10_000] * 50, channel, capture_fps=10.0)
        times = np.linspace(0, 10, 30)
        cumulative = trace.cumulative_at(times)
        assert (np.diff(cumulative) >= 0).all()

    def test_backlogged_frames_dropped(self):
        # Frames far larger than the uplink can carry per period.
        slow = UplinkChannel("slow", bandwidth_mbps=1.0)
        trace = simulate_stream("s", [500_000] * 20, slow, capture_fps=10.0)
        assert len(trace.events) < 20

    def test_queueing_mode_keeps_all(self):
        slow = UplinkChannel("slow", bandwidth_mbps=1.0)
        trace = simulate_stream(
            "s", [50_000] * 10, slow, capture_fps=10.0, drop_when_backlogged=False
        )
        assert len(trace.events) == 10
        assert trace.total_bytes == 500_000

    def test_small_payloads_all_sent(self):
        fast = UplinkChannel("fast", bandwidth_mbps=30.0)
        trace = simulate_stream("s", [30_000] * 20, fast, capture_fps=10.0)
        assert len(trace.events) == 20

    def test_visualprint_order_of_magnitude_cheaper(self):
        """The Fig. 14 headline: fingerprints vs whole frames."""
        channel = CHANNEL_PRESETS["wifi"]
        frames = simulate_stream("frames", [500_000] * 100, channel, 10.0)
        fingerprints = simulate_stream("vp", [40_000] * 100, channel, 10.0)
        assert frames.total_bytes >= 5 * fingerprints.total_bytes

    def test_empty_stream(self):
        channel = CHANNEL_PRESETS["lte"]
        trace = simulate_stream("s", [], channel)
        assert trace.total_bytes == 0
        assert trace.cumulative_at(np.array([1.0]))[0] == 0
