"""Unit + property tests for MurmurHash3 and the hash families."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hashing import (
    MultiplyShiftFamily,
    Murmur3Family,
    murmur3_32,
    murmur3_32_vectors,
)


class TestMurmur3Scalar:
    # Reference vectors from the canonical C++ implementation.
    KNOWN = [
        (b"", 0, 0),
        (b"", 1, 0x514E28B7),
        (b"hello", 0, 0x248BFA47),
        (b"hello, world", 0, 0x149BBB7F),
        (b"The quick brown fox jumps over the lazy dog", 0, 0x2E4FF723),
    ]

    @pytest.mark.parametrize("data,seed,expected", KNOWN)
    def test_reference_vectors(self, data, seed, expected):
        assert murmur3_32(data, seed) == expected

    def test_deterministic(self):
        assert murmur3_32(b"abc") == murmur3_32(b"abc")

    def test_seed_changes_output(self):
        assert murmur3_32(b"abc", 0) != murmur3_32(b"abc", 1)

    def test_tail_handling(self):
        # 1-, 2-, 3-byte tails all take distinct code paths.
        values = {murmur3_32(b"a"), murmur3_32(b"ab"), murmur3_32(b"abc")}
        assert len(values) == 3

    @given(st.binary(max_size=64))
    @settings(max_examples=50)
    def test_output_is_32bit(self, data):
        assert 0 <= murmur3_32(data) < 2**32


class TestMurmur3Vectorized:
    def test_matches_scalar(self, rng):
        rows = rng.integers(0, 2**32, size=(64, 5), dtype=np.uint32)
        hashes = murmur3_32_vectors(rows, seed=9)
        for i in range(rows.shape[0]):
            assert hashes[i] == murmur3_32(rows[i].tobytes(), seed=9)

    def test_rejects_1d(self):
        with pytest.raises(ValueError):
            murmur3_32_vectors(np.zeros(4, dtype=np.uint32))

    def test_distinct_rows_rarely_collide(self, rng):
        rows = rng.integers(0, 2**32, size=(5000, 3), dtype=np.uint32)
        hashes = murmur3_32_vectors(rows)
        # Birthday bound: expect < ~5 collisions among 5000 32-bit hashes.
        assert len(np.unique(hashes)) > 4990

    def test_empty_input(self):
        out = murmur3_32_vectors(np.zeros((0, 4), dtype=np.uint32))
        assert out.shape == (0,)


class TestHashFamilies:
    @pytest.mark.parametrize("family_cls", [Murmur3Family, MultiplyShiftFamily])
    def test_indices_shape_and_range(self, family_cls, rng):
        family = family_cls(num_hashes=4, table_size=1000)
        vectors = rng.integers(0, 100, size=(20, 7)).astype(np.uint32)
        indices = family.indices(vectors)
        assert indices.shape == (20, 4)
        assert indices.min() >= 0
        assert indices.max() < 1000

    def test_murmur_family_deterministic(self, rng):
        vectors = rng.integers(0, 100, size=(5, 7)).astype(np.uint32)
        a = Murmur3Family(4, 1000).indices(vectors)
        b = Murmur3Family(4, 1000).indices(vectors)
        assert np.array_equal(a, b)

    def test_murmur_family_seed_matters(self, rng):
        vectors = rng.integers(0, 100, size=(5, 7)).astype(np.uint32)
        a = Murmur3Family(4, 1000, base_seed=0).indices(vectors)
        b = Murmur3Family(4, 1000, base_seed=99).indices(vectors)
        assert not np.array_equal(a, b)

    def test_hashes_are_spread(self, rng):
        family = Murmur3Family(num_hashes=8, table_size=1 << 16)
        vectors = rng.integers(0, 2**20, size=(2000, 7)).astype(np.uint32)
        indices = family.indices(vectors).ravel()
        # Chi-square-ish sanity: occupancy within a factor of the mean.
        counts = np.bincount(indices % 64, minlength=64)
        assert counts.max() < 3 * counts.mean()

    def test_indices_single(self, rng):
        family = Murmur3Family(3, 500)
        vector = rng.integers(0, 50, size=7).astype(np.uint32)
        single = family.indices_single(vector)
        batch = family.indices(vector[np.newaxis, :])[0]
        assert np.array_equal(single, batch)

    def test_invalid_args_raise(self):
        with pytest.raises(ValueError):
            Murmur3Family(0, 100)
        with pytest.raises(ValueError):
            Murmur3Family(4, 0)

    def test_multiply_shift_word_limit(self, rng):
        family = MultiplyShiftFamily(2, 100)
        too_wide = rng.integers(0, 10, size=(2, 65)).astype(np.uint64)
        with pytest.raises(ValueError):
            family.indices(too_wide)
