"""Tests for the paper's extension features: blur gating, oracle diff
updates, and binary (BRIEF) descriptors through the unmodified pipeline."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import (
    UniquenessOracle,
    VisualPrintClient,
    VisualPrintConfig,
    apply_delta,
    choose_refresh_payload,
    diff_counting_filters,
)
from repro.features import (
    BlurDetector,
    BriefDescriptor,
    HammingMatcher,
    HarrisDetector,
    hamming_distance,
    laplacian_variance,
)
from repro.imaging import motion_blur, value_noise_texture
from repro.util.rng import rng_for


@pytest.fixture(scope="module")
def sharp_image():
    return value_noise_texture(
        (128, 128), rng_for(8, "blur"), octaves=6, base_cells=8, persistence=0.7
    )


class TestBlurDetection:
    def test_blur_lowers_sharpness(self, sharp_image):
        blurred = motion_blur(sharp_image, 9, 0.4)
        assert laplacian_variance(blurred) < 0.5 * laplacian_variance(sharp_image)

    def test_detector_separates(self, sharp_image):
        detector = BlurDetector()
        detector.calibrate([sharp_image])
        assert not detector.is_blurred(sharp_image)
        assert detector.is_blurred(motion_blur(sharp_image, 13, 1.0))

    def test_calibrate_requires_frames(self):
        with pytest.raises(ValueError):
            BlurDetector().calibrate([])

    def test_rejects_color(self):
        with pytest.raises(ValueError):
            laplacian_variance(np.zeros((4, 4, 3)))

    def test_client_gate_counts_rejections(self, sharp_image):
        config = VisualPrintConfig(descriptor_capacity=10_000, fingerprint_size=20)
        oracle = UniquenessOracle(config)
        detector = BlurDetector()
        detector.calibrate([sharp_image])
        client = VisualPrintClient(oracle, config, blur_detector=detector)
        result = client.process_frame(motion_blur(sharp_image, 13, 0.2))
        assert result is None
        assert client.metrics.counter("client_frames_rejected_blur_total").value == 1
        assert client.metrics.counter("client_upload_bytes_total").value == 0
        assert client.process_frame(sharp_image) is not None


class TestOracleDelta:
    @pytest.fixture
    def oracle_pair(self, descriptors_1k):
        config = VisualPrintConfig(descriptor_capacity=20_000, seed=4)
        old = UniquenessOracle(config)
        old.insert(descriptors_1k[:500])
        new = UniquenessOracle(config)
        new.insert(descriptors_1k[:500])
        new.insert(descriptors_1k[500:600])  # 100 new descriptors arrived
        return old, new

    def test_delta_roundtrip(self, oracle_pair):
        old, new = oracle_pair
        delta = diff_counting_filters(old.counting, new.counting)
        apply_delta(old.counting, delta)
        assert np.array_equal(old.counting.counters, new.counting.counters)

    def test_delta_smaller_than_snapshot_for_small_growth(self, oracle_pair):
        old, new = oracle_pair
        delta = diff_counting_filters(old.counting, new.counting)
        snapshot = new.snapshot()
        assert delta.compressed_bytes < snapshot.compressed_bytes

    def test_choose_refresh_prefers_delta(self, oracle_pair):
        old, new = oracle_pair
        kind, payload = choose_refresh_payload(old, new)
        assert kind == "delta"
        assert len(payload) > 0

    def test_identical_versions_empty_delta(self, oracle_pair):
        old, _ = oracle_pair
        delta = diff_counting_filters(old.counting, old.counting)
        assert delta.num_changes == 0

    def test_geometry_mismatch_rejected(self, descriptors_1k):
        a = UniquenessOracle(VisualPrintConfig(descriptor_capacity=10_000))
        b = UniquenessOracle(VisualPrintConfig(descriptor_capacity=200_000))
        with pytest.raises(ValueError):
            diff_counting_filters(a.counting, b.counting)

    def test_wrong_target_rejected(self, oracle_pair, descriptors_1k):
        old, new = oracle_pair
        delta = diff_counting_filters(old.counting, new.counting)
        other = UniquenessOracle(
            VisualPrintConfig(descriptor_capacity=200_000)
        ).counting
        with pytest.raises(ValueError):
            apply_delta(other, delta)


class TestBinaryDescriptors:
    @pytest.fixture(scope="class")
    def image_and_keypoints(self):
        image = value_noise_texture(
            (160, 160), rng_for(9, "brief"), octaves=6, base_cells=10, persistence=0.7
        )
        keypoints = HarrisDetector(max_keypoints=80).detect(image)
        return image, keypoints

    def test_descriptors_are_binary(self, image_and_keypoints):
        image, keypoints = image_and_keypoints
        described = BriefDescriptor().describe(image, keypoints)
        values = np.unique(described.descriptors)
        assert set(values.tolist()) <= {0.0, 255.0}
        assert described.descriptors.shape == (len(keypoints), 128)

    def test_deterministic(self, image_and_keypoints):
        image, keypoints = image_and_keypoints
        a = BriefDescriptor(seed=3).describe(image, keypoints)
        b = BriefDescriptor(seed=3).describe(image, keypoints)
        assert np.array_equal(a.descriptors, b.descriptors)

    def test_hamming_self_distance_zero(self, image_and_keypoints):
        image, keypoints = image_and_keypoints
        described = BriefDescriptor().describe(image, keypoints)
        distances = hamming_distance(
            described.descriptors[:10], described.descriptors[:10]
        )
        assert np.array_equal(np.diag(distances), np.zeros(10))

    def test_matcher_recovers_under_noise(self, image_and_keypoints):
        image, keypoints = image_and_keypoints
        described = BriefDescriptor().describe(image, keypoints)
        rng = rng_for(10, "brief-noise")
        noisy = described.descriptors.copy()
        flip = rng.random(noisy.shape) < 0.03  # ~4 bit flips of 128
        noisy[flip] = 255.0 - noisy[flip]
        matcher = HammingMatcher(described.descriptors)
        query_rows, database_rows = matcher.match(noisy, max_distance=20)
        correct = (query_rows == database_rows).mean() if query_rows.size else 0
        assert query_rows.size > 0.5 * len(keypoints)
        assert correct > 0.9

    def test_flows_through_unmodified_oracle(self, image_and_keypoints):
        """The paper's claim: integer descriptors drop straight in."""
        image, keypoints = image_and_keypoints
        described = BriefDescriptor().describe(image, keypoints)
        config = VisualPrintConfig(descriptor_capacity=10_000, fingerprint_size=10)
        oracle = UniquenessOracle(config)
        # Insert half the binary descriptors many times ("common"), the
        # other half once ("unique").
        half = len(described) // 2
        for _ in range(20):
            oracle.insert(described.descriptors[:half])
        oracle.insert(described.descriptors[half:])
        counts_common = oracle.counts(described.descriptors[:half])
        counts_unique = oracle.counts(described.descriptors[half:])
        assert np.median(counts_common) > np.median(counts_unique)

    def test_empty_keypoints_passthrough(self, image_and_keypoints):
        from repro.features import KeypointSet

        image, _ = image_and_keypoints
        empty = KeypointSet.empty()
        assert BriefDescriptor().describe(image, empty) is empty
