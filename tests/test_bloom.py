"""Unit + property tests for Bloom filters (classic, counting, verification)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bloom import (
    BloomFilter,
    CountingBloomFilter,
    VerificationBloomFilter,
    deserialize_counting,
    optimal_num_bits,
    optimal_num_hashes,
    serialize_counting,
)


def _vectors(rng, n, low=0, high=1000):
    return rng.integers(low, high, size=(n, 7)).astype(np.uint32)


class TestSizing:
    def test_optimal_bits_monotone_in_capacity(self):
        assert optimal_num_bits(2000, 0.01) > optimal_num_bits(1000, 0.01)

    def test_optimal_bits_monotone_in_fp(self):
        assert optimal_num_bits(1000, 0.001) > optimal_num_bits(1000, 0.01)

    def test_paper_scale(self):
        # 2.5M elements at 1%: ~24 Mbit ~ 3 MB of plain bits.
        bits = optimal_num_bits(2_500_000, 0.01)
        assert 20e6 < bits < 30e6

    def test_optimal_hashes(self):
        bits = optimal_num_bits(1000, 0.01)
        assert optimal_num_hashes(bits, 1000) in range(5, 10)

    def test_degenerate_fp_raises(self):
        with pytest.raises(ValueError):
            optimal_num_bits(100, 0.0)


class TestBloomFilter:
    def test_no_false_negatives(self, rng):
        bloom = BloomFilter.with_capacity(500)
        items = _vectors(rng, 200)
        bloom.add(items)
        assert bloom.contains(items).all()

    def test_unseen_mostly_absent(self, rng):
        bloom = BloomFilter.with_capacity(500, false_positive_rate=0.01)
        bloom.add(_vectors(rng, 200, 0, 1000))
        unseen = _vectors(rng, 500, 10_000, 20_000)
        assert bloom.contains(unseen).mean() < 0.05

    def test_fill_fraction_grows(self, rng):
        bloom = BloomFilter.with_capacity(1000)
        before = bloom.fill_fraction
        bloom.add(_vectors(rng, 300))
        assert bloom.fill_fraction > before

    def test_estimated_fp_rate_bounded(self, rng):
        bloom = BloomFilter.with_capacity(1000, false_positive_rate=0.01)
        bloom.add(_vectors(rng, 1000))
        assert bloom.estimated_false_positive_rate() < 0.05

    def test_inserted_count(self, rng):
        bloom = BloomFilter.with_capacity(100)
        bloom.add(_vectors(rng, 7))
        assert bloom.inserted_count == 7

    def test_mismatched_family_rejected(self, rng):
        from repro.hashing import Murmur3Family

        family = Murmur3Family(num_hashes=3, table_size=64)
        with pytest.raises(ValueError):
            BloomFilter(num_bits=128, num_hashes=3, hash_family=family)


class TestCountingBloomFilter:
    def test_count_accumulates(self, rng):
        cbf = CountingBloomFilter(1 << 12, 4)
        item = _vectors(rng, 1)
        for expected in range(1, 6):
            cbf.add(item)
            assert cbf.count(item)[0] == expected

    def test_count_never_underestimates(self, rng):
        cbf = CountingBloomFilter(1 << 14, 6)
        items = _vectors(rng, 100)
        cbf.add(items)
        cbf.add(items[:50])
        counts = cbf.count(items)
        assert (counts[:50] >= 2).all()
        assert (counts[50:] >= 1).all()

    def test_duplicates_within_batch(self, rng):
        cbf = CountingBloomFilter(1 << 12, 4)
        item = _vectors(rng, 1)
        batch = np.repeat(item, 5, axis=0)
        cbf.add(batch)
        assert cbf.count(item)[0] == 5

    def test_saturation(self, rng):
        cbf = CountingBloomFilter(1 << 10, 2, bits_per_counter=3)  # saturates at 7
        item = _vectors(rng, 1)
        for _ in range(20):
            cbf.add(item)
        assert cbf.count(item)[0] == 7
        assert cbf.is_saturated(item)[0]

    def test_contains(self, rng):
        cbf = CountingBloomFilter(1 << 12, 4)
        items = _vectors(rng, 10)
        cbf.add(items)
        assert cbf.contains(items).all()

    def test_storage_accounting(self):
        cbf = CountingBloomFilter(num_counters=1024, num_hashes=4, bits_per_counter=10)
        assert cbf.storage_bits() == 10240
        assert cbf.storage_bytes() == 1280

    def test_packed_roundtrip(self, rng):
        cbf = CountingBloomFilter(1 << 10, 4, bits_per_counter=10)
        cbf.add(_vectors(rng, 200))
        packed = cbf.packed_bytes()
        restored = CountingBloomFilter.from_packed_bytes(
            packed, num_counters=1 << 10, num_hashes=4, bits_per_counter=10
        )
        assert np.array_equal(restored.counters, cbf.counters)

    @given(st.integers(min_value=1, max_value=12))
    @settings(max_examples=10, deadline=None)
    def test_packed_size_matches_bits(self, bits):
        cbf = CountingBloomFilter(256, 2, bits_per_counter=bits)
        assert len(cbf.packed_bytes()) == (256 * bits + 7) // 8

    def test_bits_per_counter_bounds(self):
        with pytest.raises(ValueError):
            CountingBloomFilter(64, 2, bits_per_counter=17)


class TestVerificationBloomFilter:
    def test_verifies_inserted_tuples(self, rng):
        verification = VerificationBloomFilter(1 << 14)
        indices = rng.integers(0, 4096, size=(50, 8))
        verification.add(indices)
        assert verification.verify(indices).all()

    def test_rejects_unseen_tuples(self, rng):
        verification = VerificationBloomFilter(1 << 14)
        verification.add(rng.integers(0, 4096, size=(50, 8)))
        unseen = rng.integers(5000, 9000, size=(200, 8))
        assert verification.verify(unseen).mean() < 0.05

    def test_order_canonicalization(self, rng):
        verification = VerificationBloomFilter(1 << 12)
        indices = rng.integers(0, 1024, size=(1, 8))
        verification.add(indices)
        shuffled = indices[:, ::-1].copy()
        assert verification.verify(shuffled)[0]

    def test_packed_roundtrip(self, rng):
        verification = VerificationBloomFilter(1 << 10)
        verification.add(rng.integers(0, 256, size=(30, 4)))
        payload = verification.packed_bytes()
        other = VerificationBloomFilter(1 << 10)
        other.load_packed_bytes(payload)
        probe = rng.integers(0, 256, size=(30, 4))
        assert np.array_equal(verification.verify(probe), other.verify(probe))

    def test_rejects_1d(self):
        with pytest.raises(ValueError):
            VerificationBloomFilter(64).add(np.zeros(4))


class TestSnapshotSerialization:
    def test_roundtrip(self, rng):
        cbf = CountingBloomFilter(1 << 12, 4)
        cbf.add(_vectors(rng, 500))
        snapshot = serialize_counting(cbf)
        restored = deserialize_counting(snapshot)
        assert np.array_equal(restored.counters, cbf.counters)
        assert restored.num_hashes == cbf.num_hashes

    def test_compression_ratio_reported(self, rng):
        cbf = CountingBloomFilter(1 << 14, 4)
        snapshot = serialize_counting(cbf)  # empty: highly compressible
        assert snapshot.compression_ratio > 10

    def test_compressibility_drops_with_saturation(self, rng):
        empty = serialize_counting(CountingBloomFilter(1 << 14, 4))
        full = CountingBloomFilter(1 << 14, 4)
        full.add(_vectors(rng, 5000, 0, 10**6))
        saturated = serialize_counting(full)
        # "compressibility reduces as the Bloom filter becomes more saturated"
        assert saturated.compressed_bytes > empty.compressed_bytes

    def test_bad_magic_rejected(self):
        import gzip

        with pytest.raises(ValueError):
            deserialize_counting(gzip.compress(b"XXXXgarbage"))
