"""Property-based tests (hypothesis) for core invariants.

These cover the contracts the system leans on: Bloom filters never
produce false negatives, count estimates never underestimate, LSH bucket
assignment is translation-consistent, serialization roundtrips are
lossless, rigid transforms preserve distances, and voting never invents
scenes that received no votes.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.bloom import BloomFilter, CountingBloomFilter
from repro.features.keypoint import KeypointSet
from repro.features.serialize import deserialize_keypoints, serialize_keypoints
from repro.geometry.pose import Pose
from repro.lsh.projections import E2LSHParams, StableProjections
from repro.matching.schemes import vote_scene
from repro.network import UplinkChannel

vector_sets = arrays(
    dtype=np.uint32,
    shape=st.tuples(st.integers(1, 30), st.just(5)),
    elements=st.integers(0, 10_000),
)

descriptors = arrays(
    dtype=np.float32,
    shape=st.tuples(st.integers(1, 10), st.just(128)),
    elements=st.floats(0, 255, width=32),
)


class TestBloomInvariants:
    @given(vector_sets)
    @settings(max_examples=25, deadline=None)
    def test_no_false_negatives(self, vectors):
        bloom = BloomFilter(num_bits=1 << 12, num_hashes=4)
        bloom.add(vectors)
        assert bloom.contains(vectors).all()

    @given(vector_sets, st.integers(1, 4))
    @settings(max_examples=20, deadline=None)
    def test_count_never_underestimates(self, vectors, repeats):
        cbf = CountingBloomFilter(num_counters=1 << 12, num_hashes=4)
        for _ in range(repeats):
            cbf.add(vectors)
        # Each row inserted at least `repeats` times (more if duplicated
        # within the batch), so the estimate is bounded below.
        assert (cbf.count(vectors) >= repeats).all()

    @given(vector_sets)
    @settings(max_examples=20, deadline=None)
    def test_counting_monotone_under_insertion(self, vectors):
        cbf = CountingBloomFilter(num_counters=1 << 12, num_hashes=4)
        cbf.add(vectors)
        before = cbf.count(vectors)
        cbf.add(vectors[:1])
        after = cbf.count(vectors)
        assert (after >= before).all()


class TestLshInvariants:
    @given(descriptors)
    @settings(max_examples=20, deadline=None)
    def test_quantization_deterministic(self, batch):
        projections = StableProjections(E2LSHParams(num_tables=3), seed=1)
        a = projections.quantize(batch)
        b = projections.quantize(batch)
        assert np.array_equal(a, b)

    @given(descriptors, st.floats(min_value=-3, max_value=3))
    @settings(max_examples=20, deadline=None)
    def test_residuals_bounded(self, batch, shift):
        projections = StableProjections(E2LSHParams(num_tables=2), seed=2)
        shifted = np.clip(batch + shift, 0, 255)
        _, residuals = projections.quantize_with_residuals(shifted)
        assert (residuals >= 0).all() and (residuals < 1).all()


class TestSerializationInvariants:
    @given(
        arrays(
            dtype=np.float32,
            shape=st.tuples(st.integers(0, 20), st.just(2)),
            elements=st.floats(0, 1000, width=32),
        )
    )
    @settings(max_examples=20, deadline=None)
    def test_keypoint_roundtrip_positions(self, positions):
        n = positions.shape[0]
        keypoints = KeypointSet(
            positions=positions,
            scales=np.ones(n, np.float32),
            orientations=np.zeros(n, np.float32),
            responses=np.zeros(n, np.float32),
            descriptors=np.zeros((n, 128), np.float32),
        )
        restored = deserialize_keypoints(serialize_keypoints(keypoints))
        assert np.allclose(restored.positions, positions, atol=1e-3)

    @given(descriptors)
    @settings(max_examples=15, deadline=None)
    def test_descriptor_integerization_stable(self, batch):
        n = batch.shape[0]
        keypoints = KeypointSet(
            positions=np.zeros((n, 2), np.float32),
            scales=np.ones(n, np.float32),
            orientations=np.zeros(n, np.float32),
            responses=np.zeros(n, np.float32),
            descriptors=np.rint(batch).astype(np.float32),
        )
        once = deserialize_keypoints(serialize_keypoints(keypoints))
        twice = deserialize_keypoints(serialize_keypoints(once))
        assert np.array_equal(once.descriptors, twice.descriptors)


class TestGeometryInvariants:
    @given(
        st.floats(-3, 3), st.floats(-1.4, 1.4), st.floats(-3, 3),
        st.floats(-10, 10), st.floats(-10, 10), st.floats(-10, 10),
    )
    @settings(max_examples=30, deadline=None)
    def test_rigid_transform_preserves_distances(self, yaw, pitch, roll, x, y, z):
        pose = Pose(x=x, y=y, z=z, yaw=yaw, pitch=pitch, roll=roll)
        points = np.array([[0.0, 0, 0], [1, 2, 3], [-4, 5, -6]])
        moved = pose.to_world(points)
        original = np.linalg.norm(points[0] - points[1])
        transformed = np.linalg.norm(moved[0] - moved[1])
        assert transformed == np.float64(transformed)
        assert abs(original - transformed) < 1e-9


class TestVotingInvariants:
    @given(
        arrays(
            dtype=np.int64,
            shape=st.integers(0, 60),
            elements=st.integers(-1, 10),
        )
    )
    @settings(max_examples=40, deadline=None)
    def test_predicted_scene_received_votes(self, labels):
        outcome = vote_scene(labels, min_votes=3)
        if outcome.predicted_scene != -1:
            assert (labels == outcome.predicted_scene).sum() >= 3


class TestChannelInvariants:
    @given(
        st.floats(min_value=0.1, max_value=100),
        st.integers(min_value=0, max_value=10**8),
    )
    @settings(max_examples=30, deadline=None)
    def test_transfer_time_nonnegative_and_monotone(self, bandwidth, payload):
        channel = UplinkChannel("t", bandwidth_mbps=bandwidth, jitter_sigma=0.0)
        small = channel.transfer_seconds(payload)
        larger = channel.transfer_seconds(payload + 1000)
        assert small >= 0
        assert larger >= small
