"""Tests for the streaming quantile sketch (repro.obs.sketch).

Covers: relative-accuracy bounds against exact numpy quantiles, the
zero bucket, merge correctness and order independence (the property the
reservoir histogram lacks), registry integration (accessor, state
round-trip, JSON/Prometheus rendering), bit-identical serial vs
``workers=N`` merge-back through :func:`repro.parallel.parallel_map`,
and the hypothesis property holding merged quantiles to the rank-error
bound of sorted-sample ground truth.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.obs import (
    DEFAULT_QUANTILES,
    MetricsRegistry,
    QuantileSketch,
    parse_prometheus,
    use_registry,
)
from repro.parallel import parallel_map
from repro.util.rng import rng_for


def _exact(values, q: float) -> float:
    """The ground-truth sample quantile under the sketch's rank convention."""
    ordered = np.sort(np.asarray(values, dtype=float))
    return float(ordered[int(q * (len(ordered) - 1))])


def _assert_same_sketch(a: QuantileSketch, b: QuantileSketch) -> None:
    """Bucket-exact equality; the float ``sum`` only to the last ulp.

    Bucket counts merge by integer addition (exactly order-independent);
    the running float sum is subject to addition order, so partitioned
    runs may differ from serial in the final bit.
    """
    a_state, b_state = a.state(), b.state()
    a_sum, b_sum = a_state.pop("sum"), b_state.pop("sum")
    assert a_state == b_state
    assert a_sum == pytest.approx(b_sum, rel=1e-12)


# ---------------------------------------------------------------------------
# Worker bodies must be module-level so the pool can pickle them.
# ---------------------------------------------------------------------------


def _observe_latency(value: float) -> float:
    from repro.obs import resolve_registry

    resolve_registry(None).sketch("wk_latency_seconds").observe(value)
    return value


class TestQuantileSketch:
    def test_quantiles_within_relative_accuracy(self):
        rng = rng_for(7, "test-sketch/lognormal")
        values = rng.lognormal(mean=-3.0, sigma=1.2, size=5000)
        sketch = QuantileSketch("latency", relative_accuracy=0.01)
        for value in values:
            sketch.observe(value)
        for q in DEFAULT_QUANTILES:
            exact = _exact(values, q)
            assert sketch.quantile(q) == pytest.approx(exact, rel=0.01)

    def test_quantiles_batch_matches_scalar(self):
        rng = rng_for(8, "test-sketch/batch")
        sketch = QuantileSketch("latency")
        for value in rng.uniform(1e-4, 10.0, size=400):
            sketch.observe(value)
        batch = sketch.quantiles((0.1, 0.5, 0.99))
        for q, value in batch.items():
            assert value == sketch.quantile(q)

    def test_empty_sketch_reports_zero(self):
        sketch = QuantileSketch("latency")
        assert sketch.count == 0
        assert sketch.quantile(0.99) == 0.0
        assert sketch.to_dict()["p50"] == 0.0

    def test_negative_value_rejected(self):
        with pytest.raises(ValueError):
            QuantileSketch("latency").observe(-0.1)

    def test_invalid_quantile_rejected(self):
        sketch = QuantileSketch("latency")
        sketch.observe(1.0)
        with pytest.raises(ValueError):
            sketch.quantile(1.5)
        with pytest.raises(ValueError):
            sketch.quantiles((0.5, -0.1))

    def test_invalid_relative_accuracy_rejected(self):
        with pytest.raises(ValueError):
            QuantileSketch("latency", relative_accuracy=0.0)
        with pytest.raises(ValueError):
            QuantileSketch("latency", relative_accuracy=1.0)

    def test_zero_bucket(self):
        sketch = QuantileSketch("latency")
        for _ in range(9):
            sketch.observe(0.0)
        sketch.observe(5.0)
        assert sketch.count == 10
        assert sketch.quantile(0.5) == 0.0
        assert sketch.quantile(1.0) == pytest.approx(5.0, rel=0.01)

    def test_mean_min_max(self):
        sketch = QuantileSketch("latency")
        for value in (1.0, 2.0, 3.0):
            sketch.observe(value)
        assert sketch.mean == pytest.approx(2.0)
        d = sketch.to_dict()
        assert d["min"] == 1.0 and d["max"] == 3.0

    def test_reset(self):
        sketch = QuantileSketch("latency")
        sketch.observe(1.0)
        sketch.reset()
        assert sketch.count == 0 and sketch.num_buckets == 0


class TestSketchMerge:
    def test_merge_equals_serial(self):
        rng = rng_for(9, "test-sketch/merge")
        values = rng.lognormal(mean=-2.0, sigma=1.0, size=2000)
        serial = QuantileSketch("latency")
        for value in values:
            serial.observe(value)
        left = QuantileSketch("latency")
        right = QuantileSketch("latency")
        for value in values[:700]:
            left.observe(value)
        for value in values[700:]:
            right.observe(value)
        merged = QuantileSketch("latency")
        merged.merge_state(left.state())
        merged.merge_state(right.state())
        _assert_same_sketch(merged, serial)

    def test_merge_order_independent(self):
        rng = rng_for(10, "test-sketch/order")
        parts = [rng.uniform(1e-4, 5.0, size=300) for _ in range(4)]
        sketches = []
        for part in parts:
            sketch = QuantileSketch("latency")
            for value in part:
                sketch.observe(value)
            sketches.append(sketch)
        forward = QuantileSketch("latency")
        for sketch in sketches:
            forward.merge_state(sketch.state())
        backward = QuantileSketch("latency")
        for sketch in reversed(sketches):
            backward.merge_state(sketch.state())
        assert forward.state() == backward.state()

    def test_merge_accuracy_mismatch_rejected(self):
        coarse = QuantileSketch("latency", relative_accuracy=0.05)
        fine = QuantileSketch("latency", relative_accuracy=0.01)
        coarse.observe(1.0)
        with pytest.raises(ValueError):
            fine.merge_state(coarse.state())

    @settings(deadline=None, max_examples=40)
    @given(
        values=st.lists(
            st.floats(min_value=1e-6, max_value=1e4),
            min_size=2,
            max_size=300,
        ),
        num_parts=st.integers(min_value=1, max_value=5),
    )
    def test_merged_quantiles_within_rank_error_of_ground_truth(
        self, values, num_parts
    ):
        """Split → sketch each part → merge: every reported quantile stays
        within the sketch's relative accuracy of the exact sorted-sample
        value at that rank, and matches the serial sketch exactly."""
        serial = QuantileSketch("latency")
        for value in values:
            serial.observe(value)
        merged = QuantileSketch("latency")
        for chunk in np.array_split(np.asarray(values), num_parts):
            part = QuantileSketch("latency")
            for value in chunk:
                part.observe(value)
            merged.merge_state(part.state())
        _assert_same_sketch(merged, serial)
        for q in DEFAULT_QUANTILES:
            exact = _exact(values, q)
            assert merged.quantile(q) == pytest.approx(exact, rel=0.011)


class TestRegistrySketch:
    def test_accessor_get_or_create(self):
        registry = MetricsRegistry()
        a = registry.sketch("e2e_seconds", shard="s0")
        b = registry.sketch("e2e_seconds", shard="s0")
        assert a is b

    def test_state_round_trip(self):
        registry = MetricsRegistry()
        registry.sketch("e2e_seconds").observe(0.25)
        other = MetricsRegistry()
        other.merge_state(registry.state())
        assert other.sketch("e2e_seconds").count == 1
        assert other.sketch("e2e_seconds").quantile(0.5) == pytest.approx(
            0.25, rel=0.01
        )

    def test_to_dict_sketches_section(self):
        registry = MetricsRegistry()
        registry.sketch("e2e_seconds", shard="s0").observe(0.1)
        snapshot = registry.to_dict()
        entry = snapshot["sketches"]["e2e_seconds{shard=s0}"]
        assert entry["count"] == 1
        assert entry["p99"] == pytest.approx(0.1, rel=0.01)

    def test_prometheus_renders_quantile_samples(self):
        registry = MetricsRegistry()
        sketch = registry.sketch("e2e_seconds")
        for value in (0.1, 0.2, 0.3):
            sketch.observe(value)
        samples = parse_prometheus(registry.to_prometheus())
        names = {name for name, _, _ in samples}
        assert "e2e_seconds" in names
        assert "e2e_seconds_count" in names
        count = next(v for n, l, v in samples if n == "e2e_seconds_count")
        assert count == 3.0

    def test_disabled_registry_noops(self):
        registry = MetricsRegistry(enabled=False)
        sketch = registry.sketch("e2e_seconds")
        sketch.observe(1.0)
        assert "sketches" not in registry.to_dict() or not registry.to_dict().get(
            "sketches"
        )


class TestParallelSketchMerge:
    def _run(self, workers: int) -> MetricsRegistry:
        rng = rng_for(11, "test-sketch/parallel")
        values = list(rng.lognormal(mean=-2.5, sigma=1.0, size=60))
        registry = MetricsRegistry()
        with use_registry(registry):
            parallel_map(_observe_latency, values, workers=workers)
        return registry

    def test_serial_and_pooled_states_identical(self):
        serial = self._run(workers=1)
        pooled = self._run(workers=3)
        _assert_same_sketch(
            serial.sketch("wk_latency_seconds"),
            pooled.sketch("wk_latency_seconds"),
        )
        assert serial.sketch("wk_latency_seconds").count == 60

    def test_pooled_quantiles_match_ground_truth(self):
        rng = rng_for(11, "test-sketch/parallel")
        values = list(rng.lognormal(mean=-2.5, sigma=1.0, size=60))
        pooled = self._run(workers=4).sketch("wk_latency_seconds")
        for q in DEFAULT_QUANTILES:
            assert pooled.quantile(q) == pytest.approx(_exact(values, q), rel=0.011)
