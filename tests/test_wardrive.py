"""Unit tests for environments, the Tango rig, depth rendering, sessions."""

from __future__ import annotations

import numpy as np
import pytest

from repro.geometry import CameraIntrinsics, Pose
from repro.wardrive import (
    ENVIRONMENT_SPECS,
    DriftModel,
    IndoorEnvironment,
    TangoRig,
    WardriveSession,
    calibration_sweep,
    lawnmower_path,
    random_sift_descriptor,
    render_depth_map,
)


@pytest.fixture(scope="module")
def office():
    return IndoorEnvironment.build("office", seed=5)


class TestDescriptors:
    def test_sift_like_statistics(self, rng):
        descriptor = random_sift_descriptor(rng)
        assert descriptor.shape == (128,)
        assert descriptor.min() >= 0 and descriptor.max() <= 255
        assert (descriptor == 0).mean() > 0.2  # sparse

    def test_distinct_draws(self, rng):
        a = random_sift_descriptor(rng)
        b = random_sift_descriptor(rng)
        assert not np.array_equal(a, b)


class TestEnvironment:
    def test_specs_cover_paper_venues(self):
        assert set(ENVIRONMENT_SPECS) == {"office", "cafeteria", "grocery"}
        assert ENVIRONMENT_SPECS["grocery"].has_aisles

    def test_landmark_counts(self, office):
        spec = office.spec
        expected = spec.num_unique + spec.num_repeated_motifs * spec.repeats_per_motif
        assert office.num_landmarks == expected
        assert office.is_unique.sum() == spec.num_unique

    def test_landmarks_on_shell(self, office):
        low, high = office.bounds
        positions = office.positions
        assert (positions >= low - 1e-9).all()
        assert (positions <= high + 1e-9).all()
        # wall landmarks: each point touches at least one wall plane
        on_x = np.isclose(positions[:, 0], low[0]) | np.isclose(positions[:, 0], high[0])
        on_y = np.isclose(positions[:, 1], low[1]) | np.isclose(positions[:, 1], high[1])
        assert (on_x | on_y).mean() > 0.95

    def test_repeated_motifs_share_descriptors(self, office):
        repeated = office.descriptors[~office.is_unique]
        # motif copies are tight clusters: nearest other repeated descriptor
        # is far closer than for unique landmarks
        sample = repeated[:50]
        distances = np.linalg.norm(sample[:, None, :] - repeated[None, :, :], axis=2)
        np.fill_diagonal(distances[:, :50], np.inf)
        assert np.median(distances.min(axis=1)) < 80

    def test_deterministic(self):
        a = IndoorEnvironment.build("cafeteria", seed=9)
        b = IndoorEnvironment.build("cafeteria", seed=9)
        assert np.array_equal(a.positions, b.positions)

    def test_unknown_kind(self):
        with pytest.raises(ValueError):
            IndoorEnvironment.build("spaceship")

    def test_landmarks_near(self, office):
        center = np.array([25.0, 10.0, 1.5])
        nearby = office.landmarks_near(center, 8.0)
        if nearby.size:
            distances = np.linalg.norm(office.positions[nearby] - center, axis=1)
            assert (distances <= 8.0).all()


class TestDepth:
    def test_depth_positive_and_bounded(self, office):
        pose = Pose(x=10.0, y=10.0, z=1.5)
        depth = render_depth_map(
            pose, CameraIntrinsics(), office.bounds, noise_sigma=0.0
        )
        finite = depth[np.isfinite(depth)]
        assert finite.min() > 0
        assert finite.max() < 100.0

    def test_depth_matches_wall_distance(self, office):
        # Facing the -y wall from 4 m away: central pixel depth ~ 4 m.
        pose = Pose(x=25.0, y=4.0, z=1.5, yaw=-np.pi / 2)
        depth = render_depth_map(
            pose, CameraIntrinsics(), office.bounds, resolution=(9, 9), noise_sigma=0.0
        )
        assert depth[4, 4] == pytest.approx(4.0, rel=0.02)

    def test_noise_scales_with_range(self, office):
        pose = Pose(x=25.0, y=10.0, z=1.5)
        rng = np.random.default_rng(0)
        noisy = render_depth_map(
            pose, CameraIntrinsics(), office.bounds, noise_sigma=0.05, rng=rng
        )
        clean = render_depth_map(
            pose, CameraIntrinsics(), office.bounds, noise_sigma=0.0
        )
        residual = np.abs(noisy - clean)
        mask = np.isfinite(residual)
        assert residual[mask].mean() > 0


class TestTangoRig:
    def test_capture_contents(self, office):
        rig = TangoRig(office, seed=1)
        snapshot = rig.capture(Pose(x=10.0, y=4.0, z=1.5, yaw=-np.pi / 2))
        assert snapshot.num_observations > 0
        assert snapshot.pixels.shape == (snapshot.num_observations, 2)
        assert snapshot.descriptors.shape == (snapshot.num_observations, 128)
        assert snapshot.dense_points.shape[0] > 100
        assert snapshot.dense_normals.shape == snapshot.dense_points.shape

    def test_normals_unit_length(self, office):
        rig = TangoRig(office, seed=1)
        snapshot = rig.capture(Pose(x=10.0, y=4.0, z=1.5, yaw=-np.pi / 2))
        lengths = np.linalg.norm(snapshot.dense_normals, axis=1)
        assert np.allclose(lengths, 1.0, atol=1e-6)

    def test_drift_accumulates(self, office):
        rig = TangoRig(office, seed=2, drift=DriftModel(scale=3.0))
        pose = Pose(x=10.0, y=4.0, z=1.5, yaw=-np.pi / 2)
        drifts = []
        for _ in range(30):
            snapshot = rig.capture(pose)
            drifts.append(
                np.linalg.norm(
                    snapshot.reported_pose.position - snapshot.true_pose.position
                )
            )
        assert np.mean(drifts[20:]) > np.mean(drifts[:5])

    def test_zero_drift_scale(self, office):
        rig = TangoRig(office, seed=2, drift=DriftModel(scale=0.0))
        snapshot = rig.capture(Pose(x=10.0, y=4.0, z=1.5))
        assert snapshot.reported_pose.position_error(snapshot.true_pose) == 0.0

    def test_world_estimates_near_truth_without_drift(self, office):
        rig = TangoRig(office, seed=3, drift=DriftModel(scale=0.0))
        snapshot = rig.capture(Pose(x=10.0, y=4.0, z=1.5, yaw=-np.pi / 2))
        truth = office.positions[snapshot.landmark_ids]
        errors = np.linalg.norm(snapshot.world_estimates - truth, axis=1)
        assert np.median(errors) < 0.3  # only pixel/depth noise remains


class TestPaths:
    def test_sweep_is_in_place(self, office):
        sweep = calibration_sweep(office, num_views=8)
        assert len(sweep) == 8
        positions = {(pose.x, pose.y) for pose in sweep}
        assert len(positions) == 1

    def test_lawnmower_covers_venue(self, office):
        path = lawnmower_path(office)
        xs = [pose.x for pose in path]
        ys = [pose.y for pose in path]
        assert max(xs) - min(xs) > office.spec.width * 0.7
        assert max(ys) - min(ys) > office.spec.depth * 0.5

    def test_lawnmower_starts_with_sweep(self, office):
        path = lawnmower_path(office)
        sweep = calibration_sweep(office)
        assert path[: len(sweep)] == sweep


class TestSession:
    def test_mapping_alignment(self, office):
        session = WardriveSession(
            office, seed=4, path=lawnmower_path(office, spacing=10.0, step=4.0)
        )
        result = session.run(use_icp=False)
        assert result.descriptors.shape[0] == result.positions.shape[0]
        assert result.positions.shape[1] == 3
        assert result.num_mappings > 100

    def test_errors_reported(self, office):
        session = WardriveSession(
            office,
            seed=4,
            drift=DriftModel(scale=0.0),
            path=lawnmower_path(office, spacing=10.0, step=4.0),
        )
        result = session.run(use_icp=False)
        assert np.median(result.position_errors()) < 0.3
