"""Behavioral tests of the SIFT implementation's invariance properties.

These check the contracts VisualPrint relies on: descriptors survive the
photometric and geometric perturbations that separate wardriving imagery
from query imagery.
"""

from __future__ import annotations

import numpy as np
import pytest
from scipy import ndimage

from repro.features import SiftExtractor, SiftParams
from repro.imaging import (
    brightness_contrast,
    gaussian_noise,
    rotate_image,
    value_noise_texture,
)
from repro.util.rng import rng_for


@pytest.fixture(scope="module")
def extractor():
    return SiftExtractor(SiftParams(contrast_threshold=0.01))


@pytest.fixture(scope="module")
def base_image():
    return value_noise_texture(
        (160, 160), rng_for(21, "invariance"), octaves=6, base_cells=10,
        persistence=0.7,
    )


def _match_rate(a, b, ratio=0.8):
    """Fraction of a's keypoints with a ratio-test match into b."""
    if len(a) < 5 or len(b) < 5:
        return 0.0
    distances = (
        (a.descriptors[:, None, :].astype(np.float64)
         - b.descriptors[None, :, :].astype(np.float64)) ** 2
    ).sum(-1)
    ordered = np.sort(distances, axis=1)
    return float((ordered[:, 0] < ratio**2 * ordered[:, 1]).mean())


class TestPhotometricInvariance:
    def test_brightness_shift(self, extractor, base_image):
        original = extractor.extract(base_image)
        shifted = extractor.extract(brightness_contrast(base_image, brightness=0.12))
        assert _match_rate(shifted, original) > 0.5

    def test_contrast_change(self, extractor, base_image):
        original = extractor.extract(base_image)
        stretched = extractor.extract(brightness_contrast(base_image, contrast=1.3))
        assert _match_rate(stretched, original) > 0.5

    def test_mild_noise(self, extractor, base_image):
        original = extractor.extract(base_image)
        noisy = extractor.extract(
            gaussian_noise(base_image, 0.015, rng_for(22, "noise"))
        )
        assert _match_rate(noisy, original) > 0.4


class TestGeometricInvariance:
    @pytest.mark.parametrize("degrees", [10, 30, 60])
    def test_in_plane_rotation(self, extractor, base_image, degrees):
        original = extractor.extract(base_image)
        rotated = extractor.extract(
            rotate_image(base_image, np.deg2rad(degrees))
        )
        assert _match_rate(rotated, original) > 0.2

    def test_scale_change(self, extractor, base_image):
        original = extractor.extract(base_image)
        scaled_image = ndimage.zoom(base_image, 0.7, order=1)
        scaled = extractor.extract(scaled_image.astype(np.float32))
        assert _match_rate(scaled, original) > 0.15

    def test_descriptor_positions_track_rotation(self, extractor, base_image):
        """Matched keypoints should map under the known rotation."""
        angle = np.deg2rad(20)
        original = extractor.extract(base_image)
        rotated_image = rotate_image(base_image, angle)
        rotated = extractor.extract(rotated_image)
        if len(original) < 10 or len(rotated) < 10:
            pytest.skip("not enough keypoints")
        distances = (
            (rotated.descriptors[:, None, :].astype(np.float64)
             - original.descriptors[None, :, :].astype(np.float64)) ** 2
        ).sum(-1)
        nearest = distances.argmin(axis=1)
        ordered = np.sort(distances, axis=1)
        confident = ordered[:, 0] < 0.7**2 * ordered[:, 1]
        if confident.sum() < 5:
            pytest.skip("too few confident matches")
        center = (base_image.shape[1] - 1) / 2.0
        cos_a, sin_a = np.cos(angle), np.sin(angle)
        # rotate_image maps output <- input by the inverse; matched
        # original positions should land on the rotated positions.
        src = original.positions[nearest[confident]] - center
        expected = np.column_stack(
            [
                cos_a * src[:, 0] - sin_a * src[:, 1],
                sin_a * src[:, 0] + cos_a * src[:, 1],
            ]
        ) + center
        observed = rotated.positions[confident]
        median_error = float(
            np.median(np.linalg.norm(expected - observed, axis=1))
        )
        assert median_error < 4.0  # pixels


class TestDetectionQuality:
    def test_blob_detected_at_right_scale(self, extractor):
        """An isolated Gaussian blob yields a keypoint near its center
        with a detection scale proportional to its size."""
        image = np.full((96, 96), 0.4, dtype=np.float32)
        ys, xs = np.mgrid[0:96, 0:96]
        blob_sigma = 4.0
        image += 0.5 * np.exp(
            -((ys - 48.0) ** 2 + (xs - 48.0) ** 2) / (2 * blob_sigma**2)
        ).astype(np.float32)
        keypoints = extractor.extract(image)
        assert len(keypoints) >= 1
        distances = np.linalg.norm(keypoints.positions - [48, 48], axis=1)
        nearest = distances.argmin()
        assert distances[nearest] < 4.0
        # DoG responds maximally at sigma ~ blob size / sqrt(2)
        assert 1.0 < keypoints.scales[nearest] < 12.0

    def test_multiple_blobs_all_found(self, extractor):
        image = np.full((128, 128), 0.4, dtype=np.float32)
        ys, xs = np.mgrid[0:128, 0:128]
        centers = [(32, 32), (32, 96), (96, 32), (96, 96)]
        for cy, cx in centers:
            image += 0.45 * np.exp(
                -((ys - cy) ** 2 + (xs - cx) ** 2) / (2 * 3.5**2)
            ).astype(np.float32)
        keypoints = extractor.extract(np.clip(image, 0, 1))
        found = 0
        for cy, cx in centers:
            distances = np.linalg.norm(keypoints.positions - [cx, cy], axis=1)
            found += bool((distances < 5.0).any())
        assert found >= 3
