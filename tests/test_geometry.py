"""Unit + property tests for poses, cameras, and the Fig. 11 angle math."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geometry import (
    CameraIntrinsics,
    PinholeCamera,
    Pose,
    angle_between_keypoints,
    gamma_angle,
    rotation_matrix,
)

angles = st.floats(min_value=-3.0, max_value=3.0, allow_nan=False)


class TestPose:
    def test_rotation_is_orthonormal(self):
        rotation = rotation_matrix(0.4, -0.2, 0.1)
        assert np.allclose(rotation @ rotation.T, np.eye(3), atol=1e-12)
        assert np.linalg.det(rotation) == pytest.approx(1.0)

    @given(angles, angles, angles)
    @settings(max_examples=30)
    def test_to_world_to_camera_roundtrip(self, yaw, pitch, roll):
        pose = Pose(x=1.0, y=-2.0, z=0.5, yaw=yaw, pitch=pitch, roll=roll)
        points = np.array([[1.0, 2.0, 3.0], [-1.0, 0.0, 4.0]])
        restored = pose.to_camera(pose.to_world(points))
        assert np.allclose(restored, points, atol=1e-9)

    def test_identity_pose_passthrough(self):
        points = np.array([[1.0, 2.0, 3.0]])
        assert np.allclose(Pose().to_world(points), points)

    def test_yaw_rotates_forward_vector(self):
        pose = Pose(yaw=np.pi / 2)
        forward_world = pose.to_world(np.array([[1.0, 0.0, 0.0]]))
        assert np.allclose(forward_world, [[0.0, 1.0, 0.0]], atol=1e-12)

    def test_translated_and_rotated(self):
        pose = Pose().translated(1, 2, 3).rotated(0.5)
        assert (pose.x, pose.y, pose.z) == (1, 2, 3)
        assert pose.yaw == 0.5

    def test_position_error(self):
        assert Pose(x=3.0).position_error(Pose(y=4.0)) == pytest.approx(5.0)


class TestCamera:
    @pytest.fixture
    def camera(self):
        return PinholeCamera(CameraIntrinsics(), Pose(x=1.0, y=2.0, z=1.5, yaw=0.3))

    def test_center_point_projects_to_center(self, camera):
        forward = camera.pose.to_world(np.array([[5.0, 0.0, 0.0]]))
        pixels, visible = camera.project(forward)
        assert visible[0]
        assert np.allclose(pixels[0], camera.intrinsics.center, atol=1e-6)

    def test_behind_camera_invisible(self, camera):
        behind = camera.pose.to_world(np.array([[-5.0, 0.0, 0.0]]))
        _, visible = camera.project(behind)
        assert not visible[0]

    def test_project_backproject_roundtrip(self, camera, rng):
        camera_points = np.column_stack(
            [
                rng.uniform(2, 10, 20),
                rng.uniform(-1, 1, 20),
                rng.uniform(-1, 1, 20),
            ]
        )
        world = camera.pose.to_world(camera_points)
        pixels, visible = camera.project(world)
        depths = camera.depth_of(world)
        restored = camera.back_project(pixels[visible], depths[visible])
        assert np.allclose(restored, world[visible], atol=1e-6)

    def test_focal_from_fov(self):
        intrinsics = CameraIntrinsics(width=640, fov_h=np.pi / 2)
        assert intrinsics.focal_x == pytest.approx(320.0)

    def test_depth_of_nan_behind(self, camera):
        behind = camera.pose.to_world(np.array([[-3.0, 0.0, 0.0]]))
        assert np.isnan(camera.depth_of(behind)[0])

    def test_backproject_alignment_check(self, camera):
        with pytest.raises(ValueError):
            camera.back_project(np.zeros((3, 2)), np.zeros(2))


class TestAngles:
    def test_gamma_zero_at_center(self):
        assert gamma_angle(320.0, 320.0, np.deg2rad(60), 640) == pytest.approx(0.0)

    def test_gamma_half_fov_at_edge(self):
        fov = np.deg2rad(60)
        assert gamma_angle(640.0, 320.0, fov, 640) == pytest.approx(fov / 2)

    def test_gamma_symmetric(self):
        fov = np.deg2rad(60)
        assert gamma_angle(100.0, 320.0, fov, 640) == pytest.approx(
            gamma_angle(540.0, 320.0, fov, 640)
        )

    def test_angle_between_opposite_sides_adds(self):
        fov = np.deg2rad(60)
        left = gamma_angle(100.0, 320.0, fov, 640)
        right = gamma_angle(500.0, 320.0, fov, 640)
        assert angle_between_keypoints(100.0, 500.0, 320.0, fov, 640) == pytest.approx(
            left + right
        )

    def test_angle_between_same_side_subtracts(self):
        fov = np.deg2rad(60)
        a = gamma_angle(400.0, 320.0, fov, 640)
        b = gamma_angle(500.0, 320.0, fov, 640)
        assert angle_between_keypoints(400.0, 500.0, 320.0, fov, 640) == pytest.approx(
            abs(a - b)
        )

    def test_consistency_with_3d_geometry(self):
        """The Fig. 11 formula equals the true ray angle for on-axis pairs."""
        intrinsics = CameraIntrinsics()
        camera = PinholeCamera(intrinsics, Pose())
        # Two points at the same height (y in image), different x.
        world = np.array([[10.0, 1.5, 0.0], [10.0, -2.0, 0.0]])
        pixels, visible = camera.project(world)
        assert visible.all()
        gamma = angle_between_keypoints(
            pixels[0, 0],
            pixels[1, 0],
            intrinsics.center[0],
            intrinsics.fov_h,
            intrinsics.width,
        )
        rays = world / np.linalg.norm(world, axis=1, keepdims=True)
        true_angle = np.arccos(np.clip(rays[0] @ rays[1], -1, 1))
        assert gamma == pytest.approx(true_angle, abs=1e-6)

    def test_invalid_fov(self):
        with pytest.raises(ValueError):
            gamma_angle(0.0, 0.0, 4.0, 640)
