"""Tests for the crash-safe snapshot store and the integrity ladder.

Covers the four legs of the state-integrity model (DESIGN.md §10):
atomic checksummed generations with last-good rollback
(:class:`repro.store.SnapshotStore`), seeded storage fault injection
(:class:`repro.store.StorageFaultInjector`), swap-in validation of
downloaded oracle payloads (the refresher's quarantine path), and the
``verify-state`` fsck.  The hypothesis property at the bottom is the
headline invariant: any single injected fault is either *detected* or
the restore is *byte-identical* — corrupted state is never silently
served.
"""

from __future__ import annotations

import gzip
import json
import shutil
import struct
from pathlib import Path

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.bloom import (
    CountingBloomFilter,
    SnapshotCorruptError,
    VerificationBloomFilter,
    deserialize_counting,
    deserialize_verification,
    serialize_counting,
    serialize_verification,
)
from repro.core import VisualPrintConfig, VisualPrintServer
from repro.core.oracle import UniquenessOracle
from repro.core.persistence import ServerStateStore, load_server, save_server
from repro.core.updates import OracleRefresher, diff_counting_filters
from repro.obs import MetricsRegistry, use_registry
from repro.store import (
    CHECKSUM_ALGO,
    SnapshotStore,
    StorageFaultInjector,
    StorageFaultSpec,
    checksum_bytes,
    checksum_named,
    validate_refresh_payload,
    verify_state,
)
from repro.wardrive.environment import random_sift_descriptor


def _small_server(rng, num_descriptors: int = 80) -> VisualPrintServer:
    config = VisualPrintConfig(descriptor_capacity=2048, fingerprint_size=10)
    bounds = (np.zeros(3), np.array([10.0, 10.0, 3.0]))
    server = VisualPrintServer(config, bounds=bounds)
    descriptors = np.array(
        [random_sift_descriptor(rng) for _ in range(num_descriptors)]
    )
    positions = rng.uniform(0, 10, (num_descriptors, 3))
    server.ingest(descriptors, positions)
    return server


class TestSnapshotStore:
    def test_save_load_roundtrip(self, tmp_path):
        store = SnapshotStore(tmp_path / "store")
        sections = {"a.bin": b"alpha" * 100, "b.bin": b"\x00\xff" * 50}
        generation = store.save(sections, metadata={"note": "first"})
        loaded = store.load()
        assert loaded.generation == generation
        assert loaded.sections == sections
        assert loaded.metadata == {"note": "first"}
        assert loaded.rolled_back == 0

    def test_generations_and_retention(self, tmp_path):
        store = SnapshotStore(tmp_path / "store", keep_generations=2)
        for index in range(4):
            store.save({"s.bin": bytes([index]) * 16})
        assert store.generations() == [3, 4]
        assert store.load().sections["s.bin"] == bytes([3]) * 16

    def test_section_name_validation(self, tmp_path):
        store = SnapshotStore(tmp_path / "store")
        with pytest.raises(ValueError):
            store.save({})
        with pytest.raises(ValueError):
            store.save({"../escape": b"x"})
        with pytest.raises(ValueError):
            store.save({"MANIFEST.json": b"x"})

    def test_rollback_to_last_good(self, tmp_path):
        registry = MetricsRegistry()
        store = SnapshotStore(tmp_path / "store", registry=registry)
        store.save({"s.bin": b"good" * 64})
        store.save({"s.bin": b"newer" * 64})
        StorageFaultInjector(seed=3).corrupt_file(
            tmp_path / "store" / "gen-000002" / "s.bin"
        )
        loaded = store.load()
        assert loaded.generation == 1
        assert loaded.sections["s.bin"] == b"good" * 64
        assert loaded.rolled_back == 1
        assert loaded.skipped[0].generation == 2
        assert registry.counter("store_rollbacks_total").value == 1
        assert (
            registry.counter("store_loads_total", outcome="rolled_back").value
            == 1
        )

    def test_every_generation_corrupt_raises(self, tmp_path):
        store = SnapshotStore(tmp_path / "store")
        store.save({"s.bin": b"x" * 256})
        injector = StorageFaultInjector(seed=5)
        injector.corrupt_file(tmp_path / "store" / "gen-000001" / "s.bin")
        with pytest.raises(SnapshotCorruptError, match="every generation"):
            store.load()

    def test_empty_store_raises(self, tmp_path):
        with pytest.raises(SnapshotCorruptError):
            SnapshotStore(tmp_path / "store").load()

    def test_manifest_tamper_detected(self, tmp_path):
        store = SnapshotStore(tmp_path / "store")
        store.save({"s.bin": b"x" * 64}, metadata={"k": 1})
        manifest_path = tmp_path / "store" / "gen-000001" / "MANIFEST.json"
        manifest = json.loads(manifest_path.read_text())
        manifest["metadata"]["k"] = 2  # lie without updating manifest_crc
        manifest_path.write_text(json.dumps(manifest, sort_keys=True, indent=2))
        report = store.verify_generation(1)
        assert not report.ok
        with pytest.raises(SnapshotCorruptError):
            store.load()

    def test_truncated_section_detected_by_length(self, tmp_path):
        store = SnapshotStore(tmp_path / "store")
        store.save({"s.bin": b"y" * 512})
        section = tmp_path / "store" / "gen-000001" / "s.bin"
        section.write_bytes(section.read_bytes()[:100])
        report = store.verify_generation(1)
        assert not report.ok
        assert any("length" in p for p in report.problems)

    def test_stale_rename_leaves_previous_generation_current(self, tmp_path):
        registry = MetricsRegistry()
        store = SnapshotStore(tmp_path / "store", registry=registry)
        store.save({"s.bin": b"committed"})
        with use_registry(registry):
            store.fault_injector = StorageFaultInjector(
                stale_rename=1.0, seed=1
            )
            store.save({"s.bin": b"lost-to-crash"})
        assert store.generations() == [1]
        assert store.load().sections["s.bin"] == b"committed"
        assert (
            registry.counter(
                "snapshot_faults_injected_total", kind="stale_rename"
            ).value
            == 1
        )
        # The staged directory is swept by the next (healthy) save.
        store.fault_injector = None
        store.save({"s.bin": b"recovered"})
        assert not list(Path(tmp_path / "store").glob(".tmp-*"))
        assert store.load().sections["s.bin"] == b"recovered"

    def test_mangled_write_is_always_detected(self, tmp_path):
        registry = MetricsRegistry()
        with use_registry(registry):
            store = SnapshotStore(
                tmp_path / "store",
                fault_injector=StorageFaultInjector(bit_flip=1.0, seed=2),
                registry=registry,
            )
            store.save({"s.bin": b"z" * 300})
        report = store.verify_generation(1)
        assert not report.ok  # manifest CRCs are of the true bytes
        assert registry.counter("store_snapshots_corrupt_total").value >= 1


class TestStorageFaultInjector:
    def test_null_spec_is_identity(self):
        injector = StorageFaultInjector()
        data = b"payload" * 20
        assert injector.mangle(data, "x") == (data, None)
        assert injector.drop_rename("x") is False
        assert injector.faults_injected == 0

    def test_spec_validation(self):
        with pytest.raises(ValueError):
            StorageFaultSpec(bit_flip=1.5)
        with pytest.raises(ValueError):
            StorageFaultSpec(max_bit_flips=0)
        with pytest.raises(ValueError):
            StorageFaultInjector(StorageFaultSpec(), bit_flip=0.5)

    def test_deterministic_given_seed(self):
        a = StorageFaultInjector(bit_flip=0.5, truncate=0.5, seed=11)
        b = StorageFaultInjector(bit_flip=0.5, truncate=0.5, seed=11)
        data = bytes(range(256)) * 4
        for _ in range(20):
            assert a.mangle(data, "x") == b.mangle(data, "x")

    def test_gating_isolates_streams(self):
        # Enabling truncation must not shift the bit-flip draw sequence.
        flips_only = StorageFaultInjector(bit_flip=0.4, seed=9)
        flips_and_tears = StorageFaultInjector(
            bit_flip=0.4, torn_write=0.0, seed=9
        )
        data = b"q" * 128
        for _ in range(30):
            assert flips_only.mangle(data, "x") == flips_and_tears.mangle(
                data, "x"
            )

    def test_corrupt_file_changes_bytes(self, tmp_path):
        target = tmp_path / "victim.bin"
        original = bytes(range(256))
        for kind in ("bit_flip", "truncate", "torn_write"):
            target.write_bytes(original)
            StorageFaultInjector(seed=4).corrupt_file(target, kind=kind)
            assert target.read_bytes() != original
        with pytest.raises(ValueError):
            StorageFaultInjector(seed=4).corrupt_file(target, kind="stale_rename")

    def test_faults_counted_in_registry(self):
        registry = MetricsRegistry()
        with use_registry(registry):
            injector = StorageFaultInjector(truncate=1.0, seed=6)
            injector.mangle(b"w" * 64, "x")
        assert (
            registry.counter(
                "snapshot_faults_injected_total", kind="truncate"
            ).value
            == 1
        )
        assert injector.faults_injected == 1


class TestContainerHardening:
    def test_counting_body_length_mismatch_rejected(self):
        bloom = CountingBloomFilter(num_counters=256, num_hashes=4)
        bloom.add(np.arange(160, dtype=np.uint8).reshape(10, 16))
        raw = gzip.decompress(serialize_counting(bloom).payload)
        for cut in (1, 37):
            with pytest.raises(SnapshotCorruptError, match="body"):
                deserialize_counting(gzip.compress(raw[:-cut]))

    def test_counting_header_validation(self):
        def _craft(header: dict, body: bytes = b"") -> bytes:
            blob = json.dumps(header).encode("utf-8")
            return gzip.compress(
                b"VPBF" + struct.pack("<BI", 1, len(blob)) + blob + body
            )

        with pytest.raises(SnapshotCorruptError, match="magic"):
            deserialize_counting(gzip.compress(b"NOPE" + b"\x00" * 16))
        with pytest.raises(SnapshotCorruptError, match="num_counters"):
            deserialize_counting(_craft({"num_counters": -1}))
        with pytest.raises(SnapshotCorruptError, match="max 16"):
            deserialize_counting(
                _craft(
                    {
                        "num_counters": 8,
                        "num_hashes": 2,
                        "bits_per_counter": 32,
                    }
                )
            )
        with pytest.raises(SnapshotCorruptError, match="GZIP"):
            deserialize_counting(b"not gzip at all")

    def test_verification_roundtrip(self):
        bloom = VerificationBloomFilter(num_bits=4096, num_hashes=3, seed=77)
        rng = np.random.default_rng(0)
        bloom.add(rng.integers(0, 256, (50, 16)))
        snapshot = serialize_verification(bloom)
        restored = deserialize_verification(snapshot, seed=77)
        assert restored.num_bits == bloom.num_bits
        assert restored.num_hashes == bloom.num_hashes
        assert restored.packed_bytes() == bloom.packed_bytes()

    def test_verification_body_length_mismatch_rejected(self):
        bloom = VerificationBloomFilter(num_bits=4096, num_hashes=3)
        raw = gzip.decompress(serialize_verification(bloom).payload)
        with pytest.raises(SnapshotCorruptError, match="body"):
            deserialize_verification(gzip.compress(raw[:-5]))


class TestRestoreApis:
    def test_restore_counts_validation(self, rng):
        oracle = UniquenessOracle(VisualPrintConfig(descriptor_capacity=2048))
        good = np.zeros(oracle.counting.num_counters, dtype=np.uint16)
        with pytest.raises(SnapshotCorruptError, match="shape"):
            oracle.restore_counts(good[:-1])
        with pytest.raises(SnapshotCorruptError, match="integers"):
            oracle.restore_counts(good.astype(np.float64))
        bad = good.copy().astype(np.int64)
        bad[0] = oracle.counting.saturation + 1
        with pytest.raises(SnapshotCorruptError, match="outside"):
            oracle.restore_counts(bad)
        with pytest.raises(SnapshotCorruptError, match="negative"):
            oracle.restore_counts(good, inserted_count=-1)
        with pytest.raises(SnapshotCorruptError, match="verification"):
            oracle.restore_counts(good, verification_bits=b"\x00")

    def test_restore_counts_roundtrip(self, rng):
        config = VisualPrintConfig(descriptor_capacity=2048)
        source = UniquenessOracle(config)
        descriptors = np.array([random_sift_descriptor(rng) for _ in range(60)])
        source.insert(descriptors)
        clone = UniquenessOracle(config)
        clone.restore_counts(
            source.counting.counters,
            verification_bits=source.verification.packed_bytes(),
            inserted_count=60,
        )
        assert np.array_equal(clone.counting.counters, source.counting.counters)
        for a, b in zip(
            clone.lookup_batch(descriptors), source.lookup_batch(descriptors)
        ):
            assert a.count == b.count and a.present == b.present

    def test_restore_state_validation(self, rng):
        server = VisualPrintServer(VisualPrintConfig(descriptor_capacity=2048))
        descriptors = np.ones((5, 128), dtype=np.float32)
        positions = np.zeros((5, 3))
        with pytest.raises(SnapshotCorruptError, match="misaligned"):
            server.restore_state(descriptors, positions[:-1])
        with pytest.raises(SnapshotCorruptError, match="2-D"):
            server.restore_state(descriptors.ravel(), positions)
        with pytest.raises(SnapshotCorruptError, match="3"):
            server.restore_state(descriptors, np.zeros((5, 2)))
        bad = positions.copy()
        bad[0, 0] = np.nan
        with pytest.raises(SnapshotCorruptError, match="finite"):
            server.restore_state(descriptors, bad)
        with pytest.raises(SnapshotCorruptError, match="bounds"):
            server.restore_state(
                descriptors, positions, bounds=(np.zeros(2), np.ones(3))
            )
        assert server.num_mappings == 0  # nothing was mutated


class TestRefresherRejection:
    def _oracle_pair(self, rng):
        config = VisualPrintConfig(descriptor_capacity=2048)
        client = UniquenessOracle(config)
        server = UniquenessOracle(config)
        server.insert(
            np.array([random_sift_descriptor(rng) for _ in range(40)])
        )
        return client, server

    def test_zero_faults_applies_cleanly(self, rng):
        client, server = self._oracle_pair(rng)
        refresher = OracleRefresher(client, registry=MetricsRegistry())
        report = refresher.refresh(server)
        assert report.status == "applied"
        assert np.array_equal(client.counting.counters, server.counting.counters)
        assert refresher.quarantined == []

    def test_corrupt_download_is_quarantined(self, rng):
        client, server = self._oracle_pair(rng)
        registry = MetricsRegistry()
        refresher = OracleRefresher(
            client,
            registry=registry,
            fault_injector=StorageFaultInjector(bit_flip=1.0, seed=13),
        )
        before = client.counting.counters.copy()
        report = refresher.refresh(server, now_seconds=30.0)
        assert report.status == "rejected"
        assert np.array_equal(client.counting.counters, before)  # stale serve
        assert len(refresher.quarantined) == 1
        assert refresher.quarantined[0].kind == report.kind
        rejected = registry.counter(
            "oracle_snapshots_rejected_total", kind=report.kind
        )
        assert rejected.value == 1
        assert registry.gauge("oracle_staleness_seconds").value == 30.0
        wasted = registry.counter(
            "network_wasted_bytes_total", channel="download"
        )
        assert wasted.value == report.payload_bytes

    def test_quarantine_ring_is_bounded(self, rng):
        client, server = self._oracle_pair(rng)
        refresher = OracleRefresher(
            client,
            registry=MetricsRegistry(),
            fault_injector=StorageFaultInjector(bit_flip=1.0, seed=17),
            quarantine_limit=2,
        )
        for _ in range(5):
            assert refresher.refresh(server).status == "rejected"
        assert len(refresher.quarantined) == 2

    def test_mismatched_geometry_snapshot_rejected(self, rng):
        base = CountingBloomFilter(num_counters=512, num_hashes=4)
        other = CountingBloomFilter(num_counters=1024, num_hashes=4)
        payload = serialize_counting(other).payload
        with pytest.raises(SnapshotCorruptError, match="counters"):
            validate_refresh_payload("snapshot", payload, base)

    def test_oversaturated_delta_rejected_not_clamped(self):
        base = CountingBloomFilter(num_counters=512, num_hashes=4)
        raw = struct.pack(
            "<4sIIIIIq",
            b"VPDT",
            2,
            base.num_counters,
            1,
            base.num_hashes,
            base.bits_per_counter,
            base.hash_seed,
        )
        raw += np.array([0], dtype="<u4").tobytes()
        raw += np.array([65535], dtype="<u2").tobytes()
        with pytest.raises(SnapshotCorruptError, match="saturation"):
            validate_refresh_payload("delta", gzip.compress(raw), base)
        assert base.counters[0] == 0

    def test_delta_roundtrip_through_validation(self):
        rng = np.random.default_rng(21)
        old = CountingBloomFilter(num_counters=512, num_hashes=4)
        old.add(rng.integers(0, 256, (30, 16)))
        new = CountingBloomFilter(num_counters=512, num_hashes=4)
        new.counters = old.counters.copy()
        new.add(rng.integers(0, 256, (20, 16)))
        validated = validate_refresh_payload(
            "delta", diff_counting_filters(old, new).payload, old
        )
        old.set_at(validated.indices.astype(np.int64), validated.values)
        assert np.array_equal(old.counters, new.counters)


class TestServerStateStore:
    def test_roundtrip_preserves_oracle_and_lookup(self, rng, tmp_path):
        server = _small_server(rng)
        probes = np.array([random_sift_descriptor(rng) for _ in range(20)])
        store = ServerStateStore(tmp_path / "state")
        generation = store.save(server)
        restored, loaded = ServerStateStore(tmp_path / "state").load()
        assert loaded.generation == generation
        assert np.array_equal(
            restored.oracle.counting.counters, server.oracle.counting.counters
        )
        assert np.array_equal(restored.positions, server.positions)
        assert restored.num_mappings == server.num_mappings
        for a, b in zip(
            restored.oracle.lookup_batch(probes),
            server.oracle.lookup_batch(probes),
        ):
            assert a.count == b.count and a.present == b.present

    def test_rollback_recovers_previous_server(self, rng, tmp_path):
        server = _small_server(rng)
        store = ServerStateStore(tmp_path / "state")
        store.save(server)
        counters_before = server.oracle.counting.counters.copy()
        more = np.array([random_sift_descriptor(rng) for _ in range(30)])
        server.ingest(more, rng.uniform(0, 10, (30, 3)))
        store.save(server)
        StorageFaultInjector(seed=8).corrupt_file(
            tmp_path / "state" / "gen-000002" / "counters.npy"
        )
        restored, loaded = ServerStateStore(tmp_path / "state").load()
        assert loaded.rolled_back == 1
        assert np.array_equal(
            restored.oracle.counting.counters, counters_before
        )

    def test_npz_integrity_checked(self, rng, tmp_path):
        server = _small_server(rng)
        path = tmp_path / "state.npz"
        save_server(server, path)
        restored = load_server(path)
        assert np.array_equal(
            restored.oracle.counting.counters, server.oracle.counting.counters
        )
        StorageFaultInjector(seed=10).corrupt_file(path)
        with pytest.raises(SnapshotCorruptError):
            load_server(path)


class TestVerifyState:
    def test_missing_path(self, tmp_path):
        report = verify_state(tmp_path / "absent")
        assert report.kind == "missing" and report.exit_code == 1

    def test_npz_clean_then_corrupt(self, rng, tmp_path):
        path = tmp_path / "state.npz"
        save_server(_small_server(rng), path)
        assert verify_state(path).exit_code == 0
        StorageFaultInjector(seed=12).corrupt_file(path)
        report = verify_state(path)
        assert report.exit_code == 1 and not report.recoverable

    def test_store_recoverable_via_rollback(self, rng, tmp_path):
        server = _small_server(rng)
        store = ServerStateStore(tmp_path / "state")
        store.save(server)
        store.save(server)
        assert verify_state(tmp_path / "state").exit_code == 0
        StorageFaultInjector(seed=14).corrupt_file(
            tmp_path / "state" / "gen-000002" / "descriptors.npy"
        )
        report = verify_state(tmp_path / "state")
        assert report.exit_code == 1
        assert report.recoverable
        assert report.restored_generation == 1

    def test_cli_verify_state_exit_codes(self, rng, tmp_path, capsys):
        from repro.cli import main

        path = tmp_path / "state.npz"
        save_server(_small_server(rng), path)
        assert main(["verify-state", str(path)]) == 0
        capsys.readouterr()
        StorageFaultInjector(seed=15).corrupt_file(path)
        assert main(["verify-state", str(path), "--json"]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["ok"] is False


class TestChecksum:
    def test_named_dispatch_matches_default(self):
        data = b"the manifest is the contract"
        assert checksum_bytes(data) == checksum_named(CHECKSUM_ALGO, data)
        with pytest.raises(ValueError):
            checksum_named("md5-of-wishes", data)


# ----------------------------------------------------------------------
# The headline property: one fault => detected, or restore is identical.
# ----------------------------------------------------------------------

_TEMPLATE: dict = {}


def _template_store(tmp_path_factory) -> tuple[Path, VisualPrintServer, np.ndarray]:
    """Build one saved server and reuse it across hypothesis examples."""
    if not _TEMPLATE:
        rng = np.random.default_rng(2016)
        config = VisualPrintConfig(descriptor_capacity=2048, fingerprint_size=10)
        server = VisualPrintServer(
            config, bounds=(np.zeros(3), np.array([10.0, 10.0, 3.0]))
        )
        descriptors = np.array(
            [random_sift_descriptor(rng) for _ in range(60)]
        )
        server.ingest(descriptors, rng.uniform(0, 10, (60, 3)))
        root = tmp_path_factory.mktemp("store-template")
        ServerStateStore(root / "state").save(server)
        probes = np.array([random_sift_descriptor(rng) for _ in range(15)])
        _TEMPLATE["root"] = root / "state"
        _TEMPLATE["server"] = server
        _TEMPLATE["probes"] = probes
    return _TEMPLATE["root"], _TEMPLATE["server"], _TEMPLATE["probes"]


_SECTIONS = (
    "config.json",
    "descriptors.npy",
    "positions.npy",
    "bounds.npy",
    "counters.npy",
    "verification.bin",
    "meta.json",
    "MANIFEST.json",
)


class TestSingleFaultProperty:
    @given(
        section=st.sampled_from(_SECTIONS),
        kind=st.sampled_from(("bit_flip", "truncate", "torn_write")),
        seed=st.integers(0, 2**31),
    )
    @settings(
        max_examples=40,
        deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    def test_single_fault_detected_or_identical(
        self, tmp_path_factory, section, kind, seed
    ):
        template, server, probes = _template_store(tmp_path_factory)
        workdir = tmp_path_factory.mktemp("fault")
        root = workdir / "state"
        shutil.copytree(template, root)
        target = root / "gen-000001" / section
        before = target.read_bytes()
        StorageFaultInjector(seed=seed).corrupt_file(target, kind=kind)
        changed = target.read_bytes() != before
        try:
            restored, _loaded = ServerStateStore(root).load()
        except SnapshotCorruptError:
            return  # detected: the rollback ladder had nowhere to go
        # Not detected: the restore must be bit-identical to the source.
        if changed and section != "MANIFEST.json":
            pytest.fail(f"undetected corruption of {section} via {kind}")
        assert np.array_equal(
            restored.oracle.counting.counters,
            server.oracle.counting.counters,
        )
        assert np.array_equal(restored.positions, server.positions)
        for a, b in zip(
            restored.oracle.lookup_batch(probes),
            server.oracle.lookup_batch(probes),
        ):
            assert a.count == b.count and a.present == b.present
