"""Unit tests for the synthetic imaging substrate."""

from __future__ import annotations

import numpy as np
import pytest

from repro.imaging import (
    brightness_contrast,
    checkerboard,
    fixture_stamp,
    gaussian_noise,
    motion_blur,
    perspective_warp,
    rotate_image,
    to_float,
    to_uint8,
    value_noise_texture,
    vignette,
)
from repro.imaging.synth import BuildingMotifs, SceneLibrary
from repro.imaging.transform import affine_warp, homography_from_view_angle
from repro.util.rng import rng_for


class TestConversions:
    def test_roundtrip(self):
        image = np.linspace(0, 1, 64, dtype=np.float32).reshape(8, 8)
        assert np.allclose(to_float(to_uint8(image)), image, atol=1 / 255)

    def test_uint8_clipping(self):
        image = np.array([[-0.5, 1.5]])
        u8 = to_uint8(image)
        assert u8[0, 0] == 0 and u8[0, 1] == 255

    def test_uint8_passthrough(self):
        u8 = np.zeros((2, 2), dtype=np.uint8)
        assert to_uint8(u8) is u8


class TestTextures:
    def test_value_noise_range(self, rng):
        texture = value_noise_texture((64, 64), rng)
        assert texture.min() >= 0 and texture.max() <= 1
        assert texture.shape == (64, 64)

    def test_value_noise_deterministic(self):
        a = value_noise_texture((32, 32), rng_for(5, "t"))
        b = value_noise_texture((32, 32), rng_for(5, "t"))
        assert np.array_equal(a, b)

    def test_value_noise_unique_per_seed(self):
        a = value_noise_texture((32, 32), rng_for(5, "t"))
        b = value_noise_texture((32, 32), rng_for(6, "t"))
        assert not np.array_equal(a, b)

    def test_checkerboard_period(self):
        board = checkerboard((32, 32), tile=8)
        assert board[0, 0] != board[0, 8]
        assert board[0, 0] == board[0, 16]
        assert board[0, 0] == board[8, 8]

    def test_invalid_octaves(self, rng):
        with pytest.raises(ValueError):
            value_noise_texture((8, 8), rng, octaves=0)

    @pytest.mark.parametrize("kind", ["knob", "vent", "plate", "switch"])
    def test_fixture_kinds(self, kind, rng):
        stamp = fixture_stamp(kind, 32, rng)
        assert stamp.shape == (32, 32)
        assert stamp.std() > 0.05  # has visible structure

    def test_unknown_fixture(self, rng):
        with pytest.raises(ValueError):
            fixture_stamp("spaceship", 32, rng)


class TestNoise:
    def test_gaussian_noise_clips(self, rng):
        noisy = gaussian_noise(np.full((16, 16), 0.99, np.float32), 0.3, rng)
        assert noisy.max() <= 1.0

    def test_brightness_contrast_identity(self):
        image = np.random.default_rng(0).random((8, 8)).astype(np.float32)
        assert np.allclose(brightness_contrast(image, 0.0, 1.0), image)

    def test_motion_blur_preserves_mean(self, rng):
        image = rng.random((32, 32)).astype(np.float32)
        blurred = motion_blur(image, 7, 0.3)
        assert abs(blurred.mean() - image.mean()) < 0.02
        assert blurred.std() < image.std()  # blur reduces variance

    def test_motion_blur_length_one_identity(self, rng):
        image = rng.random((8, 8)).astype(np.float32)
        assert np.array_equal(motion_blur(image, 1, 0.0), image)

    def test_vignette_darkens_corners(self):
        image = np.ones((33, 33), dtype=np.float32)
        shaded = vignette(image, strength=0.5)
        assert shaded[16, 16] > shaded[0, 0]


class TestWarps:
    def test_identity_homography(self, rng):
        image = rng.random((32, 32)).astype(np.float32)
        warped = perspective_warp(image, np.eye(3))
        # Border pixels clamp by design; the interior is exact.
        assert np.allclose(warped[:-1, :-1], image[:-1, :-1], atol=1e-4)

    def test_rotation_roundtrip(self):
        # Smooth content survives interpolate-rotate-interpolate; white
        # noise would not (bilinear acts as a low-pass filter).
        image = value_noise_texture((64, 64), rng_for(2, "rot"), octaves=3)
        rotated = rotate_image(image, 0.3)
        restored = rotate_image(rotated, -0.3)
        center = slice(20, 44)
        assert np.abs(restored[center, center] - image[center, center]).mean() < 0.03

    def test_affine_translation(self):
        image = np.zeros((16, 16), dtype=np.float32)
        image[8, 8] = 1.0
        shifted = affine_warp(image, np.eye(2), translation=(2.0, 0.0))
        assert shifted[8, 10] > 0.9

    def test_view_homography_keeps_center(self):
        homography = homography_from_view_angle(128, 128, 0.4)
        center = homography @ np.array([63.5, 63.5, 1.0])
        center /= center[2]
        assert np.allclose(center[:2], [63.5, 63.5], atol=1e-6)

    def test_invalid_homography_shape(self, rng):
        with pytest.raises(ValueError):
            perspective_warp(rng.random((8, 8)), np.eye(2))


class TestSceneLibrary:
    def test_deterministic(self, small_library):
        other = SceneLibrary(seed=42, num_scenes=3, num_distractors=3, size=(128, 128))
        assert np.array_equal(small_library.scene(1), other.scene(1))

    def test_scenes_differ(self, small_library):
        assert not np.array_equal(small_library.scene(0), small_library.scene(1))

    def test_views_differ_from_scene(self, small_library):
        scene = small_library.scene(0)
        view = small_library.query_view(0, 0)
        assert not np.array_equal(scene, view)
        assert view.shape == scene.shape

    def test_index_bounds(self, small_library):
        with pytest.raises(IndexError):
            small_library.scene(99)
        with pytest.raises(IndexError):
            small_library.distractor(99)
        with pytest.raises(IndexError):
            small_library.query_view(0, 99)

    def test_all_database_images_labels(self, small_library):
        labels = [label for label, _ in small_library.all_database_images()]
        assert labels == [0, 1, 2, -1, -1, -1]

    def test_wallpaper_repeats_across_images(self, small_library):
        """Distractor backgrounds share the building-wide motifs."""
        motifs = small_library._motifs
        tiled = motifs.tiled_wallpaper((128, 128))
        assert tiled.shape == (128, 128)
        # the wallpaper tile actually repeats
        tile = motifs.wallpaper.shape[0]
        if 2 * tile <= 128:
            assert np.allclose(tiled[:tile, :tile], tiled[tile : 2 * tile, :tile])

    def test_motifs_shared_between_scene_and_distractor(self):
        motifs_a = BuildingMotifs.create(9)
        motifs_b = BuildingMotifs.create(9)
        for kind in motifs_a.stamps:
            assert np.array_equal(motifs_a.stamps[kind], motifs_b.stamps[kind])
