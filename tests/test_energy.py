"""Unit tests for the power model and Monsoon-style traces."""

from __future__ import annotations

import numpy as np
import pytest

from repro.energy import PowerModel, PowerProfile, sample_trace


class TestPowerModel:
    @pytest.fixture(scope="class")
    def model(self):
        return PowerModel()

    @pytest.fixture(scope="class")
    def profiles(self):
        return PowerModel.figure18_profiles()

    def test_display_plateau(self, model, profiles):
        watts = model.average_power(profiles["display"])
        assert 0.8 <= watts <= 1.6

    def test_camera_plateau(self, model, profiles):
        watts = model.average_power(profiles["camera"])
        assert 3.0 <= watts <= 4.0  # paper: display+camera ~3.5 W

    def test_full_pipeline_band(self, model, profiles):
        watts = model.average_power(profiles["visualprint_full"])
        assert 5.0 <= watts <= 8.0  # paper: ~6.5 W

    def test_frame_upload_below_full(self, model, profiles):
        frame = model.average_power(profiles["frame_upload"])
        full = model.average_power(profiles["visualprint_full"])
        assert frame < full  # paper: 4.9 W vs 6.5 W

    def test_monotone_in_components(self, model, profiles):
        ordering = ["display", "camera", "visualprint_upload", "visualprint_full"]
        values = [model.average_power(profiles[name]) for name in ordering]
        assert values == sorted(values)

    def test_energy_joules(self, model, profiles):
        profile = profiles["display"]
        assert model.energy_joules(profile, 10.0) == pytest.approx(
            10 * model.average_power(profile)
        )

    def test_duty_bounds(self):
        with pytest.raises(ValueError):
            PowerProfile(name="bad", radio_duty=1.5)


class TestTrace:
    def test_average_matches_model(self):
        model = PowerModel()
        profile = PowerModel.figure18_profiles()["visualprint_full"]
        trace = sample_trace(
            profile, 5.0, model=model, sample_rate_hz=2000.0, noise_sigma=0.0
        )
        assert trace.average_watts == pytest.approx(
            model.average_power(profile), rel=0.05
        )

    def test_sample_count(self):
        profile = PowerModel.figure18_profiles()["display"]
        trace = sample_trace(profile, 2.0, sample_rate_hz=1000.0)
        assert trace.watts.size == 2000
        assert trace.duration_seconds == pytest.approx(2.0)

    def test_per_second_average_length(self):
        profile = PowerModel.figure18_profiles()["camera"]
        trace = sample_trace(profile, 3.0, sample_rate_hz=500.0)
        assert trace.per_second_average().size == 3

    def test_compute_bursts_visible(self):
        """Duty-cycled components create within-period structure."""
        profile = PowerProfile(
            name="burst", display=True, camera=True, compute_sift_duty=0.5
        )
        trace = sample_trace(
            profile, 2.0, sample_rate_hz=1000.0, frame_rate_hz=10.0, noise_sigma=0.0
        )
        assert trace.watts.max() - trace.watts.min() > 1.0

    def test_non_negative(self):
        profile = PowerModel.figure18_profiles()["display"]
        trace = sample_trace(profile, 1.0, sample_rate_hz=500.0, noise_sigma=2.0)
        assert (trace.watts >= 0).all()

    def test_invalid_duration(self):
        with pytest.raises(ValueError):
            sample_trace(PowerModel.figure18_profiles()["display"], 0.0)
