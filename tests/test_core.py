"""Unit tests for the VisualPrint core: config, oracle, client, fingerprint."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import (
    Fingerprint,
    UniquenessOracle,
    VisualPrintClient,
    VisualPrintConfig,
)
from repro.features.keypoint import KeypointSet
from repro.wardrive.environment import random_sift_descriptor


@pytest.fixture(scope="module")
def config():
    return VisualPrintConfig(descriptor_capacity=20_000, fingerprint_size=20)


@pytest.fixture(scope="module")
def trained_oracle(config, descriptors_1k):
    oracle = UniquenessOracle(config)
    # First 100 descriptors inserted 30x ("common"); rest once ("unique").
    common = descriptors_1k[:100]
    unique = descriptors_1k[100:400]
    for _ in range(30):
        oracle.insert(common)
    oracle.insert(unique)
    return oracle


def _keypoints_from(descriptors):
    n = descriptors.shape[0]
    return KeypointSet(
        positions=np.zeros((n, 2), np.float32),
        scales=np.ones(n, np.float32),
        orientations=np.zeros(n, np.float32),
        responses=np.ones(n, np.float32),
        descriptors=descriptors.astype(np.float32),
    )


class TestConfig:
    def test_paper_operating_point(self):
        config = VisualPrintConfig()
        assert config.lsh.num_tables == 10
        assert config.lsh.num_projections == 7
        assert config.lsh.quantization_width == 500.0
        assert config.bloom_hashes == 8
        assert config.saturation == 1023

    def test_counters_scale_with_capacity(self):
        small = VisualPrintConfig(descriptor_capacity=10_000)
        large = VisualPrintConfig(descriptor_capacity=1_000_000)
        assert large.num_counters > small.num_counters

    def test_paper_scale(self):
        assert VisualPrintConfig().paper_scale().descriptor_capacity == 2_500_000

    def test_invalid_ratio(self):
        with pytest.raises(ValueError):
            VisualPrintConfig(match_ratio=0.0)


class TestOracle:
    def test_common_counts_exceed_unique(self, trained_oracle, descriptors_1k):
        common_counts = trained_oracle.counts(descriptors_1k[:100])
        unique_counts = trained_oracle.counts(descriptors_1k[100:400])
        assert np.median(common_counts) > np.median(unique_counts)
        assert (common_counts >= 20).mean() > 0.8

    def test_unseen_counts_low(self, trained_oracle, rng):
        unseen = np.array([random_sift_descriptor(rng) for _ in range(100)])
        counts = trained_oracle.counts(unseen)
        assert np.median(counts) <= 1

    def test_ranking_prefers_rare_present(self, trained_oracle, descriptors_1k, rng):
        unseen = np.array([random_sift_descriptor(rng) for _ in range(20)])
        mixed = np.vstack(
            [descriptors_1k[:20], descriptors_1k[150:170], unseen]
        )  # 20 common, 20 unique, 20 unseen
        order = trained_oracle.rank_by_uniqueness(mixed)
        top20 = set(order[:20].tolist())
        # the unique block (indices 20..39) should dominate the top ranks
        assert len(top20 & set(range(20, 40))) >= 12

    def test_noise_never_inflates_counts(self, trained_oracle, descriptors_1k, rng):
        """The min estimate degrades toward zero under noise — it never
        makes content look MORE common (which would evict genuinely
        unique keypoints from the fingerprint)."""
        base = descriptors_1k[:50]
        noisy = np.clip(base + rng.normal(0, 1.5, base.shape), 0, 255)
        base_counts = trained_oracle.counts(base)
        noisy_counts = trained_oracle.counts(noisy)
        common = base_counts > 10
        assert (noisy_counts[common] <= base_counts[common] + 2).all()

    def test_lookup_present_and_count(self, trained_oracle, descriptors_1k):
        result = trained_oracle.lookup(descriptors_1k[0])
        assert result.present
        assert result.count >= 10

    def test_lookup_absent(self, trained_oracle, rng):
        result = trained_oracle.lookup(random_sift_descriptor(rng))
        assert not result.present

    def test_insert_count(self, config, descriptors_1k):
        oracle = UniquenessOracle(config)
        oracle.insert(descriptors_1k[:64])
        assert oracle.inserted_count == 64

    def test_snapshot_roundtrip_counts(self, trained_oracle):
        from repro.bloom import deserialize_counting

        snapshot = trained_oracle.snapshot()
        restored = deserialize_counting(snapshot)
        assert np.array_equal(restored.counters, trained_oracle.counting.counters)

    def test_download_smaller_than_storage(self, trained_oracle):
        assert trained_oracle.download_bytes() < trained_oracle.storage_bytes()


class TestFingerprint:
    def test_wire_roundtrip(self, descriptors_1k):
        keypoints = _keypoints_from(descriptors_1k[:30])
        fingerprint = Fingerprint(
            keypoints=keypoints,
            uniqueness_counts=np.ones(30, dtype=np.int64),
            frame_index=4,
        )
        restored = Fingerprint.from_bytes(fingerprint.to_bytes(), frame_index=4)
        assert len(restored) == 30
        assert np.array_equal(
            restored.keypoints.descriptors, np.rint(keypoints.descriptors)
        )

    def test_upload_bytes_formula(self, descriptors_1k):
        keypoints = _keypoints_from(descriptors_1k[:10])
        fingerprint = Fingerprint(
            keypoints=keypoints, uniqueness_counts=np.zeros(10, dtype=np.int64)
        )
        assert fingerprint.upload_bytes == 8 + 10 * 144

    def test_count_alignment_enforced(self, descriptors_1k):
        with pytest.raises(ValueError):
            Fingerprint(
                keypoints=_keypoints_from(descriptors_1k[:5]),
                uniqueness_counts=np.zeros(3, dtype=np.int64),
            )


class TestClient:
    def test_fingerprint_size_respected(self, trained_oracle, config, descriptors_1k):
        client = VisualPrintClient(trained_oracle, config)
        keypoints = _keypoints_from(descriptors_1k[:200])
        fingerprint = client.fingerprint_keypoints(keypoints)
        assert len(fingerprint) == config.fingerprint_size

    def test_selects_unique_over_common(self, trained_oracle, config, descriptors_1k):
        client = VisualPrintClient(trained_oracle, config)
        # 100 common + 100 unique descriptors in one frame
        keypoints = _keypoints_from(
            np.vstack([descriptors_1k[:100], descriptors_1k[200:300]])
        )
        fingerprint = client.fingerprint_keypoints(keypoints)
        # kept counts should be far below the common descriptors' counts
        assert np.median(fingerprint.uniqueness_counts) <= 3

    def test_empty_frame(self, trained_oracle, config):
        client = VisualPrintClient(trained_oracle, config)
        fingerprint = client.fingerprint_keypoints(KeypointSet.empty())
        assert len(fingerprint) == 0
        assert client.metrics.counter("client_frames_total").value == 1

    def test_stats_accumulate(self, trained_oracle, config, descriptors_1k):
        client = VisualPrintClient(trained_oracle, config)
        keypoints = _keypoints_from(descriptors_1k[:50])
        client.fingerprint_keypoints(keypoints)
        client.fingerprint_keypoints(keypoints)
        assert client.metrics.counter("client_frames_total").value == 2
        assert client.metrics.counter("client_keypoints_extracted_total").value == 100
        assert client.metrics.counter("client_upload_bytes_total").value > 0
        assert client.latency_quantiles("oracle")[0.5] >= 0

    def test_unknown_stage(self, trained_oracle, config):
        client = VisualPrintClient(trained_oracle, config)
        with pytest.raises(ValueError):
            client.latency_quantiles("gpu")
