"""Tests for the command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import _EXPERIMENTS, _FAST_PARAMS, main


class TestCli:
    def test_experiment_registry_complete(self):
        expected = {
            "fig2", "fig3", "fig5", "fig6", "fig13", "fig14",
            "fig15", "fig16", "fig18", "fig19", "fig20", "takeaways",
            "latency", "adaptive",
        }
        assert set(_EXPERIMENTS) == expected

    def test_fast_params_reference_real_experiments(self):
        assert set(_FAST_PARAMS) <= set(_EXPERIMENTS)

    def test_fig15_runs(self, capsys):
        assert main(["fig15"]) == 0
        out = capsys.readouterr().out
        assert "Figure 15" in out
        assert "VisualPrint" in out

    def test_fig18_runs(self, capsys):
        assert main(["fig18"]) == 0
        out = capsys.readouterr().out
        assert "visualprint_full" in out

    def test_fast_fig14(self, capsys):
        assert main(["fig14", "--fast"]) == 0
        out = capsys.readouterr().out
        assert "mean_fingerprint_bytes" in out

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            main(["fig99"])

    def test_serving_flag_rejected_for_unaware_experiment(self, capsys):
        assert main(["fig15", "--serving", "2"]) == 2
        assert "--serving is not supported" in capsys.readouterr().out

    def test_serve_subcommand_smoke(self, tmp_path, capsys):
        # Full serve lifecycle is covered in tests/test_serving.py; this
        # pins the subcommand's dispatch from the main entry point.
        state = tmp_path / "venues"
        assert main(["serve", "--state", str(state), "--bootstrap", "1"]) == 0
        out = capsys.readouterr().out
        assert "bootstrapped 1 venue(s)" in out
        assert "shard-0: venue-0" in out
