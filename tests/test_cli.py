"""Tests for the command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import _EXPERIMENTS, _FAST_PARAMS, main


class TestCli:
    def test_experiment_registry_complete(self):
        expected = {
            "fig2", "fig3", "fig5", "fig6", "fig13", "fig14",
            "fig15", "fig16", "fig18", "fig19", "fig20", "takeaways",
            "latency",
        }
        assert set(_EXPERIMENTS) == expected

    def test_fast_params_reference_real_experiments(self):
        assert set(_FAST_PARAMS) <= set(_EXPERIMENTS)

    def test_fig15_runs(self, capsys):
        assert main(["fig15"]) == 0
        out = capsys.readouterr().out
        assert "Figure 15" in out
        assert "VisualPrint" in out

    def test_fig18_runs(self, capsys):
        assert main(["fig18"]) == 0
        out = capsys.readouterr().out
        assert "visualprint_full" in out

    def test_fast_fig14(self, capsys):
        assert main(["fig14", "--fast"]) == 0
        out = capsys.readouterr().out
        assert "mean_fingerprint_bytes" in out

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            main(["fig99"])
