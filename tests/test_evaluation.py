"""Tests for the evaluation harness and per-figure experiment drivers."""

from __future__ import annotations

import numpy as np
import pytest

from repro.evaluation.descriptor_stats import (
    dimensions_for_variance,
    nearest_neighbor_dimension_profile,
    pca_eigenvalue_spectrum,
)
from repro.evaluation.experiments import (
    fig2_fps,
    fig3_keypoints,
    fig5_feature_ratio,
    fig14_upload,
    fig15_memory,
    fig18_energy,
)
from repro.evaluation.footprint import measured_footprints, paper_scale_footprints
from repro.evaluation.takeaways import PAPER_TAKEAWAYS
from repro.core.config import VisualPrintConfig


class TestDescriptorStats:
    def test_profile_sorted_descending(self, descriptors_1k, rng):
        queries = np.clip(
            descriptors_1k[:50] + rng.normal(0, 3, (50, 128)), 0, 255
        )
        profile = nearest_neighbor_dimension_profile(queries, descriptors_1k)
        assert (np.diff(profile, axis=1) <= 1e-9).all()

    def test_few_dimensions_dominate(self, descriptors_1k, rng):
        """The Fig. 6a observation on SIFT-like descriptors."""
        queries = np.clip(
            descriptors_1k[:100] + rng.normal(0, 3, (100, 128)), 0, 255
        )
        profile = nearest_neighbor_dimension_profile(queries, descriptors_1k)
        medians = np.median(profile, axis=0)
        top16_share = medians[:16].sum() / max(medians.sum(), 1e-9)
        assert top16_share > 0.5

    def test_pca_spectrum_normalized(self, descriptors_1k):
        spectrum = pca_eigenvalue_spectrum(descriptors_1k)
        assert spectrum.sum() == pytest.approx(1.0)
        assert (np.diff(spectrum) <= 1e-12).all()

    def test_dimensions_for_variance(self):
        spectrum = np.array([0.5, 0.3, 0.15, 0.05])
        assert dimensions_for_variance(spectrum, 0.9) == 3

    def test_degenerate_population(self):
        with pytest.raises(ValueError):
            pca_eigenvalue_spectrum(np.zeros((1, 128)))


class TestFootprints:
    def test_ordering(self):
        config = VisualPrintConfig(descriptor_capacity=500_000)
        footprints = {f.approach: f for f in measured_footprints(500_000, config)}
        assert footprints["Random-500"].memory_bytes == 0
        assert (
            footprints["VisualPrint"].memory_bytes < footprints["LSH"].memory_bytes
        )
        assert (
            footprints["VisualPrint"].disk_bytes < footprints["BruteForce"].disk_bytes
        )

    def test_paper_scale_magnitudes(self):
        footprints = {f.approach: f for f in paper_scale_footprints()}
        vp = footprints["VisualPrint"]
        lsh = footprints["LSH"]
        # headline ratios (paper: 124x disk, 58x memory; ours land in the
        # same order of magnitude with denser filters)
        assert lsh.disk_bytes / vp.disk_bytes >= 20
        assert lsh.memory_bytes / vp.memory_bytes >= 20
        # VisualPrint download is tens of MB, not GB
        assert vp.disk_bytes < 200 * 2**20


class TestTakeaways:
    def test_seven_entries(self):
        assert len(PAPER_TAKEAWAYS) == 7

    def test_keys_unique(self):
        keys = [t.key for t in PAPER_TAKEAWAYS]
        assert len(set(keys)) == len(keys)


class TestExperimentDrivers:
    """Fast, reduced-size runs of each driver, checking the paper's shape."""

    def test_fig2_encoding_order(self):
        result = fig2_fps.run(num_frames=4, image_size=128)
        sizes = result["bytes_per_frame"]
        assert sizes["h264"] < sizes["jpeg"] < sizes["png"] < sizes["raw"]
        # FPS ordering is the inverse at every bandwidth
        assert (result["fps"]["h264"] > result["fps"]["png"]).all()

    def test_fig2_lossless_cannot_stream(self):
        result = fig2_fps.run(num_frames=4, image_size=256)
        two_mbps = result["fps"]["png"][result["bandwidths_mbps"] == 2.0]
        assert two_mbps[0] < 10.0  # the paper's motivating gap

    def test_fig3_jpeg_left_of_png(self):
        result = fig3_keypoints.run(num_images=8, image_size=128)
        assert np.median(result["jpeg_counts"]) < np.median(result["png_counts"])
        assert result["mean_compression_ratio"] > 5

    def test_fig5_ratio_around_one(self):
        result = fig5_feature_ratio.run(num_images=8, image_size=128)
        assert np.median(result["raw_ratios"]) > 0.3
        assert (result["gzip_ratios"] < result["raw_ratios"]).all()

    def test_fig14_order_of_magnitude(self):
        # Fingerprint size scales with our ~4x smaller keypoint budget
        # (25 of ~400 keypoints ~ the paper's 200 of ~3500).
        result = fig14_upload.run(duration_seconds=20.0, image_size=160,
                                  fingerprint_size=25)
        assert result["frame_total_mb"] >= 4 * result["visualprint_total_mb"]
        assert result["mean_fingerprint_bytes"] < result["mean_frame_bytes"]

    def test_fig15_ratios(self):
        result = fig15_memory.run(num_descriptors=100_000)
        assert result["disk_ratio_lsh_over_vp"] > 10
        assert result["memory_ratio_lsh_over_vp"] > 10

    def test_fig18_shape(self):
        result = fig18_energy.run(duration_seconds=5.0)
        averages = result["averages"]
        assert averages["display"] < averages["camera"] < averages["visualprint_full"]
        assert 5.0 <= averages["visualprint_full"] <= 8.0
        assert result["camera_compute_fraction"] >= 0.6
