"""Tests for the multi-venue serving layer (repro.serving).

Covers: consistent-hash placement (determinism, minimal remapping,
hypothesis round-trip of route→shard→venue), the venue registry's
per-venue save/load/refresh flows, frontend admission/routing/metrics
in inline and process modes, topology changes under live venues, the
discrete-event load simulator, retrieval-path parity through the
frontend, and the ``repro serve`` CLI.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    OracleRefresher,
    ServerConfig,
    UniquenessOracle,
    VisualPrintConfig,
    VisualPrintServer,
)
from repro.obs import MetricsRegistry
from repro.serving import (
    QUERY_ABANDONED,
    QUERY_SERVED,
    QUERY_SHED,
    ConsistentHashRing,
    EngineSpec,
    ServingFrontend,
    ShardLoadModel,
    ShardSaturatedError,
    VenueRegistry,
    simulate_queue_network,
    simulate_shard_throughput,
)
from repro.util.rng import rng_for
from repro.wardrive.environment import random_sift_descriptor

_KEYS = [f"venue-{index}" for index in range(200)]


def _small_server(seed: int = 3, count: int = 80) -> VisualPrintServer:
    rng = rng_for(seed, "test-serving/server")
    server = VisualPrintServer(
        VisualPrintConfig(descriptor_capacity=2048, fingerprint_size=10),
        bounds=(np.zeros(3), np.array([10.0, 10.0, 3.0])),
    )
    descriptors = np.array([random_sift_descriptor(rng) for _ in range(count)])
    server.ingest(descriptors, rng.uniform(0.0, 10.0, (count, 3)))
    return server


class _Echo:
    """Trivial engine: serve(payload) -> (tag, payload)."""

    def __init__(self, tag: str = "echo") -> None:
        self.tag = tag

    def serve(self, payload):
        return (self.tag, payload)


def _build_echo(tag: str) -> _Echo:
    return _Echo(tag)


class TestConsistentHashRing:
    def test_route_deterministic_across_instances(self):
        a = ConsistentHashRing(["s0", "s1", "s2"])
        b = ConsistentHashRing(["s2", "s0", "s1"])  # insertion order irrelevant
        assert [a.route(k) for k in _KEYS] == [b.route(k) for k in _KEYS]

    def test_seed_changes_placement(self):
        a = ConsistentHashRing(["s0", "s1", "s2"], seed=0)
        b = ConsistentHashRing(["s0", "s1", "s2"], seed=1)
        assert [a.route(k) for k in _KEYS] != [b.route(k) for k in _KEYS]

    def test_every_shard_gets_keys(self):
        ring = ConsistentHashRing(["s0", "s1", "s2", "s3"])
        placement = ring.placement(_KEYS)
        assert set(placement) == {"s0", "s1", "s2", "s3"}
        assert all(placement.values())
        assert sorted(sum(placement.values(), [])) == sorted(_KEYS)

    def test_add_shard_moves_only_arcs_of_new_shard(self):
        ring = ConsistentHashRing(["s0", "s1", "s2", "s3"])
        before = {k: ring.route(k) for k in _KEYS}
        ring.add_shard("s4")
        after = {k: ring.route(k) for k in _KEYS}
        moved = [k for k in _KEYS if before[k] != after[k]]
        assert moved, "a new shard must take over some keys"
        # Every moved key moved TO the new shard, and the churn is a
        # minority: roughly 1/5 of keys, far below a full reshuffle.
        assert all(after[k] == "s4" for k in moved)
        assert len(moved) < len(_KEYS) / 2

    def test_remove_shard_moves_only_its_keys(self):
        ring = ConsistentHashRing(["s0", "s1", "s2", "s3"])
        before = {k: ring.route(k) for k in _KEYS}
        ring.remove_shard("s2")
        after = {k: ring.route(k) for k in _KEYS}
        for key in _KEYS:
            if before[key] == "s2":
                assert after[key] != "s2"
            else:
                assert after[key] == before[key]

    def test_add_then_remove_restores_placement(self):
        ring = ConsistentHashRing(["s0", "s1"])
        before = {k: ring.route(k) for k in _KEYS}
        ring.add_shard("s2")
        ring.remove_shard("s2")
        assert {k: ring.route(k) for k in _KEYS} == before

    def test_validation(self):
        ring = ConsistentHashRing(["s0"])
        with pytest.raises(ValueError):
            ring.add_shard("s0")
        with pytest.raises(ValueError):
            ring.add_shard("")
        with pytest.raises(KeyError):
            ring.remove_shard("missing")
        with pytest.raises(ValueError):
            ConsistentHashRing(replicas=0)
        empty = ConsistentHashRing()
        with pytest.raises(KeyError):
            empty.route("anything")

    @given(
        names=st.lists(
            st.text(min_size=1, max_size=30), min_size=1, max_size=40, unique=True
        ),
        num_shards=st.integers(min_value=1, max_value=6),
        seed=st.integers(min_value=0, max_value=2**31),
    )
    @settings(max_examples=50, deadline=None)
    def test_route_shard_venue_round_trip(self, names, num_shards, seed):
        """route→shard→venue: placement inverts routing exactly."""
        registry = VenueRegistry(num_shards, seed=seed)
        for name in names:
            shard = registry.register(name, _Echo(name))
            assert shard == registry.ring.route(name) == registry.shard_for(name)
        placement = registry.placement()
        # Every venue appears exactly once, on the shard route() names.
        seen = [name for venues in placement.values() for name in venues]
        assert sorted(seen) == sorted(names)
        for shard, venues in placement.items():
            for name in venues:
                assert registry.shard_for(name) == shard


class TestVenueRegistry:
    def test_register_and_lookup(self):
        registry = VenueRegistry(2)
        engine = _Echo("a")
        shard = registry.register("a", engine)
        assert shard in registry.shard_ids
        assert registry.engine("a") is engine
        assert "a" in registry and len(registry) == 1
        with pytest.raises(ValueError):
            registry.register("a", engine)
        with pytest.raises(ValueError):
            registry.register("", engine)
        registry.unregister("a")
        with pytest.raises(KeyError):
            registry.engine("a")
        with pytest.raises(KeyError):
            registry.unregister("a")

    def test_save_load_round_trip(self, tmp_path):
        registry = VenueRegistry(2)
        server = _small_server()
        registry.register("office", server)
        generation = registry.save_venue("office", tmp_path)
        assert generation == 1

        restored = VenueRegistry(2)
        shard = restored.load_venue("office", tmp_path)
        assert shard == registry.shard_for("office")
        loaded = restored.engine("office")
        np.testing.assert_array_equal(
            loaded.oracle.counting.counters, server.oracle.counting.counters
        )
        np.testing.assert_array_equal(loaded.descriptors, server.descriptors)

    def test_spec_for_stored_venue_builds(self, tmp_path):
        registry = VenueRegistry(1)
        registry.register("office", _small_server())
        registry.save_venue("office", tmp_path)
        spec = registry.spec_for_stored_venue("office", tmp_path)
        assert isinstance(spec, EngineSpec)
        rebuilt = spec.build()
        assert rebuilt.num_mappings == registry.engine("office").num_mappings

    def test_refresh_venue_pulls_oracle(self):
        registry = VenueRegistry(1)
        server = _small_server()
        registry.register("office", server)
        client_oracle = UniquenessOracle(server.config)
        refresher = OracleRefresher(client_oracle)
        report = registry.refresh_venue("office", refresher)
        assert report.status == "applied"
        np.testing.assert_array_equal(
            client_oracle.counting.counters, server.oracle.counting.counters
        )

    def test_refresh_venue_rejects_non_server_engine(self):
        registry = VenueRegistry(1)
        registry.register("echo", _Echo())
        refresher = OracleRefresher(UniquenessOracle(VisualPrintConfig()))
        with pytest.raises(TypeError):
            registry.refresh_venue("echo", refresher)


class TestServingFrontend:
    def test_inline_results_match_direct_calls(self):
        registry = MetricsRegistry()
        frontend = ServingFrontend(num_shards=3, registry=registry)
        engines = {name: _Echo(name) for name in ("a", "b", "c", "d")}
        for name, engine in engines.items():
            frontend.register_venue(name, engine)
        items = [(name, index) for index in range(5) for name in engines]
        served = frontend.map_many(items)
        direct = [engines[name].serve(payload) for name, payload in items]
        assert served == direct
        frontend.close()

    def test_per_shard_accounting(self):
        registry = MetricsRegistry()
        frontend = ServingFrontend(num_shards=2, registry=registry)
        for name in ("a", "b", "c"):
            frontend.register_venue(name, _Echo(name))
        frontend.map_many([("a", 0), ("b", 1), ("c", 2), ("a", 3)])
        placement = frontend.placement()
        counts = {"a": 2, "b": 1, "c": 1}
        for shard_id, venues in placement.items():
            expected = sum(counts[name] for name in venues)
            served = registry.counter(
                "serving_queries_served_total", shard=shard_id
            ).value
            assert served == expected
            assert registry.gauge(
                "serving_shard_queue_depth", shard=shard_id
            ).value == 0
        assert registry.gauge("serving_venues").value == 3
        assert registry.gauge("serving_shards").value == 2
        assert registry.histogram("serving_queue_wait_seconds").count == 4

    def test_unknown_venue_fails_before_admission(self):
        registry = MetricsRegistry()
        frontend = ServingFrontend(registry=registry)
        with pytest.raises(KeyError):
            frontend.call("missing", 1)
        assert registry.counter(
            "serving_queries_admitted_total", shard="shard-0"
        ).value == 0

    def test_reject_admission_sheds_when_saturated(self):
        registry = MetricsRegistry()
        frontend = ServingFrontend(
            num_shards=1, queue_depth=2, admission="reject", registry=registry
        )
        frontend.register_venue("a", _Echo())
        shard = frontend.venues.shard_for("a")
        # Inline execution never overlaps, so saturate the queue
        # accounting directly to exercise the admission policy.
        state = frontend._shards[shard]
        state.set_depth(2, frontend.queue_depth)
        with pytest.raises(ShardSaturatedError) as err:
            frontend.call("a", 1)
        assert err.value.shard_id == shard
        assert registry.counter(
            "serving_queries_rejected_total", shard=shard
        ).value == 1
        state.set_depth(0, frontend.queue_depth)
        assert frontend.call("a", 1) == ("echo", 1)

    def test_engine_failure_counted_and_propagates(self):
        class Boom:
            def serve(self, payload):
                raise RuntimeError("engine exploded")

        registry = MetricsRegistry()
        frontend = ServingFrontend(registry=registry)
        frontend.register_venue("bad", Boom())
        with pytest.raises(RuntimeError, match="engine exploded"):
            frontend.call("bad", 1)
        shard = frontend.venues.shard_for("bad")
        assert registry.counter(
            "serving_queries_failed_total", shard=shard
        ).value == 1
        assert frontend.shard_saturation(shard) == 0.0

    def test_bare_server_is_a_valid_engine(self):
        frontend = ServingFrontend()
        server = _small_server()
        frontend.register_venue("office", server)
        rng = rng_for(5, "test-serving/query")
        take = rng.choice(server.num_mappings, size=16, replace=False)
        from repro.core import Fingerprint
        from repro.features.keypoint import KeypointSet

        descriptors = server.descriptors[np.sort(take)]
        n = len(descriptors)
        fingerprint = Fingerprint(
            keypoints=KeypointSet(
                positions=rng.uniform(50, 590, (n, 2)).astype(np.float32),
                scales=np.ones(n, np.float32),
                orientations=np.zeros(n, np.float32),
                responses=np.ones(n, np.float32),
                descriptors=descriptors.astype(np.float32),
            ),
            uniqueness_counts=np.zeros(n, dtype=np.int64),
        )
        answer = frontend.call("office", fingerprint)
        direct = server.localize(fingerprint)
        assert answer.pose == direct.pose
        assert answer.matched_points == direct.matched_points

    def test_add_shard_moves_minimally_and_keeps_serving(self):
        frontend = ServingFrontend(num_shards=2)
        engines = {f"v{i}": _Echo(f"v{i}") for i in range(12)}
        for name, engine in engines.items():
            frontend.register_venue(name, engine)
        before = {
            name: frontend.venues.shard_for(name) for name in engines
        }
        moved = frontend.add_shard()
        after = {name: frontend.venues.shard_for(name) for name in engines}
        assert sorted(moved) == sorted(
            name for name in engines if before[name] != after[name]
        )
        for name in moved:
            assert after[name] == "shard-2"
        results = frontend.map_many([(name, 1) for name in engines])
        assert results == [(name, 1) for name in engines]

    def test_remove_shard_drains_and_keeps_serving(self):
        frontend = ServingFrontend(num_shards=3)
        engines = {f"v{i}": _Echo(f"v{i}") for i in range(12)}
        for name, engine in engines.items():
            frontend.register_venue(name, engine)
        frontend.remove_shard("shard-1")
        assert "shard-1" not in frontend.venues.shard_ids
        results = frontend.map_many([(name, 2) for name in engines])
        assert results == [(name, 2) for name in engines]
        frontend.remove_shard("shard-0")
        with pytest.raises(ValueError):
            frontend.remove_shard("shard-2")

    def test_config_validation(self):
        with pytest.raises(ValueError):
            ServingFrontend(queue_depth=0)
        with pytest.raises(ValueError):
            ServingFrontend(admission="drop")

    def test_from_config(self):
        frontend = ServingFrontend.from_config(
            ServerConfig(num_shards=3, queue_depth=7, admission="reject")
        )
        assert frontend.venues.shard_ids == ["shard-0", "shard-1", "shard-2"]
        assert frontend.queue_depth == 7
        assert frontend.admission == "reject"
        assert not frontend.process_mode

    def test_process_mode_serves_and_merges_metrics(self):
        registry = MetricsRegistry()
        frontend = ServingFrontend(num_shards=2, workers=2, registry=registry)
        frontend.register_venue("a", EngineSpec(_build_echo, "a"))
        frontend.register_venue("b", EngineSpec(_build_echo, "b"))
        results = frontend.map_many([("a", 1), ("b", 2), ("a", 3)])
        assert results == [("a", 1), ("b", 2), ("a", 3)]
        frontend.close()
        served = sum(
            registry.counter("serving_queries_served_total", shard=s).value
            for s in ("shard-0", "shard-1")
        )
        assert served == 3

    def test_process_mode_rejects_attach_after_start(self):
        frontend = ServingFrontend(num_shards=1, workers=2)
        frontend.register_venue("a", EngineSpec(_build_echo, "a"))
        assert frontend.call("a", 1) == ("a", 1)
        with pytest.raises(RuntimeError, match="already started"):
            frontend.register_venue("b", EngineSpec(_build_echo, "b"))
        frontend.close()


class TestLoadSimulator:
    def test_throughput_scales_with_shards(self):
        service = [0.01] * 200
        one = simulate_shard_throughput(service, ShardLoadModel(1, queue_depth=200))
        four = simulate_shard_throughput(service, ShardLoadModel(4, queue_depth=200))
        assert one.served == four.served == 200
        assert four.queries_per_second >= 2.0 * one.queries_per_second
        assert four.utilization > 0.9

    def test_open_loop_sheds_beyond_queue_bound(self):
        # Offered load 10x one shard's capacity with a tiny queue: most
        # arrivals shed, served + shed accounts for every query.
        result = simulate_shard_throughput(
            [0.1] * 100,
            ShardLoadModel(1, queue_depth=2, interarrival_seconds=0.01),
        )
        assert result.shed > 0
        assert result.served + result.shed == 100

    def test_underload_has_no_waiting(self):
        result = simulate_shard_throughput(
            [0.01] * 50,
            ShardLoadModel(2, interarrival_seconds=1.0),
        )
        assert result.shed == 0
        assert result.mean_wait_seconds == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            ShardLoadModel(0)
        with pytest.raises(ValueError):
            ShardLoadModel(1, queue_depth=0)
        with pytest.raises(ValueError):
            simulate_shard_throughput([-1.0], ShardLoadModel(1))

    # -- accounting bugfix regressions (ISSUE 9 satellites) ------------

    def test_deque_backlog_matches_reference_accounting(self):
        """The deque rewrite preserves the exact shed/served pattern."""
        # Saturated single shard, hand-traced: with service 3.0, gap
        # 1.0, depth 1, every third arrival is served at its arrival
        # instant (the queue retires exactly then) and the two between
        # are shed.
        result = simulate_shard_throughput(
            [3.0] * 8, ShardLoadModel(1, queue_depth=1, interarrival_seconds=1.0)
        )
        assert result.served == 3  # queries 0, 3, 6
        assert result.shed == 5
        assert result.offered == 8
        assert result.wait_seconds_total == 0.0
        assert result.last_finish_seconds == 9.0

    def test_makespan_extends_to_last_offered_arrival(self):
        """qps divides by max(last_arrival, last_finish), not the served
        prefix's finish — a tail of offered-but-never-served arrivals
        (e.g. lost in the channel leg) must not inflate throughput."""
        arrivals = [float(i) for i in range(10)]
        service = [0.5] * 10
        # The channel swallows everything after t=2: offered load keeps
        # arriving until t=9 but nothing reaches a shard.
        lost = [False] * 3 + [True] * 7
        result, outcomes = simulate_queue_network(
            arrivals, service, [0] * 10, num_shards=1, queue_depth=4,
            abandoned=lost,
        )
        assert result.served == 3
        assert result.abandoned == 7
        assert result.offered == 10
        assert result.last_finish_seconds == 2.5
        assert result.last_arrival_seconds == 9.0
        assert result.makespan_seconds == 9.0
        assert result.queries_per_second == pytest.approx(3 / 9.0)
        # The pre-fix accounting would have reported served/last_finish.
        assert result.queries_per_second < result.served / result.last_finish_seconds
        assert outcomes == [QUERY_SERVED] * 3 + [QUERY_ABANDONED] * 7

    def test_saturation_locks_corrected_throughput_value(self):
        """Saturated run: the corrected qps value, locked by hand."""
        result = simulate_shard_throughput(
            [3.0] * 8, ShardLoadModel(1, queue_depth=1, interarrival_seconds=1.0)
        )
        # Served at t=0,3,6 finishing at 3,6,9; last arrival t=7.
        assert result.makespan_seconds == max(7.0, 9.0) == 9.0
        assert result.queries_per_second == pytest.approx(3 / 9.0)

    def test_overload_wait_accounting_exports_both_views(self):
        """Served-only mean wait *improves* as overload worsens (the
        survivor bias the offered count exposes)."""
        mild = simulate_shard_throughput(
            [1.0] * 60, ShardLoadModel(1, queue_depth=4, interarrival_seconds=0.5)
        )
        heavy = simulate_shard_throughput(
            [1.0] * 60, ShardLoadModel(1, queue_depth=4, interarrival_seconds=0.05)
        )
        assert heavy.shed_fraction > mild.shed_fraction > 0.0
        # The misleading direction the fix documents: heavier shedding,
        # *better-looking* served-only wait.
        assert heavy.mean_wait_seconds < mild.mean_wait_seconds
        for result in (mild, heavy):
            assert result.offered == 60 == result.served + result.shed
            assert result.mean_wait_seconds_offered <= result.mean_wait_seconds
            exported = result.as_dict()
            assert exported["offered"] == 60
            assert exported["mean_wait_seconds"] == result.mean_wait_seconds
            assert (
                exported["mean_wait_seconds_offered"]
                == result.mean_wait_seconds_offered
            )
            assert exported["shed_fraction"] == result.shed_fraction

    # -- the generalized queue-network entry point ---------------------

    def test_explicit_arrivals_validate_ordering_and_length(self):
        with pytest.raises(ValueError, match="sorted"):
            simulate_queue_network([1.0, 0.5], [0.1, 0.1], [0, 0], 1)
        with pytest.raises(ValueError, match="length"):
            simulate_queue_network([0.0], [0.1, 0.1], [0, 0], 1)
        with pytest.raises(ValueError):
            simulate_queue_network([0.0], [0.1], [0], 0)

    def test_fixed_gap_wrapper_matches_network_form(self):
        service = [0.03, 0.01, 0.07, 0.02] * 25
        model = ShardLoadModel(3, queue_depth=4, interarrival_seconds=0.01)
        via_wrapper = simulate_shard_throughput(service, model)
        arrivals = [i * 0.01 for i in range(len(service))]
        choices = [i % 3 for i in range(len(service))]
        via_network, _ = simulate_queue_network(
            arrivals, service, choices, 3, queue_depth=4
        )
        assert via_wrapper.as_dict() == via_network.as_dict()

    def test_replica_choices_join_shortest_queue(self):
        # Two shards, every query may use either: a long-running query
        # parks on shard 0 and the rest flow through shard 1 unshed.
        arrivals = [0.0, 0.1, 0.2, 0.3]
        service = [10.0, 0.05, 0.05, 0.05]
        choices = [(0, 1)] * 4
        result, outcomes = simulate_queue_network(
            arrivals, service, choices, 2, queue_depth=1
        )
        assert result.served == 4
        assert result.shed == 0
        assert outcomes == [QUERY_SERVED] * 4
        assert result.busy_seconds_per_shard[0] == pytest.approx(10.0)
        assert result.busy_seconds_per_shard[1] == pytest.approx(0.15)

    def test_single_candidate_sheds_where_replicas_absorb(self):
        arrivals = [0.0, 0.1, 0.2, 0.3]
        service = [10.0, 0.05, 0.05, 0.05]
        pinned, _ = simulate_queue_network(
            arrivals, service, [0] * 4, 2, queue_depth=1
        )
        replicated, _ = simulate_queue_network(
            arrivals, service, [(0, 1)] * 4, 2, queue_depth=1
        )
        assert pinned.shed == 3
        assert replicated.shed == 0
        assert replicated.queries_per_second > pinned.queries_per_second

    def test_observation_hooks_fire_in_arrival_order(self):
        seen_served = []
        seen_arrivals = []
        result, outcomes = simulate_queue_network(
            [0.0, 0.5, 0.6],
            [1.0, 1.0, 1.0],
            [0, 0, 0],
            1,
            queue_depth=1,
            on_served=lambda i, wait, finish: seen_served.append((i, wait, finish)),
            on_arrival=lambda i, shard, depth: seen_arrivals.append((i, shard, depth)),
        )
        assert outcomes == [QUERY_SERVED, QUERY_SHED, QUERY_SHED]
        assert seen_served == [(0, 0.0, 1.0)]
        assert seen_arrivals == [(0, 0, 0), (1, 0, 1), (2, 0, 1)]
        assert result.served == 1 and result.shed == 2


class TestServingParity:
    """fig13's retrieval path through the frontend is bit-identical."""

    @pytest.fixture(scope="class")
    def tiny_workload(self, tmp_path_factory):
        from repro.evaluation.datasets import build_workload

        return build_workload(
            seed=11,
            num_scenes=4,
            num_distractors=8,
            views_per_scene=2,
            image_size=128,
            cache_dir=tmp_path_factory.mktemp("serving-workload"),
        )

    def test_retrieval_through_frontend_matches_direct(self, tiny_workload):
        from repro.evaluation.retrieval import (
            build_oracle,
            build_scene_database,
            run_random,
            run_visualprint,
        )
        from repro.matching import LshMatcher

        database = build_scene_database(tiny_workload)
        oracle = build_oracle(tiny_workload)
        matcher = LshMatcher(database.descriptors)
        kwargs = dict(count=40, min_votes=4)

        direct = [
            run_random(tiny_workload, database, matcher, **kwargs),
            run_visualprint(tiny_workload, database, matcher, oracle, **kwargs),
        ]
        with ServingFrontend(num_shards=2) as frontend:
            served = [
                run_random(
                    tiny_workload, database, matcher, frontend=frontend, **kwargs
                ),
                run_visualprint(
                    tiny_workload,
                    database,
                    matcher,
                    oracle,
                    frontend=frontend,
                    **kwargs,
                ),
            ]
        for a, b in zip(direct, served):
            assert a.scheme == b.scheme
            np.testing.assert_array_equal(a.predicted_scenes, b.predicted_scenes)
            np.testing.assert_array_equal(a.uploaded_keypoints, b.uploaded_keypoints)


class TestServeCli:
    def test_bootstrap_and_serve(self, tmp_path, capsys):
        from repro.cli import main

        state = tmp_path / "venues"
        metrics_path = tmp_path / "metrics.json"
        assert (
            main(
                [
                    "serve",
                    "--state",
                    str(state),
                    "--bootstrap",
                    "2",
                    "--shards",
                    "2",
                    "--queries",
                    "4",
                    "--metrics-json",
                    str(metrics_path),
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "bootstrapped 2 venue(s)" in out
        assert "served 4 queries over 2 venue(s) on 2 shard(s)" in out
        assert metrics_path.exists()

    def test_serve_existing_state(self, tmp_path, capsys):
        from repro.cli import main

        state = tmp_path / "venues"
        assert main(["serve", "--state", str(state), "--bootstrap", "1"]) == 0
        capsys.readouterr()
        assert main(["serve", "--state", str(state), "--queries", "2"]) == 0
        out = capsys.readouterr().out
        assert "served 2 queries over 1 venue(s)" in out

    def test_serve_empty_state_exits_2(self, tmp_path, capsys):
        from repro.cli import main

        assert main(["serve", "--state", str(tmp_path / "nothing")]) == 2
        assert "no venues found" in capsys.readouterr().out


class TestShardDepthClamp:
    """Regression: saturation gauges must stay in [0, 1] and depth
    non-negative even if release accounting runs one extra time (the
    reject-path decrement hazard)."""

    def _state(self, frontend):
        return frontend._shards[frontend.venues.shard_ids[0]]

    def test_negative_depth_clamps_to_zero(self):
        registry = MetricsRegistry()
        frontend = ServingFrontend(queue_depth=4, registry=registry)
        state = self._state(frontend)
        state.set_depth(-1, frontend.queue_depth)
        assert state.depth == 0
        assert state.m_depth.value == 0.0
        assert state.m_saturation.value == 0.0

    def test_saturation_capped_at_one(self):
        registry = MetricsRegistry()
        frontend = ServingFrontend(queue_depth=2, registry=registry)
        state = self._state(frontend)
        state.set_depth(5, frontend.queue_depth)
        assert state.m_saturation.value == 1.0

    def test_zero_queue_depth_reports_zero_saturation(self):
        registry = MetricsRegistry()
        frontend = ServingFrontend(queue_depth=1, registry=registry)
        state = self._state(frontend)
        state.set_depth(1, 0)
        assert state.m_saturation.value == 0.0

    def test_double_release_after_reject_stays_consistent(self):
        registry = MetricsRegistry()
        frontend = ServingFrontend(
            queue_depth=2, admission="reject", registry=registry
        )
        frontend.register_venue("a", _Echo())
        shard = frontend.venues.shard_for("a")
        state = frontend._shards[shard]
        state.set_depth(2, frontend.queue_depth)
        with pytest.raises(ShardSaturatedError):
            frontend.call("a", 1)
        # One release per admission is correct; a stray extra decrement
        # (the historical double-release) must not push accounting
        # negative or break later serving.
        state.set_depth(state.depth - 1, frontend.queue_depth)
        state.set_depth(state.depth - 1, frontend.queue_depth)
        state.set_depth(state.depth - 1, frontend.queue_depth)
        assert state.depth == 0
        assert state.m_saturation.value == 0.0
        assert frontend.call("a", 2) == ("echo", 2)
        assert state.depth == 0
        assert registry.counter(
            "serving_queries_served_total", shard=shard
        ).value == 1


class TestReplication:
    """Successor-list replication: ring → registry → frontend routing."""

    def test_route_replicas_primary_first_and_distinct(self):
        ring = ConsistentHashRing(["s0", "s1", "s2", "s3"])
        for key in _KEYS:
            replicas = ring.route_replicas(key, 3)
            assert replicas[0] == ring.route(key)
            assert len(replicas) == 3
            assert len(set(replicas)) == 3

    def test_route_replicas_deterministic_across_instances(self):
        a = ConsistentHashRing(["s0", "s1", "s2", "s3"])
        b = ConsistentHashRing(["s3", "s1", "s0", "s2"])
        for key in _KEYS[:50]:
            assert a.route_replicas(key, 2) == b.route_replicas(key, 2)

    def test_route_replicas_caps_at_shard_count(self):
        ring = ConsistentHashRing(["s0", "s1"])
        replicas = ring.route_replicas("venue", 10)
        assert sorted(replicas) == ["s0", "s1"]

    def test_route_replicas_validation(self):
        ring = ConsistentHashRing(["s0"])
        with pytest.raises(ValueError):
            ring.route_replicas("venue", 0)
        with pytest.raises(KeyError):
            ConsistentHashRing().route_replicas("venue", 1)

    def test_registry_shards_for_matches_ring(self):
        registry = VenueRegistry(4, replication_factor=2)
        for key in _KEYS[:50]:
            replicas = registry.shards_for(key)
            assert replicas == registry.ring.route_replicas(key, 2)
            assert replicas[0] == registry.shard_for(key)

    def test_registry_placement_lists_every_replica(self):
        registry = VenueRegistry(4, replication_factor=2)
        names = _KEYS[:20]
        for name in names:
            registry.register(name, _Echo(name))
        placement = registry.placement()
        seen = [name for venues in placement.values() for name in venues]
        assert sorted(seen) == sorted(names * 2)
        for name in names:
            for shard in registry.shards_for(name):
                assert name in placement[shard]

    def test_registry_rf1_placement_unchanged(self):
        plain = VenueRegistry(4)
        replicated = VenueRegistry(4, replication_factor=1)
        for name in _KEYS[:20]:
            plain.register(name, _Echo(name))
            replicated.register(name, _Echo(name))
        assert plain.placement() == replicated.placement()

    def test_registry_validation(self):
        with pytest.raises(ValueError):
            VenueRegistry(2, replication_factor=0)

    def test_frontend_replicated_venue_served_from_every_replica(self):
        registry = MetricsRegistry()
        frontend = ServingFrontend(
            num_shards=4, replication_factor=2, registry=registry
        )
        frontend.register_venue("hot", _Echo())
        primary, secondary = frontend.venues.shards_for("hot")
        # Equal depth ties toward the primary.
        assert frontend.call("hot", 1) == ("echo", 1)
        assert registry.counter(
            "serving_queries_served_total", shard=primary
        ).value == 1
        # A loaded primary diverts the next query to the secondary.
        frontend._shards[primary].set_depth(5, frontend.queue_depth)
        assert frontend.call("hot", 2) == ("echo", 2)
        assert registry.counter(
            "serving_queries_served_total", shard=secondary
        ).value == 1

    def test_frontend_rf1_matches_default_routing(self):
        plain = ServingFrontend(num_shards=4, registry=MetricsRegistry())
        replicated = ServingFrontend(
            num_shards=4, replication_factor=1, registry=MetricsRegistry()
        )
        for name in _KEYS[:20]:
            assert plain.register_venue(name, _Echo(name)) == (
                replicated.register_venue(name, _Echo(name))
            )
        assert plain.placement() == replicated.placement()

    def test_from_config_carries_replication_factor(self):
        config = ServerConfig(num_shards=4, replication_factor=3)
        frontend = ServingFrontend.from_config(config, registry=MetricsRegistry())
        assert frontend.venues.replication_factor == 3
        assert len(frontend.venues.shards_for("anything")) == 3

    def test_add_shard_rebalances_replica_sets_and_keeps_serving(self):
        frontend = ServingFrontend(
            num_shards=3, replication_factor=2, registry=MetricsRegistry()
        )
        names = _KEYS[:30]
        for name in names:
            frontend.register_venue(name, _Echo(name))
        frontend.add_shard("shard-3")
        placement = frontend.placement()
        for name in names:
            for shard in frontend.venues.shards_for(name):
                assert name in placement[shard]
            assert frontend.call(name, name) == (name, name)

    def test_remove_shard_rebalances_replica_sets_and_keeps_serving(self):
        frontend = ServingFrontend(
            num_shards=4, replication_factor=2, registry=MetricsRegistry()
        )
        names = _KEYS[:30]
        for name in names:
            frontend.register_venue(name, _Echo(name))
        frontend.remove_shard("shard-1")
        placement = frontend.placement()
        assert "shard-1" not in placement
        for name in names:
            replicas = frontend.venues.shards_for(name)
            assert "shard-1" not in replicas
            for shard in replicas:
                assert name in placement[shard]
            assert frontend.call(name, name) == (name, name)

    def test_unregister_detaches_all_replicas(self):
        frontend = ServingFrontend(
            num_shards=4, replication_factor=2, registry=MetricsRegistry()
        )
        frontend.register_venue("hot", _Echo())
        frontend.unregister_venue("hot")
        placement = frontend.placement()
        assert all("hot" not in venues for venues in placement.values())
        with pytest.raises(KeyError):
            frontend.call("hot", 1)
