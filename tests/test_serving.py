"""Tests for the multi-venue serving layer (repro.serving).

Covers: consistent-hash placement (determinism, minimal remapping,
hypothesis round-trip of route→shard→venue), the venue registry's
per-venue save/load/refresh flows, frontend admission/routing/metrics
in inline and process modes, topology changes under live venues, the
discrete-event load simulator, retrieval-path parity through the
frontend, and the ``repro serve`` CLI.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    OracleRefresher,
    ServerConfig,
    UniquenessOracle,
    VisualPrintConfig,
    VisualPrintServer,
)
from repro.obs import MetricsRegistry
from repro.serving import (
    ConsistentHashRing,
    EngineSpec,
    ServingFrontend,
    ShardLoadModel,
    ShardSaturatedError,
    VenueRegistry,
    simulate_shard_throughput,
)
from repro.util.rng import rng_for
from repro.wardrive.environment import random_sift_descriptor

_KEYS = [f"venue-{index}" for index in range(200)]


def _small_server(seed: int = 3, count: int = 80) -> VisualPrintServer:
    rng = rng_for(seed, "test-serving/server")
    server = VisualPrintServer(
        VisualPrintConfig(descriptor_capacity=2048, fingerprint_size=10),
        bounds=(np.zeros(3), np.array([10.0, 10.0, 3.0])),
    )
    descriptors = np.array([random_sift_descriptor(rng) for _ in range(count)])
    server.ingest(descriptors, rng.uniform(0.0, 10.0, (count, 3)))
    return server


class _Echo:
    """Trivial engine: serve(payload) -> (tag, payload)."""

    def __init__(self, tag: str = "echo") -> None:
        self.tag = tag

    def serve(self, payload):
        return (self.tag, payload)


def _build_echo(tag: str) -> _Echo:
    return _Echo(tag)


class TestConsistentHashRing:
    def test_route_deterministic_across_instances(self):
        a = ConsistentHashRing(["s0", "s1", "s2"])
        b = ConsistentHashRing(["s2", "s0", "s1"])  # insertion order irrelevant
        assert [a.route(k) for k in _KEYS] == [b.route(k) for k in _KEYS]

    def test_seed_changes_placement(self):
        a = ConsistentHashRing(["s0", "s1", "s2"], seed=0)
        b = ConsistentHashRing(["s0", "s1", "s2"], seed=1)
        assert [a.route(k) for k in _KEYS] != [b.route(k) for k in _KEYS]

    def test_every_shard_gets_keys(self):
        ring = ConsistentHashRing(["s0", "s1", "s2", "s3"])
        placement = ring.placement(_KEYS)
        assert set(placement) == {"s0", "s1", "s2", "s3"}
        assert all(placement.values())
        assert sorted(sum(placement.values(), [])) == sorted(_KEYS)

    def test_add_shard_moves_only_arcs_of_new_shard(self):
        ring = ConsistentHashRing(["s0", "s1", "s2", "s3"])
        before = {k: ring.route(k) for k in _KEYS}
        ring.add_shard("s4")
        after = {k: ring.route(k) for k in _KEYS}
        moved = [k for k in _KEYS if before[k] != after[k]]
        assert moved, "a new shard must take over some keys"
        # Every moved key moved TO the new shard, and the churn is a
        # minority: roughly 1/5 of keys, far below a full reshuffle.
        assert all(after[k] == "s4" for k in moved)
        assert len(moved) < len(_KEYS) / 2

    def test_remove_shard_moves_only_its_keys(self):
        ring = ConsistentHashRing(["s0", "s1", "s2", "s3"])
        before = {k: ring.route(k) for k in _KEYS}
        ring.remove_shard("s2")
        after = {k: ring.route(k) for k in _KEYS}
        for key in _KEYS:
            if before[key] == "s2":
                assert after[key] != "s2"
            else:
                assert after[key] == before[key]

    def test_add_then_remove_restores_placement(self):
        ring = ConsistentHashRing(["s0", "s1"])
        before = {k: ring.route(k) for k in _KEYS}
        ring.add_shard("s2")
        ring.remove_shard("s2")
        assert {k: ring.route(k) for k in _KEYS} == before

    def test_validation(self):
        ring = ConsistentHashRing(["s0"])
        with pytest.raises(ValueError):
            ring.add_shard("s0")
        with pytest.raises(ValueError):
            ring.add_shard("")
        with pytest.raises(KeyError):
            ring.remove_shard("missing")
        with pytest.raises(ValueError):
            ConsistentHashRing(replicas=0)
        empty = ConsistentHashRing()
        with pytest.raises(KeyError):
            empty.route("anything")

    @given(
        names=st.lists(
            st.text(min_size=1, max_size=30), min_size=1, max_size=40, unique=True
        ),
        num_shards=st.integers(min_value=1, max_value=6),
        seed=st.integers(min_value=0, max_value=2**31),
    )
    @settings(max_examples=50, deadline=None)
    def test_route_shard_venue_round_trip(self, names, num_shards, seed):
        """route→shard→venue: placement inverts routing exactly."""
        registry = VenueRegistry(num_shards, seed=seed)
        for name in names:
            shard = registry.register(name, _Echo(name))
            assert shard == registry.ring.route(name) == registry.shard_for(name)
        placement = registry.placement()
        # Every venue appears exactly once, on the shard route() names.
        seen = [name for venues in placement.values() for name in venues]
        assert sorted(seen) == sorted(names)
        for shard, venues in placement.items():
            for name in venues:
                assert registry.shard_for(name) == shard


class TestVenueRegistry:
    def test_register_and_lookup(self):
        registry = VenueRegistry(2)
        engine = _Echo("a")
        shard = registry.register("a", engine)
        assert shard in registry.shard_ids
        assert registry.engine("a") is engine
        assert "a" in registry and len(registry) == 1
        with pytest.raises(ValueError):
            registry.register("a", engine)
        with pytest.raises(ValueError):
            registry.register("", engine)
        registry.unregister("a")
        with pytest.raises(KeyError):
            registry.engine("a")
        with pytest.raises(KeyError):
            registry.unregister("a")

    def test_save_load_round_trip(self, tmp_path):
        registry = VenueRegistry(2)
        server = _small_server()
        registry.register("office", server)
        generation = registry.save_venue("office", tmp_path)
        assert generation == 1

        restored = VenueRegistry(2)
        shard = restored.load_venue("office", tmp_path)
        assert shard == registry.shard_for("office")
        loaded = restored.engine("office")
        np.testing.assert_array_equal(
            loaded.oracle.counting.counters, server.oracle.counting.counters
        )
        np.testing.assert_array_equal(loaded.descriptors, server.descriptors)

    def test_spec_for_stored_venue_builds(self, tmp_path):
        registry = VenueRegistry(1)
        registry.register("office", _small_server())
        registry.save_venue("office", tmp_path)
        spec = registry.spec_for_stored_venue("office", tmp_path)
        assert isinstance(spec, EngineSpec)
        rebuilt = spec.build()
        assert rebuilt.num_mappings == registry.engine("office").num_mappings

    def test_refresh_venue_pulls_oracle(self):
        registry = VenueRegistry(1)
        server = _small_server()
        registry.register("office", server)
        client_oracle = UniquenessOracle(server.config)
        refresher = OracleRefresher(client_oracle)
        report = registry.refresh_venue("office", refresher)
        assert report.status == "applied"
        np.testing.assert_array_equal(
            client_oracle.counting.counters, server.oracle.counting.counters
        )

    def test_refresh_venue_rejects_non_server_engine(self):
        registry = VenueRegistry(1)
        registry.register("echo", _Echo())
        refresher = OracleRefresher(UniquenessOracle(VisualPrintConfig()))
        with pytest.raises(TypeError):
            registry.refresh_venue("echo", refresher)


class TestServingFrontend:
    def test_inline_results_match_direct_calls(self):
        registry = MetricsRegistry()
        frontend = ServingFrontend(num_shards=3, registry=registry)
        engines = {name: _Echo(name) for name in ("a", "b", "c", "d")}
        for name, engine in engines.items():
            frontend.register_venue(name, engine)
        items = [(name, index) for index in range(5) for name in engines]
        served = frontend.map_many(items)
        direct = [engines[name].serve(payload) for name, payload in items]
        assert served == direct
        frontend.close()

    def test_per_shard_accounting(self):
        registry = MetricsRegistry()
        frontend = ServingFrontend(num_shards=2, registry=registry)
        for name in ("a", "b", "c"):
            frontend.register_venue(name, _Echo(name))
        frontend.map_many([("a", 0), ("b", 1), ("c", 2), ("a", 3)])
        placement = frontend.placement()
        counts = {"a": 2, "b": 1, "c": 1}
        for shard_id, venues in placement.items():
            expected = sum(counts[name] for name in venues)
            served = registry.counter(
                "serving_queries_served_total", shard=shard_id
            ).value
            assert served == expected
            assert registry.gauge(
                "serving_shard_queue_depth", shard=shard_id
            ).value == 0
        assert registry.gauge("serving_venues").value == 3
        assert registry.gauge("serving_shards").value == 2
        assert registry.histogram("serving_queue_wait_seconds").count == 4

    def test_unknown_venue_fails_before_admission(self):
        registry = MetricsRegistry()
        frontend = ServingFrontend(registry=registry)
        with pytest.raises(KeyError):
            frontend.call("missing", 1)
        assert registry.counter(
            "serving_queries_admitted_total", shard="shard-0"
        ).value == 0

    def test_reject_admission_sheds_when_saturated(self):
        registry = MetricsRegistry()
        frontend = ServingFrontend(
            num_shards=1, queue_depth=2, admission="reject", registry=registry
        )
        frontend.register_venue("a", _Echo())
        shard = frontend.venues.shard_for("a")
        # Inline execution never overlaps, so saturate the queue
        # accounting directly to exercise the admission policy.
        state = frontend._shards[shard]
        state.set_depth(2, frontend.queue_depth)
        with pytest.raises(ShardSaturatedError) as err:
            frontend.call("a", 1)
        assert err.value.shard_id == shard
        assert registry.counter(
            "serving_queries_rejected_total", shard=shard
        ).value == 1
        state.set_depth(0, frontend.queue_depth)
        assert frontend.call("a", 1) == ("echo", 1)

    def test_engine_failure_counted_and_propagates(self):
        class Boom:
            def serve(self, payload):
                raise RuntimeError("engine exploded")

        registry = MetricsRegistry()
        frontend = ServingFrontend(registry=registry)
        frontend.register_venue("bad", Boom())
        with pytest.raises(RuntimeError, match="engine exploded"):
            frontend.call("bad", 1)
        shard = frontend.venues.shard_for("bad")
        assert registry.counter(
            "serving_queries_failed_total", shard=shard
        ).value == 1
        assert frontend.shard_saturation(shard) == 0.0

    def test_bare_server_is_a_valid_engine(self):
        frontend = ServingFrontend()
        server = _small_server()
        frontend.register_venue("office", server)
        rng = rng_for(5, "test-serving/query")
        take = rng.choice(server.num_mappings, size=16, replace=False)
        from repro.core import Fingerprint
        from repro.features.keypoint import KeypointSet

        descriptors = server.descriptors[np.sort(take)]
        n = len(descriptors)
        fingerprint = Fingerprint(
            keypoints=KeypointSet(
                positions=rng.uniform(50, 590, (n, 2)).astype(np.float32),
                scales=np.ones(n, np.float32),
                orientations=np.zeros(n, np.float32),
                responses=np.ones(n, np.float32),
                descriptors=descriptors.astype(np.float32),
            ),
            uniqueness_counts=np.zeros(n, dtype=np.int64),
        )
        answer = frontend.call("office", fingerprint)
        direct = server.localize(fingerprint)
        assert answer.pose == direct.pose
        assert answer.matched_points == direct.matched_points

    def test_add_shard_moves_minimally_and_keeps_serving(self):
        frontend = ServingFrontend(num_shards=2)
        engines = {f"v{i}": _Echo(f"v{i}") for i in range(12)}
        for name, engine in engines.items():
            frontend.register_venue(name, engine)
        before = {
            name: frontend.venues.shard_for(name) for name in engines
        }
        moved = frontend.add_shard()
        after = {name: frontend.venues.shard_for(name) for name in engines}
        assert sorted(moved) == sorted(
            name for name in engines if before[name] != after[name]
        )
        for name in moved:
            assert after[name] == "shard-2"
        results = frontend.map_many([(name, 1) for name in engines])
        assert results == [(name, 1) for name in engines]

    def test_remove_shard_drains_and_keeps_serving(self):
        frontend = ServingFrontend(num_shards=3)
        engines = {f"v{i}": _Echo(f"v{i}") for i in range(12)}
        for name, engine in engines.items():
            frontend.register_venue(name, engine)
        frontend.remove_shard("shard-1")
        assert "shard-1" not in frontend.venues.shard_ids
        results = frontend.map_many([(name, 2) for name in engines])
        assert results == [(name, 2) for name in engines]
        frontend.remove_shard("shard-0")
        with pytest.raises(ValueError):
            frontend.remove_shard("shard-2")

    def test_config_validation(self):
        with pytest.raises(ValueError):
            ServingFrontend(queue_depth=0)
        with pytest.raises(ValueError):
            ServingFrontend(admission="drop")

    def test_from_config(self):
        frontend = ServingFrontend.from_config(
            ServerConfig(num_shards=3, queue_depth=7, admission="reject")
        )
        assert frontend.venues.shard_ids == ["shard-0", "shard-1", "shard-2"]
        assert frontend.queue_depth == 7
        assert frontend.admission == "reject"
        assert not frontend.process_mode

    def test_process_mode_serves_and_merges_metrics(self):
        registry = MetricsRegistry()
        frontend = ServingFrontend(num_shards=2, workers=2, registry=registry)
        frontend.register_venue("a", EngineSpec(_build_echo, "a"))
        frontend.register_venue("b", EngineSpec(_build_echo, "b"))
        results = frontend.map_many([("a", 1), ("b", 2), ("a", 3)])
        assert results == [("a", 1), ("b", 2), ("a", 3)]
        frontend.close()
        served = sum(
            registry.counter("serving_queries_served_total", shard=s).value
            for s in ("shard-0", "shard-1")
        )
        assert served == 3

    def test_process_mode_rejects_attach_after_start(self):
        frontend = ServingFrontend(num_shards=1, workers=2)
        frontend.register_venue("a", EngineSpec(_build_echo, "a"))
        assert frontend.call("a", 1) == ("a", 1)
        with pytest.raises(RuntimeError, match="already started"):
            frontend.register_venue("b", EngineSpec(_build_echo, "b"))
        frontend.close()


class TestLoadSimulator:
    def test_throughput_scales_with_shards(self):
        service = [0.01] * 200
        one = simulate_shard_throughput(service, ShardLoadModel(1, queue_depth=200))
        four = simulate_shard_throughput(service, ShardLoadModel(4, queue_depth=200))
        assert one.served == four.served == 200
        assert four.queries_per_second >= 2.0 * one.queries_per_second
        assert four.utilization > 0.9

    def test_open_loop_sheds_beyond_queue_bound(self):
        # Offered load 10x one shard's capacity with a tiny queue: most
        # arrivals shed, served + shed accounts for every query.
        result = simulate_shard_throughput(
            [0.1] * 100,
            ShardLoadModel(1, queue_depth=2, interarrival_seconds=0.01),
        )
        assert result.shed > 0
        assert result.served + result.shed == 100

    def test_underload_has_no_waiting(self):
        result = simulate_shard_throughput(
            [0.01] * 50,
            ShardLoadModel(2, interarrival_seconds=1.0),
        )
        assert result.shed == 0
        assert result.mean_wait_seconds == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            ShardLoadModel(0)
        with pytest.raises(ValueError):
            ShardLoadModel(1, queue_depth=0)
        with pytest.raises(ValueError):
            simulate_shard_throughput([-1.0], ShardLoadModel(1))


class TestServingParity:
    """fig13's retrieval path through the frontend is bit-identical."""

    @pytest.fixture(scope="class")
    def tiny_workload(self, tmp_path_factory):
        from repro.evaluation.datasets import build_workload

        return build_workload(
            seed=11,
            num_scenes=4,
            num_distractors=8,
            views_per_scene=2,
            image_size=128,
            cache_dir=tmp_path_factory.mktemp("serving-workload"),
        )

    def test_retrieval_through_frontend_matches_direct(self, tiny_workload):
        from repro.evaluation.retrieval import (
            build_oracle,
            build_scene_database,
            run_random,
            run_visualprint,
        )
        from repro.matching import LshMatcher

        database = build_scene_database(tiny_workload)
        oracle = build_oracle(tiny_workload)
        matcher = LshMatcher(database.descriptors)
        kwargs = dict(count=40, min_votes=4)

        direct = [
            run_random(tiny_workload, database, matcher, **kwargs),
            run_visualprint(tiny_workload, database, matcher, oracle, **kwargs),
        ]
        with ServingFrontend(num_shards=2) as frontend:
            served = [
                run_random(
                    tiny_workload, database, matcher, frontend=frontend, **kwargs
                ),
                run_visualprint(
                    tiny_workload,
                    database,
                    matcher,
                    oracle,
                    frontend=frontend,
                    **kwargs,
                ),
            ]
        for a, b in zip(direct, served):
            assert a.scheme == b.scheme
            np.testing.assert_array_equal(a.predicted_scenes, b.predicted_scenes)
            np.testing.assert_array_equal(a.uploaded_keypoints, b.uploaded_keypoints)


class TestServeCli:
    def test_bootstrap_and_serve(self, tmp_path, capsys):
        from repro.cli import main

        state = tmp_path / "venues"
        metrics_path = tmp_path / "metrics.json"
        assert (
            main(
                [
                    "serve",
                    "--state",
                    str(state),
                    "--bootstrap",
                    "2",
                    "--shards",
                    "2",
                    "--queries",
                    "4",
                    "--metrics-json",
                    str(metrics_path),
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "bootstrapped 2 venue(s)" in out
        assert "served 4 queries over 2 venue(s) on 2 shard(s)" in out
        assert metrics_path.exists()

    def test_serve_existing_state(self, tmp_path, capsys):
        from repro.cli import main

        state = tmp_path / "venues"
        assert main(["serve", "--state", str(state), "--bootstrap", "1"]) == 0
        capsys.readouterr()
        assert main(["serve", "--state", str(state), "--queries", "2"]) == 0
        out = capsys.readouterr().out
        assert "served 2 queries over 1 venue(s)" in out

    def test_serve_empty_state_exits_2(self, tmp_path, capsys):
        from repro.cli import main

        assert main(["serve", "--state", str(tmp_path / "nothing")]) == 2
        assert "no venues found" in capsys.readouterr().out


class TestShardDepthClamp:
    """Regression: saturation gauges must stay in [0, 1] and depth
    non-negative even if release accounting runs one extra time (the
    reject-path decrement hazard)."""

    def _state(self, frontend):
        return frontend._shards[frontend.venues.shard_ids[0]]

    def test_negative_depth_clamps_to_zero(self):
        registry = MetricsRegistry()
        frontend = ServingFrontend(queue_depth=4, registry=registry)
        state = self._state(frontend)
        state.set_depth(-1, frontend.queue_depth)
        assert state.depth == 0
        assert state.m_depth.value == 0.0
        assert state.m_saturation.value == 0.0

    def test_saturation_capped_at_one(self):
        registry = MetricsRegistry()
        frontend = ServingFrontend(queue_depth=2, registry=registry)
        state = self._state(frontend)
        state.set_depth(5, frontend.queue_depth)
        assert state.m_saturation.value == 1.0

    def test_zero_queue_depth_reports_zero_saturation(self):
        registry = MetricsRegistry()
        frontend = ServingFrontend(queue_depth=1, registry=registry)
        state = self._state(frontend)
        state.set_depth(1, 0)
        assert state.m_saturation.value == 0.0

    def test_double_release_after_reject_stays_consistent(self):
        registry = MetricsRegistry()
        frontend = ServingFrontend(
            queue_depth=2, admission="reject", registry=registry
        )
        frontend.register_venue("a", _Echo())
        shard = frontend.venues.shard_for("a")
        state = frontend._shards[shard]
        state.set_depth(2, frontend.queue_depth)
        with pytest.raises(ShardSaturatedError):
            frontend.call("a", 1)
        # One release per admission is correct; a stray extra decrement
        # (the historical double-release) must not push accounting
        # negative or break later serving.
        state.set_depth(state.depth - 1, frontend.queue_depth)
        state.set_depth(state.depth - 1, frontend.queue_depth)
        state.set_depth(state.depth - 1, frontend.queue_depth)
        assert state.depth == 0
        assert state.m_saturation.value == 0.0
        assert frontend.call("a", 2) == ("echo", 2)
        assert state.depth == 0
        assert registry.counter(
            "serving_queries_served_total", shard=shard
        ).value == 1
