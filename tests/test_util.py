"""Unit tests for repro.util."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.util import (
    Stopwatch,
    check_in_range,
    check_positive,
    check_probability,
    check_shape,
    derive_seed,
    format_bytes,
    gzip_size,
    ndarray_nbytes,
    rng_for,
    spawn_children,
    time_call,
)


class TestRng:
    def test_same_seed_same_stream(self):
        a = rng_for(7, "x").random(5)
        b = rng_for(7, "x").random(5)
        assert np.array_equal(a, b)

    def test_different_names_differ(self):
        a = rng_for(7, "x").random(5)
        b = rng_for(7, "y").random(5)
        assert not np.array_equal(a, b)

    def test_different_seeds_differ(self):
        assert derive_seed(1, "x") != derive_seed(2, "x")

    def test_derive_seed_stable(self):
        assert derive_seed(7, "lsh") == derive_seed(7, "lsh")

    def test_spawn_children_count(self):
        children = spawn_children(3, "c", 4)
        assert len(children) == 4

    def test_spawn_children_independent(self):
        a, b = spawn_children(3, "c", 2)
        assert a.random() != b.random()

    def test_spawn_negative_raises(self):
        with pytest.raises(ValueError):
            spawn_children(1, "c", -1)

    @given(st.integers(min_value=0, max_value=2**31), st.text(max_size=20))
    def test_derive_seed_in_64bit_range(self, seed, name):
        value = derive_seed(seed, name)
        assert 0 <= value < 2**64


class TestSizes:
    def test_format_bytes_small(self):
        assert format_bytes(512) == "512 B"

    def test_format_bytes_kib(self):
        assert format_bytes(51.2 * 1024) == "51.2 KiB"

    def test_format_bytes_mib(self):
        assert format_bytes(10.5 * 1024 * 1024) == "10.5 MiB"

    def test_format_bytes_negative_raises(self):
        with pytest.raises(ValueError):
            format_bytes(-1)

    def test_gzip_size_compresses_redundancy(self):
        assert gzip_size(b"a" * 10_000) < 100

    def test_ndarray_nbytes_sums(self):
        a = np.zeros(10, dtype=np.float64)
        b = np.zeros(5, dtype=np.uint8)
        assert ndarray_nbytes(a, b) == 85


class TestTiming:
    def test_stopwatch_records(self):
        watch = Stopwatch()
        with watch.measure("stage"):
            pass
        assert watch.count("stage") == 1
        assert watch.total("stage") >= 0

    def test_stopwatch_accumulates(self):
        watch = Stopwatch()
        for _ in range(3):
            with watch.measure("s"):
                pass
        assert watch.count("s") == 3
        assert len(watch.samples("s")) == 3

    def test_record_negative_raises(self):
        with pytest.raises(ValueError):
            Stopwatch().record("s", -1.0)

    def test_time_call_returns_result(self):
        result, elapsed = time_call(lambda x: x * 2, 21)
        assert result == 42
        assert elapsed >= 0


class TestValidation:
    def test_check_positive_accepts(self):
        check_positive("x", 1.0)

    def test_check_positive_rejects_zero(self):
        with pytest.raises(ValueError, match="x"):
            check_positive("x", 0)

    def test_check_probability_bounds(self):
        check_probability("p", 0.0)
        check_probability("p", 1.0)
        with pytest.raises(ValueError):
            check_probability("p", 1.5)

    def test_check_in_range(self):
        check_in_range("v", 5, 0, 10)
        with pytest.raises(ValueError):
            check_in_range("v", 11, 0, 10)

    def test_check_shape_exact(self):
        check_shape("a", np.zeros((3, 2)), (3, 2))

    def test_check_shape_wildcard(self):
        check_shape("a", np.zeros((7, 2)), (None, 2))

    def test_check_shape_rejects_ndim(self):
        with pytest.raises(ValueError):
            check_shape("a", np.zeros(3), (3, 1))

    def test_check_shape_rejects_extent(self):
        with pytest.raises(ValueError):
            check_shape("a", np.zeros((3, 2)), (3, 5))
