"""Integration tests: full pipelines across subsystem boundaries."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import VisualPrintClient, VisualPrintConfig, VisualPrintServer
from repro.evaluation.datasets import build_workload
from repro.evaluation.retrieval import (
    build_oracle,
    build_scene_database,
    evaluate_scheme_cdfs,
    run_random,
    run_visualprint,
)
from repro.features.keypoint import KeypointSet
from repro.geometry import Pose
from repro.matching import LshMatcher
from repro.util.rng import rng_for
from repro.wardrive import DriftModel, IndoorEnvironment, TangoRig, WardriveSession
from repro.wardrive.session import lawnmower_path


@pytest.fixture(scope="module")
def tiny_workload(tmp_path_factory):
    return build_workload(
        seed=11,
        num_scenes=4,
        num_distractors=8,
        views_per_scene=2,
        image_size=128,
        cache_dir=tmp_path_factory.mktemp("workload"),
    )


class TestRetrievalPipeline:
    def test_visualprint_beats_random_or_ties(self, tiny_workload):
        database = build_scene_database(tiny_workload)
        oracle = build_oracle(tiny_workload)
        matcher = LshMatcher(database.descriptors)
        vp = run_visualprint(
            tiny_workload, database, matcher, oracle, count=40, min_votes=4
        )
        random_result = run_random(
            tiny_workload, database, matcher, count=40, min_votes=4
        )
        cdfs = evaluate_scheme_cdfs([vp, random_result], database)
        vp_recall = np.mean(cdfs["VisualPrint-40"]["recall"])
        random_recall = np.mean(cdfs["Random-40"]["recall"])
        assert vp_recall >= random_recall - 0.05

    def test_uploaded_counts_bounded(self, tiny_workload):
        database = build_scene_database(tiny_workload)
        oracle = build_oracle(tiny_workload)
        matcher = LshMatcher(database.descriptors)
        result = run_visualprint(
            tiny_workload, database, matcher, oracle, count=40, min_votes=4
        )
        assert (result.uploaded_keypoints <= 40).all()

    def test_workload_cache_roundtrip(self, tiny_workload, tmp_path):
        from repro.evaluation.datasets import _load_workload, _save_workload

        path = tmp_path / "wl.npz"
        _save_workload(path, tiny_workload)
        restored = _load_workload(path)
        assert restored.num_queries == tiny_workload.num_queries
        assert restored.num_database_descriptors == (
            tiny_workload.num_database_descriptors
        )
        assert np.array_equal(
            restored.query_keypoints[0].descriptors,
            tiny_workload.query_keypoints[0].descriptors,
        )


class TestLocalizationPipeline:
    @pytest.fixture(scope="class")
    def stack(self):
        """Wardrive a venue and stand up server + client."""
        environment = IndoorEnvironment.build("cafeteria", seed=21)
        session = WardriveSession(
            environment,
            seed=21,
            drift=DriftModel(scale=1.0),
            path=lawnmower_path(environment, spacing=6.0, step=2.5),
        )
        mapping = session.run(use_icp=True)
        config = VisualPrintConfig(
            descriptor_capacity=max(mapping.num_mappings, 1024), fingerprint_size=50
        )
        server = VisualPrintServer(config, bounds=environment.bounds)
        server.ingest(mapping.descriptors, mapping.positions)
        client = VisualPrintClient(server.publish_oracle(), config)
        return environment, server, client

    def _query(self, environment, pose, seed):
        rig = TangoRig(environment, seed=seed)
        ids, pixels, _ = rig.observe(pose)
        if ids.size < 8:
            return None
        rng = rng_for(seed, "integration-query")
        descriptors = np.clip(
            environment.descriptors[ids] + rng.normal(0, 3, (ids.size, 128)),
            0,
            255,
        ).astype(np.float32)
        return KeypointSet(
            positions=pixels.astype(np.float32),
            scales=np.ones(ids.size, np.float32),
            orientations=np.zeros(ids.size, np.float32),
            responses=np.ones(ids.size, np.float32),
            descriptors=descriptors,
        )

    def test_end_to_end_localization(self, stack):
        environment, server, client = stack
        true_pose = Pose(x=12.0, y=4.0, z=1.5, yaw=-np.pi / 2)
        keypoints = self._query(environment, true_pose, seed=31)
        assert keypoints is not None
        fingerprint = client.fingerprint_keypoints(keypoints)
        answer = server.localize(fingerprint)
        assert answer.matched_points > 0
        assert answer.pose.position_error(true_pose) < 3.0

    def test_fingerprint_prefers_unique_landmarks(self, stack):
        """The top of the uniqueness ranking must be enriched in
        genuinely unique landmarks relative to the full observation.

        The selection must be *selective* for the comparison to mean
        anything, so examine the top third of the ranking rather than a
        fingerprint that might keep nearly every keypoint.
        """
        environment, server, _ = stack
        pose = Pose(x=20.0, y=4.0, z=1.5, yaw=-np.pi / 2)
        rig = TangoRig(environment, seed=41)
        ids, _, _ = rig.observe(pose)
        if ids.size < 30:
            pytest.skip("pose sees too few landmarks")
        keypoints = self._query(environment, pose, seed=41)
        order = server.oracle.rank_by_uniqueness(keypoints.descriptors)
        top = max(10, ids.size // 3)
        selected_ids = ids[order[:top]]
        unique_fraction = environment.is_unique[selected_ids].mean()
        baseline = environment.is_unique[ids].mean()
        assert unique_fraction >= baseline

    def test_empty_fingerprint_falls_back(self, stack):
        environment, server, _ = stack
        from repro.core import Fingerprint

        empty = Fingerprint(
            keypoints=KeypointSet.empty(),
            uniqueness_counts=np.empty(0, dtype=np.int64),
        )
        answer = server.localize(empty)
        assert answer.matched_points == 0
        low, high = environment.bounds
        assert (answer.pose.position >= low).all()
        assert (answer.pose.position <= high).all()

    def test_oracle_download_is_compact(self, stack):
        _, server, _ = stack
        # The client download must be far below the raw descriptor data.
        raw_bytes = server.num_mappings * 128
        assert server.oracle_download_bytes() < raw_bytes

    def test_lookup_memory_exceeds_oracle(self, stack):
        _, server, _ = stack
        assert server.lookup_memory_bytes() > server.oracle_download_bytes()


class TestClientOverheadPipeline:
    def test_latency_split_shape(self, small_library):
        """Fig. 16's shape: SIFT extraction >> oracle ranking."""
        from repro.core import UniquenessOracle

        config = VisualPrintConfig(descriptor_capacity=50_000, fingerprint_size=50)
        oracle = UniquenessOracle(config)
        client = VisualPrintClient(oracle, config)
        keypoints = client.extract_keypoints(small_library.scene(0))
        if len(keypoints):
            oracle.insert(keypoints.descriptors)
        for view in range(2):
            client.process_frame(small_library.query_view(0, view))
        assert (
            client.latency_quantiles("sift")[0.5]
            > client.latency_quantiles("oracle")[0.5]
        )
