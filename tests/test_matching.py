"""Unit tests for the matching schemes and scene voting."""

from __future__ import annotations

import numpy as np
import pytest

from repro.features.keypoint import KeypointSet
from repro.matching import (
    BruteForceMatcher,
    LshMatcher,
    SceneDatabase,
    random_subselect,
    vote_scene,
)
from repro.util.rng import rng_for


@pytest.fixture(scope="module")
def database(descriptors_1k):
    return descriptors_1k.astype(np.float32)


class TestBruteForce:
    def test_self_query_exact(self, database):
        matcher = BruteForceMatcher(database)
        indices, distances = matcher.knn(database[:20], k=1)
        assert np.array_equal(indices[:, 0], np.arange(20))
        assert np.allclose(distances[:, 0], 0.0, atol=1e-4)

    def test_knn_ordering(self, database, rng):
        matcher = BruteForceMatcher(database)
        queries = database[:10] + rng.normal(0, 1, (10, 128)).astype(np.float32)
        _, distances = matcher.knn(queries, k=3)
        assert (np.diff(distances, axis=1) >= -1e-6).all()

    def test_ratio_test_rejects_ambiguous(self, rng):
        # Two identical database rows: NN and 2nd-NN tie, ratio test fails.
        row = rng.integers(0, 255, 128).astype(np.float32)
        db = np.vstack([row, row, row + 120])
        matcher = BruteForceMatcher(db)
        query_rows, _ = matcher.match(row[np.newaxis, :], ratio=0.8)
        assert query_rows.size == 0

    def test_ratio_test_accepts_distinct(self, database):
        matcher = BruteForceMatcher(database)
        query_rows, database_rows = matcher.match(database[:5], ratio=0.9)
        assert np.array_equal(database_rows, np.arange(5)[query_rows])

    def test_chunking_consistent(self, database):
        small_chunks = BruteForceMatcher(database, chunk_size=7)
        big_chunks = BruteForceMatcher(database, chunk_size=512)
        queries = database[:30]
        a, _ = small_chunks.knn(queries, k=2)
        b, _ = big_chunks.knn(queries, k=2)
        assert np.array_equal(a, b)

    def test_memory_accounting(self, database):
        matcher = BruteForceMatcher(database)
        assert matcher.memory_bytes() >= database.nbytes

    def test_empty_database(self):
        with pytest.raises(ValueError):
            BruteForceMatcher(np.zeros(128))


class TestLshMatcher:
    def test_agrees_with_bruteforce_mostly(self, database, rng):
        lsh = LshMatcher(database, seed=3)
        brute = BruteForceMatcher(database)
        queries = np.clip(
            database[:50] + rng.normal(0, 1.5, (50, 128)), 0, 255
        ).astype(np.float32)
        lsh_q, lsh_db = lsh.match(queries, ratio=0.9)
        brute_q, brute_db = brute.match(queries, ratio=0.9)
        brute_map = dict(zip(brute_q.tolist(), brute_db.tolist()))
        agree = sum(
            brute_map.get(q) == d for q, d in zip(lsh_q.tolist(), lsh_db.tolist())
        )
        assert agree >= 0.8 * max(len(lsh_q), 1)

    def test_memory_larger_than_descriptors(self, database):
        lsh = LshMatcher(database)
        assert lsh.memory_bytes() > database.nbytes

    def test_invalid_ratio(self, database):
        with pytest.raises(ValueError):
            LshMatcher(database).match(database[:1], ratio=0.0)


class TestRandomSubselect:
    def _keypoints(self, n):
        return KeypointSet(
            positions=np.zeros((n, 2), np.float32),
            scales=np.ones(n, np.float32),
            orientations=np.zeros(n, np.float32),
            responses=np.arange(n, dtype=np.float32),
            descriptors=np.zeros((n, 128), np.float32),
        )

    def test_count_respected(self):
        subset = random_subselect(self._keypoints(100), 30, rng_for(1, "r"))
        assert len(subset) == 30

    def test_no_duplicates(self):
        subset = random_subselect(self._keypoints(50), 50, rng_for(1, "r"))
        assert len(np.unique(subset.responses)) == 50

    def test_oversized_count_returns_all(self):
        keypoints = self._keypoints(10)
        assert random_subselect(keypoints, 100, rng_for(1, "r")) is keypoints

    def test_negative_count(self):
        with pytest.raises(ValueError):
            random_subselect(self._keypoints(5), -1, rng_for(1, "r"))


class TestVoting:
    def test_clear_winner(self):
        labels = np.array([3] * 20 + [5] * 2)
        outcome = vote_scene(labels, min_votes=8)
        assert outcome.predicted_scene == 3

    def test_below_min_votes_abstains(self):
        outcome = vote_scene(np.array([3] * 5), min_votes=8)
        assert outcome.predicted_scene == -1

    def test_margin_required(self):
        labels = np.array([3] * 10 + [5] * 9)
        outcome = vote_scene(labels, min_votes=8, min_margin=1.5)
        assert outcome.predicted_scene == -1

    def test_distractor_only_matches(self):
        outcome = vote_scene(np.array([-1] * 30), min_votes=8)
        assert outcome.predicted_scene == -1
        assert outcome.matched_keypoints == 30

    def test_empty(self):
        assert vote_scene(np.array([])).predicted_scene == -1

    def test_votes_recorded(self):
        outcome = vote_scene(np.array([1, 1, 2]), min_votes=1, min_margin=1.0)
        assert outcome.votes == {1: 2, 2: 1}


class TestSceneDatabase:
    def test_from_keypoint_sets(self):
        sets = []
        for n in (5, 7):
            sets.append(
                KeypointSet(
                    positions=np.zeros((n, 2), np.float32),
                    scales=np.ones(n, np.float32),
                    orientations=np.zeros(n, np.float32),
                    responses=np.zeros(n, np.float32),
                    descriptors=np.zeros((n, 128), np.float32),
                )
            )
        database = SceneDatabase.from_keypoint_sets(sets, [0, -1])
        assert database.size == 12
        assert (database.labels[:5] == 0).all()
        assert (database.labels[5:] == -1).all()
        assert database.scene_ids.tolist() == [0]

    def test_label_mismatch_rejected(self):
        with pytest.raises(ValueError):
            SceneDatabase.from_keypoint_sets([], [1])
