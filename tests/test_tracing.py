"""Tests for end-to-end query tracing (repro.obs tracing layer).

Covers: span identity and (de)serialization, context propagation across
the client / channel / oracle / server legs, Tracer root retention and
its drop counter, the TraceCollector state protocol, record_span's
simulated durations, cross-worker span ship-back through
``repro.parallel`` (workers=1 vs workers=2 parity on a real fig16 run),
the flight recorder's slowest-K retention, the Chrome trace-event and
NDJSON exporters (schema validation), and the metrics-diff perf gate —
as a library call and through the CLI with exit codes.
"""

from __future__ import annotations

import json
from collections import Counter as TallyCounter

import numpy as np
import pytest

from repro.cli import main
from repro.core import (
    UniquenessOracle,
    VisualPrintClient,
    VisualPrintConfig,
    VisualPrintServer,
)
from repro.evaluation.experiments import fig16_latency
from repro.network import UplinkChannel
from repro.obs import (
    FlightRecorder,
    MetricsRegistry,
    Span,
    TraceCollector,
    TraceContext,
    Tracer,
    chrome_trace_events,
    current_span,
    diff_metrics,
    format_trace,
    group_traces,
    isolated_trace_state,
    record_span,
    span_records,
    trace_span,
    use_collector,
    use_registry,
    use_trace_context,
    write_chrome_trace,
    write_ndjson,
)


def _finished_span(name: str, duration: float, **attrs) -> Span:
    span = Span(name)
    span.attributes.update(attrs)
    span.finish(duration_seconds=duration)
    return span


def _trace_with_duration(duration: float, tag: str):
    return group_traces([_finished_span("q", duration, tag=tag)])[0]


class TestSpanIdentity:
    def test_ids_unique_and_linked(self):
        tracer = Tracer()
        with tracer.span("frame") as frame:
            with tracer.span("sift") as sift:
                assert sift.trace_id == frame.trace_id
                assert sift.parent_id == frame.span_id
                assert sift.span_id != frame.span_id
        other = Tracer()
        with other.span("frame") as second:
            assert second.trace_id != frame.trace_id

    def test_context_property(self):
        span = _finished_span("frame", 0.1)
        context = span.context
        assert context == TraceContext(trace_id=span.trace_id, span_id=span.span_id)

    def test_dict_round_trip(self):
        tracer = Tracer()
        with tracer.span("frame", frame_index=3) as frame:
            with tracer.span("sift"):
                pass
            frame.set("kept", 20)
        rebuilt = Span.from_dict(frame.to_dict())
        assert rebuilt.trace_id == frame.trace_id
        assert rebuilt.span_id == frame.span_id
        assert rebuilt.attributes == {"frame_index": 3, "kept": 20}
        assert rebuilt.duration_seconds == pytest.approx(frame.duration_seconds)
        assert [c.name for c in rebuilt.children] == ["sift"]
        assert rebuilt.children[0].parent_id == frame.span_id
        assert rebuilt.start_unix == pytest.approx(frame.start_unix)

    def test_numpy_attributes_jsonable(self):
        span = _finished_span("q", 0.01, count=np.int64(7), score=np.float32(0.5))
        payload = json.dumps(span.to_dict())
        attrs = json.loads(payload)["attributes"]
        assert attrs["count"] == 7
        assert attrs["score"] == pytest.approx(0.5)

    def test_synthetic_finish(self):
        span = Span("transfer")
        span.finish(duration_seconds=2.5)
        assert span.finished
        assert span.duration_seconds == pytest.approx(2.5)
        assert span.end_unix == pytest.approx(span.start_unix + 2.5)


class TestPropagation:
    def test_ambient_context_links_new_roots(self):
        context = TraceContext(trace_id="t1", span_id="s1")
        collector = TraceCollector()
        with use_collector(collector):
            with use_trace_context(context):
                with trace_span("localize") as span:
                    pass
        assert span.trace_id == "t1"
        assert span.parent_id == "s1"
        assert collector.roots == [span]

    def test_none_context_is_noop(self):
        with use_trace_context(None):
            with trace_span("q") as span:
                pass
        assert span.parent_id is None

    def test_active_span_wins_over_ambient_context(self):
        with use_trace_context(TraceContext(trace_id="t1", span_id="s1")):
            with trace_span("outer") as outer:
                with trace_span("inner") as inner:
                    pass
        assert outer.trace_id == "t1"
        assert inner.parent_id == outer.span_id
        assert inner.trace_id == "t1"

    def test_isolated_trace_state(self):
        with trace_span("outer") as outer:
            with isolated_trace_state():
                assert current_span() is None
                with trace_span("orphan") as orphan:
                    pass
            assert current_span() is outer
        assert orphan.trace_id != outer.trace_id
        assert orphan.parent_id is None

    def test_span_duration_histogram_mirrored(self):
        registry = MetricsRegistry()
        with use_registry(registry):
            with trace_span("oracle.lookup_batch"):
                pass
        assert registry.histogram("span_oracle_lookup_batch_seconds").count == 1


class TestTracerRetention:
    def test_roots_bounded_and_drops_counted(self):
        registry = MetricsRegistry()
        tracer = Tracer(registry, max_retained_roots=3)
        for index in range(5):
            with tracer.span("frame", frame_index=index):
                pass
        assert len(tracer.roots) == 3
        assert [r.attributes["frame_index"] for r in tracer.roots] == [2, 3, 4]
        assert tracer.roots_dropped == 2
        assert registry.counter("tracer_roots_dropped_total").value == 2

    def test_collector_still_sees_dropped_roots(self):
        collector = TraceCollector()
        tracer = Tracer(max_retained_roots=1)
        with use_collector(collector):
            for _ in range(4):
                with tracer.span("frame"):
                    pass
        assert len(collector.roots) == 4


class TestRecordSpan:
    def test_no_consumer_returns_none(self):
        assert record_span("network.transfer", 0.5) is None

    def test_collector_receives_synthetic_root(self):
        collector = TraceCollector()
        with use_collector(collector):
            span = record_span("network.transfer", 0.5, bytes=100)
        assert span is not None
        assert collector.roots == [span]
        assert span.duration_seconds == pytest.approx(0.5)

    def test_synthetic_child_extends_trace_extent(self):
        collector = TraceCollector()
        with use_collector(collector):
            with trace_span("query"):
                record_span("network.transfer", 1.5)
        trace = collector.traces()[0]
        assert trace.duration_seconds >= 1.5


class TestTraceCollector:
    def test_groups_by_trace_id(self):
        collector = TraceCollector()
        with use_collector(collector):
            with trace_span("frame") as frame:
                pass
            with use_trace_context(frame.context):
                record_span("network.transfer", 0.1)
            with trace_span("frame"):
                pass
        traces = collector.traces()
        assert len(traces) == 2  # the transfer joined the first frame
        assert {root.name for root in traces[0].roots} == {
            "frame",
            "network.transfer",
        }

    def test_bounded_with_drop_counter(self):
        registry = MetricsRegistry()
        collector = TraceCollector(registry=registry, max_roots=2)
        for index in range(5):
            collector.collect(_finished_span("q", 0.01, index=index))
        assert len(collector.roots) == 2
        assert collector.roots_dropped == 3
        assert registry.counter("trace_collector_roots_dropped_total").value == 3

    def test_state_round_trip(self):
        source = TraceCollector()
        with use_collector(source):
            with trace_span("frame", frame_index=1):
                with trace_span("sift"):
                    pass
        target = TraceCollector()
        target.merge_state(source.state())
        assert len(target.roots) == 1
        rebuilt = target.roots[0]
        assert rebuilt.trace_id == source.roots[0].trace_id
        assert [c.name for c in rebuilt.children] == ["sift"]
        assert target.state() == source.state()


class TestEndToEndTrace:
    """One query = one trace_id across client, channel, oracle, server."""

    def test_single_trace_id_across_all_legs(self, small_library):
        config = VisualPrintConfig(descriptor_capacity=50_000, fingerprint_size=20)
        registry = MetricsRegistry()
        oracle = UniquenessOracle(config, registry=registry)
        server = VisualPrintServer(config=config, registry=registry)
        client = VisualPrintClient(oracle, config, registry=registry)
        rng = np.random.default_rng(3)

        collector = TraceCollector(registry=registry)
        with use_collector(collector):
            # Wardrive one scene into both oracle and server.
            seed_keypoints = client.extract_keypoints(small_library.scene(0))
            oracle.insert(seed_keypoints.descriptors)
            server.ingest(
                seed_keypoints.descriptors,
                rng.uniform(0, 5, size=(len(seed_keypoints), 3)),
            )
            collector.clear()  # keep only the query's trace

            fingerprint = client.process_frame(small_library.query_view(0, 0))
            context = client.tracer.last_context()
            channel = UplinkChannel("t", bandwidth_mbps=8.0, jitter_sigma=0.0)
            with use_trace_context(context):
                channel.transfer_seconds(fingerprint.upload_bytes)
                oracle.lookup_batch(fingerprint.keypoints.descriptors[:4])
                server.localize(fingerprint)

        names = {root.name for root in collector.roots}
        assert names == {"frame", "network.transfer", "oracle.lookup_batch", "localize"}
        traces = collector.traces()
        assert len(traces) == 1  # every leg shares the frame's trace_id
        assert traces[0].trace_id == context.trace_id
        frame_root = next(r for r in collector.roots if r.name == "frame")
        assert [c.name for c in frame_root.children] == ["sift", "oracle", "serialize"]
        for root in collector.roots:
            if root is not frame_root:
                assert root.parent_id == context.span_id


def _fig16_roots(workers: int):
    collector = TraceCollector()
    with use_collector(collector):
        fig16_latency.run(
            seed=5,
            num_frames=4,
            image_size=128,
            fingerprint_size=20,
            workers=workers,
        )
    return collector


class TestPoolTraceShipBack:
    def test_workers_parity(self):
        serial = _fig16_roots(workers=1)
        pooled = _fig16_roots(workers=2)

        def summary(collector):
            return TallyCounter(
                (root.name, root.attributes.get("frame_index"))
                for root in collector.roots
            )

        assert summary(serial) == summary(pooled)
        for collector in (serial, pooled):
            frames = [r for r in collector.roots if r.name == "frame"]
            transfers = [r for r in collector.roots if r.name == "network.transfer"]
            assert len(frames) == 4
            assert len(transfers) == 4
            for frame in frames:
                assert [c.name for c in frame.children] == [
                    "sift",
                    "oracle",
                    "serialize",
                ]
                # Worker-produced roots carry their provenance labels.
                assert "worker" in frame.attributes
                assert "shard" in frame.attributes
            # Each parent-side transfer joined a worker-produced frame.
            assert {t.trace_id for t in transfers} == {f.trace_id for f in frames}
        assert {r.attributes["shard"] for r in pooled.roots if r.name == "frame"} == {
            0,
            1,
        }


class TestFlightRecorder:
    def test_keeps_slowest_k(self):
        registry = MetricsRegistry()
        recorder = FlightRecorder(2, registry=registry)
        for duration, tag in [(0.1, "a"), (0.5, "b"), (0.05, "c"), (0.3, "d")]:
            recorder.observe(_trace_with_duration(duration, tag))
        kept = recorder.slowest()
        assert [t.roots[0].attributes["tag"] for t in kept] == ["b", "d"]
        assert kept[0].duration_seconds >= kept[1].duration_seconds
        assert recorder.evicted == 2
        assert registry.counter("flight_recorder_evicted_total").value == 2

    def test_capacity_validated(self):
        with pytest.raises(ValueError):
            FlightRecorder(0)

    def test_dump_mentions_traces(self):
        recorder = FlightRecorder(3)
        trace = _trace_with_duration(0.2, "x")
        recorder.observe(trace)
        dump = recorder.dump()
        assert trace.trace_id in dump
        assert "1/3 traces retained" in dump
        assert trace.trace_id in format_trace(trace)

    def test_to_dict_round_trips_json(self):
        recorder = FlightRecorder(2)
        recorder.observe_all([_trace_with_duration(0.1, "a")])
        payload = json.loads(json.dumps(recorder.to_dict()))
        assert payload["capacity"] == 2
        assert len(payload["traces"]) == 1


class TestExporters:
    def _sample_roots(self):
        collector = TraceCollector()
        with use_collector(collector):
            with trace_span("frame", frame_index=0) as frame:
                with trace_span("sift"):
                    pass
            with use_trace_context(frame.context):
                record_span("network.transfer", 0.25, bytes=512)
        return collector.roots

    def test_chrome_events_schema(self):
        events = chrome_trace_events(self._sample_roots())
        assert len(events) == 3
        for event in events:
            assert event["ph"] == "X"
            assert isinstance(event["ts"], float) and event["ts"] >= 0.0
            assert isinstance(event["dur"], float) and event["dur"] >= 0.0
            assert isinstance(event["pid"], int)
            assert isinstance(event["tid"], int)
            assert event["args"]["trace_id"]
            assert event["args"]["span_id"]
        # One query => one tid lane.
        assert len({event["tid"] for event in events}) == 1
        transfer = next(e for e in events if e["name"] == "network.transfer")
        assert transfer["dur"] == pytest.approx(250_000.0)  # microseconds

    def test_write_chrome_trace_file(self, tmp_path):
        path = tmp_path / "trace.json"
        write_chrome_trace(self._sample_roots(), str(path))
        payload = json.loads(path.read_text())
        assert isinstance(payload["traceEvents"], list)
        assert payload["displayTimeUnit"] == "ms"
        assert payload["metadata"]["base_unix_seconds"] > 0

    def test_empty_chrome_trace(self, tmp_path):
        assert chrome_trace_events([]) == []
        path = tmp_path / "empty.json"
        write_chrome_trace([], str(path))
        assert json.loads(path.read_text())["traceEvents"] == []

    def test_ndjson_lines(self, tmp_path):
        path = tmp_path / "spans.ndjson"
        roots = self._sample_roots()
        write_ndjson(roots, str(path))
        lines = [json.loads(line) for line in path.read_text().splitlines()]
        assert len(lines) == len(span_records(roots)) == 3
        assert all(line["type"] == "span" for line in lines)
        assert all("children" not in line for line in lines)
        assert {line["name"] for line in lines} == {
            "frame",
            "sift",
            "network.transfer",
        }


def _snapshot(**counters) -> dict:
    return {
        "counters": {
            name: {"value": value, "labels": {}} for name, value in counters.items()
        },
        "gauges": {},
        "histograms": {},
    }


class TestMetricsDiff:
    def test_identical_snapshots_pass(self):
        registry = MetricsRegistry()
        registry.counter("a").inc(5)
        registry.histogram("h").observe(1.0)
        snapshot = registry.to_dict()
        checked, violations = diff_metrics(snapshot, snapshot)
        assert checked == 2  # counter value + histogram count
        assert violations == []

    def test_regression_detected(self):
        checked, violations = diff_metrics(
            _snapshot(frames=100), _snapshot(frames=10), rel_tol=0.25
        )
        assert checked == 1
        assert len(violations) == 1
        assert violations[0].name == "frames"
        assert "frames" in violations[0].describe()

    def test_missing_metric_is_violation(self):
        _, violations = diff_metrics(_snapshot(frames=100), _snapshot())
        assert len(violations) == 1
        assert violations[0].current is None

    def test_within_tolerance_passes(self):
        _, violations = diff_metrics(
            _snapshot(frames=100), _snapshot(frames=110), rel_tol=0.25
        )
        assert violations == []

    def test_extra_current_metrics_ignored(self):
        _, violations = diff_metrics(
            _snapshot(frames=100), _snapshot(frames=100, extra=7)
        )
        assert violations == []

    def test_include_globs(self):
        checked, violations = diff_metrics(
            _snapshot(oracle_lookups=10, client_frames=5),
            _snapshot(oracle_lookups=10, client_frames=500),
            include=["oracle_*"],
        )
        assert checked == 1
        assert violations == []

    def test_negative_tolerance_rejected(self):
        with pytest.raises(ValueError):
            diff_metrics(_snapshot(), _snapshot(), rel_tol=-1.0)


class TestMetricsDiffCli:
    def _write(self, tmp_path, name, **counters):
        path = tmp_path / name
        path.write_text(json.dumps(_snapshot(**counters)))
        return str(path)

    def test_identical_exits_zero(self, tmp_path, capsys):
        base = self._write(tmp_path, "base.json", frames=20)
        assert main(["metrics-diff", base, base]) == 0
        assert "OK" in capsys.readouterr().out

    def test_regression_exits_nonzero(self, tmp_path, capsys):
        base = self._write(tmp_path, "base.json", frames=100)
        cur = self._write(tmp_path, "cur.json", frames=1)
        assert main(["metrics-diff", base, cur]) == 1
        out = capsys.readouterr().out
        assert "FAIL" in out
        assert "frames" in out

    def test_tolerance_flags(self, tmp_path):
        base = self._write(tmp_path, "base.json", frames=100)
        cur = self._write(tmp_path, "cur.json", frames=1)
        assert main(["metrics-diff", base, cur, "--abs-tol", "1000"]) == 0
        assert (
            main(["metrics-diff", base, cur, "--include", "nonexistent_*"]) == 0
        )


class TestCliTraceFlags:
    def test_fig16_trace_artifacts(self, tmp_path, capsys):
        trace_path = tmp_path / "trace.json"
        ndjson_path = tmp_path / "spans.ndjson"
        metrics_path = tmp_path / "metrics.json"
        assert (
            main(
                [
                    "fig16",
                    "--fast",
                    "--trace-out",
                    str(trace_path),
                    "--trace-ndjson",
                    str(ndjson_path),
                    "--flight-recorder",
                    "3",
                    "--metrics-json",
                    str(metrics_path),
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "flight recorder" in out
        assert "chrome trace" in out

        payload = json.loads(trace_path.read_text())
        events = payload["traceEvents"]
        assert events
        # Acceptance: one correlated trace per query — every frame's
        # trace_id also carries its channel transfer (and vice versa).
        by_trace: dict[str, set] = {}
        for event in events:
            assert event["ph"] == "X"
            by_trace.setdefault(event["args"]["trace_id"], set()).add(event["name"])
        frame_traces = [names for names in by_trace.values() if "frame" in names]
        assert len(frame_traces) == 6  # --fast fig16 runs 6 frames
        for names in frame_traces:
            assert {"frame", "sift", "oracle", "serialize", "network.transfer"} <= names

        lines = [json.loads(line) for line in ndjson_path.read_text().splitlines()]
        assert len(lines) == len(events)

        snapshot = json.loads(metrics_path.read_text())
        assert "span_frame_seconds" in snapshot["histograms"]
        assert "network_transfer_seconds" in str(snapshot)
