"""Predictive link layer: estimator inference, policy decisions, wiring.

The load-bearing properties:

* the Gilbert–Elliott run-length MLE recovers a ``FaultyChannel``'s true
  ``outage_enter`` / ``outage_exit`` from a long seeded attempt trace
  (hypothesis property), and a null-spec channel drives the posterior
  to the good state;
* the decision table maps predicted failure probability to entry rung /
  retry budget / backoff scaling exactly as DESIGN.md §15 specifies;
* path selection is hysteretic — flapping is bounded by the dwell
  window even under adversarially alternating scores;
* :func:`submit_payload` returns a :class:`TransferOutcome` whose
  legacy scalar properties reproduce the old ``SubmissionOutcome``
  shape, and ``FaultyChannel`` emits outage-transition events;
* the adaptive experiment improves wasted bytes deterministically.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.network import (
    CHANNEL_PRESETS,
    AdaptiveConfig,
    AdaptiveOffloadPolicy,
    AttemptRecord,
    FaultSpec,
    FaultyChannel,
    LinkQualityEstimator,
    RetryPolicy,
    SubmissionOutcome,
    TransferError,
    TransferOutcome,
    UplinkChannel,
    submit_payload,
)
from repro.obs import EventLog, MetricsRegistry, use_event_log, use_registry
from repro.util.rng import rng_for


def _channel() -> UplinkChannel:
    # Jitterless: 1 Mbps => 125 kB/s, 40 ms RTT => 0.02 s half-RTT.
    return UplinkChannel("t", bandwidth_mbps=1.0, rtt_ms=40.0, jitter_sigma=0.0)


def _drive(channel: FaultyChannel, attempts: int, num_bytes: int = 1000) -> None:
    """Push ``attempts`` uplink attempts through, swallowing faults."""
    for _ in range(attempts):
        try:
            channel.transfer_seconds(num_bytes)
        except TransferError:
            pass


class TestLinkQualityEstimator:
    def test_starts_at_priors(self):
        est = LinkQualityEstimator("t", AdaptiveConfig(prior_loss=0.1))
        assert est.confidence == 0.0
        assert est.loss_rate == pytest.approx(0.1)
        assert est.outage_exit_hat == pytest.approx(0.3)
        assert est.failure_probability == pytest.approx(0.1)
        assert est.attempts_observed == 0

    def test_loss_ewma_tracks_all_loss(self):
        est = LinkQualityEstimator("t")
        for _ in range(200):
            est.observe_attempt("loss", 1000, 0.03)
        assert est.loss_rate > 0.9
        assert est.failure_probability > 0.9

    def test_loss_ewma_ignores_outage_attempts(self):
        # Losses are conditioned on the good state: a burst of outage
        # probes must not dilute (or inflate) the loss estimate.
        est = LinkQualityEstimator("t")
        for _ in range(50):
            est.observe_attempt("loss", 1000, 0.03)
        before = est._loss_ewma
        for _ in range(50):
            est.observe_attempt("outage", 1000, 0.04)
        assert est._loss_ewma == before

    def test_throughput_and_rtt_from_attempts(self):
        est = LinkQualityEstimator("t")
        for _ in range(50):
            est.observe_attempt("ok", 125_000, 1.0)  # 125 kB/s
            est.observe_attempt("outage", 1000, 0.04)  # one 40 ms RTT
        # The public estimate is confidence-blended toward the prior
        # (0 here); the underlying EWMA should have converged exactly.
        assert est._throughput_ewma == pytest.approx(125_000, rel=0.01)
        assert est.throughput_bps == pytest.approx(
            est.confidence * 125_000, rel=0.01
        )
        assert est.rtt_seconds == pytest.approx(0.04)

    def test_confidence_decays_over_idle_time(self):
        config = AdaptiveConfig(confidence_halflife_seconds=10.0)
        est = LinkQualityEstimator("t", config)
        for _ in range(100):
            est.observe_attempt("ok", 1000, 0.01)
        fresh = est.confidence
        est.advance(10.0)
        assert est.confidence == pytest.approx(fresh / 2, rel=1e-6)
        est.advance(100.0)
        assert est.confidence < 0.01

    def test_idle_decay_blends_toward_stationary(self):
        est = LinkQualityEstimator("t")
        # Learn an always-bad chain, then go idle: the conditional
        # prediction (still bad) must fade toward the stationary mix.
        est.observe_attempt("outage", 1000, 0.04)
        for _ in range(100):
            est.observe_attempt("outage", 1000, 0.04)
        assert est.in_outage
        conditional = est.outage_probability
        est.advance(1e6)
        assert est.outage_probability == pytest.approx(
            est.stationary_outage_probability, abs=1e-6
        )
        assert conditional >= est.outage_probability

    def test_null_channel_drives_posterior_good(self):
        channel = FaultyChannel(_channel(), FaultSpec())
        est = LinkQualityEstimator("t")
        channel.add_observer(est)
        _drive(channel, 300)
        assert not est.in_outage
        assert est.outage_enter_hat == 0.0
        assert est.outage_probability == 0.0
        assert est.failure_probability < 0.01
        assert est.loss_rate < 0.01

    def test_estimator_consumes_no_rng(self):
        # Wrapping a faulty run with an observer must not perturb the
        # seeded fault pattern: same seed, same latency sequence.
        def trace(with_observer: bool) -> list[float]:
            channel = FaultyChannel(
                _channel(), FaultSpec(loss=0.3, outage_enter=0.1, seed=5)
            )
            if with_observer:
                channel.add_observer(LinkQualityEstimator("t"))
            out = []
            for _ in range(100):
                try:
                    out.append(channel.transfer_seconds(1000))
                except TransferError as fault:
                    out.append(-fault.elapsed_seconds)
            return out

        assert trace(False) == trace(True)

    def test_snapshot_is_plain_scalars(self):
        est = LinkQualityEstimator("t")
        est.observe_attempt("ok", 1000, 0.01)
        snapshot = est.snapshot()
        assert snapshot["channel"] == "t"
        assert snapshot["attempts"] == 1
        assert all(
            isinstance(value, (int, float, bool, str))
            for value in snapshot.values()
        )

    @given(
        enter=st.floats(min_value=0.05, max_value=0.4),
        exit_=st.floats(min_value=0.2, max_value=0.9),
        seed=st.integers(min_value=0, max_value=2**31 - 1),
    )
    @settings(max_examples=25, deadline=None)
    def test_recovers_gilbert_elliott_rates(self, enter, exit_, seed):
        """The run-length MLE lands near the channel's true transition
        probabilities given a long observed attempt trace."""
        channel = FaultyChannel(
            _channel(),
            FaultSpec(outage_enter=enter, outage_exit=exit_, seed=seed),
        )
        est = LinkQualityEstimator("t")
        channel.add_observer(est)
        _drive(channel, 4000)
        # Standard error of a binomial rate at ~4000 trials split across
        # the two states; loose 3-sigma-ish envelopes.
        assert est.outage_enter_hat == pytest.approx(enter, abs=0.08)
        assert est.outage_exit_hat == pytest.approx(exit_, abs=0.15)

    def test_validation(self):
        est = LinkQualityEstimator("t")
        with pytest.raises(ValueError):
            est.advance(-1.0)
        with pytest.raises(ValueError):
            AdaptiveConfig(shade_threshold=0.8, floor_threshold=0.5)
        with pytest.raises(ValueError):
            AdaptiveConfig(ewma_alpha=0.0)
        with pytest.raises(ValueError):
            AdaptiveConfig(probe_backoff_scale=0.5)


def _estimator_at(policy: AdaptiveOffloadPolicy, channel, p_loss: float) -> None:
    """Saturate the channel's estimator at a target loss probability."""
    est = policy.estimator_for(channel)
    for _ in range(500):
        if p_loss in (0.0, 1.0):
            est.observe_attempt("loss" if p_loss else "ok", 1000, 0.01)
        else:
            # Deterministic dithering toward the target rate.
            current = est._loss_ewma or 0.0
            est.observe_attempt(
                "loss" if current < p_loss else "ok", 1000, 0.01
            )


class TestDecisionTable:
    def test_healthy_link_goes_full(self):
        policy = AdaptiveOffloadPolicy()
        channel = _channel()
        _estimator_at(policy, channel, 0.0)
        decision = policy.decide(channel, ladder_rungs=3)
        assert decision.action == "full"
        assert decision.entry_rung == 0
        assert decision.extra_attempts == 0
        assert decision.backoff_scale == 1.0
        assert decision.channel is channel
        assert decision.adapt_retry_policy(RetryPolicy()) == RetryPolicy()

    def test_moderate_loss_shades_one_rung(self):
        policy = AdaptiveOffloadPolicy()
        channel = _channel()
        _estimator_at(policy, channel, 0.3)
        decision = policy.decide(channel, ladder_rungs=3)
        assert decision.action == "shade"
        assert decision.entry_rung == 1
        assert decision.extra_attempts == 2

    def test_heavy_loss_floors(self):
        policy = AdaptiveOffloadPolicy()
        channel = _channel()
        _estimator_at(policy, channel, 0.55)
        decision = policy.decide(channel, ladder_rungs=3)
        assert decision.action == "floor"
        assert decision.entry_rung == 2
        assert decision.backoff_scale == 1.0

    def test_probable_outage_probes_with_scaled_backoff(self):
        policy = AdaptiveOffloadPolicy()
        channel = _channel()
        _estimator_at(policy, channel, 1.0)
        decision = policy.decide(channel, ladder_rungs=3)
        assert decision.action == "probe"
        assert decision.entry_rung == 2
        assert decision.backoff_scale == pytest.approx(2.0)
        adapted = decision.adapt_retry_policy(RetryPolicy())
        assert adapted.max_attempts == RetryPolicy().max_attempts + 2
        assert adapted.base_backoff_seconds == pytest.approx(
            RetryPolicy().base_backoff_seconds * 2.0
        )

    def test_single_rung_ladder_clamps(self):
        policy = AdaptiveOffloadPolicy()
        channel = _channel()
        _estimator_at(policy, channel, 1.0)
        decision = policy.decide(channel, ladder_rungs=1)
        assert decision.entry_rung == 0

    def test_decide_needs_channel_or_paths(self):
        with pytest.raises(ValueError):
            AdaptiveOffloadPolicy().decide()

    def test_decision_counters_and_gauges(self):
        registry = MetricsRegistry()
        policy = AdaptiveOffloadPolicy()
        channel = _channel()
        _estimator_at(policy, channel, 0.3)
        with use_registry(registry):
            policy.decide(channel, ladder_rungs=3)
        counters = {
            (c.name, tuple(sorted(c.labels.items()))): c.value
            for c in registry.instruments()
            if c.kind == "counter"
        }
        assert counters[("adaptive_decisions_total", (("action", "shade"),))] == 1
        gauges = {g.name for g in registry.instruments() if g.kind == "gauge"}
        assert "link_failure_probability" in gauges
        assert "link_throughput_bps" in gauges
        assert "link_confidence" in gauges

    def test_preemptive_degrade_event_on_action_change(self):
        events = EventLog()
        policy = AdaptiveOffloadPolicy()
        channel = _channel()
        _estimator_at(policy, channel, 0.3)
        with use_event_log(events):
            policy.decide(channel, ladder_rungs=3)
            policy.decide(channel, ladder_rungs=3)  # same action: no repeat
        kinds = [record["kind"] for record in events.records]
        assert kinds.count("adaptive.preemptive_degrade") == 1
        record = next(
            r for r in events.records if r["kind"] == "adaptive.preemptive_degrade"
        )
        assert record["action"] == "shade"
        assert record["entry_rung"] == 1


class TestPathSelection:
    def _policy_with_paths(self, margin=0.25, dwell=4):
        config = AdaptiveConfig(
            hysteresis_margin=margin, min_dwell_decisions=dwell
        )
        policy = AdaptiveOffloadPolicy(config)
        lte = FaultyChannel(
            CHANNEL_PRESETS["lte"], FaultSpec(loss=0.0, seed=1)
        )
        wifi = FaultyChannel(
            CHANNEL_PRESETS["wifi"], FaultSpec(loss=0.0, seed=2)
        )
        policy.register_path("lte", lte)
        policy.register_path("wifi", wifi)
        return policy

    def _feed(self, policy, name, kind, count=50):
        est = policy._estimators[name]
        for _ in range(count):
            est.observe_attempt(kind, 10_000, 0.01)

    def test_first_registered_path_is_default(self):
        policy = self._policy_with_paths()
        decision = policy.decide(ladder_rungs=3)
        assert decision.path == "lte"
        assert not decision.switched_path

    def test_switches_to_clearly_better_path(self):
        policy = self._policy_with_paths(dwell=2)
        # LTE collapses (every attempt a loss), WiFi delivers fast.
        self._feed(policy, "lte", "loss")
        self._feed(policy, "wifi", "ok")
        switched = False
        for _ in range(6):
            decision = policy.decide(ladder_rungs=3)
            switched = switched or decision.switched_path
        assert switched
        assert policy.current_path == "wifi"
        assert policy.path_switches == 1

    def test_no_switch_within_hysteresis_margin(self):
        policy = self._policy_with_paths(margin=10.0, dwell=1)
        self._feed(policy, "lte", "loss")
        self._feed(policy, "wifi", "ok")
        for _ in range(10):
            policy.decide(ladder_rungs=3)
        # WiFi is better, but not 11x better than a zero-score path is
        # unreachable — margin*current_score==0 edge: a zero score is
        # always beatable, so exercise a non-degenerate current path.
        policy2 = self._policy_with_paths(margin=10.0, dwell=1)
        self._feed(policy2, "lte", "ok", count=50)
        self._feed(policy2, "wifi", "ok", count=50)
        for _ in range(10):
            assert not policy2.decide(ladder_rungs=3).switched_path
        assert policy2.path_switches == 0

    def test_flapping_bounded_by_dwell(self):
        dwell = 5
        policy = self._policy_with_paths(margin=0.1, dwell=dwell)
        decisions = 60
        # Adversarial schedule: after every decision, invert both
        # estimators so the *other* path always looks better.
        for index in range(decisions):
            good, bad = (
                ("lte", "wifi") if policy.current_path == "wifi" else ("wifi", "lte")
            )
            self._feed(policy, good, "ok", count=30)
            self._feed(policy, bad, "loss", count=30)
            policy.decide(ladder_rungs=3)
        assert policy.path_switches <= decisions // dwell + 1

    def test_path_switch_event(self):
        events = EventLog()
        policy = self._policy_with_paths(dwell=1)
        self._feed(policy, "lte", "loss")
        self._feed(policy, "wifi", "ok")
        with use_event_log(events):
            for _ in range(4):
                policy.decide(ladder_rungs=3)
        switch = next(
            r for r in events.records if r["kind"] == "adaptive.path_switch"
        )
        assert switch["old_path"] == "lte"
        assert switch["new_path"] == "wifi"

    def test_register_path_replace_keeps_estimator(self):
        policy = AdaptiveOffloadPolicy()
        first = FaultyChannel(_channel(), FaultSpec(loss=0.5, seed=3))
        policy.register_path("uplink", first)
        _drive(first, 100)
        est = policy._estimators["uplink"]
        seen = est.attempts_observed
        assert seen == 100
        second = FaultyChannel(_channel(), FaultSpec(loss=0.5, seed=4))
        policy.register_path("uplink", second)
        assert policy._estimators["uplink"] is est
        _drive(second, 50)
        assert est.attempts_observed == seen + 50
        # ... and the old channel no longer feeds it.
        _drive(first, 50)
        assert est.attempts_observed == seen + 50


class TestTransferOutcome:
    def test_submission_outcome_is_alias(self):
        assert SubmissionOutcome is TransferOutcome

    def test_clean_delivery_shape(self):
        channel = FaultyChannel(_channel(), FaultSpec())
        outcome = submit_payload(channel, [1000, 500])
        assert outcome.status == "delivered"
        assert outcome.attempt_records == (
            AttemptRecord("ok", outcome.latency_seconds, 1000, 0),
        )
        assert outcome.attempts == 1
        assert outcome.retries == 0
        assert outcome.payload_bytes == 1000
        assert outcome.wasted_seconds == 0.0
        assert outcome.wasted_bytes == 0
        assert outcome.ladder_step == 0
        assert outcome.delivered

    def test_degraded_walk_records_every_attempt(self):
        channel = FaultyChannel(
            _channel(), FaultSpec(loss=1.0, seed=0)
        )
        # Force exactly two losses then a success by flipping loss off.
        records = []

        class Probe:
            def observe_attempt(self, kind, num_bytes, elapsed, direction):
                records.append((kind, num_bytes))

        channel.add_observer(Probe())
        outcome = submit_payload(
            channel, [1000, 500, 250], RetryPolicy(max_attempts=4)
        )
        # loss=1.0: every attempt fails; the walk degrades to the floor.
        assert outcome.status == "abandoned"
        assert [r.kind for r in outcome.attempt_records] == ["loss"] * 4
        assert [r.rung for r in outcome.attempt_records] == [0, 1, 2, 2]
        assert [r.payload_bytes for r in outcome.attempt_records] == [
            1000,
            500,
            250,
            250,
        ]
        assert outcome.wasted_bytes == 1000 + 500 + 250 + 250
        assert outcome.payload_bytes == 0
        assert outcome.retries == 3
        assert records == [
            ("loss", 1000),
            ("loss", 500),
            ("loss", 250),
            ("loss", 250),
        ]

    def test_outage_wastes_time_not_bytes(self):
        channel = FaultyChannel(
            _channel(), FaultSpec(outage_enter=1.0, outage_exit=1.0, seed=0)
        )
        outcome = submit_payload(channel, [1000, 500], RetryPolicy(max_attempts=2))
        kinds = [r.kind for r in outcome.attempt_records]
        assert kinds[0] == "outage"
        assert outcome.wasted_bytes == 0
        assert outcome.wasted_seconds > 0.0

    def test_latency_is_records_plus_backoff(self):
        channel = FaultyChannel(_channel(), FaultSpec(loss=1.0, seed=0))
        outcome = submit_payload(channel, [1000], RetryPolicy(max_attempts=3))
        elapsed = sum(r.elapsed_seconds for r in outcome.attempt_records)
        assert outcome.latency_seconds == pytest.approx(
            elapsed + outcome.backoff_seconds
        )
        assert outcome.backoff_seconds > 0.0


class TestOutageEvents:
    def test_enter_and_exit_events(self):
        events = EventLog()
        channel = FaultyChannel(
            _channel(), FaultSpec(outage_enter=1.0, outage_exit=1.0, seed=0)
        )
        with use_event_log(events):
            _drive(channel, 6, num_bytes=1000)
        kinds = [record["kind"] for record in events.records]
        assert kinds.count("channel.outage_enter") == 3
        assert kinds.count("channel.outage_exit") == 3
        exit_record = next(
            r for r in events.records if r["kind"] == "channel.outage_exit"
        )
        assert exit_record["channel"] == "t"
        assert exit_record["attempts"] == 1
        # One fail-fast probe: one 40 ms RTT of observed outage time.
        assert exit_record["outage_seconds"] == pytest.approx(0.04)

    def test_outage_seconds_counter(self):
        registry = MetricsRegistry()
        channel = FaultyChannel(
            _channel(), FaultSpec(outage_enter=1.0, outage_exit=1.0, seed=0)
        )
        with use_registry(registry):
            _drive(channel, 10, num_bytes=1000)
        counter = next(
            c
            for c in registry.instruments()
            if c.name == "channel_outage_seconds_total"
        )
        assert counter.labels == {"channel": "t"}
        assert counter.value == pytest.approx(5 * 0.04)

    def test_null_spec_emits_nothing(self):
        events = EventLog()
        channel = FaultyChannel(_channel(), FaultSpec())
        with use_event_log(events):
            _drive(channel, 20)
        assert len(events.records) == 0


class TestClientIntegration:
    def _client(self, adaptive):
        from repro.api import ClientConfig, UniquenessOracle, VisualPrintClient
        from repro.core.config import VisualPrintConfig

        config = VisualPrintConfig(
            descriptor_capacity=4096, fingerprint_size=24
        )
        oracle = UniquenessOracle(config)
        return VisualPrintClient.from_config(
            oracle,
            ClientConfig(pipeline=config, degrade_floor=4, adaptive=adaptive),
        )

    def _fingerprint(self, client):
        rng = rng_for(0, "test/linkstate/frame")
        image = rng.random((128, 128))
        keypoints = client.extract_keypoints(image)
        return client.fingerprint_keypoints(keypoints)

    def test_config_off_by_default(self):
        client = self._client(None)
        assert client.adaptive is None

    def test_adaptive_config_builds_policy(self):
        client = self._client(AdaptiveConfig())
        assert isinstance(client.adaptive, AdaptiveOffloadPolicy)

    def test_policy_pre_degrades_entry_rung(self):
        client = self._client(AdaptiveConfig())
        fingerprint = self._fingerprint(client)
        channel = FaultyChannel(_channel(), FaultSpec(loss=0.3, seed=9))
        # Teach the estimator the link is lossy before the submission.
        est = client.adaptive.estimator_for(channel)
        for _ in range(300):
            est.observe_attempt("loss", 1000, 0.01)
            est.observe_attempt("ok", 1000, 0.01)
            est.observe_attempt("loss", 1000, 0.01)
        assert est.failure_probability > 0.2
        outcome = client.submit_fingerprint(fingerprint, channel)
        # Entry rung came from the policy, not backpressure: the first
        # attempt already used a shrunken payload.
        assert outcome.attempt_records[0].rung >= 1

    def test_zero_fault_channel_stays_full_quality(self):
        client = self._client(AdaptiveConfig())
        fingerprint = self._fingerprint(client)
        channel = FaultyChannel(_channel(), FaultSpec())
        outcome = client.submit_fingerprint(fingerprint, channel)
        assert outcome.status == "delivered"
        assert outcome.attempt_records[0].rung == 0

    def test_multi_path_client_uses_policy_channel(self):
        client = self._client(AdaptiveConfig(min_dwell_decisions=0))
        fingerprint = self._fingerprint(client)
        lte = FaultyChannel(CHANNEL_PRESETS["lte"], FaultSpec(seed=0))
        wifi = FaultyChannel(CHANNEL_PRESETS["wifi"], FaultSpec(seed=0))
        client.adaptive.register_path("lte", lte)
        client.adaptive.register_path("wifi", wifi)
        outcome = client.submit_fingerprint(fingerprint, channel=None)
        assert outcome.delivered


class TestAdaptiveExperiment:
    def test_deterministic_and_improving(self):
        from repro.evaluation.experiments.adaptive_offload import run

        first = run(queries=160)
        second = run(queries=160)
        assert first == second
        assert first["regimes_improved"] >= 2
        # No accuracy regression where bytes improved.
        for regime in first["regimes"].values():
            if regime["improved"]:
                assert (
                    regime["adaptive"]["delivery_rate"]
                    >= regime["reactive"]["delivery_rate"]
                )

    def test_estimator_recovers_bursty_rates_in_experiment(self):
        from repro.evaluation.experiments.adaptive_offload import REGIMES, run

        result = run(queries=400, regimes=["bursty"])
        estimator = result["regimes"]["bursty"]["adaptive"]["estimator"]
        spec = REGIMES["bursty"][0]
        assert estimator["outage_enter_hat"] == pytest.approx(
            spec["outage_enter"], abs=0.05
        )
        assert estimator["outage_exit_hat"] == pytest.approx(
            spec["outage_exit"], abs=0.2
        )


class TestLoadgenAdaptive:
    def _model(self):
        from repro.loadgen import TrafficModel

        return TrafficModel(
            users=300, venues=4, duration_seconds=4.0, rate_per_user=0.5
        )

    def test_adaptive_uplink_summary(self):
        from repro.loadgen import run_loadtest

        channel = FaultyChannel(
            CHANNEL_PRESETS["lte"], FaultSpec(loss=0.3, seed=3)
        )
        report = run_loadtest(
            self._model(),
            seed=3,
            channel=channel,
            adaptive=True,
            registry=MetricsRegistry(),
        )
        uplink = report["uplink"]
        assert "adaptive" in uplink
        assert uplink["adaptive"]["estimators"]["lte"]["attempts"] > 0
        assert uplink["wasted_bytes"] >= 0

    def test_adaptive_reduces_wasted_bytes(self):
        from repro.loadgen import run_loadtest

        def wasted(adaptive: bool) -> int:
            channel = FaultyChannel(
                CHANNEL_PRESETS["lte"], FaultSpec(loss=0.35, seed=3)
            )
            report = run_loadtest(
                self._model(),
                seed=3,
                channel=channel,
                adaptive=adaptive,
                registry=MetricsRegistry(),
            )
            return report["uplink"]["wasted_bytes"]

        assert wasted(True) < wasted(False)

    def test_reactive_report_unchanged_shape(self):
        from repro.loadgen import run_loadtest

        channel = FaultyChannel(
            CHANNEL_PRESETS["lte"], FaultSpec(loss=0.2, seed=3)
        )
        report = run_loadtest(
            self._model(),
            seed=3,
            channel=channel,
            registry=MetricsRegistry(),
        )
        assert "adaptive" not in report["uplink"]
