"""Shared fixtures: small deterministic inputs reused across test modules."""

from __future__ import annotations

import numpy as np
import pytest

from repro.imaging.synth import SceneLibrary
from repro.util.rng import rng_for


@pytest.fixture(scope="session")
def rng() -> np.random.Generator:
    return rng_for(1234, "tests")


@pytest.fixture(scope="session")
def small_library() -> SceneLibrary:
    """A tiny scene library shared by imaging/feature/matching tests."""
    return SceneLibrary(seed=42, num_scenes=3, num_distractors=3, size=(128, 128))


@pytest.fixture(scope="session")
def descriptors_1k(rng: np.random.Generator) -> np.ndarray:
    """1000 SIFT-like integer descriptors."""
    from repro.wardrive.environment import random_sift_descriptor

    return np.array([random_sift_descriptor(rng) for _ in range(1000)])
