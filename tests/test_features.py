"""Unit tests for keypoints, pyramids, SIFT, Harris, and serialization."""

from __future__ import annotations

import numpy as np
import pytest

from repro.features import (
    DogPyramid,
    GaussianPyramid,
    HarrisDetector,
    KeypointSet,
    SiftExtractor,
    SiftParams,
    deserialize_keypoints,
    harris_response,
    keypoint_record_bytes,
    serialize_keypoints,
)
from repro.imaging import rotate_image, value_noise_texture
from repro.util.rng import rng_for


@pytest.fixture(scope="module")
def textured_image():
    return value_noise_texture(
        (128, 128), rng_for(11, "features"), octaves=6, base_cells=8, persistence=0.7
    )


@pytest.fixture(scope="module")
def keypoints(textured_image):
    return SiftExtractor(SiftParams(contrast_threshold=0.01)).extract(textured_image)


class TestKeypointSet:
    def test_empty(self):
        empty = KeypointSet.empty()
        assert len(empty) == 0

    def test_concatenate(self, keypoints):
        doubled = KeypointSet.concatenate([keypoints, keypoints])
        assert len(doubled) == 2 * len(keypoints)

    def test_concatenate_empty_list(self):
        assert len(KeypointSet.concatenate([])) == 0

    def test_select(self, keypoints):
        subset = keypoints.select(np.array([0, 2]))
        assert len(subset) == 2
        assert np.array_equal(subset.positions[1], keypoints.positions[2])

    def test_top_by_response(self, keypoints):
        top = keypoints.top_by_response(5)
        assert len(top) == 5
        assert top.responses.min() >= np.sort(keypoints.responses)[-5]

    def test_top_by_response_larger_than_set(self, keypoints):
        assert len(keypoints.top_by_response(10_000)) == len(keypoints)

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            KeypointSet(
                positions=np.zeros((3, 2), np.float32),
                scales=np.zeros(2, np.float32),
                orientations=np.zeros(3, np.float32),
                responses=np.zeros(3, np.float32),
                descriptors=np.zeros((3, 128), np.float32),
            )


class TestGaussianPyramid:
    def test_octave_count_shrinks_with_image(self, textured_image):
        pyramid = GaussianPyramid.build(textured_image)
        assert pyramid.num_octaves >= 3
        for octave in range(1, pyramid.num_octaves):
            assert (
                pyramid.octaves[octave].shape[1]
                == pyramid.octaves[octave - 1].shape[1] // 2
            )

    def test_levels_per_octave(self, textured_image):
        pyramid = GaussianPyramid.build(textured_image, scales_per_octave=3)
        assert pyramid.octaves[0].shape[0] == 6  # s + 3

    def test_blur_monotone(self, textured_image):
        pyramid = GaussianPyramid.build(textured_image)
        stds = [pyramid.octaves[0][level].std() for level in range(6)]
        assert all(a >= b for a, b in zip(stds, stds[1:]))

    def test_absolute_sigma_doubles_per_octave(self, textured_image):
        pyramid = GaussianPyramid.build(textured_image)
        assert pyramid.absolute_sigma(1, 0) == pytest.approx(
            2 * pyramid.absolute_sigma(0, 0)
        )

    def test_dog_shapes(self, textured_image):
        pyramid = GaussianPyramid.build(textured_image)
        dog = DogPyramid.from_gaussian(pyramid)
        assert dog.num_octaves == pyramid.num_octaves
        assert dog.octaves[0].shape[0] == pyramid.octaves[0].shape[0] - 1

    def test_rejects_color_image(self):
        with pytest.raises(ValueError):
            GaussianPyramid.build(np.zeros((8, 8, 3)))


class TestSiftExtractor:
    def test_finds_keypoints_on_texture(self, keypoints):
        assert len(keypoints) > 30

    def test_descriptor_range(self, keypoints):
        assert keypoints.descriptors.min() >= 0
        assert keypoints.descriptors.max() <= 255
        # integer-valued by construction
        assert np.allclose(keypoints.descriptors, np.rint(keypoints.descriptors))

    def test_positions_inside_image(self, keypoints, textured_image):
        height, width = textured_image.shape
        assert (keypoints.positions[:, 0] >= 0).all()
        assert (keypoints.positions[:, 0] < width).all()
        assert (keypoints.positions[:, 1] < height).all()

    def test_uniform_image_yields_nothing(self):
        extractor = SiftExtractor()
        assert len(extractor.extract(np.full((64, 64), 0.5, np.float32))) == 0

    def test_deterministic(self, textured_image):
        extractor = SiftExtractor(SiftParams(contrast_threshold=0.01))
        a = extractor.extract(textured_image)
        b = extractor.extract(textured_image)
        assert np.array_equal(a.descriptors, b.descriptors)

    def test_max_keypoints(self, textured_image):
        extractor = SiftExtractor(
            SiftParams(contrast_threshold=0.01, max_keypoints=10)
        )
        assert len(extractor.extract(textured_image)) <= 10

    def test_contrast_threshold_monotone(self, textured_image):
        loose = SiftExtractor(SiftParams(contrast_threshold=0.005))
        strict = SiftExtractor(SiftParams(contrast_threshold=0.03))
        assert len(loose.extract(textured_image)) >= len(
            strict.extract(textured_image)
        )

    def test_rotation_invariance_of_matching(self, textured_image):
        """Descriptors of a rotated image still match the original."""
        extractor = SiftExtractor(SiftParams(contrast_threshold=0.01))
        original = extractor.extract(textured_image)
        rotated = extractor.extract(rotate_image(textured_image, np.deg2rad(25)))
        if len(rotated) < 10 or len(original) < 10:
            pytest.skip("not enough keypoints for a matching check")
        distances = (
            (rotated.descriptors[:, None, :] - original.descriptors[None, :, :]) ** 2
        ).sum(-1)
        ordered = np.sort(distances, axis=1)
        ratio_pass = (ordered[:, 0] < 0.8**2 * ordered[:, 1]).mean()
        assert ratio_pass > 0.2

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            SiftParams(descriptor_spatial_bins=5)  # 5*5*8 != 128
        with pytest.raises(ValueError):
            SiftParams(orientation_peak_ratio=0.0)

    def test_rejects_color_input(self):
        with pytest.raises(ValueError):
            SiftExtractor().extract(np.zeros((8, 8, 3)))


class TestHarris:
    def test_response_peaks_at_corner(self):
        image = np.zeros((64, 64), dtype=np.float32)
        image[32:, 32:] = 1.0  # a single corner at (32, 32)
        response = harris_response(image)
        peak = np.unravel_index(np.argmax(response), response.shape)
        assert abs(peak[0] - 32) <= 2 and abs(peak[1] - 32) <= 2

    def test_edge_suppressed(self):
        image = np.zeros((64, 64), dtype=np.float32)
        image[:, 32:] = 1.0  # pure edge, no corner
        response = harris_response(image)
        assert response.max() < 1e-4

    def test_detector_returns_descriptors(self, textured_image):
        detected = HarrisDetector(max_keypoints=50).detect(textured_image)
        assert 0 < len(detected) <= 50
        assert detected.descriptors.shape[1] == 128

    def test_detector_blank_image(self):
        detected = HarrisDetector().detect(np.full((64, 64), 0.5, np.float32))
        assert len(detected) == 0


class TestTinyImages:
    """Images small enough that deep-level smoothing windows outgrow them.

    Regression: ``_assign_orientations`` computed its orientation-window
    bounds with ``np.clip(lo, hi)`` where ``lo > hi`` on tiny octaves
    (window radius larger than the frame), producing negative center
    pixels and an out-of-bounds gather.
    """

    def test_16x16_extract_does_not_crash(self):
        image = rng_for(3, "tiny").random((16, 16)).astype(np.float32)
        keypoints = SiftExtractor(SiftParams()).extract(image)
        assert len(keypoints) >= 0  # completing without IndexError is the test

    def test_oversized_orientation_window_is_skipped(self):
        extractor = SiftExtractor(SiftParams())
        image = rng_for(3, "tiny").random((16, 16)).astype(np.float32)
        pyramid = GaussianPyramid.build(
            image,
            scales_per_octave=extractor.params.scales_per_octave,
            base_sigma=extractor.params.base_sigma,
        )
        # A candidate rounded to a deep Gaussian level: its smoothing
        # radius (18 px) exceeds the 16x16 frame, so no orientation can
        # be assigned — the row must be dropped, not gathered OOB.
        candidates = np.array([[4.0, 8.0, 8.0, 0.05]])
        oriented = extractor._assign_orientations(pyramid, 0, candidates)
        assert oriented.shape == (0, 5)

    def test_small_blob_image_extracts(self):
        yy, xx = np.mgrid[0:24, 0:24].astype(np.float32)
        blob = np.exp(-((yy - 12) ** 2 + (xx - 12) ** 2) / 18.0)
        keypoints = SiftExtractor(SiftParams(contrast_threshold=0.005)).extract(blob)
        assert keypoints.descriptors.shape[1] == 128 or len(keypoints) == 0


class TestSerialization:
    def test_record_size(self):
        assert keypoint_record_bytes() == 144

    def test_roundtrip(self, keypoints):
        payload = serialize_keypoints(keypoints)
        restored = deserialize_keypoints(payload)
        assert len(restored) == len(keypoints)
        assert np.allclose(restored.positions, keypoints.positions, atol=1e-4)
        assert np.allclose(restored.scales, keypoints.scales, atol=1e-4)
        assert np.array_equal(
            restored.descriptors, np.rint(keypoints.descriptors)
        )

    def test_compressed_roundtrip(self, keypoints):
        payload = serialize_keypoints(keypoints, compress=True)
        restored = deserialize_keypoints(payload)
        assert len(restored) == len(keypoints)

    def test_size_formula(self, keypoints):
        payload = serialize_keypoints(keypoints)
        assert len(payload) == 8 + len(keypoints) * keypoint_record_bytes()

    def test_bad_magic(self):
        with pytest.raises(ValueError):
            deserialize_keypoints(b"ZZZZ" + b"\x00" * 16)
