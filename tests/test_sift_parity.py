"""Equivalence suite: batched hot paths vs their retained scalar references.

PR 7 rewrote the client hot path (batched SIFT kernels, zero-copy
serialization, packed bloom counters) while keeping the original scalar
implementations as ``*_reference`` methods.  These tests pin the
contract:

* Gaussian/DoG pyramids: bit-identical (same scipy kernels, same op
  order).
* SIFT geometry (positions, scales, orientations, responses):
  bit-identical — every discontinuous decision (extremum, refine,
  edge reject, histogram peak) runs in the reference float64 op order.
* SIFT descriptors: equal within ±1 integer step.  The batched
  descriptor path does its orientation-bin arithmetic in float32; the
  descriptor is continuous in the orientation bin, so reassociation
  shifts a sample's soft-binned weight by at most one quantization
  step after the 0..255 integerization (see DESIGN.md §12).
* Serialization: ``serialize_keypoints_into`` is byte-for-byte
  ``serialize_keypoints``, and ``serialized_size`` prices it exactly.
* Packed counters and multiseed murmur: identical to the unpacked /
  per-seed formulations.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bloom import CountingBloomFilter
from repro.core.fingerprint import Fingerprint
from repro.features.gaussian import DogPyramid, GaussianPyramid
from repro.features.keypoint import DESCRIPTOR_DIM, KeypointSet
from repro.features.serialize import (
    serialize_keypoints,
    serialize_keypoints_into,
    serialized_size,
)
from repro.features.sift import SiftExtractor, SiftParams
from repro.hashing.murmur3 import murmur3_32_vectors, murmur3_32_vectors_multiseed
from repro.imaging import value_noise_texture
from repro.obs import MetricsRegistry
from repro.util.rng import rng_for


def textured(height: int, width: int, seed: int) -> np.ndarray:
    """A deterministic textured frame that actually yields keypoints."""
    return value_noise_texture((height, width), rng_for(seed, "parity"))


def assert_extract_parity(image: np.ndarray, params: SiftParams | None = None):
    extractor = SiftExtractor(params or SiftParams())
    fast = extractor.extract(image)
    ref = extractor.extract_reference(image)
    assert len(fast) == len(ref)
    np.testing.assert_array_equal(fast.positions, ref.positions)
    np.testing.assert_array_equal(fast.scales, ref.scales)
    np.testing.assert_array_equal(fast.orientations, ref.orientations)
    np.testing.assert_array_equal(fast.responses, ref.responses)
    if len(fast):
        diff = np.abs(fast.descriptors - ref.descriptors)
        assert diff.max() <= 1.0, f"descriptor diff {diff.max()} exceeds ±1"
    return fast


class TestPyramidParity:
    def test_gaussian_build_bit_identical(self):
        image = textured(64, 64, 1)
        fast = GaussianPyramid.build(image)
        ref = GaussianPyramid.build_reference(image)
        assert len(fast.octaves) == len(ref.octaves)
        for a, b in zip(fast.octaves, ref.octaves):
            np.testing.assert_array_equal(a, b)

    def test_dog_scratch_matches_fresh(self):
        image = textured(48, 64, 2)
        pyramid = GaussianPyramid.build(image)
        fresh = DogPyramid.from_gaussian(pyramid)
        scratch: dict = {}
        reused = DogPyramid.from_gaussian(pyramid, scratch=scratch)
        for a, b in zip(fresh.octaves, reused.octaves):
            np.testing.assert_array_equal(a, b)

    def test_dog_scratch_reuse_across_frames(self):
        scratch: dict = {}
        for seed in (3, 4):
            image = textured(48, 48, seed)
            pyramid = GaussianPyramid.build(image)
            fresh = DogPyramid.from_gaussian(pyramid)
            reused = DogPyramid.from_gaussian(pyramid, scratch=scratch)
            for a, b in zip(fresh.octaves, reused.octaves):
                np.testing.assert_array_equal(a, b)


class TestSiftParity:
    @given(
        height=st.sampled_from([16, 24, 32, 48]),
        width=st.sampled_from([16, 32, 40]),
        seed=st.integers(0, 50),
    )
    @settings(max_examples=12, deadline=None)
    def test_batched_matches_reference(self, height, width, seed):
        assert_extract_parity(textured(height, width, seed))

    def test_tiny_16x16_octave(self):
        # The oversized-orientation-window shape: deep levels whose
        # smoothing radius exceeds the frame.
        assert_extract_parity(textured(16, 16, 9))

    def test_dense_frame(self):
        # A larger frame with hundreds of keypoints: exercises the
        # multi-octave batched paths at realistic density.
        fast = assert_extract_parity(
            textured(96, 96, 11), SiftParams(contrast_threshold=0.01)
        )
        assert len(fast) > 20

    @pytest.mark.parametrize("dtype", [np.float32, np.float64])
    def test_input_dtypes_agree(self, dtype):
        image = textured(32, 32, 13)
        extractor = SiftExtractor(SiftParams())
        out = extractor.extract(image.astype(dtype))
        baseline = extractor.extract(image.astype(np.float32))
        np.testing.assert_array_equal(out.positions, baseline.positions)
        np.testing.assert_array_equal(out.descriptors, baseline.descriptors)

    def test_dropped_candidates_counted(self):
        registry = MetricsRegistry()
        extractor = SiftExtractor(SiftParams(), registry=registry)
        image = textured(16, 16, 3)
        pyramid = GaussianPyramid.build(
            image,
            scales_per_octave=extractor.params.scales_per_octave,
            base_sigma=extractor.params.base_sigma,
        )
        candidates = np.array([[4.0, 8.0, 8.0, 0.05]])
        oriented = extractor._assign_orientations(pyramid, 0, candidates)
        assert oriented.shape == (0, 5)
        assert registry.counter("sift_candidates_dropped_total").value == 1.0


def keypoint_set(count: int, seed: int) -> KeypointSet:
    rng = rng_for(seed, "kps")
    return KeypointSet(
        positions=rng.uniform(0, 512, (count, 2)).astype(np.float32),
        scales=rng.uniform(1, 8, count).astype(np.float32),
        orientations=rng.uniform(-np.pi, np.pi, count).astype(np.float32),
        responses=rng.uniform(0, 1, count).astype(np.float32),
        descriptors=rng.uniform(0, 255, (count, DESCRIPTOR_DIM)).astype(np.float32),
    )


class TestSerializeInto:
    @given(count=st.integers(0, 40), seed=st.integers(0, 20))
    @settings(max_examples=25, deadline=None)
    def test_byte_identical_and_sized(self, count, seed):
        keypoints = keypoint_set(count, seed)
        reference = serialize_keypoints(keypoints)
        assert serialized_size(count) == len(reference)
        buffer = bytearray()
        size = serialize_keypoints_into(keypoints, buffer)
        assert size == len(reference)
        assert bytes(buffer[:size]) == reference

    def test_empty_and_single(self):
        for count in (0, 1):
            keypoints = keypoint_set(count, count)
            buffer = bytearray()
            size = serialize_keypoints_into(keypoints, buffer)
            assert bytes(buffer[:size]) == serialize_keypoints(keypoints)
            assert size == serialized_size(count)

    def test_buffer_reuse_shrinking(self):
        # A big payload then a small one into the same buffer: the
        # prefix must be the small payload exactly (stale tail ignored).
        big, small = keypoint_set(30, 1), keypoint_set(5, 2)
        buffer = bytearray()
        serialize_keypoints_into(big, buffer)
        size = serialize_keypoints_into(small, buffer)
        assert bytes(buffer[:size]) == serialize_keypoints(small)
        assert len(buffer) == serialized_size(30)  # high-water mark kept

    def test_scratch_reuse(self):
        keypoints = keypoint_set(12, 3)
        scratch = np.empty((12, DESCRIPTOR_DIM), dtype=np.float32)
        buffer = bytearray()
        size = serialize_keypoints_into(keypoints, buffer, scratch=scratch)
        assert bytes(buffer[:size]) == serialize_keypoints(keypoints)

    def test_fingerprint_upload_bytes_is_exact(self):
        for count in (0, 1, 17):
            keypoints = keypoint_set(count, count)
            fingerprint = Fingerprint(
                keypoints=keypoints,
                uniqueness_counts=np.zeros(count, dtype=np.int64),
            )
            assert fingerprint.upload_bytes == len(fingerprint.to_bytes())

    def test_truncate_is_view_and_serializes_identically(self):
        fingerprint = Fingerprint(
            keypoints=keypoint_set(20, 5),
            uniqueness_counts=np.arange(20, dtype=np.int64),
        )
        truncated = fingerprint.truncate(8)
        assert truncated.keypoints.descriptors.base is (
            fingerprint.keypoints.descriptors
        )
        assert truncated.to_bytes() == serialize_keypoints(
            fingerprint.keypoints.select(np.arange(8))
        )


class TestPackedCounters:
    @given(
        indices=st.lists(st.integers(0, 499), min_size=1, max_size=60),
        seed=st.integers(0, 10),
    )
    @settings(max_examples=25, deadline=None)
    def test_set_at_matches_fancy_assignment(self, indices, seed):
        cbf = CountingBloomFilter(num_counters=500, num_hashes=3)
        rng = rng_for(seed, "packed")
        idx = np.array(indices, dtype=np.int64)
        values = rng.integers(0, cbf.saturation + 1, idx.size)
        expected = np.zeros(500, dtype=np.uint16)
        expected[idx] = values  # duplicate indices: last value wins
        cbf.set_at(idx, values)
        np.testing.assert_array_equal(cbf.counters, expected)
        np.testing.assert_array_equal(cbf.gather(idx), expected[idx])

    @given(seed=st.integers(0, 20))
    @settings(max_examples=15, deadline=None)
    def test_bump_matches_unpacked_accumulation(self, seed):
        cbf = CountingBloomFilter(num_counters=256, num_hashes=3)
        rng = rng_for(seed, "bump")
        flat = rng.integers(0, 256, 400)
        cbf.bump_counters(flat)
        expected = np.minimum(
            np.bincount(flat, minlength=256), cbf.saturation
        ).astype(np.uint16)
        np.testing.assert_array_equal(cbf.counters, expected)

    def test_packed_bytes_roundtrip(self):
        cbf = CountingBloomFilter(num_counters=300, num_hashes=4, seed=7)
        rng = rng_for(1, "wire")
        cbf.counters = rng.integers(0, cbf.saturation + 1, 300).astype(np.uint16)
        clone = CountingBloomFilter.from_packed_bytes(
            cbf.packed_bytes(), num_counters=300, num_hashes=4, seed=7
        )
        np.testing.assert_array_equal(clone.counters, cbf.counters)


class TestMultiseedMurmur:
    @given(
        rows=st.integers(1, 12),
        dims=st.integers(1, 16),
        seed=st.integers(0, 30),
    )
    @settings(max_examples=20, deadline=None)
    def test_multiseed_matches_per_seed_loop(self, rows, dims, seed):
        rng = rng_for(seed, "murmur")
        blocks = rng.integers(0, 2**32, (rows, dims), dtype=np.uint32)
        seeds = rng.integers(0, 2**32, 4, dtype=np.uint32)
        batched = murmur3_32_vectors_multiseed(blocks, seeds)
        looped = np.stack(
            [murmur3_32_vectors(blocks, int(s)) for s in seeds], axis=0
        )
        np.testing.assert_array_equal(batched, looped)
