"""Unit + property tests for E2LSH projections, buckets, multiprobe, index."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.lsh import (
    E2LSHParams,
    LshIndex,
    QuantizedBuckets,
    StableProjections,
    perturbation_sets,
)


class TestE2LSHParams:
    def test_paper_defaults(self):
        params = E2LSHParams()
        assert (params.num_tables, params.num_projections) == (10, 7)
        assert params.quantization_width == 500.0

    def test_invalid_rejected(self):
        with pytest.raises(ValueError):
            E2LSHParams(num_tables=0)


class TestStableProjections:
    def test_deterministic_from_seed(self, descriptors_1k):
        a = StableProjections(E2LSHParams(), seed=5).quantize(descriptors_1k[:10])
        b = StableProjections(E2LSHParams(), seed=5).quantize(descriptors_1k[:10])
        assert np.array_equal(a, b)

    def test_shapes(self, descriptors_1k):
        projections = StableProjections(E2LSHParams(num_tables=4, num_projections=3))
        buckets = projections.quantize(descriptors_1k[:20])
        assert buckets.shape == (20, 4, 3)

    def test_wrong_dimension_rejected(self):
        projections = StableProjections(E2LSHParams())
        with pytest.raises(ValueError):
            projections.project(np.zeros((3, 64)))

    def test_nearby_descriptors_share_buckets(self, descriptors_1k, rng):
        """The locality property: small perturbations rarely change buckets."""
        projections = StableProjections(E2LSHParams())
        base = descriptors_1k[:100]
        nearby = np.clip(base + rng.normal(0, 2, base.shape), 0, 255)
        buckets_a = projections.quantize(base)
        buckets_b = projections.quantize(nearby)
        same_bucket = (buckets_a == buckets_b).all(axis=2)  # per (n, L)
        assert same_bucket.mean() > 0.5

    def test_distant_descriptors_rarely_collide(self, descriptors_1k):
        projections = StableProjections(E2LSHParams())
        buckets = projections.quantize(descriptors_1k[:200])
        flat = buckets.reshape(200, -1)
        distinct = {tuple(row) for row in flat}
        assert len(distinct) > 190

    def test_residuals_in_unit_interval(self, descriptors_1k):
        projections = StableProjections(E2LSHParams())
        buckets, residuals = projections.quantize_with_residuals(descriptors_1k[:30])
        assert (residuals >= 0).all() and (residuals < 1).all()
        reconstructed = np.floor(
            projections.project(descriptors_1k[:30])
            / projections.params.quantization_width
        )
        assert np.array_equal(buckets, reconstructed.astype(np.int64))


class TestQuantizedBuckets:
    def test_encoding_injective_on_sign(self):
        buckets = QuantizedBuckets(np.array([[[-1, 0, 1]], [[1, 0, -1]]]))
        a = buckets.table_vectors(0)
        assert not np.array_equal(a[0], a[1])

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            QuantizedBuckets(np.full((1, 1, 1), 1 << 21))

    def test_table_keys_collide_for_equal_vectors(self):
        data = np.zeros((2, 2, 3), dtype=np.int64)
        buckets = QuantizedBuckets(data)
        keys = buckets.table_keys(0)
        assert keys[0] == keys[1]

    def test_perturbed_changes_one_coordinate(self):
        data = np.zeros((1, 2, 3), dtype=np.int64)
        buckets = QuantizedBuckets(data)
        original = buckets.table_vectors(1)[0]
        perturbed = buckets.perturbed(1, 2, +1)[0]
        assert perturbed[2] == original[2] + 1
        assert np.array_equal(perturbed[:2], original[:2])


class TestMultiprobe:
    def test_orders_by_boundary_distance(self):
        residuals = np.array([0.05, 0.5, 0.95])
        probes = perturbation_sets(residuals, max_probes=2)
        # Closest boundaries: dim 0 toward -1 (0.05), dim 2 toward +1 (0.05).
        assert set(probes) == {(0, -1), (2, +1)}

    def test_max_probes_respected(self):
        probes = perturbation_sets(np.array([0.1, 0.2]), max_probes=3)
        assert len(probes) == 3

    def test_zero_probes(self):
        assert perturbation_sets(np.array([0.5]), 0) == []

    @given(st.integers(min_value=1, max_value=10))
    @settings(max_examples=20)
    def test_probe_count_bounded(self, m):
        residuals = np.linspace(0.1, 0.9, m)
        assert len(perturbation_sets(residuals, 2 * m + 5)) == 2 * m


class TestLshIndex:
    @pytest.fixture(scope="class")
    def index(self, descriptors_1k):
        idx = LshIndex(E2LSHParams(), seed=1)
        idx.build(descriptors_1k, np.arange(1000))
        return idx

    def test_exact_self_query(self, index, descriptors_1k):
        matches = index.query(descriptors_1k[42], num_neighbors=1)
        assert matches and matches[0].item_id == 42
        assert matches[0].distance == pytest.approx(0.0, abs=1e-5)

    def test_noisy_query_recovers_neighbor(self, index, descriptors_1k, rng):
        hits = 0
        for row in range(50):
            noisy = np.clip(descriptors_1k[row] + rng.normal(0, 2, 128), 0, 255)
            matches = index.query(noisy, num_neighbors=1)
            hits += bool(matches) and matches[0].item_id == row
        assert hits >= 45  # multiprobe keeps recall high

    def test_query_batch_matches_single(self, index, descriptors_1k):
        batch = index.query_batch(descriptors_1k[:5], num_neighbors=2)
        for row, single in enumerate(descriptors_1k[:5]):
            assert [m.item_id for m in index.query(single, 2)] == [
                m.item_id for m in batch[row]
            ]

    def test_memory_exceeds_descriptor_bytes(self, index, descriptors_1k):
        # L-fold bucket replication: the Fig. 15 LSH overhead.
        assert index.memory_bytes() > descriptors_1k.astype(np.float32).nbytes

    def test_empty_index_raises(self, descriptors_1k):
        with pytest.raises(RuntimeError):
            LshIndex().query(descriptors_1k[0])

    def test_mismatched_ids_rejected(self, descriptors_1k):
        with pytest.raises(ValueError):
            LshIndex().build(descriptors_1k, np.arange(5))

    def test_bucket_cap_enforced(self, rng):
        # 500 identical descriptors must not make buckets of size 500.
        duplicated = np.tile(rng.integers(0, 255, 128).astype(np.float32), (500, 1))
        idx = LshIndex(E2LSHParams(num_tables=2), max_bucket_size=32)
        idx.build(duplicated, np.arange(500))
        for table in idx._tables:
            assert all(len(rows) <= 32 for rows in table.values())

    def test_payload_ids_returned(self, descriptors_1k):
        idx = LshIndex(E2LSHParams(num_tables=4), seed=2)
        ids = np.arange(1000) * 7  # arbitrary payload ids
        idx.build(descriptors_1k, ids)
        matches = idx.query(descriptors_1k[10])
        assert matches[0].item_id == 70
