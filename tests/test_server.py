"""Unit tests for the VisualPrint cloud server."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import Fingerprint, VisualPrintConfig, VisualPrintServer
from repro.features.keypoint import KeypointSet
from repro.wardrive.environment import random_sift_descriptor


@pytest.fixture(scope="module")
def populated_server(rng):
    """A server with two landmark clusters at known 3D positions."""
    config = VisualPrintConfig(descriptor_capacity=10_000, fingerprint_size=20)
    bounds = (np.zeros(3), np.array([30.0, 20.0, 3.0]))
    server = VisualPrintServer(config, bounds=bounds)
    descriptors = np.array([random_sift_descriptor(rng) for _ in range(300)])
    positions = np.zeros((300, 3))
    positions[:150] = np.array([5.0, 10.0, 1.5]) + rng.normal(0, 0.5, (150, 3))
    positions[150:] = np.array([25.0, 10.0, 1.5]) + rng.normal(0, 0.5, (150, 3))
    server.ingest(descriptors, positions)
    return server, descriptors, positions


def _fingerprint(descriptors, pixels=None):
    n = descriptors.shape[0]
    if pixels is None:
        rng = np.random.default_rng(1)
        pixels = rng.uniform(50, 590, size=(n, 2)).astype(np.float32)
    keypoints = KeypointSet(
        positions=np.asarray(pixels, dtype=np.float32),
        scales=np.ones(n, np.float32),
        orientations=np.zeros(n, np.float32),
        responses=np.ones(n, np.float32),
        descriptors=descriptors.astype(np.float32),
    )
    return Fingerprint(
        keypoints=keypoints, uniqueness_counts=np.zeros(n, dtype=np.int64)
    )


class TestIngest:
    def test_num_mappings(self, populated_server):
        server, descriptors, _ = populated_server
        assert server.num_mappings == descriptors.shape[0]

    def test_alignment_enforced(self):
        server = VisualPrintServer(VisualPrintConfig(descriptor_capacity=1024))
        with pytest.raises(ValueError):
            server.ingest(np.zeros((5, 128)), np.zeros((4, 3)))

    def test_oracle_curated_during_ingest(self, populated_server):
        server, descriptors, _ = populated_server
        assert server.oracle.inserted_count == descriptors.shape[0]
        counts = server.oracle.counts(descriptors[:20])
        assert (counts >= 1).mean() > 0.8

    def test_bounds_explicit(self, populated_server):
        server, _, _ = populated_server
        low, high = server.bounds()
        assert np.array_equal(low, np.zeros(3))
        assert high[0] == 30.0

    def test_bounds_inferred_when_absent(self, rng):
        server = VisualPrintServer(VisualPrintConfig(descriptor_capacity=1024))
        descriptors = np.array([random_sift_descriptor(rng) for _ in range(10)])
        positions = rng.uniform(0, 5, (10, 3))
        server.ingest(descriptors, positions)
        low, high = server.bounds()
        assert (low <= positions.min(axis=0)).all()
        assert (high >= positions.max(axis=0)).all()


class TestLocalize:
    def test_clustering_rejects_minority(self, populated_server, rng):
        """Querying with cluster-A descriptors plus a few from cluster B:
        the retrieved minority cluster must be discarded."""
        server, descriptors, positions = populated_server
        query = np.vstack([descriptors[:30], descriptors[150:155]])
        answer = server.localize(_fingerprint(query))
        assert answer.matched_points > 0
        # the solver position should land near cluster A, far from B
        assert abs(answer.pose.x - 25.0) > 5.0

    def test_empty_fingerprint_center_fallback(self, populated_server):
        server, _, _ = populated_server
        empty = Fingerprint(
            keypoints=KeypointSet.empty(),
            uniqueness_counts=np.empty(0, dtype=np.int64),
        )
        answer = server.localize(empty)
        assert answer.matched_points == 0
        assert answer.pose.x == pytest.approx(15.0)

    def test_unmatchable_descriptors(self, populated_server, rng):
        server, _, _ = populated_server
        junk = np.array([random_sift_descriptor(rng) + 100 for _ in range(10)])
        junk = np.clip(junk, 0, 255)
        answer = server.localize(_fingerprint(junk))
        low, high = server.bounds()
        assert (answer.pose.position >= low - 1).all()
        assert (answer.pose.position <= high + 1).all()


class TestFootprints:
    def test_lookup_memory_positive(self, populated_server):
        server, _, _ = populated_server
        assert server.lookup_memory_bytes() > 0

    def test_oracle_download_positive(self, populated_server):
        server, _, _ = populated_server
        assert server.oracle_download_bytes() > 0
