"""Unit tests for clustering, the angular solver, and error metrics."""

from __future__ import annotations

import numpy as np
import pytest

from repro.geometry import CameraIntrinsics, PinholeCamera, Pose
from repro.localization import (
    AngularLocalizer,
    LocalizationProblem,
    dbscan_labels,
    error_by_axis,
    largest_cluster,
    localization_errors,
)


class TestDbscan:
    def test_two_clusters_found(self, rng):
        a = rng.normal(0, 0.2, (30, 3))
        b = rng.normal(10, 0.2, (20, 3))
        labels = dbscan_labels(np.vstack([a, b]), eps=1.0, min_samples=4)
        assert len(set(labels[labels >= 0])) == 2
        assert len(set(labels[:30])) == 1

    def test_noise_labeled_minus_one(self, rng):
        cluster = rng.normal(0, 0.1, (20, 3))
        outlier = np.array([[50.0, 50.0, 50.0]])
        labels = dbscan_labels(np.vstack([cluster, outlier]), eps=1.0, min_samples=4)
        assert labels[-1] == -1

    def test_largest_cluster_picks_biggest(self, rng):
        big = rng.normal(0, 0.2, (40, 3))
        small = rng.normal(10, 0.2, (10, 3))
        kept = largest_cluster(np.vstack([big, small]), eps=1.0, min_samples=4)
        assert set(kept.tolist()) <= set(range(40))
        assert kept.size >= 35

    def test_all_noise_empty(self, rng):
        scattered = rng.uniform(0, 100, (10, 3))
        assert largest_cluster(scattered, eps=0.1, min_samples=4).size == 0

    def test_empty_input(self):
        assert dbscan_labels(np.empty((0, 3)), eps=1.0).size == 0

    def test_invalid_eps(self):
        with pytest.raises(ValueError):
            dbscan_labels(np.zeros((3, 3)), eps=0.0)


def _make_problem(true_pose, num_points, rng, pixel_noise=0.5):
    """Project known landmarks through a camera and build the problem."""
    intrinsics = CameraIntrinsics()
    camera = PinholeCamera(intrinsics, true_pose)
    camera_points = np.column_stack(
        [
            rng.uniform(3, 9, num_points),
            rng.uniform(-2, 2, num_points),
            rng.uniform(-1, 1, num_points),
        ]
    )
    world = camera.pose.to_world(camera_points)
    pixels, visible = camera.project(world)
    pixels = pixels[visible] + rng.normal(0, pixel_noise, (visible.sum(), 2))
    return LocalizationProblem(
        pixels=pixels,
        world_points=world[visible],
        intrinsics=intrinsics,
        bounds_low=np.array([0.0, 0.0, 0.0]),
        bounds_high=np.array([20.0, 20.0, 3.0]),
    )


class TestAngularLocalizer:
    def test_recovers_camera_position(self, rng):
        true_pose = Pose(x=8.0, y=6.0, z=1.5, yaw=0.7)
        problem = _make_problem(true_pose, 25, rng)
        solution = AngularLocalizer(seed=1).solve(problem)
        assert solution.pose.position_error(true_pose) < 1.0

    def test_recovers_orientation(self, rng):
        true_pose = Pose(x=8.0, y=6.0, z=1.5, yaw=0.7)
        problem = _make_problem(true_pose, 25, rng, pixel_noise=0.1)
        solution = AngularLocalizer(seed=1).solve(problem)
        assert abs(solution.pose.yaw - true_pose.yaw) < 0.15

    def test_degrades_gracefully_with_noise(self, rng):
        true_pose = Pose(x=10.0, y=10.0, z=1.5, yaw=-0.4)
        quiet = AngularLocalizer(seed=2).solve(
            _make_problem(true_pose, 25, rng, pixel_noise=0.1)
        )
        noisy = AngularLocalizer(seed=2).solve(
            _make_problem(true_pose, 25, rng, pixel_noise=4.0)
        )
        assert quiet.residual <= noisy.residual + 0.05

    def test_too_few_points_falls_back(self):
        problem = LocalizationProblem(
            pixels=np.zeros((2, 2)),
            world_points=np.zeros((2, 3)),
            intrinsics=CameraIntrinsics(),
            bounds_low=np.zeros(3),
            bounds_high=np.ones(3) * 10,
        )
        solution = AngularLocalizer().solve(problem)
        assert not solution.converged
        assert solution.pose.x == pytest.approx(5.0)

    def test_pair_budget(self, rng):
        problem = _make_problem(Pose(x=5, y=5, z=1.5), 30, rng)
        solution = AngularLocalizer(max_pairs=40, seed=0).solve(problem)
        assert solution.num_pairs <= 40

    def test_alignment_validation(self):
        with pytest.raises(ValueError):
            LocalizationProblem(
                pixels=np.zeros((3, 2)),
                world_points=np.zeros((4, 3)),
                intrinsics=CameraIntrinsics(),
                bounds_low=np.zeros(3),
                bounds_high=np.ones(3),
            )


class TestMetrics:
    def test_localization_errors(self):
        estimated = [Pose(x=1.0), Pose(y=2.0)]
        truth = [Pose(), Pose()]
        errors = localization_errors(estimated, truth)
        assert errors.tolist() == [1.0, 2.0]

    def test_error_by_axis(self):
        estimated = [Pose(x=1.0, z=0.5)]
        truth = [Pose()]
        axes = error_by_axis(estimated, truth)
        assert axes["x"][0] == 1.0
        assert axes["y"][0] == 0.0
        assert axes["z"][0] == 0.5

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            localization_errors([Pose()], [])
