"""Unit + property tests for the RAW/PNG/JPEG/H264 codecs."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.codecs import H264Codec, JpegCodec, PngCodec, RawCodec
from repro.codecs.jpegc import quality_to_quant_matrix
from repro.imaging import to_uint8, value_noise_texture
from repro.util.rng import rng_for


@pytest.fixture(scope="module")
def test_image():
    return to_uint8(
        value_noise_texture((64, 64), rng_for(3, "codecs"), octaves=5, base_cells=6)
    )


small_images = arrays(
    dtype=np.uint8,
    shape=st.tuples(
        st.integers(min_value=8, max_value=24), st.integers(min_value=8, max_value=24)
    ),
    elements=st.integers(min_value=0, max_value=255),
)


class TestRaw:
    def test_roundtrip_exact(self, test_image):
        codec = RawCodec()
        assert np.array_equal(codec.decode(codec.encode(test_image)), test_image)

    def test_size_is_pixels_plus_header(self, test_image):
        assert len(RawCodec().encode(test_image)) == test_image.size + 9

    def test_rejects_float(self):
        with pytest.raises(ValueError):
            RawCodec().encode(np.zeros((4, 4), dtype=np.float32))

    def test_bad_payload(self):
        with pytest.raises(ValueError):
            RawCodec().decode(b"X" + b"\x00" * 16)


class TestPng:
    def test_lossless(self, test_image):
        codec = PngCodec()
        assert np.array_equal(codec.decode(codec.encode(test_image)), test_image)

    @given(small_images)
    @settings(max_examples=25, deadline=None)
    def test_lossless_property(self, image):
        codec = PngCodec()
        assert np.array_equal(codec.decode(codec.encode(image)), image)

    def test_compresses_smooth_content(self):
        smooth = np.tile(np.arange(64, dtype=np.uint8), (64, 1))
        assert len(PngCodec().encode(smooth)) < smooth.size / 4

    def test_smaller_than_raw_on_texture(self, test_image):
        assert len(PngCodec().encode(test_image)) < len(RawCodec().encode(test_image))

    def test_level_bounds(self):
        with pytest.raises(ValueError):
            PngCodec(level=10)


class TestJpeg:
    def test_roundtrip_close(self, test_image):
        codec = JpegCodec(quality=80)
        decoded = codec.decode(codec.encode(test_image))
        psnr = 10 * np.log10(
            255**2 / max(np.mean((decoded.astype(float) - test_image) ** 2), 1e-9)
        )
        assert psnr > 30

    def test_lower_quality_smaller_payload(self, test_image):
        high = len(JpegCodec(quality=90).encode(test_image))
        low = len(JpegCodec(quality=10).encode(test_image))
        assert low < high

    def test_lower_quality_more_distortion(self, test_image):
        def mse(quality):
            codec = JpegCodec(quality=quality)
            decoded = codec.decode(codec.encode(test_image))
            return np.mean((decoded.astype(float) - test_image) ** 2)

        assert mse(10) > mse(90)

    def test_much_smaller_than_png(self, test_image):
        assert len(JpegCodec(quality=30).encode(test_image)) < 0.5 * len(
            PngCodec().encode(test_image)
        )

    def test_decode_foreign_quality(self, test_image):
        payload = JpegCodec(quality=35).encode(test_image)
        decoded = JpegCodec(quality=90).decode(payload)  # quality in header wins
        assert decoded.shape == test_image.shape

    def test_non_multiple_of_8_dims(self):
        image = to_uint8(value_noise_texture((37, 51), rng_for(4, "odd")))
        codec = JpegCodec(quality=70)
        decoded = codec.decode(codec.encode(image))
        assert decoded.shape == image.shape

    def test_quant_matrix_monotone(self):
        assert quality_to_quant_matrix(10).mean() > quality_to_quant_matrix(90).mean()

    def test_quality_bounds(self):
        with pytest.raises(ValueError):
            quality_to_quant_matrix(0)


class TestH264:
    @pytest.fixture(scope="class")
    def sequence(self):
        base = to_uint8(
            value_noise_texture((64, 64), rng_for(5, "video"), octaves=5, base_cells=6)
        )
        return [np.roll(base, 2 * i, axis=1) for i in range(8)]

    def test_gop_structure(self, sequence):
        encoded = H264Codec(gop=4).encode_sequence(sequence)
        types = [frame.frame_type for frame in encoded]
        assert types == ["I", "P", "P", "P", "I", "P", "P", "P"]

    def test_p_frames_smaller_than_i(self, sequence):
        encoded = H264Codec(gop=8).encode_sequence(sequence)
        i_size = encoded[0].num_bytes
        p_sizes = [frame.num_bytes for frame in encoded[1:]]
        assert max(p_sizes) < i_size

    def test_decode_tracks_encode(self, sequence):
        codec = H264Codec(gop=8)
        decoded = codec.decode_sequence(codec.encode_sequence(sequence))
        assert len(decoded) == len(sequence)
        for original, restored in zip(sequence, decoded):
            mse = np.mean((restored.astype(float) - original) ** 2)
            assert 10 * np.log10(255**2 / max(mse, 1e-9)) > 22

    def test_mean_rate_below_jpeg_stills(self, sequence):
        video_rate = H264Codec(i_quality=60, p_quality=35, gop=8).mean_bytes_per_frame(
            sequence
        )
        still_rate = np.mean([len(JpegCodec(quality=60).encode(f)) for f in sequence])
        assert video_rate < still_rate

    def test_static_scene_compresses_further(self):
        base = to_uint8(value_noise_texture((64, 64), rng_for(6, "static")))
        static = [base.copy() for _ in range(6)]
        moving = [np.roll(base, 3 * i, axis=0) for i in range(6)]
        codec = H264Codec(gop=6)
        assert codec.mean_bytes_per_frame(static) < codec.mean_bytes_per_frame(moving)

    def test_p_before_i_rejected(self, sequence):
        from repro.codecs.base import EncodedFrame

        codec = H264Codec()
        with pytest.raises(ValueError):
            codec.decode_sequence([EncodedFrame(payload=b"", frame_type="P")])

    def test_dims_must_be_macroblock_aligned(self):
        frames = [np.zeros((30, 30), dtype=np.uint8)] * 2
        with pytest.raises(ValueError):
            H264Codec(gop=1000).encode_sequence(frames)  # second frame is P
