"""Tests for the fleet-scale load generator (repro.loadgen).

Covers: the determinism contract (identical seeds reproduce identical
per-user streams and venue choices; ``workers=N`` is bit-identical to
serial; reruns of the runner produce identical reports), the statistical
shape of the offered load (Zipf venue frequencies within tolerance,
geometric mobility sessions, burst-envelope rate lift), stream
invariants under hypothesis, end-to-end replay behaviour (overload
sheds; hot-venue replication raises sustained throughput; the faulty
uplink leg abandons and degrades), SLO integration, and the
``repro loadtest`` CLI.
"""

from __future__ import annotations

import json

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cli import main
from repro.core import ServerConfig
from repro.loadgen import (
    TrafficModel,
    burst_envelope,
    empirical_zipf_error,
    generate_arrivals,
    run_loadtest,
    synthetic_service_seconds,
    zipf_weights,
)
from repro.network import CHANNEL_PRESETS
from repro.network.faults import FaultyChannel
from repro.obs import (
    MetricsRegistry,
    SloTracker,
    default_objectives,
    use_registry,
    use_slo_tracker,
)


def _model(**overrides) -> TrafficModel:
    base = dict(
        users=1200,
        venues=16,
        duration_seconds=20.0,
        rate_per_user=0.1,
        zipf_exponent=1.1,
        session_queries=4.0,
    )
    base.update(overrides)
    return TrafficModel(**base)


class TestTrafficModel:
    def test_validation(self):
        with pytest.raises(ValueError):
            TrafficModel(users=0)
        with pytest.raises(ValueError):
            TrafficModel(venues=0)
        with pytest.raises(ValueError):
            TrafficModel(duration_seconds=0.0)
        with pytest.raises(ValueError):
            TrafficModel(rate_per_user=0.0)
        with pytest.raises(ValueError):
            TrafficModel(zipf_exponent=-0.1)
        with pytest.raises(ValueError):
            TrafficModel(burst_multiplier=0.5)
        with pytest.raises(ValueError):
            TrafficModel(burst_dwell_seconds=5.0, calm_dwell_seconds=0.0)

    def test_zipf_weights_normalized_and_ranked(self):
        weights = zipf_weights(10, 1.1)
        assert weights.shape == (10,)
        assert weights.sum() == pytest.approx(1.0)
        assert np.all(np.diff(weights) < 0)  # rank 0 hottest

    def test_zipf_zero_exponent_is_uniform(self):
        weights = zipf_weights(8, 0.0)
        assert np.allclose(weights, 1.0 / 8)


class TestArrivalDeterminism:
    def test_same_seed_reproduces_stream_exactly(self):
        a = generate_arrivals(_model(), seed=5)
        b = generate_arrivals(_model(), seed=5)
        for field in ("times", "users", "venues", "sessions"):
            assert np.array_equal(getattr(a, field), getattr(b, field))

    def test_different_seed_changes_stream(self):
        a = generate_arrivals(_model(), seed=5)
        b = generate_arrivals(_model(), seed=6)
        assert len(a) != len(b) or not np.array_equal(a.times, b.times)

    def test_workers_bit_identical_to_serial(self):
        model = _model(users=700)
        serial = generate_arrivals(model, seed=9, workers=1, block_users=128)
        pooled = generate_arrivals(model, seed=9, workers=3, block_users=128)
        for field in ("times", "users", "venues", "sessions"):
            assert np.array_equal(getattr(serial, field), getattr(pooled, field))

    def test_block_streams_stable_under_user_count_growth(self):
        """Adding users must not disturb existing users' arrivals."""
        small = generate_arrivals(_model(users=256), seed=3, block_users=128)
        grown = generate_arrivals(_model(users=512), seed=3, block_users=128)
        keep = grown.users < 256
        assert np.array_equal(np.sort(small.times), np.sort(grown.times[keep]))

    def test_runner_report_identical_across_worker_counts(self):
        model = _model(users=600)
        cluster = ServerConfig(num_shards=4)
        with use_registry(MetricsRegistry()):
            serial = run_loadtest(
                model, cluster, seed=4, workers=1, block_users=128
            )
        with use_registry(MetricsRegistry()):
            pooled = run_loadtest(
                model, cluster, seed=4, workers=2, block_users=128
            )
        serial.pop("workers")
        pooled.pop("workers")
        assert json.dumps(serial, sort_keys=True) == json.dumps(
            pooled, sort_keys=True
        )

    def test_zipf_empirical_frequencies_within_tolerance(self):
        model = _model(users=4000, duration_seconds=30.0, zipf_exponent=1.2)
        stream = generate_arrivals(model, seed=7)
        assert len(stream) > 5000
        assert empirical_zipf_error(stream, model) < 0.02

    @given(
        users=st.integers(min_value=1, max_value=300),
        venues=st.integers(min_value=1, max_value=12),
        seed=st.integers(min_value=0, max_value=2**31),
        zipf=st.floats(min_value=0.0, max_value=3.0),
    )
    @settings(max_examples=25, deadline=None)
    def test_stream_invariants(self, users, venues, seed, zipf):
        model = TrafficModel(
            users=users,
            venues=venues,
            duration_seconds=5.0,
            rate_per_user=0.5,
            zipf_exponent=zipf,
        )
        stream = generate_arrivals(model, seed=seed, block_users=64)
        times, user_ids, venue_ids = stream.times, stream.users, stream.venues
        assert np.all(np.diff(times) >= 0)
        if len(stream):
            assert times.min() >= 0.0
            assert times.max() <= model.duration_seconds
            assert user_ids.min() >= 0 and user_ids.max() < users
            assert venue_ids.min() >= 0 and venue_ids.max() < venues
            # Session coherence: one venue and one user per session.
            for key in np.unique(stream.sessions):
                mask = stream.sessions == key
                assert np.unique(venue_ids[mask]).size == 1
                assert np.unique(user_ids[mask]).size == 1


class TestTrafficShape:
    def test_session_lengths_are_geometric_with_requested_mean(self):
        # Long per-user streams (~40 queries each), so truncation at the
        # horizon barely bites and the geometric mean shows through.
        model = _model(
            users=300, duration_seconds=40.0, rate_per_user=1.0,
            session_queries=5.0,
        )
        stream = generate_arrivals(model, seed=2)
        _, lengths = np.unique(stream.sessions, return_counts=True)
        assert 4.0 < lengths.mean() < 5.5

    def test_burst_envelope_alternates_and_starts_calm(self):
        model = _model(
            burst_multiplier=4.0, burst_dwell_seconds=2.0, calm_dwell_seconds=5.0
        )
        starts, multipliers = burst_envelope(model, seed=1)
        assert starts[0] == 0.0 and multipliers[0] == 1.0
        assert set(np.unique(multipliers)) == {1.0, 4.0}
        assert np.all(np.diff(starts) > 0)
        assert np.all(multipliers[:-1] != multipliers[1:])

    def test_calm_model_has_flat_envelope(self):
        starts, multipliers = burst_envelope(_model(), seed=1)
        assert list(starts) == [0.0] and list(multipliers) == [1.0]

    def test_bursts_lift_offered_volume(self):
        calm = generate_arrivals(_model(users=3000), seed=8)
        bursty = generate_arrivals(
            _model(
                users=3000,
                burst_multiplier=5.0,
                burst_dwell_seconds=4.0,
                calm_dwell_seconds=4.0,
            ),
            seed=8,
        )
        assert len(bursty) > 1.3 * len(calm)


class TestRunLoadtest:
    def test_accounting_identity_and_report_shape(self):
        with use_registry(MetricsRegistry()) as registry:
            report = run_loadtest(_model(), ServerConfig(num_shards=4), seed=1)
        assert report["offered"] == (
            report["served"] + report["shed"] + report["abandoned"]
        )
        assert report["offered"] == len(
            generate_arrivals(_model(), seed=1)
        )
        for key in ("p50", "p99", "p999"):
            assert report["latency_seconds"][key] >= 0.0
            assert key in report["queue_depth"]
        assert report["queries_per_second_per_core"] == pytest.approx(
            report["queries_per_second"] / 4
        )
        offered = registry.counter("loadgen_queries_offered_total").value
        assert offered == report["offered"]

    def test_overload_sheds_and_underload_does_not(self):
        light = _model(users=200, rate_per_user=0.02)
        heavy = _model(users=5000, rate_per_user=0.5)
        slow = synthetic_service_seconds(seed=0, mean_seconds=0.05)
        with use_registry(MetricsRegistry()):
            ok = run_loadtest(
                light, ServerConfig(num_shards=4), seed=3, service_samples=slow
            )
        with use_registry(MetricsRegistry()):
            melt = run_loadtest(
                heavy,
                ServerConfig(num_shards=4, queue_depth=8),
                seed=3,
                service_samples=slow,
            )
        assert ok["shed"] == 0
        assert melt["shed_fraction"] > 0.5
        assert melt["queue_depth"]["p99"] >= ok["queue_depth"]["p99"]

    def test_replicating_the_zipf_head_raises_sustained_qps(self):
        """The acceptance scenario: one venue takes >= 50% of traffic;
        replication_factor=2 must measurably beat 1 on sustained qps."""
        model = _model(
            users=4000, venues=16, duration_seconds=30.0,
            rate_per_user=0.05, zipf_exponent=3.0,
        )
        results = {}
        for factor in (1, 2):
            cluster = ServerConfig(
                num_shards=4, queue_depth=16, replication_factor=factor
            )
            with use_registry(MetricsRegistry()):
                results[factor] = run_loadtest(model, cluster, seed=11)
        assert results[1]["hot_venue_share"] >= 0.5
        assert results[1]["offered"] == results[2]["offered"]
        gain = (
            results[2]["queries_per_second"] / results[1]["queries_per_second"]
        )
        assert gain > 1.5
        assert results[2]["shed"] < results[1]["shed"]

    def test_faulty_uplink_abandons_and_degrades(self):
        model = _model(users=400, duration_seconds=10.0)
        channel = FaultyChannel(CHANNEL_PRESETS["lte"], loss=0.6, seed=5)
        with use_registry(MetricsRegistry()):
            report = run_loadtest(
                model, ServerConfig(num_shards=4), seed=5, channel=channel
            )
        assert report["abandoned"] > 0
        assert report["uplink"]["degraded"] > 0
        assert report["uplink"]["retries"] > 0
        assert report["offered"] == (
            report["served"] + report["shed"] + report["abandoned"]
        )
        # Lost arrivals still stretch the run: throughput divides by the
        # full offered horizon (the satellite-2 contract, end to end).
        assert report["makespan_seconds"] >= report["last_arrival_seconds"]

    def test_slo_tracker_sees_simulated_overload(self):
        heavy = _model(users=5000, rate_per_user=0.5)
        registry = MetricsRegistry()
        tracker = SloTracker(default_objectives(), registry=registry)
        with use_registry(registry), use_slo_tracker(tracker):
            report = run_loadtest(
                heavy, ServerConfig(num_shards=2, queue_depth=8), seed=6
            )
        assert report["slo"]["alerts_fired"] >= 1
        assert tracker.alerts_fired >= 1
        availability = report["slo"]["objectives"]["availability"]
        assert availability["error_rate"] > 0.5
        assert 0 < availability["total_events"] <= 2100

    def test_empty_service_samples_rejected(self):
        with pytest.raises(ValueError):
            run_loadtest(
                _model(users=10),
                seed=0,
                service_samples=[],
                registry=MetricsRegistry(),
            )


class TestLoadtestCli:
    def test_smoke_and_bit_identical_rerun(self, tmp_path, capsys):
        out_a = tmp_path / "a.json"
        out_b = tmp_path / "b.json"
        flags = [
            "loadtest", "--users", "500", "--venues", "8", "--rate", "0.05",
            "--shards", "4", "--fast", "--seed", "3",
        ]
        assert main(flags + ["--out", str(out_a)]) == 0
        assert main(flags + ["--out", str(out_b)]) == 0
        assert out_a.read_bytes() == out_b.read_bytes()
        report = json.loads(out_a.read_text())
        assert report["traffic"]["users"] == 500
        assert {"p50", "p99", "p999"} <= set(report["latency_seconds"])
        assert "sustained" in capsys.readouterr().out

    def test_cli_replication_flag_reaches_report(self, tmp_path):
        out = tmp_path / "rep.json"
        assert main([
            "loadtest", "--users", "300", "--fast", "--replication-factor",
            "2", "--out", str(out),
        ]) == 0
        assert json.loads(out.read_text())["cluster"]["replication_factor"] == 2

    def test_cli_slo_report_artifact(self, tmp_path):
        out = tmp_path / "bench.json"
        slo = tmp_path / "slo.json"
        assert main([
            "loadtest", "--users", "300", "--venues", "8", "--rate", "0.02",
            "--shards", "8", "--fast", "--out", str(out),
            "--slo-report", str(slo),
        ]) == 0
        slo_doc = json.loads(slo.read_text())
        assert "objectives" in slo_doc
        # A healthy operating point must close the CI gate.
        assert main(["slo-report", str(slo), "--fail-on-alerts"]) == 0
