"""Tests for ASCII plotting, server persistence, and the e2e latency driver."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import Fingerprint, VisualPrintConfig, VisualPrintServer
from repro.core.persistence import load_server, save_server
from repro.evaluation.experiments import latency_e2e
from repro.evaluation.plots import ascii_boxplot, ascii_cdf, ascii_series
from repro.features.keypoint import KeypointSet
from repro.wardrive.environment import random_sift_descriptor


class TestAsciiPlots:
    def test_cdf_contains_markers_and_legend(self, rng):
        series = {"alpha": rng.normal(0, 1, 100), "beta": rng.normal(2, 1, 100)}
        rendered = ascii_cdf(series, label="meters")
        assert "a=alpha" in rendered and "b=beta" in rendered
        assert "meters" in rendered
        assert "a" in rendered.splitlines()[3]

    def test_cdf_monotone_marker_columns(self, rng):
        rendered = ascii_cdf({"x": rng.normal(0, 1, 200)}, width=40, height=8)
        # each column's marker row index must not increase left-to-right
        rows = [line.split("|", 1)[1] for line in rendered.splitlines()[:8]]
        first_marker_row = []
        for column in range(40):
            for row_index, row in enumerate(rows):
                if row[column] == "a":
                    first_marker_row.append(row_index)
                    break
        assert all(a >= b for a, b in zip(first_marker_row, first_marker_row[1:]))

    def test_boxplot_median_marker(self, rng):
        rendered = ascii_boxplot({"s": rng.uniform(0, 10, 50)})
        assert "#" in rendered
        assert "med=" in rendered

    def test_series_log_scale(self):
        xs = np.array([1.0, 2.0, 4.0, 8.0])
        rendered = ascii_series(
            xs, {"fps": np.array([1.0, 10.0, 100.0, 1000.0])}, log_y=True
        )
        assert "log y" in rendered

    def test_empty_series_rejected(self):
        with pytest.raises(ValueError):
            ascii_cdf({})
        with pytest.raises(ValueError):
            ascii_boxplot({})

    def test_constant_series_handled(self):
        rendered = ascii_cdf({"c": np.full(10, 3.0)})
        assert "a=c" in rendered  # marker 'a' labels the series named 'c'


class TestServerPersistence:
    @pytest.fixture
    def server(self, rng):
        config = VisualPrintConfig(descriptor_capacity=5_000, fingerprint_size=10)
        bounds = (np.zeros(3), np.array([10.0, 10.0, 3.0]))
        server = VisualPrintServer(config, bounds=bounds)
        descriptors = np.array([random_sift_descriptor(rng) for _ in range(150)])
        positions = rng.uniform(0, 10, (150, 3))
        server.ingest(descriptors, positions)
        return server, descriptors

    def test_roundtrip_oracle_counts(self, server, tmp_path, rng):
        original, descriptors = server
        path = tmp_path / "server.npz"
        save_server(original, path)
        restored = load_server(path)
        probe = np.vstack(
            [descriptors[:20], [random_sift_descriptor(rng) for _ in range(20)]]
        )
        assert np.array_equal(
            restored.oracle.counts(probe), original.oracle.counts(probe)
        )

    def test_roundtrip_localization(self, server, tmp_path, rng):
        original, descriptors = server
        path = tmp_path / "server.npz"
        save_server(original, path)
        restored = load_server(path)
        pixels = rng.uniform(50, 590, size=(15, 2)).astype(np.float32)
        fingerprint = Fingerprint(
            keypoints=KeypointSet(
                positions=pixels,
                scales=np.ones(15, np.float32),
                orientations=np.zeros(15, np.float32),
                responses=np.ones(15, np.float32),
                descriptors=descriptors[:15].astype(np.float32),
            ),
            uniqueness_counts=np.zeros(15, dtype=np.int64),
        )
        a = original.localize(fingerprint)
        b = restored.localize(fingerprint)
        assert a.matched_points == b.matched_points
        assert a.pose.position_error(b.pose) < 1e-6

    def test_roundtrip_bounds_and_counts(self, server, tmp_path):
        original, _ = server
        path = tmp_path / "server.npz"
        save_server(original, path)
        restored = load_server(path)
        assert restored.num_mappings == original.num_mappings
        low_a, high_a = original.bounds()
        low_b, high_b = restored.bounds()
        assert np.array_equal(low_a, low_b)
        assert np.array_equal(high_a, high_b)

    def test_empty_server_roundtrip(self, tmp_path):
        config = VisualPrintConfig(descriptor_capacity=2_000)
        server = VisualPrintServer(config)
        path = tmp_path / "empty.npz"
        save_server(server, path)
        restored = load_server(path)
        assert restored.num_mappings == 0


class TestLatencyE2E:
    def test_shape_cellular_vs_wifi(self):
        result = latency_e2e.run(num_frames=4, image_size=160)
        latencies = result["latencies"]
        # frame upload suffers far more than VisualPrint when moving from
        # wifi to 3g (the payload gap dominates serialization).
        frame_penalty = np.median(latencies["3g"]["frame_upload"]) - np.median(
            latencies["wifi"]["frame_upload"]
        )
        vp_penalty = np.median(latencies["3g"]["visualprint"]) - np.median(
            latencies["wifi"]["visualprint"]
        )
        assert frame_penalty > vp_penalty

    def test_payload_accounting(self):
        result = latency_e2e.run(num_frames=3, image_size=160)
        assert result["mean_fingerprint_bytes"] < result["mean_frame_bytes"]
        assert result["mean_compute_seconds"] > 0
