"""Unit tests for ICP registration and the drift-correction pipeline."""

from __future__ import annotations

import numpy as np
import pytest

from repro.wardrive import (
    DriftModel,
    IndoorEnvironment,
    WardriveSession,
    icp_align,
    icp_point_to_plane,
    merge_snapshots,
)
from repro.wardrive.icp import IcpResult, fit_shell, shell_grid


def _box_cloud(rng, n=1500):
    """Three orthogonal planes: a well-conditioned registration target."""
    parts = [
        np.column_stack([rng.uniform(0, 10, n), rng.uniform(0, 10, n), np.zeros(n)]),
        np.column_stack([np.zeros(n), rng.uniform(0, 10, n), rng.uniform(0, 3, n)]),
        np.column_stack([rng.uniform(0, 10, n), np.zeros(n), rng.uniform(0, 3, n)]),
    ]
    return np.vstack(parts)


def _rigid(points, angle, translation):
    c, s = np.cos(angle), np.sin(angle)
    rotation = np.array([[c, -s, 0], [s, c, 0], [0, 0, 1.0]])
    return points @ rotation.T + translation


class TestIcpAlign:
    def test_recovers_known_transform(self, rng):
        cloud = _box_cloud(rng)
        moved = _rigid(cloud, 0.05, np.array([0.3, -0.2, 0.1]))
        result = icp_align(moved, cloud, max_pair_distance=1.0)
        assert np.abs(result.apply(moved) - cloud).max() < 1e-6
        assert result.converged

    def test_identity_for_aligned_clouds(self, rng):
        cloud = _box_cloud(rng)
        result = icp_align(cloud, cloud)
        assert result.rotation_angle < 1e-6
        assert np.linalg.norm(result.translation) < 1e-6

    def test_too_few_points(self):
        result = icp_align(np.zeros((2, 3)), np.zeros((10, 3)))
        assert not result.converged
        assert np.isinf(result.rms_error)

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            icp_align(np.zeros((5, 2)), np.zeros((5, 3)))

    def test_result_identity_factory(self):
        identity = IcpResult.identity()
        points = np.ones((4, 3))
        assert np.array_equal(identity.apply(points), points)


class TestIcpPointToPlane:
    def test_recovers_known_transform(self, rng):
        cloud = _box_cloud(rng)
        normals = np.vstack(
            [
                np.tile([0, 0, 1.0], (1500, 1)),
                np.tile([1.0, 0, 0], (1500, 1)),
                np.tile([0, 1.0, 0], (1500, 1)),
            ]
        )
        moved = _rigid(cloud, 0.04, np.array([0.4, -0.3, 0.15]))
        result = icp_point_to_plane(moved, cloud, normals, max_pair_distance=1.5)
        residual = np.abs(result.apply(moved) - cloud).mean()
        # Damping slows the final digits of convergence; what matters is
        # that the recovered transform puts the cloud back on the planes.
        assert residual < 0.05

    def test_damping_limits_unconstrained_drift(self, rng):
        """A single plane leaves two translation DoF free; damping keeps
        the correction from wandering along them."""
        n = 2000
        plane = np.column_stack(
            [rng.uniform(0, 10, n), rng.uniform(0, 10, n), np.zeros(n)]
        )
        normals = np.tile([0.0, 0.0, 1.0], (n, 1))
        moved = plane + np.array([0.0, 0.0, 0.5])
        result = icp_point_to_plane(moved, plane, normals, max_pair_distance=2.0)
        # z is corrected; x/y stay put.
        assert result.translation[2] == pytest.approx(-0.5, abs=0.05)
        assert np.abs(result.translation[:2]).max() < 0.2

    def test_misaligned_normals_rejected(self, rng):
        cloud = _box_cloud(rng)
        with pytest.raises(ValueError):
            icp_point_to_plane(cloud, cloud, np.zeros((5, 3)))


class TestShellFit:
    def test_fits_box_extents(self, rng):
        points, normals = shell_grid(np.zeros(3), np.array([20.0, 10.0, 3.0]), 0.5)
        noisy = points + rng.normal(0, 0.02, points.shape)
        low, high = fit_shell(noisy, normals)
        assert np.allclose(low, 0.0, atol=0.2)
        assert np.allclose(high, [20.0, 10.0, 3.0], atol=0.3)

    def test_shell_grid_normals_inward(self):
        points, normals = shell_grid(np.zeros(3), np.ones(3) * 4.0, 1.0)
        center = np.full(3, 2.0)
        # normals point toward the interior
        toward_center = ((center - points) * normals).sum(axis=1)
        assert (toward_center > 0).all()

    def test_degenerate_shell_rejected(self):
        with pytest.raises(ValueError):
            shell_grid(np.zeros(3), np.zeros(3))


class TestMergeSnapshots:
    @pytest.fixture(scope="class")
    def drifty_session(self):
        environment = IndoorEnvironment.build("cafeteria", seed=6)
        session = WardriveSession(
            environment, seed=6, drift=DriftModel(scale=3.0)
        )
        snapshots = [session.rig.capture(pose) for pose in session.path[:60]]
        snapshots = [s for s in snapshots if s.num_observations > 0]
        return environment, snapshots

    def test_reduces_heavy_drift(self, drifty_session):
        environment, snapshots = drifty_session
        corrected = merge_snapshots(snapshots)
        raw_err, icp_err = [], []
        for snapshot, positions in zip(snapshots, corrected):
            truth = environment.positions[snapshot.landmark_ids]
            raw_err.append(
                np.linalg.norm(snapshot.world_estimates - truth, axis=1).mean()
            )
            icp_err.append(np.linalg.norm(positions - truth, axis=1).mean())
        assert np.median(icp_err) <= np.median(raw_err) * 1.1

    def test_output_alignment(self, drifty_session):
        _, snapshots = drifty_session
        corrected = merge_snapshots(snapshots)
        assert len(corrected) == len(snapshots)
        for snapshot, positions in zip(snapshots, corrected):
            assert positions.shape == snapshot.world_estimates.shape

    def test_empty_input(self):
        assert merge_snapshots([]) == []
