"""Tests for the SLO engine, event log, and live-dashboard rendering.

Covers: objective validation and good/bad classification, sliding
window eviction, multi-window burn-rate alerting (edge-triggered, one
alert per excursion, min_events suppression), the published
``slo_budget_remaining`` / ``slo_burn_rate`` / ``slo_burn_alerts_total``
instruments, report/write_json, the contextual tracker resolved by the
serving frontend (per-venue and per-shard scopes, reject and failure
outcomes), the structured :class:`EventLog` (trace correlation,
capacity trim, NDJSON round trip, parallel ship-back), the ``repro
top`` renderer, and the ``top`` / ``slo-report`` CLI subcommands.
"""

from __future__ import annotations

import json

import pytest

from repro.cli import main as cli_main
from repro.network.faults import FaultSpec, FaultyChannel, RetryPolicy, submit_payload
from repro.obs import (
    EventLog,
    MetricsRegistry,
    SloObjective,
    SloTracker,
    Tracer,
    current_event_log,
    current_slo_tracker,
    default_objectives,
    emit_event,
    parse_metric_key,
    render_dashboard,
    run_top,
    use_event_log,
    use_slo_tracker,
)
from repro.parallel import parallel_map
from repro.serving import ServingFrontend, ShardSaturatedError
from repro.util.rng import rng_for


class _Echo:
    def serve(self, payload):
        return ("echo", payload)


def _fast_objective(**overrides) -> SloObjective:
    """A tiny availability objective that alerts quickly in tests."""
    defaults = dict(
        name="avail",
        target=0.9,
        window_seconds=60.0,
        fast_window_seconds=10.0,
        fast_burn_threshold=2.0,
        slow_burn_threshold=1.0,
        min_events=5,
    )
    defaults.update(overrides)
    return SloObjective(**defaults)


# ---------------------------------------------------------------------------
# Worker body must be module-level so the pool can pickle it.
# ---------------------------------------------------------------------------


def _emit_one(value: int) -> int:
    emit_event("test.tick", value=value)
    return value


class TestSloObjective:
    def test_validation(self):
        with pytest.raises(ValueError):
            SloObjective(name="", target=0.9)
        with pytest.raises(ValueError):
            SloObjective(name="x", target=1.0)  # zero budget
        with pytest.raises(ValueError):
            SloObjective(name="x", target=-0.1)
        with pytest.raises(ValueError):
            SloObjective(name="x", target=0.9, threshold_seconds=0.0)
        with pytest.raises(ValueError):
            SloObjective(
                name="x", target=0.9, window_seconds=10.0, fast_window_seconds=20.0
            )

    def test_budget(self):
        assert SloObjective(name="x", target=0.99).budget == pytest.approx(0.01)

    def test_latency_classification(self):
        objective = SloObjective(name="lat", target=0.9, threshold_seconds=1.0)
        assert objective.is_good(True, 0.5)
        assert not objective.is_good(True, 1.5)
        assert not objective.is_good(False, 0.5)
        assert objective.is_good(True, None)  # no latency signal, success

    def test_availability_classification(self):
        objective = SloObjective(name="avail", target=0.9)
        assert objective.is_good(True, 99.0)  # latency irrelevant
        assert not objective.is_good(False, None)

    def test_default_objectives(self):
        latency, availability = default_objectives(latency_threshold_seconds=0.5)
        assert latency.threshold_seconds == 0.5
        assert availability.threshold_seconds is None
        assert latency.target == 0.99 and availability.target == 0.999


class TestSloTracker:
    def test_duplicate_objective_rejected(self):
        with pytest.raises(ValueError):
            SloTracker([_fast_objective(), _fast_objective()])
        tracker = SloTracker([_fast_objective()])
        with pytest.raises(ValueError):
            tracker.add_objective(_fast_objective())

    def test_budget_gauges_published(self):
        registry = MetricsRegistry()
        tracker = SloTracker([_fast_objective()], registry=registry)
        for i in range(10):
            tracker.record(ok=(i != 0), now=float(i), venue="office")
        remaining = registry.gauge(
            "slo_budget_remaining", objective="avail", venue="office"
        ).value
        # 1 bad / 10 events = 10% error rate = exactly the 10% budget.
        assert remaining == pytest.approx(0.0)

    def test_window_eviction(self):
        tracker = SloTracker([_fast_objective()])
        tracker.record(ok=False, now=0.0, venue="v")
        for i in range(1, 10):
            tracker.record(ok=True, now=float(i), venue="v")
        # Push time past the 60s window: the early failure ages out.
        for i in range(10):
            tracker.record(ok=True, now=100.0 + i, venue="v")
        scope = tracker.report()["objectives"][0]["scopes"][0]
        assert scope["window_bad"] == 0
        assert scope["total_bad"] == 1  # lifetime counters never evict

    def test_burn_alert_fires_once_per_excursion(self):
        registry = MetricsRegistry()
        events = EventLog()
        tracker = SloTracker([_fast_objective()], registry=registry)
        with use_event_log(events):
            for i in range(8):
                tracker.record(ok=False, now=float(i), venue="v")
            assert tracker.alerts_fired == 1  # edge-triggered, not per query
            # Recover: burn drops below threshold, alert re-arms.
            for i in range(60):
                tracker.record(ok=True, now=8.0 + i, venue="v")
            for i in range(10):
                tracker.record(ok=False, now=70.0 + i, venue="v")
        assert tracker.alerts_fired == 2
        assert registry.counter(
            "slo_burn_alerts_total", objective="avail", venue="v"
        ).value == 2
        kinds = [record["kind"] for record in events.records]
        assert kinds.count("slo.burn_alert") == 2
        alert = events.by_kind("slo.burn_alert")[0]
        assert alert["objective"] == "avail" and alert["venue"] == "v"

    def test_min_events_suppresses_thin_windows(self):
        tracker = SloTracker([_fast_objective(min_events=50)])
        for i in range(20):
            tracker.record(ok=False, now=float(i), venue="v")
        assert tracker.alerts_fired == 0

    def test_scopes_are_independent(self):
        tracker = SloTracker([_fast_objective()])
        for i in range(8):
            tracker.record(ok=False, now=float(i), venue="bad")
            tracker.record(ok=True, now=float(i), venue="good")
        report = tracker.report()
        scopes = {
            tuple(sorted(s["scope"].items())): s
            for s in report["objectives"][0]["scopes"]
        }
        assert scopes[(("venue", "bad"),)]["alerts_fired"] == 1
        assert scopes[(("venue", "good"),)]["alerts_fired"] == 0

    def test_report_schema_and_write_json(self, tmp_path):
        tracker = SloTracker(default_objectives())
        tracker.record(latency_seconds=0.2, ok=True, now=1.0, venue="office")
        path = tmp_path / "slo_report.json"
        tracker.write_json(str(path))
        report = json.loads(path.read_text())
        assert report["alerts_fired"] == 0
        names = {o["name"]: o for o in report["objectives"]}
        assert names["latency"]["kind"] == "latency"
        assert names["availability"]["kind"] == "availability"
        scope = names["latency"]["scopes"][0]
        assert scope["scope"] == {"venue": "office"}
        assert scope["window_events"] == 1

    def test_contextual_tracker(self):
        assert current_slo_tracker() is None
        tracker = SloTracker()
        with use_slo_tracker(tracker):
            assert current_slo_tracker() is tracker
        assert current_slo_tracker() is None


class TestFrontendSloIntegration:
    def test_served_queries_feed_venue_and_shard_scopes(self):
        registry = MetricsRegistry()
        tracker = SloTracker(default_objectives(), registry=registry)
        with use_slo_tracker(tracker):
            frontend = ServingFrontend(registry=registry)
        assert frontend.slo is tracker
        frontend.register_venue("office", _Echo())
        for i in range(6):
            frontend.call("office", i)
        report = tracker.report()
        availability = next(
            o for o in report["objectives"] if o["name"] == "availability"
        )
        scopes = {
            tuple(sorted(s["scope"].items())): s["window_events"]
            for s in availability["scopes"]
        }
        assert scopes[(("venue", "office"),)] == 6
        assert sum(
            count for key, count in scopes.items() if key[0][0] == "shard"
        ) == 6

    def test_reject_records_bad_outcome_and_event(self):
        registry = MetricsRegistry()
        tracker = SloTracker([_fast_objective(min_events=1)], registry=registry)
        events = EventLog()
        frontend = ServingFrontend(
            num_shards=1,
            queue_depth=2,
            admission="reject",
            registry=registry,
            slo=tracker,
        )
        frontend.register_venue("a", _Echo())
        shard = frontend.venues.shard_for("a")
        state = frontend._shards[shard]
        state.set_depth(2, frontend.queue_depth)
        with use_event_log(events):
            with pytest.raises(ShardSaturatedError):
                frontend.call("a", 1)
        reject = events.by_kind("admission.reject")[0]
        assert reject["shard"] == shard and reject["venue"] == "a"
        scope = tracker.report()["objectives"][0]["scopes"]
        assert all(s["window_bad"] == 1 for s in scope)
        state.set_depth(0, frontend.queue_depth)

    def test_engine_failure_records_bad_outcome(self):
        class Boom:
            def serve(self, payload):
                raise RuntimeError("boom")

        tracker = SloTracker([_fast_objective(min_events=1)])
        frontend = ServingFrontend(slo=tracker)
        frontend.register_venue("bad", Boom())
        with pytest.raises(RuntimeError):
            frontend.call("bad", 1)
        assert all(
            s["window_bad"] == 1
            for s in tracker.report()["objectives"][0]["scopes"]
        )

    def test_no_tracker_is_free(self):
        frontend = ServingFrontend()
        assert frontend.slo is None
        frontend.register_venue("a", _Echo())
        assert frontend.call("a", 1) == ("echo", 1)


class TestEventLog:
    def test_emit_assigns_seq_and_kind(self):
        log = EventLog()
        log.emit("a.b", detail=1)
        log.emit("a.c")
        assert [r["seq"] for r in log.records] == [0, 1]
        assert log.by_kind("a.b")[0]["detail"] == 1
        assert len(log) == 2

    def test_reserved_fields_not_clobbered(self):
        log = EventLog()
        record = log.emit("k", seq=99, ts=-1.0)
        assert record["seq"] == 0 and record["kind"] == "k" and record["ts"] > 0

    def test_trace_correlation(self):
        registry = MetricsRegistry()
        tracer = Tracer(registry=registry)
        log = EventLog()
        with tracer.span("frame") as span:
            record = log.emit("degrade.step")
        assert record["trace_id"] == span.trace_id
        assert record["span_id"] == span.span_id

    def test_capacity_trims_oldest(self):
        registry = MetricsRegistry()
        log = EventLog(capacity=3, registry=registry)
        for i in range(5):
            log.emit("tick", i=i)
        assert len(log) == 3
        assert log.dropped == 2
        assert [r["i"] for r in log.records] == [2, 3, 4]
        assert registry.counter("obs_events_dropped_total").value == 2

    def test_events_counter_by_kind(self):
        registry = MetricsRegistry()
        log = EventLog(registry=registry)
        log.emit("a")
        log.emit("a")
        log.emit("b")
        assert registry.counter("obs_events_total", kind="a").value == 2

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            EventLog(capacity=0)

    def test_tail(self):
        log = EventLog()
        for i in range(5):
            log.emit("tick", i=i)
        assert [r["i"] for r in log.tail(2)] == [3, 4]
        assert log.tail(0) == []

    def test_ndjson_round_trip(self, tmp_path):
        log = EventLog()
        log.emit("a", x=1)
        log.emit("b", y="z")
        path = tmp_path / "events.ndjson"
        log.write_ndjson(str(path))
        lines = [json.loads(line) for line in path.read_text().splitlines()]
        assert [r["kind"] for r in lines] == ["a", "b"]

    def test_merge_state_reassigns_seq(self):
        parent = EventLog()
        parent.emit("parent.tick")
        child = EventLog()
        child.emit("child.tick")
        parent.merge_state(child.state())
        assert [r["seq"] for r in parent.records] == [0, 1]
        assert [r["kind"] for r in parent.records] == ["parent.tick", "child.tick"]

    def test_emit_event_without_log_is_noop(self):
        assert current_event_log() is None
        assert emit_event("orphan") is None

    def test_parallel_ship_back_matches_serial(self):
        def run(workers: int) -> list[str]:
            log = EventLog()
            with use_event_log(log):
                parallel_map(_emit_one, list(range(9)), workers=workers)
            return [(r["kind"], r["value"]) for r in log.records]

        serial = run(1)
        pooled = run(3)
        assert serial == pooled
        assert len(serial) == 9

    def test_fault_path_events(self):
        """degrade.step and retry.exhausted fire only on fault paths."""
        from repro.network import CHANNEL_PRESETS

        rng = rng_for(3, "test-slo/faults")
        channel = FaultyChannel(CHANNEL_PRESETS["lte"], FaultSpec(loss=1.0, seed=11))
        log = EventLog()
        with use_event_log(log):
            outcome = submit_payload(
                channel,
                [4000, 2000, 1000],
                RetryPolicy(max_attempts=3, budget_seconds=1e9),
                rng,
            )
        assert outcome.status == "abandoned"
        assert len(log.by_kind("degrade.step")) == 2  # two rungs down
        assert len(log.by_kind("retry.exhausted")) == 1
        # Zero-fault parity: a clean channel emits nothing.
        clean = FaultyChannel(CHANNEL_PRESETS["lte"], FaultSpec(seed=11))
        log2 = EventLog()
        with use_event_log(log2):
            outcome = submit_payload(
                clean, [4000, 2000], RetryPolicy(max_attempts=3), rng
            )
        assert outcome.status == "delivered"
        assert len(log2) == 0


class TestTopRenderer:
    def test_parse_metric_key(self):
        assert parse_metric_key("plain") == ("plain", {})
        assert parse_metric_key("m{a=1,b=x}") == ("m", {"a": "1", "b": "x"})

    def _snapshot(self) -> tuple[dict, EventLog]:
        registry = MetricsRegistry()
        tracker = SloTracker(default_objectives(), registry=registry)
        events = EventLog(registry=registry)
        with use_slo_tracker(tracker), use_event_log(events):
            frontend = ServingFrontend(num_shards=2, registry=registry)
            frontend.register_venue("office", _Echo())
            for i in range(5):
                frontend.call("office", i)
            frontend.add_shard()
        return registry.to_dict(), events

    def test_render_dashboard_sections(self):
        snapshot, events = self._snapshot()
        text = render_dashboard(snapshot, events=events.records)
        assert "served=5" in text
        assert "--- shards" in text
        assert "--- slo" in text
        assert "--- events" in text
        assert "shard.add" in text
        assert "venue=office" in text

    def test_render_dashboard_empty_snapshot(self):
        text = render_dashboard({})
        assert "venues=0" in text
        assert "--- shards" not in text

    def test_run_top_plain(self, tmp_path, capsys):
        snapshot, events = self._snapshot()
        metrics_path = tmp_path / "metrics.json"
        metrics_path.write_text(json.dumps(snapshot))
        events_path = tmp_path / "events.ndjson"
        events.write_ndjson(str(events_path))
        code = run_top(
            str(metrics_path),
            events_path=str(events_path),
            iterations=1,
            plain=True,
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "served=5" in out and "shard.add" in out

    def test_run_top_waits_for_missing_file(self, tmp_path, capsys):
        code = run_top(str(tmp_path / "nope.json"), iterations=1, plain=True)
        assert code == 0
        assert "waiting for" in capsys.readouterr().out


class TestSloCli:
    def _artifacts(self, tmp_path) -> tuple[str, str]:
        registry = MetricsRegistry()
        tracker = SloTracker(default_objectives(), registry=registry)
        with use_slo_tracker(tracker):
            frontend = ServingFrontend(registry=registry)
            frontend.register_venue("office", _Echo())
            for i in range(4):
                frontend.call("office", i)
        metrics_path = tmp_path / "metrics.json"
        registry.write_json(str(metrics_path))
        report_path = tmp_path / "slo_report.json"
        tracker.write_json(str(report_path))
        return str(metrics_path), str(report_path)

    def test_slo_report_from_report_json(self, tmp_path, capsys):
        _, report_path = self._artifacts(tmp_path)
        assert cli_main(["slo-report", report_path, "--fail-on-alerts"]) == 0
        out = capsys.readouterr().out
        assert "objective latency" in out
        assert "venue=office" in out
        assert "alerts fired: 0" in out

    def test_slo_report_from_metrics_snapshot(self, tmp_path, capsys):
        metrics_path, _ = self._artifacts(tmp_path)
        assert cli_main(["slo-report", metrics_path]) == 0
        out = capsys.readouterr().out
        assert "venue=office" in out

    def test_slo_report_fails_on_alerts(self, tmp_path, capsys):
        report_path = tmp_path / "alerting.json"
        tracker = SloTracker([_fast_objective()])
        for i in range(8):
            tracker.record(ok=False, now=float(i), venue="v")
        tracker.write_json(str(report_path))
        assert cli_main(["slo-report", str(report_path)]) == 0
        assert cli_main(["slo-report", str(report_path), "--fail-on-alerts"]) == 1

    def test_top_subcommand(self, tmp_path, capsys):
        metrics_path, _ = self._artifacts(tmp_path)
        assert cli_main(
            ["top", metrics_path, "--plain", "--iterations", "1"]
        ) == 0
        assert "served=4" in capsys.readouterr().out

    def test_serve_writes_slo_and_event_artifacts(self, tmp_path, capsys):
        state = tmp_path / "state"
        report = tmp_path / "slo_report.json"
        events = tmp_path / "events.ndjson"
        metrics = tmp_path / "metrics.json"
        code = cli_main(
            [
                "serve",
                "--state",
                str(state),
                "--bootstrap",
                "1",
                "--queries",
                "4",
                "--metrics-json",
                str(metrics),
                "--slo-report",
                str(report),
                "--events-ndjson",
                str(events),
            ]
        )
        assert code == 0
        slo_report = json.loads(report.read_text())
        assert slo_report["alerts_fired"] == 0
        availability = next(
            o for o in slo_report["objectives"] if o["name"] == "availability"
        )
        assert sum(
            s["window_events"]
            for s in availability["scopes"]
            if "venue" in s["scope"]
        ) == 4
        snapshot = json.loads(metrics.read_text())
        assert any(
            key.startswith("slo_budget_remaining") for key in snapshot["gauges"]
        )
        assert events.exists()
