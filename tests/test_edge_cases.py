"""Edge-case and failure-injection tests across subsystems."""

from __future__ import annotations

import numpy as np
import pytest

from repro.codecs import H264Codec, JpegCodec, PngCodec
from repro.core import Fingerprint, UniquenessOracle, VisualPrintConfig
from repro.evaluation.datasets import build_workload
from repro.features import SiftExtractor, SiftParams
from repro.features.keypoint import KeypointSet
from repro.imaging import to_uint8
from repro.lsh import E2LSHParams, LshIndex
from repro.localization import AngularLocalizer, LocalizationProblem
from repro.geometry import CameraIntrinsics


class TestTinyInputs:
    def test_sift_on_minimum_size_image(self):
        image = np.random.default_rng(0).random((16, 16)).astype(np.float32)
        keypoints = SiftExtractor().extract(image)
        assert isinstance(keypoints, KeypointSet)  # no crash; may be empty

    def test_png_on_single_row(self):
        image = np.arange(32, dtype=np.uint8).reshape(1, 32)
        codec = PngCodec()
        assert np.array_equal(codec.decode(codec.encode(image)), image)

    def test_jpeg_on_tiny_image(self):
        image = np.full((4, 4), 128, dtype=np.uint8)
        codec = JpegCodec(quality=90)
        decoded = codec.decode(codec.encode(image))
        assert decoded.shape == (4, 4)
        assert np.abs(decoded.astype(int) - 128).max() < 10

    def test_h264_single_frame(self):
        frame = np.zeros((32, 32), dtype=np.uint8)
        encoded = H264Codec().encode_sequence([frame])
        assert len(encoded) == 1
        assert encoded[0].frame_type == "I"

    def test_h264_empty_sequence(self):
        codec = H264Codec()
        assert codec.encode_sequence([]) == []
        assert codec.mean_bytes_per_frame([]) == 0.0

    def test_lsh_single_descriptor(self):
        index = LshIndex(E2LSHParams(num_tables=2))
        descriptor = np.full((1, 128), 100.0, dtype=np.float32)
        index.build(descriptor, np.array([7]))
        matches = index.query(descriptor[0])
        assert matches[0].item_id == 7


class TestDegenerateGeometry:
    def test_solver_with_collinear_points(self):
        """All 3D points on one line: the solve stays bounded."""
        intrinsics = CameraIntrinsics()
        pixels = np.column_stack(
            [np.linspace(100, 500, 8), np.full(8, intrinsics.height / 2)]
        )
        world = np.column_stack(
            [np.full(8, 10.0), np.linspace(-3, 3, 8), np.full(8, 1.5)]
        )
        problem = LocalizationProblem(
            pixels=pixels,
            world_points=world,
            intrinsics=intrinsics,
            bounds_low=np.zeros(3),
            bounds_high=np.array([20.0, 20.0, 3.0]),
        )
        solution = AngularLocalizer(seed=0, de_max_iterations=10).solve(problem)
        assert (solution.pose.position >= 0).all()
        assert (solution.pose.position <= [20, 20, 3]).all()

    def test_solver_with_duplicate_points(self):
        intrinsics = CameraIntrinsics()
        pixels = np.tile([[320.0, 240.0]], (5, 1))
        world = np.tile([[5.0, 5.0, 1.5]], (5, 1))
        problem = LocalizationProblem(
            pixels=pixels,
            world_points=world,
            intrinsics=intrinsics,
            bounds_low=np.zeros(3),
            bounds_high=np.ones(3) * 10,
        )
        solution = AngularLocalizer(seed=0, de_max_iterations=5).solve(problem)
        assert np.isfinite(solution.pose.position).all()


class TestOracleEdges:
    def test_empty_insert(self):
        oracle = UniquenessOracle(VisualPrintConfig(descriptor_capacity=2_000))
        oracle.insert(np.empty((0, 128), dtype=np.float32))
        assert oracle.inserted_count == 0

    def test_counts_on_empty_batch(self):
        oracle = UniquenessOracle(VisualPrintConfig(descriptor_capacity=2_000))
        counts = oracle.counts(np.empty((0, 128), dtype=np.float32))
        assert counts.shape == (0,)

    def test_saturated_descriptor_ranked_last(self, rng):
        from repro.wardrive.environment import random_sift_descriptor

        config = VisualPrintConfig(
            descriptor_capacity=2_000, bits_per_counter=4
        )  # saturates at 15
        oracle = UniquenessOracle(config)
        hot = random_sift_descriptor(rng)[np.newaxis, :]
        rare = random_sift_descriptor(rng)[np.newaxis, :]
        for _ in range(50):
            oracle.insert(hot)
        oracle.insert(rare)
        order = oracle.rank_by_uniqueness(np.vstack([hot, rare]))
        assert order[0] == 1  # rare first

    def test_fingerprint_from_bytes_empty(self):
        empty = Fingerprint(
            keypoints=KeypointSet.empty(),
            uniqueness_counts=np.empty(0, dtype=np.int64),
        )
        restored = Fingerprint.from_bytes(empty.to_bytes())
        assert len(restored) == 0


class TestWorkloadEdges:
    def test_single_scene_workload(self, tmp_path):
        workload = build_workload(
            seed=5,
            num_scenes=1,
            num_distractors=0,
            views_per_scene=1,
            image_size=128,
            cache_dir=tmp_path,
        )
        assert workload.num_database_images == 1
        assert workload.num_queries == 1
        # cached reload is identical
        again = build_workload(
            seed=5,
            num_scenes=1,
            num_distractors=0,
            views_per_scene=1,
            image_size=128,
            cache_dir=tmp_path,
        )
        assert np.array_equal(
            again.database_keypoints[0].descriptors,
            workload.database_keypoints[0].descriptors,
        )

    def test_cache_key_sensitive_to_params(self, tmp_path):
        a = build_workload(
            seed=5, num_scenes=1, num_distractors=0, views_per_scene=1,
            image_size=128, cache_dir=tmp_path,
        )
        b = build_workload(
            seed=6, num_scenes=1, num_distractors=0, views_per_scene=1,
            image_size=128, cache_dir=tmp_path,
        )
        assert not np.array_equal(
            a.database_keypoints[0].descriptors,
            b.database_keypoints[0].descriptors,
        )


class TestCodecAdversarial:
    def test_png_all_zero(self):
        image = np.zeros((64, 64), dtype=np.uint8)
        codec = PngCodec()
        payload = codec.encode(image)
        assert len(payload) < 200  # filters + deflate crush constants
        assert np.array_equal(codec.decode(payload), image)

    def test_png_alternating_extremes(self):
        image = np.indices((32, 32)).sum(axis=0).astype(np.uint8) % 2 * 255
        codec = PngCodec()
        assert np.array_equal(codec.decode(codec.encode(image)), image)

    def test_jpeg_extreme_values_clip_safely(self):
        image = np.zeros((16, 16), dtype=np.uint8)
        image[:8] = 255
        codec = JpegCodec(quality=50)
        decoded = codec.decode(codec.encode(image))
        assert decoded.min() >= 0 and decoded.max() <= 255
