"""Chaos suite: fault injection, retry/backoff, graceful degradation.

Covers the fault-injecting channel wrapper (`repro.network.faults`), the
retry/degradation submission path, the client's backpressure loop, the
oracle refresher's stale-snapshot fallback, and the VPDT v2 delta format
(geometry validation, v1 rejection, saturation clamping) — plus the
acceptance properties: zero-fault parity with the bare channel and
deterministic accounting under 20% loss.
"""

from __future__ import annotations

import gzip
import struct

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.bloom import CountingBloomFilter
from repro.core import (
    OracleRefresher,
    UniquenessOracle,
    VisualPrintClient,
    VisualPrintConfig,
)
from repro.core.fingerprint import Fingerprint, degradation_keep_counts
from repro.core.persistence import load_server, save_server
from repro.core.server import VisualPrintServer
from repro.core.updates import (
    apply_delta,
    choose_refresh_payload,
    diff_counting_filters,
)
from repro.features.keypoint import KeypointSet
from repro.features.serialize import serialized_size
from repro.network import (
    FaultSpec,
    FaultyChannel,
    RetryPolicy,
    TransferError,
    UplinkChannel,
    simulate_stream,
    submit_payload,
)
from repro.obs import (
    MetricsRegistry,
    TraceCollector,
    use_collector,
    use_registry,
)


def _channel() -> UplinkChannel:
    # Jitterless: 1 Mbps => 125 kB/s, 40 ms RTT => 0.02 s half-RTT.
    return UplinkChannel("t", bandwidth_mbps=1.0, rtt_ms=40.0, jitter_sigma=0.0)


def _outage_alternator(seed: int = 0) -> FaultyChannel:
    # enter=1/exit=1 alternates outage, success, outage, ... exactly.
    return FaultyChannel(
        _channel(), FaultSpec(outage_enter=1.0, outage_exit=1.0, seed=seed)
    )


class TestFaultSpec:
    def test_default_is_null(self):
        assert FaultSpec().is_null

    def test_any_fault_field_breaks_null(self):
        assert not FaultSpec(loss=0.1).is_null
        assert not FaultSpec(outage_enter=0.1).is_null
        assert not FaultSpec(dip_probability=0.1).is_null

    def test_validation(self):
        with pytest.raises(ValueError):
            FaultSpec(loss=1.5)
        with pytest.raises(ValueError):
            FaultSpec(outage_enter=-0.1)
        with pytest.raises(ValueError):
            FaultSpec(outage_exit=0.0)  # the chain could never leave "bad"
        with pytest.raises(ValueError):
            FaultSpec(dip_factor=0.5)


class TestFaultyChannel:
    def test_spec_and_fields_are_exclusive(self):
        with pytest.raises(ValueError):
            FaultyChannel(_channel(), FaultSpec(), loss=0.1)

    def test_null_spec_delegates_latency(self):
        bare = _channel()
        wrapped = FaultyChannel(bare, FaultSpec())
        for size in (100, 125_000):
            assert wrapped.transfer_seconds(size) == bare.transfer_seconds(size)
            assert wrapped.response_seconds(size) == bare.response_seconds(size)
        assert wrapped.round_trip_seconds(10_000) == bare.round_trip_seconds(10_000)

    def test_null_spec_preserves_jitter_stream(self):
        # A null wrap must consume the caller's rng identically to the
        # bare channel — same draws, same order.
        jittery = UplinkChannel("j", bandwidth_mbps=8.0, jitter_sigma=0.3)
        bare_rng = np.random.default_rng(5)
        wrapped_rng = np.random.default_rng(5)
        wrapped = FaultyChannel(jittery, FaultSpec())
        for _ in range(8):
            assert wrapped.transfer_seconds(4096, wrapped_rng) == pytest.approx(
                jittery.transfer_seconds(4096, bare_rng)
            )

    def test_null_spec_metrics_parity(self):
        bare_registry, wrapped_registry = MetricsRegistry(), MetricsRegistry()
        bare = _channel()
        wrapped = FaultyChannel(_channel(), FaultSpec())
        with use_registry(bare_registry):
            bare.round_trip_seconds(10_000)
        with use_registry(wrapped_registry):
            wrapped.round_trip_seconds(10_000)
        assert wrapped_registry.samples() == bare_registry.samples()

    def test_loss_raises_with_full_attempt_cost(self):
        lossy = FaultyChannel(_channel(), loss=1.0)
        with pytest.raises(TransferError) as excinfo:
            lossy.transfer_seconds(125_000)
        fault = excinfo.value
        assert fault.kind == "loss"
        assert fault.direction == "up"
        assert fault.channel == "t"
        # Lost payload: fully serialized (1 s), then an RTT timeout.
        assert fault.elapsed_seconds == pytest.approx(1.0 + 0.04)

    def test_outage_fails_fast(self):
        down = FaultyChannel(
            _channel(), FaultSpec(outage_enter=1.0, outage_exit=1e-9)
        )
        with pytest.raises(TransferError) as excinfo:
            down.transfer_seconds(125_000)
        assert excinfo.value.kind == "outage"
        # No air time: one RTT radio probe.
        assert excinfo.value.elapsed_seconds == pytest.approx(0.04)

    def test_outage_state_persists(self):
        # Gilbert–Elliott: with a tiny exit probability the bad state
        # sticks across attempts.
        down = FaultyChannel(
            _channel(), FaultSpec(outage_enter=1.0, outage_exit=1e-9)
        )
        kinds = []
        for _ in range(5):
            with pytest.raises(TransferError) as excinfo:
                down.transfer_seconds(100)
            kinds.append(excinfo.value.kind)
        assert kinds == ["outage"] * 5

    def test_outage_alternation(self):
        channel = _outage_alternator()
        with pytest.raises(TransferError):
            channel.transfer_seconds(100)
        assert channel.transfer_seconds(100) > 0  # recovered
        with pytest.raises(TransferError):
            channel.transfer_seconds(100)

    def test_response_faults_are_downlink(self):
        lossy = FaultyChannel(_channel(), loss=1.0)
        with pytest.raises(TransferError) as excinfo:
            lossy.response_seconds(1000)
        assert excinfo.value.direction == "down"

    def test_dip_slows_without_failing(self):
        dippy = FaultyChannel(_channel(), dip_probability=1.0, dip_factor=4.0)
        registry = MetricsRegistry()
        with use_registry(registry):
            seconds = dippy.transfer_seconds(125_000)
        # 4x serialization at 1/4 bandwidth, plus the usual half-RTT.
        assert seconds == pytest.approx(4.0 + 0.02)
        counter = registry.counter(
            "network_faults_injected_total", channel="t", kind="dip"
        )
        assert counter.value == 1

    def test_deterministic_fault_sequence(self):
        def kinds(seed: int) -> list[str | None]:
            channel = FaultyChannel(
                _channel(), FaultSpec(loss=0.3, outage_enter=0.1, seed=seed)
            )
            out = []
            for _ in range(40):
                try:
                    channel.transfer_seconds(100)
                    out.append(None)
                except TransferError as fault:
                    out.append(fault.kind)
            return out

        assert kinds(1) == kinds(1)
        assert kinds(1) != kinds(2)

    def test_fault_metrics_and_wasted_bytes(self):
        registry = MetricsRegistry()
        lossy = FaultyChannel(_channel(), loss=1.0)
        with use_registry(registry):
            for _ in range(3):
                with pytest.raises(TransferError):
                    lossy.transfer_seconds(2000)
        assert (
            registry.counter(
                "network_faults_injected_total", channel="t", kind="loss"
            ).value
            == 3
        )
        assert (
            registry.counter("network_wasted_bytes_total", channel="t").value == 6000
        )

    def test_fault_span_emitted(self):
        collector = TraceCollector()
        lossy = FaultyChannel(_channel(), loss=1.0)
        with use_collector(collector):
            with pytest.raises(TransferError):
                lossy.transfer_seconds(4096)
        assert len(collector.roots) == 1
        span = collector.roots[0]
        assert span.name == "network.fault"
        assert span.attributes["kind"] == "loss"
        assert span.attributes["bytes"] == 4096
        assert span.attributes["direction"] == "up"

    def test_duck_types_as_channel(self):
        bare = _channel()
        wrapped = FaultyChannel(bare, loss=0.5)
        assert wrapped.name == bare.name
        assert wrapped.bandwidth_mbps == bare.bandwidth_mbps
        assert wrapped.rtt_ms == bare.rtt_ms
        assert wrapped.bytes_per_second == bare.bytes_per_second
        assert wrapped.reliable is bare
        assert wrapped.serialization_seconds(1000) == bare.serialization_seconds(1000)


class TestRetryPolicy:
    def test_backoff_progression(self):
        policy = RetryPolicy(base_backoff_seconds=0.05, backoff_multiplier=2.0)
        assert policy.backoff_seconds(1) == pytest.approx(0.05)
        assert policy.backoff_seconds(2) == pytest.approx(0.10)
        assert policy.backoff_seconds(3) == pytest.approx(0.20)

    def test_jitter_bounds(self):
        policy = RetryPolicy(base_backoff_seconds=0.1, jitter=0.5)
        rng = np.random.default_rng(0)
        for _ in range(50):
            pause = policy.backoff_seconds(1, rng)
            assert 0.1 <= pause <= 0.15

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(backoff_multiplier=0.5)
        with pytest.raises(ValueError):
            RetryPolicy(jitter=1.5)
        with pytest.raises(ValueError):
            RetryPolicy().backoff_seconds(0)


class TestSubmitPayload:
    def test_empty_ladder_rejected(self):
        with pytest.raises(ValueError):
            submit_payload(_channel(), [])

    def test_fault_free_is_one_transfer(self):
        registry = MetricsRegistry()
        channel = _channel()
        outcome = submit_payload(channel, [1000], registry=registry)
        assert outcome.status == "delivered"
        assert outcome.attempts == 1
        assert outcome.retries == 0
        assert outcome.latency_seconds == pytest.approx(
            channel.transfer_seconds(1000)
        )
        assert outcome.payload_bytes == 1000
        # Zero-fault parity: no retry/degradation counters are created.
        assert registry.samples() == []

    def test_degrades_down_ladder(self):
        registry = MetricsRegistry()
        outcome = submit_payload(
            _outage_alternator(),
            [1000, 500, 250],
            RetryPolicy(base_backoff_seconds=0.05, jitter=0.0),
            registry=registry,
        )
        # Attempt 1 hits the outage (0.04 s), backs off 0.05 s, then the
        # 500-byte rung goes through (0.004 s + half-RTT).
        assert outcome.status == "degraded"
        assert outcome.attempts == 2
        assert outcome.retries == 1
        assert outcome.ladder_step == 1
        assert outcome.payload_bytes == 500
        assert outcome.latency_seconds == pytest.approx(0.04 + 0.05 + 0.024)
        assert outcome.wasted_seconds == pytest.approx(0.04)
        assert outcome.backoff_seconds == pytest.approx(0.05)
        assert registry.counter("network_retries_total", channel="t").value == 1
        assert registry.counter("queries_degraded_total", channel="t").value == 1

    def test_abandoned_after_max_attempts(self):
        registry = MetricsRegistry()
        lossy = FaultyChannel(_channel(), loss=1.0)
        outcome = submit_payload(
            lossy, [125_000], RetryPolicy(max_attempts=3), registry=registry
        )
        assert outcome.status == "abandoned"
        assert not outcome.delivered
        assert outcome.attempts == 3
        assert outcome.retries == 2
        assert outcome.payload_bytes == 0
        assert outcome.wasted_seconds == pytest.approx(3 * 1.04)
        assert registry.counter("queries_abandoned_total", channel="t").value == 1

    def test_budget_cuts_retries_short(self):
        lossy = FaultyChannel(_channel(), loss=1.0)
        outcome = submit_payload(
            lossy,
            [125_000],
            RetryPolicy(max_attempts=10, budget_seconds=1.5, jitter=0.0),
        )
        # Each failed attempt burns 1.04 s; the second exceeds the budget.
        assert outcome.status == "abandoned"
        assert outcome.attempts == 2

    def test_start_step_pre_degrades(self):
        outcome = submit_payload(_channel(), [1000, 500, 250], start_step=2)
        assert outcome.status == "degraded"
        assert outcome.payload_bytes == 250

    def test_deterministic_for_fixed_seed(self):
        def run() -> list[tuple]:
            channel = FaultyChannel(_channel(), FaultSpec(loss=0.4, seed=9))
            rng = np.random.default_rng(0)
            policy = RetryPolicy(jitter=0.2)
            return [
                submit_payload(channel, [1000, 500], policy, rng) for _ in range(20)
            ]

        assert run() == run()


class TestStreamRetries:
    def test_null_faults_match_bare_stream(self):
        payloads = [30_000] * 20
        bare = simulate_stream("s", payloads, _channel(), capture_fps=2.0)
        wrapped = simulate_stream(
            "s",
            payloads,
            FaultyChannel(_channel(), FaultSpec()),
            capture_fps=2.0,
            retry=RetryPolicy(),
        )
        assert wrapped.events == bare.events

    def test_lossy_stream_accounts_every_frame(self):
        registry = MetricsRegistry()
        channel = FaultyChannel(_channel(), FaultSpec(loss=0.5, seed=3))
        payloads = [20_000] * 30
        with use_registry(registry):
            trace = simulate_stream(
                "s",
                payloads,
                channel,
                capture_fps=2.0,
                retry=RetryPolicy(max_attempts=2, budget_seconds=1.0),
            )
        delivered = len(trace.events)
        dropped = registry.counter("network_frames_dropped_total", scheme="s").value
        abandoned = registry.counter(
            "network_frames_abandoned_total", scheme="s"
        ).value
        assert delivered + dropped + abandoned == len(payloads)
        assert abandoned > 0  # the chaos actually bit
        assert registry.counter("network_retries_total", channel="t").value > 0

    def test_lossy_stream_deterministic(self):
        def run():
            channel = FaultyChannel(_channel(), FaultSpec(loss=0.5, seed=3))
            return simulate_stream(
                "s", [20_000] * 30, channel, capture_fps=2.0, retry=RetryPolicy()
            )

        assert run().events == run().events


def _synthetic_fingerprint(count: int = 64) -> Fingerprint:
    rng = np.random.default_rng(0)
    keypoints = KeypointSet(
        positions=rng.uniform(0, 100, (count, 2)).astype(np.float32),
        scales=np.ones(count, dtype=np.float32),
        orientations=np.zeros(count, dtype=np.float32),
        responses=np.ones(count, dtype=np.float32),
        descriptors=rng.integers(0, 256, (count, 128)).astype(np.float32),
    )
    # Stored most-unique-first: ascending oracle counts.
    return Fingerprint(
        keypoints=keypoints,
        uniqueness_counts=np.arange(count, dtype=np.int64),
    )


class TestDegradation:
    def test_keep_counts_halve_to_floor(self):
        assert degradation_keep_counts(200) == [200, 100, 50]
        assert degradation_keep_counts(40, floor=16, max_steps=3) == [40, 20]
        assert degradation_keep_counts(10, floor=16) == [10]

    def test_truncate_keeps_most_unique_prefix(self):
        fingerprint = _synthetic_fingerprint(64)
        smaller = fingerprint.truncate(16)
        assert len(smaller) == 16
        assert np.array_equal(smaller.uniqueness_counts, np.arange(16))
        assert np.array_equal(
            smaller.keypoints.descriptors, fingerprint.keypoints.descriptors[:16]
        )
        assert fingerprint.truncate(64) is fingerprint
        with pytest.raises(ValueError):
            fingerprint.truncate(-1)

    def test_truncated_sizes_match_ladder_pricing(self):
        fingerprint = _synthetic_fingerprint(64)
        for count in degradation_keep_counts(64):
            assert fingerprint.truncate(count).upload_bytes == serialized_size(count)


class TestClientRecovery:
    def _client(self) -> VisualPrintClient:
        config = VisualPrintConfig(descriptor_capacity=5000, fingerprint_size=64)
        return VisualPrintClient(UniquenessOracle(config), config)

    def test_degradation_ladder_sizes(self):
        client = self._client()
        ladder = client.degradation_ladder(_synthetic_fingerprint(64))
        assert ladder == [serialized_size(c) for c in (64, 32, 16)]

    def test_submission_degrades_and_recovers(self):
        client = self._client()
        fingerprint = _synthetic_fingerprint(64)
        outcome = client.submit_fingerprint(fingerprint, _outage_alternator())
        assert outcome.status == "degraded"
        assert outcome.ladder_step == 1
        # Delivered at rung 1: the next submission probes one rung up.
        assert client.backpressure_level == 0

    def test_backpressure_rises_then_drains(self):
        client = self._client()
        fingerprint = _synthetic_fingerprint(64)
        lossy = FaultyChannel(_channel(), loss=1.0)
        client.submit_fingerprint(
            fingerprint, lossy, retry_policy=RetryPolicy(max_attempts=2)
        )
        assert client.backpressure_level == 1
        client.submit_fingerprint(
            fingerprint, lossy, retry_policy=RetryPolicy(max_attempts=2)
        )
        assert client.backpressure_level == 2  # clamped at the ladder end
        # The link heals: the pre-degraded submission lands at rung 2,
        # and the level steps back down (additive decrease).
        outcome = client.submit_fingerprint(fingerprint, _channel())
        assert outcome.status == "degraded"
        assert outcome.ladder_step == 2
        assert client.backpressure_level == 1

    def test_offload_frame_delivers(self):
        client = self._client()
        rng = np.random.default_rng(0)
        image = rng.uniform(0, 1, (160, 160)).astype(np.float32)
        report = client.offload_frame(image, _channel())
        assert report.status == "delivered"
        assert report.fingerprint is not None
        assert report.outcome is not None
        assert report.outcome.payload_bytes == report.fingerprint.upload_bytes

    def test_offload_frame_abandons_on_dead_link(self):
        client = self._client()
        rng = np.random.default_rng(0)
        image = rng.uniform(0, 1, (160, 160)).astype(np.float32)
        lossy = FaultyChannel(_channel(), loss=1.0)
        report = client.offload_frame(
            image, lossy, retry_policy=RetryPolicy(max_attempts=2)
        )
        assert report.status == "abandoned"
        assert report.fingerprint is not None  # computed, just undelivered
        assert client.metrics.counter("queries_abandoned_total", channel="t").value == 1

    def test_offload_frame_blur_rejection_skips_channel(self):
        class AlwaysBlurred:
            def is_blurred(self, image) -> bool:
                return True

        config = VisualPrintConfig(descriptor_capacity=5000, fingerprint_size=64)
        client = VisualPrintClient(
            UniquenessOracle(config), config, blur_detector=AlwaysBlurred()
        )
        lossy = FaultyChannel(_channel(), loss=1.0)  # would raise if touched
        image = np.zeros((160, 160), dtype=np.float32)
        report = client.offload_frame(image, lossy)
        assert report.status == "rejected"
        assert report.fingerprint is None
        assert report.outcome is None


def _filter_pair(seed: int = 0) -> tuple[CountingBloomFilter, CountingBloomFilter]:
    rng = np.random.default_rng(seed)
    old = CountingBloomFilter(num_counters=512, num_hashes=4, seed=seed)
    old.add(rng.integers(0, 256, (40, 16)))
    new = CountingBloomFilter(num_counters=512, num_hashes=4, seed=seed)
    new.counters = old.counters.copy()
    new.add(rng.integers(0, 256, (25, 16)))
    return old, new


class TestDeltaFormatV2:
    def test_roundtrip(self):
        old, new = _filter_pair()
        delta = diff_counting_filters(old, new)
        assert delta.num_changes > 0
        apply_delta(old, delta)
        assert np.array_equal(old.counters, new.counters)

    def test_accepts_raw_payload(self):
        old, new = _filter_pair()
        payload = diff_counting_filters(old, new).payload
        apply_delta(old, payload)
        assert np.array_equal(old.counters, new.counters)

    def test_diff_validates_geometry(self):
        old, _ = _filter_pair()
        with pytest.raises(ValueError):
            diff_counting_filters(
                old, CountingBloomFilter(num_counters=256, num_hashes=4)
            )
        with pytest.raises(ValueError):
            diff_counting_filters(
                old, CountingBloomFilter(num_counters=512, num_hashes=5)
            )
        with pytest.raises(ValueError, match="counter width"):
            diff_counting_filters(
                old,
                CountingBloomFilter(num_counters=512, num_hashes=4, bits_per_counter=8),
            )
        with pytest.raises(ValueError, match="hash seed"):
            diff_counting_filters(
                old, CountingBloomFilter(num_counters=512, num_hashes=4, seed=99)
            )

    def test_apply_rejects_mismatched_base(self):
        old, new = _filter_pair()
        delta = diff_counting_filters(old, new)
        cases = {
            "counters": CountingBloomFilter(num_counters=256, num_hashes=4),
            "hashes": CountingBloomFilter(num_counters=512, num_hashes=5),
            "width": CountingBloomFilter(
                num_counters=512, num_hashes=4, bits_per_counter=8
            ),
            "seed": CountingBloomFilter(num_counters=512, num_hashes=4, seed=99),
        }
        for wrong in cases.values():
            with pytest.raises(ValueError):
                apply_delta(wrong, delta)

    def test_v1_payload_rejected(self):
        base, _ = _filter_pair()
        raw = struct.pack("<4sIII", b"VPDT", 1, base.num_counters, 0)
        with pytest.raises(ValueError, match="v1"):
            apply_delta(base, gzip.compress(raw))

    def test_bad_magic_and_future_version(self):
        base, _ = _filter_pair()
        with pytest.raises(ValueError, match="magic"):
            apply_delta(base, gzip.compress(struct.pack("<4sI", b"NOPE", 2)))
        raw = struct.pack(
            "<4sIIIIIq", b"VPDT", 3, base.num_counters, 0, base.num_hashes,
            base.bits_per_counter, base.hash_seed,
        )
        with pytest.raises(ValueError, match="version 3"):
            apply_delta(base, gzip.compress(raw))

    def test_oversaturated_values_clamped(self):
        base, _ = _filter_pair()
        # Hand-craft a delta writing 65535 into counter 0: the on-wire
        # <u2 can encode values a 10-bit filter cannot hold.
        raw = struct.pack(
            "<4sIIIIIq", b"VPDT", 2, base.num_counters, 1, base.num_hashes,
            base.bits_per_counter, base.hash_seed,
        )
        raw += np.array([0], dtype="<u4").tobytes()
        raw += np.array([65535], dtype="<u2").tobytes()
        apply_delta(base, gzip.compress(raw))
        assert base.counters[0] == base.saturation

    @given(st.integers(0, 2**31), st.integers(1, 60), st.integers(0, 60))
    @settings(max_examples=20, deadline=None)
    def test_apply_diff_reproduces_target(self, seed, initial, growth):
        rng = np.random.default_rng(seed)
        old = CountingBloomFilter(num_counters=256, num_hashes=3, seed=1)
        old.add(rng.integers(0, 256, (initial, 8)))
        new = CountingBloomFilter(num_counters=256, num_hashes=3, seed=1)
        new.counters = old.counters.copy()
        if growth:
            new.add(rng.integers(0, 256, (growth, 8)))
        apply_delta(old, diff_counting_filters(old, new))
        assert np.array_equal(old.counters, new.counters)


def _tiny_config(**overrides) -> VisualPrintConfig:
    return VisualPrintConfig(
        descriptor_capacity=2000, fingerprint_size=20, **overrides
    )


def _descriptors(rng: np.random.Generator, count: int) -> np.ndarray:
    return rng.integers(0, 256, (count, 128)).astype(np.float32)


class TestOracleRefresher:
    def _pair(self, seed: int = 0):
        config = _tiny_config()
        rng = np.random.default_rng(seed)
        server = UniquenessOracle(config)
        server.insert(_descriptors(rng, 60))
        client = UniquenessOracle(config)
        client.counting.counters = server.counting.counters.copy()
        server.insert(_descriptors(rng, 30))  # growth since the client's copy
        return client, server, rng

    def test_refresh_applies_delta(self):
        client, server, _ = self._pair()
        registry = MetricsRegistry()
        refresher = OracleRefresher(client, registry=registry)
        report = refresher.refresh(server, now_seconds=10.0)
        assert report.status == "applied"
        assert report.staleness_seconds == 0.0
        assert np.array_equal(client.counting.counters, server.counting.counters)
        assert registry.gauge("oracle_staleness_seconds").value == 0.0
        assert registry.counter("oracle_refreshes_total", outcome="applied").value == 1

    def test_small_growth_prefers_delta(self):
        client, server, _ = self._pair()
        kind, payload = choose_refresh_payload(client, server)
        assert kind == "delta"
        assert len(payload) < server.snapshot().compressed_bytes

    def test_refresh_invalidates_download_cache(self):
        client, server, _ = self._pair()
        before = client.download_bytes()
        OracleRefresher(client).refresh(server)
        assert client.download_bytes() != before

    def test_failed_refresh_serves_stale(self):
        client, server, rng = self._pair()
        stale_counters = client.counting.counters.copy()
        registry = MetricsRegistry()
        refresher = OracleRefresher(
            client, RetryPolicy(max_attempts=2), registry=registry
        )
        dead = FaultyChannel(_channel(), loss=1.0)
        report = refresher.refresh(server, channel=dead, now_seconds=42.0)
        assert report.status == "stale"
        assert report.staleness_seconds == pytest.approx(42.0)
        # The client's copy is untouched and keeps answering queries.
        assert np.array_equal(client.counting.counters, stale_counters)
        assert client.counts(_descriptors(rng, 5)).shape == (5,)
        assert registry.gauge("oracle_staleness_seconds").value == pytest.approx(42.0)
        assert registry.counter("oracle_refreshes_total", outcome="failed").value == 1
        assert registry.counter("queries_abandoned_total", channel="t").value == 1

    def test_recovery_after_outage_clears_staleness(self):
        client, server, _ = self._pair()
        registry = MetricsRegistry()
        refresher = OracleRefresher(
            client, RetryPolicy(max_attempts=2), registry=registry
        )
        dead = FaultyChannel(_channel(), loss=1.0)
        refresher.refresh(server, channel=dead, now_seconds=42.0)
        report = refresher.refresh(server, channel=_channel(), now_seconds=60.0)
        assert report.status == "applied"
        assert registry.gauge("oracle_staleness_seconds").value == 0.0
        assert refresher.staleness_seconds(75.0) == pytest.approx(15.0)

    @given(seed=st.integers(0, 2**31))
    @settings(
        max_examples=3,
        deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    def test_persistence_roundtrip_after_delta_refresh(self, seed, tmp_path):
        rng = np.random.default_rng(seed)
        config = _tiny_config()
        server = VisualPrintServer(config)
        descriptors = _descriptors(rng, 50)
        server.ingest(descriptors, rng.uniform(0, 10, (50, 3)))
        client = UniquenessOracle(config)
        client.counting.counters = server.oracle.counting.counters.copy()
        extra = _descriptors(rng, 20)
        server.ingest(extra, rng.uniform(0, 10, (20, 3)))

        OracleRefresher(client).refresh(server.oracle)
        assert np.array_equal(
            client.counting.counters, server.oracle.counting.counters
        )

        path = tmp_path / f"server-{seed}.npz"
        save_server(server, path)
        loaded = load_server(path)
        queries = _descriptors(rng, 10)
        assert loaded.oracle.lookup_batch(queries) == server.oracle.lookup_batch(
            queries
        )


class TestFig16Chaos:
    """End-to-end acceptance: zero-fault parity and lossy accounting."""

    FAST = dict(seed=3, num_frames=6, image_size=160, fingerprint_size=40)

    @staticmethod
    def _run(**kwargs):
        from repro.evaluation.experiments import fig16_latency

        registry = MetricsRegistry()
        with use_registry(registry):
            result = fig16_latency.run(**kwargs)
        return result, registry

    @staticmethod
    def _deterministic_samples(registry: MetricsRegistry) -> list:
        # Byte counters and simulated-latency metrics are exact;
        # wall-clock stage histograms (sift/oracle/serialize seconds)
        # legitimately differ between runs.
        keep = ("network_", "client_upload", "client_keypoints",
                "client_frames", "queries_")
        return [
            sample
            for sample in registry.samples()
            if sample[0].startswith(keep)
        ]

    @pytest.mark.parametrize("workers", [1, 2])
    def test_zero_fault_parity(self, workers):
        bare, bare_registry = self._run(workers=workers, **self.FAST)
        wrapped, wrapped_registry = self._run(
            workers=workers,
            faults=FaultSpec(),
            retry=RetryPolicy(),
            **self.FAST,
        )
        assert np.array_equal(bare["upload_bytes"], wrapped["upload_bytes"])
        assert np.array_equal(
            bare["transfer_seconds"], wrapped["transfer_seconds"]
        )
        assert self._deterministic_samples(
            wrapped_registry
        ) == self._deterministic_samples(bare_registry)
        assert wrapped["faults"] == {
            "delivered": self.FAST["num_frames"],
            "degraded": 0,
            "abandoned": 0,
            "retries": 0,
        }

    def test_lossy_run_accounts_every_query(self):
        result, registry = self._run(
            faults=FaultSpec(loss=0.2, seed=1),
            retry=RetryPolicy(max_attempts=3),
            **self.FAST,
        )
        faults = result["faults"]
        assert faults["delivered"] + faults["abandoned"] == self.FAST["num_frames"]
        counted = sum(
            value
            for name, _, value in registry.samples()
            if name in ("queries_degraded_total", "queries_abandoned_total")
        )
        assert counted == faults["degraded"] + faults["abandoned"]

    def test_lossy_run_deterministic(self):
        kwargs = dict(
            faults=FaultSpec(loss=0.2, seed=1),
            retry=RetryPolicy(max_attempts=3),
            **self.FAST,
        )
        first, first_registry = self._run(**kwargs)
        second, second_registry = self._run(**kwargs)
        assert first["faults"] == second["faults"]
        assert np.array_equal(
            first["transfer_seconds"], second["transfer_seconds"]
        )
        assert self._deterministic_samples(
            first_registry
        ) == self._deterministic_samples(second_registry)
