"""A museum tour: continuous scene identification on the move.

The paper's Figure 1 scenario ("Paris, Louvre, Denon Wing, 1st Floor,
Mona Lisa Room"): a visitor walks past a series of artworks; the app
must keep identifying which piece is on screen from heavily blurred,
off-angle camera frames — while spending almost nothing on the uplink.

Run:  python examples/museum_tour.py
"""

from __future__ import annotations

import numpy as np

from repro import SceneLibrary, SiftExtractor, SiftParams, UniquenessOracle
from repro import VisualPrintClient, VisualPrintConfig
from repro.matching import LshMatcher, SceneDatabase, vote_scene


def main() -> None:
    # The gallery: 8 artworks plus repetitive hallway content.
    gallery = SceneLibrary(
        seed=13,
        num_scenes=8,
        num_distractors=16,
        size=(256, 256),
        views_per_scene=5,
        blur_probability=0.8,  # visitors don't hold still
        max_blur_length=11,
    )
    artwork_names = [
        "Mona Lisa",
        "Winged Victory",
        "Liberty Leading the People",
        "The Raft of the Medusa",
        "Venus de Milo",
        "The Coronation of Napoleon",
        "La Grande Odalisque",
        "The Wedding at Cana",
    ]

    extractor = SiftExtractor(SiftParams(contrast_threshold=0.008))
    keypoint_sets, labels = [], []
    for label, image in gallery.all_database_images():
        keypoint_sets.append(extractor.extract(image))
        labels.append(label)
    database = SceneDatabase.from_keypoint_sets(keypoint_sets, labels)

    config = VisualPrintConfig(
        descriptor_capacity=max(database.size, 1024), fingerprint_size=60
    )
    oracle = UniquenessOracle(config)
    oracle.insert(database.descriptors)
    client = VisualPrintClient(oracle, config)
    matcher = LshMatcher(database.descriptors)

    print(f"gallery database: {database.size} descriptors, "
          f"oracle download {oracle.download_bytes() / 1024:.0f} KB\n")

    # The tour: one blurred glance at each artwork.
    correct = 0
    total_upload = 0
    for artwork in range(gallery.num_scenes):
        frame = gallery.query_view(artwork, view_index=artwork % 5)
        fingerprint = client.process_frame(frame, frame_index=artwork)
        total_upload += fingerprint.upload_bytes
        _, matched_rows = matcher.match(fingerprint.keypoints.descriptors)
        outcome = vote_scene(database.labels[matched_rows], min_votes=5)
        predicted = (
            artwork_names[outcome.predicted_scene]
            if 0 <= outcome.predicted_scene < len(artwork_names)
            else "(no confident match)"
        )
        marker = "+" if outcome.predicted_scene == artwork else "-"
        correct += outcome.predicted_scene == artwork
        print(f" [{marker}] glance at {artwork_names[artwork]:<32} -> {predicted}")

    print(
        f"\nidentified {correct}/{gallery.num_scenes} artworks; "
        f"total upload {total_upload / 1024:.1f} KB "
        f"({total_upload / gallery.num_scenes / 1024:.1f} KB per glance)"
    )


if __name__ == "__main__":
    main()
