"""Quickstart: the VisualPrint idea in sixty lines.

Builds a tiny image database, curates a uniqueness oracle from it, then
shows how the oracle lets a client ship an order of magnitude less data
than a whole frame while still identifying the scene.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro import SceneLibrary, SiftExtractor, SiftParams, UniquenessOracle
from repro import VisualPrintClient, VisualPrintConfig
from repro.codecs import PngCodec
from repro.imaging import to_uint8
from repro.matching import BruteForceMatcher, SceneDatabase, vote_scene
from repro.obs import TraceCollector, use_collector, write_chrome_trace


def main() -> None:
    # 1. A small "building": 5 unique scenes + 10 repetitive distractors.
    library = SceneLibrary(seed=7, num_scenes=5, num_distractors=10, size=(256, 256))
    extractor = SiftExtractor(SiftParams(contrast_threshold=0.008))
    keypoint_sets, labels = [], []
    for label, image in library.all_database_images():
        keypoint_sets.append(extractor.extract(image))
        labels.append(label)
    database = SceneDatabase.from_keypoint_sets(keypoint_sets, labels)
    print(f"database: {database.size} descriptors from {len(labels)} images")

    # 2. Curate the uniqueness oracle (server side) and hand it to a client.
    config = VisualPrintConfig(
        descriptor_capacity=max(database.size, 1024), fingerprint_size=60
    )
    oracle = UniquenessOracle(config)
    oracle.insert(database.descriptors)
    client = VisualPrintClient(oracle, config)
    download_kb = oracle.download_bytes() / 1024
    print(f"oracle download: {download_kb:.0f} KB (compressed)")

    # 3. The client sees a new photo of scene 2 from a different angle.
    #    A TraceCollector around the query captures the "frame" span
    #    tree (sift / oracle / serialize) for step 6.
    query_image = library.query_view(2, view_index=1)
    collector = TraceCollector()
    with use_collector(collector):
        fingerprint = client.process_frame(query_image)
    frame_bytes = len(PngCodec().encode(to_uint8(query_image)))
    extracted = int(client.metrics.counter("client_keypoints_extracted_total").value)
    print(f"query: {extracted} keypoints extracted, {len(fingerprint)} uploaded")
    print(
        f"upload: fingerprint {fingerprint.upload_bytes / 1024:.1f} KB vs "
        f"lossless frame {frame_bytes / 1024:.1f} KB "
        f"({frame_bytes / fingerprint.upload_bytes:.1f}x reduction)"
    )

    # 4. Server-side: match the fingerprint and vote for the scene.
    matcher = BruteForceMatcher(database.descriptors)
    _, matched_rows = matcher.match(fingerprint.keypoints.descriptors)
    outcome = vote_scene(database.labels[matched_rows], min_votes=5)
    print(f"predicted scene: {outcome.predicted_scene} (truth: 2)")
    print(f"votes: {outcome.votes}")

    # 5. Everything above was measured as it ran: dump the client's
    #    observability snapshot (repro.obs) — per-stage latency
    #    histograms, keypoint/byte counters, span timings.
    print("\nmetrics snapshot (client registry):")
    snapshot = client.metrics.to_dict()
    for name, entry in snapshot["counters"].items():
        print(f"  {name}: {entry['value']:.0f}")
    for name, entry in snapshot["histograms"].items():
        print(
            f"  {name}: n={entry['count']} p50={entry['p50']:.4g} "
            f"p90={entry['p90']:.4g}"
        )
    quantiles = client.latency_quantiles("sift")
    print(f"  sift p50/p90: {quantiles[0.5] * 1e3:.1f} / {quantiles[0.9] * 1e3:.1f} ms")

    # 6. The same query as a trace: per-stage latency quantiles from the
    #    span histograms, plus a Chrome trace-event file you can load in
    #    chrome://tracing or https://ui.perfetto.dev.
    print("\nper-stage latency (span histograms):")
    for stage in ("sift", "oracle", "serialize"):
        histogram = client.metrics.histogram(f"span_{stage}_seconds")
        stage_q = histogram.quantiles((0.5, 0.9))
        print(
            f"  {stage}: p50={stage_q[0.5] * 1e3:.1f} ms "
            f"p90={stage_q[0.9] * 1e3:.1f} ms"
        )
    write_chrome_trace(collector.roots, "trace.json")
    trace = collector.traces()[0]
    print(
        f"trace {trace.trace_id}: {trace.num_spans} spans, "
        f"{trace.duration_seconds * 1e3:.1f} ms -> trace.json "
        "(open in chrome://tracing or ui.perfetto.dev)"
    )


if __name__ == "__main__":
    main()
