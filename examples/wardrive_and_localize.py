"""End-to-end indoor localization: wardrive -> cloud -> phone query.

The full paper pipeline on the simulated office venue:

1. A Tango rig walks the venue (with dead-reckoning drift), capturing
   keypoints, depths, and poses; ICP merges the depth maps and corrects
   the drift.
2. The cloud service ingests the keypoint-to-3D mapping, curating its
   LSH lookup table and the uniqueness oracle.
3. A phone at an unknown pose extracts keypoints, keeps the most unique
   ones, uploads a ~10 KB fingerprint, and gets a 6-DoF pose back.

Run:  python examples/wardrive_and_localize.py
"""

from __future__ import annotations

import numpy as np

from repro import (
    DriftModel,
    IndoorEnvironment,
    Pose,
    TangoRig,
    VisualPrintClient,
    VisualPrintConfig,
    VisualPrintServer,
    WardriveSession,
)
from repro.features.keypoint import KeypointSet
from repro.util import rng_for


def capture_query(environment, pose, rig, rng):
    """What the query phone sees at ``pose`` (RGB keypoints, no depth)."""
    ids, pixels, _ = rig.observe(pose)
    descriptors = np.clip(
        environment.descriptors[ids] + rng.normal(0, 3.0, (ids.size, 128)), 0, 255
    ).astype(np.float32)
    return KeypointSet(
        positions=pixels.astype(np.float32),
        scales=np.ones(ids.size, np.float32),
        orientations=np.zeros(ids.size, np.float32),
        responses=np.ones(ids.size, np.float32),
        descriptors=descriptors,
    )


def main() -> None:
    environment = IndoorEnvironment.build("office", seed=3)
    print(f"venue: office {environment.spec.width:.0f}x{environment.spec.depth:.0f} m, "
          f"{environment.num_landmarks} landmarks")

    # 1. Wardrive with drift; ICP-correct the mapping.
    session = WardriveSession(environment, seed=3, drift=DriftModel(scale=2.0))
    mapping = session.run(use_icp=True)
    errors = mapping.position_errors()
    print(
        f"wardrive: {mapping.num_mappings} keypoint-to-3D mappings, "
        f"median mapping error {np.median(errors):.2f} m"
    )

    # 2. Stand up the cloud service.
    config = VisualPrintConfig(
        descriptor_capacity=mapping.num_mappings, fingerprint_size=60
    )
    server = VisualPrintServer(config, bounds=environment.bounds)
    server.ingest(mapping.descriptors, mapping.positions)
    print(f"oracle download: {server.oracle_download_bytes() / 1024:.0f} KB")

    # 3. Localize a phone at three unknown poses.
    client = VisualPrintClient(server.publish_oracle(), config)
    rig = TangoRig(environment, seed=77)
    rng = rng_for(99, "example-query")
    for x, y, yaw in ((10.0, 6.0, -np.pi / 2), (25.0, 14.0, np.pi / 2), (40.0, 5.0, -np.pi / 2)):
        true_pose = Pose(x=x, y=y, z=1.5, yaw=yaw)
        keypoints = capture_query(environment, true_pose, rig, rng)
        fingerprint = client.fingerprint_keypoints(keypoints)
        answer = server.localize(fingerprint)
        error = answer.pose.position_error(true_pose)
        print(
            f"query at ({x:.0f}, {y:.0f}): {len(keypoints)} keypoints seen, "
            f"{len(fingerprint)} uploaded ({fingerprint.upload_bytes / 1024:.1f} KB), "
            f"position error {error:.2f} m"
        )


if __name__ == "__main__":
    main()
