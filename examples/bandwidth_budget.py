"""Streaming AR on a bandwidth budget: what each encoding can sustain.

The paper's motivating scenario (Figs. 2 and 14): a continuous AR
session at 10 FPS over a constrained uplink.  This example sweeps the
channel presets and shows why whole-frame offload collapses on cellular
links while VisualPrint fingerprints sail through — and what that means
for end-to-end query latency.

Run:  python examples/bandwidth_budget.py
"""

from __future__ import annotations

import numpy as np

from repro import SceneLibrary, SiftExtractor, SiftParams, UniquenessOracle
from repro import VisualPrintClient, VisualPrintConfig
from repro.codecs import H264Codec, JpegCodec, PngCodec, RawCodec
from repro.imaging import to_float, to_uint8
from repro.network import CHANNEL_PRESETS, simulate_stream, sustainable_fps


def main() -> None:
    # One panning capture sequence, encoded every way.
    library = SceneLibrary(seed=7, num_scenes=1, num_distractors=0, size=(320, 320))
    base = to_uint8(library.scene(0))
    frames = [np.roll(base, 4 * i, axis=1) for i in range(12)]

    payloads = {
        "raw": float(np.mean([len(RawCodec().encode(f)) for f in frames])),
        "png": float(np.mean([len(PngCodec().encode(f)) for f in frames])),
        "jpeg-40": float(np.mean([len(JpegCodec(quality=40).encode(f)) for f in frames])),
        "h264": H264Codec().mean_bytes_per_frame(frames),
    }

    # VisualPrint fingerprints of the same frames.
    extractor = SiftExtractor(SiftParams(contrast_threshold=0.008))
    keypoint_sets = [extractor.extract(to_float(f)) for f in frames]
    config = VisualPrintConfig(descriptor_capacity=100_000, fingerprint_size=50)
    oracle = UniquenessOracle(config)
    oracle.insert(np.vstack([k.descriptors for k in keypoint_sets]))
    client = VisualPrintClient(oracle, config)
    payloads["visualprint"] = float(
        np.mean(
            [client.fingerprint_keypoints(k).upload_bytes for k in keypoint_sets]
        )
    )

    print("mean payload per frame:")
    for name, size in sorted(payloads.items(), key=lambda kv: kv[1]):
        print(f"  {name:<12} {size / 1024:>8.1f} KB")

    print("\nsustainable FPS per channel (camera runs at 10 FPS):")
    header = f"  {'encoding':<12}" + "".join(
        f" {name:>8}" for name in CHANNEL_PRESETS
    )
    print(header)
    for name, size in sorted(payloads.items(), key=lambda kv: kv[1]):
        row = f"  {name:<12}"
        for channel in CHANNEL_PRESETS.values():
            fps = sustainable_fps(channel.bandwidth_mbps, size)
            row += f" {min(fps, 99.9):>8.1f}"
        print(row)

    print("\n60-second session on LTE (10 FPS capture, frames drop when backlogged):")
    lte = CHANNEL_PRESETS["lte"]
    for name in ("png", "visualprint"):
        per_frame = [int(payloads[name])] * 600
        trace = simulate_stream(name, per_frame, lte, capture_fps=10.0)
        delivered = len(trace.events)
        print(
            f"  {name:<12} delivered {delivered:>4}/600 frames, "
            f"{trace.total_bytes / 2**20:>6.1f} MB total"
        )


if __name__ == "__main__":
    main()
