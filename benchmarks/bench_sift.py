"""Client hot-path trajectory: batched SIFT, packed oracle, zero-copy wire.

Every before/after pair here times the *retained reference
implementation* against the batched hot path on the same seeded frame,
with the parity contract asserted in the same breath (geometry
bit-identical, descriptors within ±1 integer step — see
tests/test_sift_parity.py for the exhaustive version).

Rows land in BENCH_sift.json via ``conftest.pytest_sessionfinish``; the
single-core extract row is mirrored into BENCH_parallel.json as the
SIFT axis of the parallel-layer trajectory.

Honest numbers, not target numbers: the Gaussian pyramid is kept
bit-identical to ``scipy.ndimage.gaussian_filter`` (the parity anchor
for every downstream extremum), which puts a ~9 ms floor under the fast
path on a 256x256 frame and caps the extract speedup around 2.5-2.7x
single-core.  The end-to-end frame also banks the packed-counter oracle
(~3x) and the zero-copy serializer.
"""

from __future__ import annotations

import time

import numpy as np

from repro.core.client import VisualPrintClient
from repro.core.config import VisualPrintConfig
from repro.core.oracle import UniquenessOracle
from repro.features.serialize import serialize_keypoints, serialize_keypoints_into
from repro.features.sift import SiftExtractor, SiftParams
from repro.imaging import scene_image
from repro.imaging.synth import BuildingMotifs
from repro.lsh.buckets import QuantizedBuckets
from repro.util.rng import rng_for

_FRAME_SIZE = (256, 256)


def _bench_frame() -> np.ndarray:
    """A dense seeded 256x256 AR frame (~600 keypoints at ct=0.01)."""
    rng = rng_for(7, "bench-sift-frame")
    motifs = BuildingMotifs.create(rng)
    return scene_image(motifs, rng, size=_FRAME_SIZE)


def _best_of(fn, repeats: int = 3) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def _counts_reference(
    oracle: UniquenessOracle,
    descriptors: np.ndarray,
    unpacked: np.ndarray | None = None,
) -> np.ndarray:
    """The seed oracle inner loop: per-seed murmur + unpacked counter gather.

    ``unpacked`` is the seed's resident uint16 counter array (it stored
    counters unpacked); pass it precomputed so the timed region covers
    only the per-query work the seed actually did.
    """
    quantized = QuantizedBuckets(
        oracle.projections.quantize(np.asarray(descriptors, dtype=np.float32))
    )
    if unpacked is None:
        unpacked = oracle.counting.counters
    estimate = np.full(quantized.num_items, np.iinfo(np.int64).max, dtype=np.int64)
    for table, family in enumerate(oracle._families):
        indices = family.indices_reference(quantized.table_vectors(table))
        np.minimum(
            estimate, unpacked[indices].min(axis=1).astype(np.int64), out=estimate
        )
    return estimate


def test_extract_batched_vs_reference(sift_trajectory, parallel_trajectory):
    frame = _bench_frame()
    extractor = SiftExtractor(SiftParams(contrast_threshold=0.01))

    fast = extractor.extract(frame)
    ref = extractor.extract_reference(frame)
    assert np.array_equal(fast.positions, ref.positions)
    assert np.array_equal(fast.scales, ref.scales)
    assert np.array_equal(fast.orientations, ref.orientations)
    assert np.array_equal(fast.responses, ref.responses)
    descriptor_diff = float(np.abs(fast.descriptors - ref.descriptors).max())
    assert descriptor_diff <= 1.0

    ref_seconds = _best_of(lambda: extractor.extract_reference(frame))
    fast_seconds = _best_of(lambda: extractor.extract(frame))

    row = {
        "frame": f"{_FRAME_SIZE[0]}x{_FRAME_SIZE[1]}",
        "keypoints": len(fast),
        "reference_ms": round(ref_seconds * 1e3, 2),
        "batched_ms": round(fast_seconds * 1e3, 2),
        "speedup": round(ref_seconds / max(fast_seconds, 1e-9), 2),
        "geometry_bit_identical": True,
        "descriptor_max_abs_diff": descriptor_diff,
    }
    sift_trajectory["extract_256x256"] = row
    parallel_trajectory["sift_extract"] = row
    print(f"\nextract: ref {row['reference_ms']} ms, batched "
          f"{row['batched_ms']} ms ({row['speedup']}x, {row['keypoints']} kp)")


def test_oracle_counts_packed_vs_reference(sift_trajectory):
    config = VisualPrintConfig()
    oracle = UniquenessOracle(config)
    rng = rng_for(11, "bench-sift-db")
    oracle.insert(rng.normal(127, 40, size=(4000, 128)).astype(np.float32))
    queries = rng.normal(127, 40, size=(600, 128)).astype(np.float32)

    unpacked = oracle.counting.counters
    np.testing.assert_array_equal(
        oracle.counts(queries), _counts_reference(oracle, queries, unpacked)
    )
    ref_seconds = _best_of(lambda: _counts_reference(oracle, queries, unpacked))
    fast_seconds = _best_of(lambda: oracle.counts(queries))
    sift_trajectory["oracle_counts_600"] = {
        "descriptors": queries.shape[0],
        "reference_ms": round(ref_seconds * 1e3, 2),
        "packed_ms": round(fast_seconds * 1e3, 2),
        "speedup": round(ref_seconds / max(fast_seconds, 1e-9), 2),
        "bit_identical": True,
    }


def test_serialize_zero_copy_vs_reference(sift_trajectory):
    frame = _bench_frame()
    extractor = SiftExtractor(SiftParams(contrast_threshold=0.01))
    keypoints = extractor.extract(frame).top_by_response(200)

    buffer = bytearray()
    size = serialize_keypoints_into(keypoints, buffer)
    assert bytes(buffer[:size]) == serialize_keypoints(keypoints)

    ref_seconds = _best_of(lambda: serialize_keypoints(keypoints), repeats=20)
    fast_seconds = _best_of(
        lambda: serialize_keypoints_into(keypoints, buffer), repeats=20
    )
    sift_trajectory["serialize_200"] = {
        "keypoints": len(keypoints),
        "payload_bytes": size,
        "reference_us": round(ref_seconds * 1e6, 1),
        "zero_copy_us": round(fast_seconds * 1e6, 1),
        "speedup": round(ref_seconds / max(fast_seconds, 1e-9), 2),
        "byte_identical": True,
    }


def test_process_frame_end_to_end(sift_trajectory):
    """Shutter-to-payload: seed-equivalent pipeline vs the batched client."""
    frame = _bench_frame()
    config = VisualPrintConfig()
    oracle = UniquenessOracle(config)
    rng = rng_for(12, "bench-sift-e2e-db")
    oracle.insert(rng.normal(127, 40, size=(4000, 128)).astype(np.float32))
    client = VisualPrintClient(oracle)
    extractor = SiftExtractor(SiftParams(contrast_threshold=0.01))
    unpacked = oracle.counting.counters

    def reference_pipeline():
        keypoints = extractor.extract_reference(frame)
        counts = _counts_reference(oracle, keypoints.descriptors, unpacked)
        order = oracle.rank_by_uniqueness(keypoints.descriptors, counts=counts)
        kept = keypoints.select(order[: config.fingerprint_size])
        return serialize_keypoints(kept)

    reference_pipeline()  # warm caches
    client.process_frame(frame)
    ref_seconds = _best_of(reference_pipeline)
    fast_seconds = _best_of(lambda: client.process_frame(frame))

    stages = {
        stage: round(client.latency_quantiles(stage, (0.5,))[0.5] * 1e3, 3)
        for stage in ("sift", "oracle", "serialize")
    }
    sift_trajectory["process_frame_256x256"] = {
        "frame": f"{_FRAME_SIZE[0]}x{_FRAME_SIZE[1]}",
        "reference_ms": round(ref_seconds * 1e3, 2),
        "batched_ms": round(fast_seconds * 1e3, 2),
        "speedup": round(ref_seconds / max(fast_seconds, 1e-9), 2),
        "fast_stage_median_ms": stages,
    }
    print(f"\nprocess_frame: ref {ref_seconds*1e3:.1f} ms, batched "
          f"{fast_seconds*1e3:.1f} ms "
          f"({ref_seconds/max(fast_seconds,1e-9):.2f}x), stages {stages}")
