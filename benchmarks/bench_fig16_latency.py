"""Figure 16 bench: client compute latency, SIFT vs oracle lookups."""

from __future__ import annotations

import numpy as np

from repro.evaluation.experiments import fig16_latency


def test_fig16_latency(benchmark, full_scale):
    params = dict(num_frames=20, image_size=320) if full_scale else dict(
        num_frames=8, image_size=224
    )
    result = benchmark.pedantic(
        lambda: fig16_latency.run(**params), rounds=1, iterations=1
    )
    print()
    print(
        f"Figure 16: SIFT median {result['median_sift'] * 1e3:.0f} ms, "
        f"oracle median {result['median_oracle'] * 1e3:.1f} ms, "
        f"ratio {result['ratio']:.1f}x (paper ~15x)"
    )
    for q in (10, 50, 90):
        print(
            f"  p{q:<3} SIFT {np.percentile(result['sift_seconds'], q) * 1e3:>7.1f} ms"
            f"  oracle {np.percentile(result['oracle_seconds'], q) * 1e3:>6.1f} ms"
        )
    # shape: extraction dominates ranking by a wide margin
    assert result["ratio"] >= 3.0
