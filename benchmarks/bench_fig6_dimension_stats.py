"""Figure 6 bench: descriptor dimension statistics (NN profile + PCA)."""

from __future__ import annotations

import numpy as np

from repro.evaluation.experiments import fig6_dimension_stats


def test_fig6_dimension_stats(benchmark, full_scale):
    params = (
        dict(num_scenes=20, num_distractors=40, image_size=256)
        if full_scale
        else dict(num_scenes=6, num_distractors=10, image_size=160)
    )
    result = benchmark.pedantic(
        lambda: fig6_dimension_stats.run(**params, cache_dir=None),
        rounds=1,
        iterations=1,
    )
    medians = np.median(result["sorted_squared_differences"], axis=0)
    top8_share = medians[:8].sum() / max(medians.sum(), 1e-9)
    print()
    print(f"Figure 6a: top-8 dims carry {top8_share:.0%} of median NN distance")
    print(
        f"Figure 6b: {result['dims_for_90pct_variance']} of 128 PCA dims "
        "cover 90% of variance"
    )
    # shape: a minority of dimensions dominates both views
    assert top8_share > 0.35
    assert result["dims_for_90pct_variance"] < 80
