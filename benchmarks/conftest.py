"""Benchmark configuration.

Each ``bench_*.py`` regenerates one paper artifact through its
``repro.evaluation.experiments`` driver and prints the same rows/series
the paper reports, while pytest-benchmark times the run.  Results use
reduced-but-representative workload sizes so the whole suite finishes in
minutes; pass ``--full-scale`` for the paper-scale workloads recorded in
EXPERIMENTS.md.
"""

from __future__ import annotations

import pytest

from repro.obs import MetricsRegistry, use_registry


def pytest_addoption(parser):
    parser.addoption(
        "--full-scale",
        action="store_true",
        default=False,
        help="run paper-scale workloads (slow; used for EXPERIMENTS.md)",
    )


@pytest.fixture(scope="session")
def full_scale(request) -> bool:
    return request.config.getoption("--full-scale")


@pytest.fixture(autouse=True)
def metrics_registry():
    """Fresh contextual registry per benchmark.

    Components a benchmark constructs report into this registry (see
    :func:`repro.obs.use_registry`), keeping runs isolated from each
    other and giving benchmark bodies a registry to assert against.
    """
    registry = MetricsRegistry()
    with use_registry(registry):
        yield registry
