"""Benchmark configuration.

Each ``bench_*.py`` regenerates one paper artifact through its
``repro.evaluation.experiments`` driver and prints the same rows/series
the paper reports, while pytest-benchmark times the run.  Results use
reduced-but-representative workload sizes so the whole suite finishes in
minutes; pass ``--full-scale`` for the paper-scale workloads recorded in
EXPERIMENTS.md.
"""

from __future__ import annotations

import json
import platform
from pathlib import Path

import pytest

from repro.obs import MetricsRegistry, use_registry
from repro.parallel import default_workers

# Session-wide trajectory rows, keyed by output filename; each non-empty
# entry is written at session end so future PRs can track the curves.
_TRAJECTORIES: dict[str, dict[str, dict]] = {}


def pytest_addoption(parser):
    parser.addoption(
        "--full-scale",
        action="store_true",
        default=False,
        help="run paper-scale workloads (slow; used for EXPERIMENTS.md)",
    )


@pytest.fixture(scope="session")
def full_scale(request) -> bool:
    return request.config.getoption("--full-scale")


@pytest.fixture(autouse=True)
def metrics_registry():
    """Fresh contextual registry per benchmark.

    Components a benchmark constructs report into this registry (see
    :func:`repro.obs.use_registry`), keeping runs isolated from each
    other and giving benchmark bodies a registry to assert against.
    """
    registry = MetricsRegistry()
    with use_registry(registry):
        yield registry


@pytest.fixture(scope="session")
def parallel_trajectory() -> dict[str, dict]:
    """Mutable dict the parallel benchmarks fill with timing rows."""
    return _TRAJECTORIES.setdefault("BENCH_parallel.json", {})


@pytest.fixture(scope="session")
def obs_trace_trajectory() -> dict[str, dict]:
    """Mutable dict the tracing-overhead benchmark fills with timing rows."""
    return _TRAJECTORIES.setdefault("BENCH_obs_trace.json", {})


@pytest.fixture(scope="session")
def faults_trajectory() -> dict[str, dict]:
    """Mutable dict the fault-injection benchmarks fill with rows."""
    return _TRAJECTORIES.setdefault("BENCH_faults.json", {})


@pytest.fixture(scope="session")
def store_trajectory() -> dict[str, dict]:
    """Mutable dict the snapshot-store benchmarks fill with rows."""
    return _TRAJECTORIES.setdefault("BENCH_store.json", {})


@pytest.fixture(scope="session")
def serving_trajectory() -> dict[str, dict]:
    """Mutable dict the serving-layer benchmarks fill with rows."""
    return _TRAJECTORIES.setdefault("BENCH_serving.json", {})


@pytest.fixture(scope="session")
def sift_trajectory() -> dict[str, dict]:
    """Mutable dict the SIFT hot-path benchmarks fill with rows."""
    return _TRAJECTORIES.setdefault("BENCH_sift.json", {})


@pytest.fixture(scope="session")
def loadgen_trajectory() -> dict[str, dict]:
    """Mutable dict the fleet load-test benchmarks fill with rows."""
    return _TRAJECTORIES.setdefault("BENCH_loadgen.json", {})


def pytest_sessionfinish(session, exitstatus):
    """Emit one BENCH_*.json per trajectory the session filled.

    Wall-clock numbers are host-dependent; ``host_cpus`` records how
    much parallel hardware produced them, so a 1-core CI runner's
    pool-overhead numbers aren't mistaken for a regression against a
    16-core workstation's.
    """
    repo_root = Path(__file__).resolve().parent.parent
    for filename, rows in _TRAJECTORIES.items():
        if not rows:
            continue
        payload = {
            "host_cpus": default_workers(),
            "platform": platform.platform(),
            "python": platform.python_version(),
            "benchmarks": dict(sorted(rows.items())),
        }
        out_path = repo_root / filename
        out_path.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
