"""Parallel-layer trajectory: pool fan-out and vectorized multiprobe.

Two before/after measurements, both asserted bit-identical:

* ``build_workload`` at ``workers=1`` versus ``workers=4`` — the pool
  speedup scales with physical cores (a 1-core host only measures pool
  overhead; see ``host_cpus`` in the emitted file).
* ``lookup_batch`` vectorized versus the retained scalar reference
  walk on a 500-descriptor batch — a pure single-core win.

Rows land in BENCH_parallel.json via ``conftest.pytest_sessionfinish``
so future PRs can track the perf curve.
"""

from __future__ import annotations

import time

import numpy as np

from repro.core.config import VisualPrintConfig
from repro.core.oracle import UniquenessOracle
from repro.evaluation.datasets import build_workload
from repro.util.rng import rng_for

_POOL_WORKERS = 4


def _timed(fn):
    start = time.perf_counter()
    result = fn()
    return result, time.perf_counter() - start


def test_workload_build_parallel(parallel_trajectory, full_scale):
    if full_scale:
        params = dict(
            seed=13, num_scenes=20, num_distractors=60, views_per_scene=3,
            image_size=256, cache_dir=None,
        )
    else:
        params = dict(
            seed=13, num_scenes=5, num_distractors=10, views_per_scene=2,
            image_size=160, cache_dir=None,
        )

    serial, serial_seconds = _timed(lambda: build_workload(**params, workers=1))
    pooled, pooled_seconds = _timed(
        lambda: build_workload(**params, workers=_POOL_WORKERS)
    )

    assert serial.database_labels == pooled.database_labels
    assert serial.query_labels == pooled.query_labels
    for a, b in zip(
        serial.database_keypoints + serial.query_keypoints,
        pooled.database_keypoints + pooled.query_keypoints,
    ):
        assert np.array_equal(a.descriptors, b.descriptors)
        assert np.array_equal(a.positions, b.positions)

    parallel_trajectory["workload_build"] = {
        "images": serial.num_database_images + serial.num_queries,
        "workers": _POOL_WORKERS,
        "serial_seconds": round(serial_seconds, 4),
        "parallel_seconds": round(pooled_seconds, 4),
        "speedup": round(serial_seconds / max(pooled_seconds, 1e-9), 2),
        "bit_identical": True,
    }


def test_lookup_batch_vectorized(parallel_trajectory):
    config = VisualPrintConfig()
    oracle = UniquenessOracle(config)
    database = rng_for(31, "bench-lookup-db").normal(0, 30, size=(5000, 128))
    oracle.insert(database.astype(np.float32))

    rng = rng_for(32, "bench-lookup-q")
    queries = np.concatenate(
        [
            database[:250] + rng.normal(0, 5, size=(250, 128)),
            rng.normal(0, 30, size=(250, 128)),
        ]
    ).astype(np.float32)

    scalar, scalar_seconds = _timed(lambda: oracle._lookup_batch_scalar(queries))
    vectorized, vectorized_seconds = _timed(lambda: oracle.lookup_batch(queries))

    assert vectorized == scalar

    parallel_trajectory["lookup_batch"] = {
        "descriptors": queries.shape[0],
        "scalar_seconds": round(scalar_seconds, 4),
        "vectorized_seconds": round(vectorized_seconds, 4),
        "speedup": round(scalar_seconds / max(vectorized_seconds, 1e-9), 2),
        "bit_identical": True,
    }
