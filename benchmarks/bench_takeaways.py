"""Evaluation-takeaways bench: the seven headline paper-vs-measured checks."""

from __future__ import annotations

from repro.evaluation.experiments import takeaways_exp


def test_takeaways(benchmark, full_scale):
    result = benchmark.pedantic(
        lambda: takeaways_exp.run(fast=not full_scale), rounds=1, iterations=1
    )
    print()
    holds = 0
    for key, (paper_value, measured, ok) in result.items():
        status = "OK " if ok else "MISS"
        holds += ok
        print(f"  [{status}] {key}: {measured}")
        print(f"         (paper: {paper_value})")
    # the headline shapes must all hold
    assert holds == len(result)
