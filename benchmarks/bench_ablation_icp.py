"""Ablation: ICP drift correction and fingerprint size (DESIGN.md §4)."""

from __future__ import annotations

import numpy as np

from repro.wardrive import DriftModel, IndoorEnvironment, WardriveSession


def test_ablation_icp_drift(benchmark):
    """Mapping error with and without ICP across drift scales."""

    def run():
        environment = IndoorEnvironment.build("office", seed=3)
        rows = []
        for scale in (1.0, 3.0):
            raw = WardriveSession(
                environment, seed=3, drift=DriftModel(scale=scale)
            ).run(use_icp=False)
            corrected = WardriveSession(
                environment, seed=3, drift=DriftModel(scale=scale)
            ).run(use_icp=True)
            rows.append(
                (
                    scale,
                    float(np.median(raw.position_errors())),
                    float(np.median(corrected.position_errors())),
                )
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print("  drift-scale  raw-median  icp-median  (meters)")
    for scale, raw_err, icp_err in rows:
        print(f"  {scale:>11.1f} {raw_err:>11.2f} {icp_err:>11.2f}")
    # at heavy drift, correction must not make mapping worse
    heavy = rows[-1]
    assert heavy[2] <= heavy[1] * 1.1
