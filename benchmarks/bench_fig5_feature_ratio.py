"""Figure 5 bench: feature-size / image-size ratio CDF."""

from __future__ import annotations

import numpy as np

from repro.evaluation.experiments import fig5_feature_ratio


def test_fig5_feature_ratio(benchmark, full_scale):
    params = dict(num_images=60, image_size=256) if full_scale else dict(
        num_images=16, image_size=160
    )
    result = benchmark.pedantic(
        lambda: fig5_feature_ratio.run(**params), rounds=1, iterations=1
    )
    print()
    print("Figure 5 CDF points (feature bytes / image bytes)")
    for q in (10, 25, 50, 75, 90):
        print(
            f"  p{q:<3} uncompressed {np.percentile(result['raw_ratios'], q):>6.2f} "
            f"gzip {np.percentile(result['gzip_ratios'], q):>6.2f}"
        )
    # shape: features are not dramatically cheaper than the image itself
    assert np.median(result["gzip_ratios"]) > 0.15
