"""Figure 15 bench: client disk/memory footprint per approach."""

from __future__ import annotations

from repro.evaluation.experiments import fig15_memory
from repro.evaluation.footprint import format_footprint_table


def test_fig15_memory(benchmark, full_scale):
    descriptors = 500_000 if full_scale else 100_000
    result = benchmark.pedantic(
        lambda: fig15_memory.run(num_descriptors=descriptors), rounds=1, iterations=1
    )
    print()
    print(format_footprint_table(result["paper_scale"]))
    print(
        f"ratios at 2.5M: disk {result['disk_ratio_lsh_over_vp']:.0f}x "
        f"(paper 124x), memory {result['memory_ratio_lsh_over_vp']:.0f}x (paper 58x)"
    )
    assert result["disk_ratio_lsh_over_vp"] > 20
    assert result["memory_ratio_lsh_over_vp"] > 20
