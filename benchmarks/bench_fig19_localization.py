"""Figure 19 bench: 3D localization error CDFs in the three venues."""

from __future__ import annotations

import numpy as np

from repro.evaluation.experiments import fig19_localization


def test_fig19_localization(benchmark, full_scale):
    params = (
        dict(venues=("office", "cafeteria", "grocery"), queries_per_venue=40)
        if full_scale
        else dict(venues=("office", "cafeteria"), queries_per_venue=12)
    )
    result = benchmark.pedantic(
        lambda: fig19_localization.run(**params), rounds=1, iterations=1
    )
    print()
    print("Figure 19: 3D localization error (paper median: 2.5 m)")
    for venue, values in result["errors"].items():
        print(
            f"  {venue:<10} n={values.size:<3} median {np.median(values):>5.2f} m "
            f"p90 {np.percentile(values, 90):>5.2f} m"
        )
    for values in result["errors"].values():
        assert np.median(values) < 4.0  # meters, the paper's band
