"""Figure 13 bench: precision/recall CDFs across the five regimes.

The headline accuracy experiment.  Reduced scale by default; the
``--full-scale`` run (50 scenes x 5 views, 200 distractors) is what
EXPERIMENTS.md records.
"""

from __future__ import annotations

import numpy as np

from repro.evaluation.experiments import fig13_precision_recall


def test_fig13_precision_recall(benchmark, full_scale):
    if full_scale:
        params = dict(
            num_scenes=50,
            num_distractors=200,
            views_per_scene=5,
            image_size=320,
            small_count=100,
            large_count=250,
            random_count=250,
        )
    else:
        params = dict(
            num_scenes=12,
            num_distractors=36,
            views_per_scene=3,
            image_size=224,
            small_count=60,
            large_count=150,
            random_count=150,
            include_bruteforce=True,
        )
    result = benchmark.pedantic(
        lambda: fig13_precision_recall.run(**params), rounds=1, iterations=1
    )
    print()
    print("Figure 13: per-scene precision/recall")
    medians = {}
    for scheme, pr in result["cdfs"].items():
        medians[scheme] = (float(np.mean(pr["precision"])), float(np.mean(pr["recall"])))
        print(
            f"  {scheme:<18} P med {np.median(pr['precision']):.2f} "
            f"mean {np.mean(pr['precision']):.2f} | "
            f"R med {np.median(pr['recall']):.2f} mean {np.mean(pr['recall']):.2f}"
        )
    schemes = list(result["cdfs"])
    random_scheme = next(s for s in schemes if s.startswith("Random"))
    vp_large = [s for s in schemes if s.startswith("VisualPrint")][-1]
    # shape: VisualPrint's large fingerprint >= Random at the same upload
    assert medians[vp_large][1] >= medians[random_scheme][1] - 0.05
