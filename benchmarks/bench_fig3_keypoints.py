"""Figure 3 bench: keypoint-count CDF, PNG vs JPEG at matched ratio."""

from __future__ import annotations

import numpy as np

from repro.evaluation.experiments import fig3_keypoints


def test_fig3_keypoint_cdf(benchmark, full_scale):
    params = dict(num_images=60, image_size=256) if full_scale else dict(
        num_images=16, image_size=160
    )
    result = benchmark.pedantic(
        lambda: fig3_keypoints.run(**params), rounds=1, iterations=1
    )
    png, jpeg = result["png_counts"], result["jpeg_counts"]
    print()
    print(f"Figure 3 CDF points (JPEG ratio ~{result['mean_compression_ratio']:.0f}:1)")
    for q in (10, 25, 50, 75, 90):
        print(f"  p{q:<3} PNG {np.percentile(png, q):>6.0f} JPEG {np.percentile(jpeg, q):>6.0f}")
    assert np.median(jpeg) < np.median(png)
