"""Fleet load-test trajectory: million users, replication gain, linearity.

Three measurements land in BENCH_loadgen.json:

* ``million_user_fast`` — the headline scale point: one million
  simulated users at the ``--fast`` operating point, generated and
  replayed end to end.  Simulated-time results (offered/served/shed,
  p50/p99/p999, sustained qps/core) are seeded and deterministic; the
  wall-clock columns record what the harness itself costs, and the
  per-arrival processing rate is the perf budget CI watches.
* ``replication_skew`` — a Zipf-head venue taking >=50% of traffic,
  served at ``replication_factor`` 1 vs 2 on the same ring.  The
  acceptance bar: replication must measurably raise sustained qps
  (the whole point of successor-list replication).
* ``backlog_scaling`` — the regression assertion for the simulator's
  deque backlog: quadrupling the query count must scale the replay
  near-linearly.  The historical ``list.pop(0)``-style retire scan was
  O(queue) per arrival — quadratic on a deep queue — and would blow
  the ratio bound immediately.
"""

from __future__ import annotations

import time

from repro.core import ServerConfig
from repro.loadgen import TrafficModel, run_loadtest
from repro.obs import MetricsRegistry, use_registry
from repro.serving import ShardLoadModel, simulate_shard_throughput

_FAST_MILLION = TrafficModel(
    users=1_000_000,
    venues=100,
    duration_seconds=5.0,
    rate_per_user=0.05,
    zipf_exponent=1.1,
)

_SKEWED = TrafficModel(
    users=4000,
    venues=16,
    duration_seconds=30.0,
    rate_per_user=0.05,
    zipf_exponent=3.0,
)


def test_million_user_fast(loadgen_trajectory):
    start = time.perf_counter()
    with use_registry(MetricsRegistry()):
        report = run_loadtest(
            _FAST_MILLION, ServerConfig(num_shards=4), seed=3
        )
    wall = time.perf_counter() - start
    assert report["offered"] > 100_000
    rate = report["offered"] / wall
    loadgen_trajectory["million_user_fast"] = {
        "users": _FAST_MILLION.users,
        "offered": report["offered"],
        "served": report["served"],
        "shed_fraction": round(report["shed_fraction"], 4),
        "latency_p50_ms": round(report["latency_seconds"]["p50"] * 1e3, 2),
        "latency_p99_ms": round(report["latency_seconds"]["p99"] * 1e3, 2),
        "latency_p999_ms": round(report["latency_seconds"]["p999"] * 1e3, 2),
        "queries_per_second": round(report["queries_per_second"], 2),
        "queries_per_second_per_core": round(
            report["queries_per_second_per_core"], 2
        ),
        "wall_seconds": round(wall, 3),
        "arrivals_per_wall_second": round(rate, 0),
    }
    print()
    print(
        f"  1M users: {report['offered']} arrivals in {wall:.2f} s wall "
        f"({rate / 1e3:.0f}k arrivals/s), shed {report['shed_fraction']:.1%}"
    )


def test_replication_skew(loadgen_trajectory):
    results = {}
    for factor in (1, 2):
        cluster = ServerConfig(
            num_shards=4, queue_depth=16, replication_factor=factor
        )
        with use_registry(MetricsRegistry()):
            results[factor] = run_loadtest(_SKEWED, cluster, seed=11)
    assert results[1]["hot_venue_share"] >= 0.5
    gain = results[2]["queries_per_second"] / results[1]["queries_per_second"]
    # The acceptance bar: replicating the Zipf head must measurably
    # raise sustained throughput on the same offered stream.
    assert gain > 1.2
    loadgen_trajectory["replication_skew"] = {
        "hot_venue_share": round(results[1]["hot_venue_share"], 3),
        "qps_rf1": round(results[1]["queries_per_second"], 2),
        "qps_rf2": round(results[2]["queries_per_second"], 2),
        "qps_gain": round(gain, 3),
        "shed_rf1": results[1]["shed"],
        "shed_rf2": results[2]["shed"],
    }
    print()
    print(
        f"  replication x2 on {results[1]['hot_venue_share']:.0%}-hot venue: "
        f"{results[1]['queries_per_second']:.0f} -> "
        f"{results[2]['queries_per_second']:.0f} qps ({gain:.2f}x)"
    )


def _replay_seconds(num_queries: int) -> float:
    # Deep single-shard queue: every arrival lands behind all prior
    # ones, the worst case for any per-arrival backlog scan.
    model = ShardLoadModel(
        num_shards=1, queue_depth=num_queries, interarrival_seconds=0.0
    )
    service = [1.0] * num_queries
    start = time.perf_counter()
    result = simulate_shard_throughput(service, model)
    elapsed = time.perf_counter() - start
    assert result.served == num_queries
    return elapsed

def test_backlog_scaling_near_linear(loadgen_trajectory):
    small, large = 25_000, 100_000
    base = min(_replay_seconds(small) for _ in range(3))
    scaled = min(_replay_seconds(large) for _ in range(3))
    ratio = scaled / max(base, 1e-9)
    # Linear scaling lands near 4x; the old rebuild-the-backlog-per-
    # arrival accounting was quadratic (~16x) and must never come back.
    assert ratio < 10.0
    loadgen_trajectory["backlog_scaling"] = {
        "queries_small": small,
        "queries_large": large,
        "seconds_small": round(base, 4),
        "seconds_large": round(scaled, 4),
        "scaling_ratio": round(ratio, 2),
        "ns_per_query": round(scaled / large * 1e9, 0),
    }
    print()
    print(
        f"  backlog scaling {small} -> {large} queries: "
        f"{base * 1e3:.1f} -> {scaled * 1e3:.1f} ms ({ratio:.1f}x, "
        f"{scaled / large * 1e6:.2f} us/query)"
    )
