"""Durable-state trajectory: snapshot-store cost and the verify budget.

Three measurements land in BENCH_store.json:

* ``npz_verify_overhead`` — :func:`load_server` on a v2 state file (the
  integrity-checked path) versus the same decompress-and-restore with
  the checksum pass skipped.  The integrity pass must cost under 10% of
  the bare load (the verify budget): decompression and the LSH rebuild
  dominate, CRC is cheap, so detection is close to free.
* ``generational_roundtrip`` — :class:`ServerStateStore` save+load
  wall-clock per generation (atomic staging, fsyncs, manifest, full
  verification on the way back in).
* ``rollback_scan`` — loading with the newest generation corrupted: the
  price of detecting the bad generation and falling back to last-good.
"""

from __future__ import annotations

import json
import time

import numpy as np

from repro.core import VisualPrintConfig, VisualPrintServer
from repro.core import persistence
from repro.core.persistence import ServerStateStore, load_server, save_server
from repro.store import StorageFaultInjector
from repro.util.rng import rng_for
from repro.wardrive.environment import random_sift_descriptor

_NUM_DESCRIPTORS = 3000
_REPEATS = 5


def _benchmark_server() -> VisualPrintServer:
    rng = rng_for(2016, "bench/store")
    config = VisualPrintConfig(descriptor_capacity=50_000, fingerprint_size=10)
    server = VisualPrintServer(
        config, bounds=(np.zeros(3), np.array([30.0, 30.0, 3.0]))
    )
    descriptors = np.array(
        [random_sift_descriptor(rng) for _ in range(_NUM_DESCRIPTORS)]
    )
    server.ingest(descriptors, rng.uniform(0, 30, (_NUM_DESCRIPTORS, 3)))
    return server


def _min_seconds(run, repeats: int = _REPEATS) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        run()
        best = min(best, time.perf_counter() - start)
    return best


def test_npz_verify_overhead(store_trajectory, tmp_path, benchmark):
    server = _benchmark_server()
    path = tmp_path / "state.npz"
    save_server(server, path)

    def bare_load():
        # The same decompress-and-restore work load_server does, minus
        # the per-section checksum pass — the no-integrity baseline.
        with np.load(path) as data:
            entries = {name: data[name] for name in data.files}
        config = persistence._config_from_json(bytes(entries["config_json"]))
        bounds = (entries["bounds_low"].copy(), entries["bounds_high"].copy())
        return persistence._restore_server(
            config,
            bounds,
            entries["descriptors"],
            entries["positions"],
            entries["oracle_counters"],
            bytes(entries["verification_bits"]),
            int(entries["inserted_count"][0]),
        )

    bare_seconds = _min_seconds(bare_load)
    benchmark.pedantic(lambda: load_server(path), rounds=_REPEATS, iterations=1)
    verified_seconds = benchmark.stats.stats.min

    overhead = (verified_seconds - bare_seconds) / max(bare_seconds, 1e-9)
    # The verify budget: integrity checking must stay under 10% of the
    # bare materialization cost.
    assert overhead < 0.10, f"verify overhead {overhead:.1%} blows the 10% budget"
    store_trajectory["npz_verify_overhead"] = {
        "descriptors": _NUM_DESCRIPTORS,
        "state_bytes": path.stat().st_size,
        "bare_load_seconds": round(bare_seconds, 5),
        "verified_load_seconds": round(verified_seconds, 5),
        "overhead_ratio": round(overhead, 4),
        "budget_ratio": 0.10,
    }
    print()
    print(
        f"  npz verify: +{overhead:.1%} over bare load "
        f"({path.stat().st_size / 1e6:.2f} MB state)"
    )


def test_generational_roundtrip(store_trajectory, tmp_path, benchmark):
    server = _benchmark_server()
    root = tmp_path / "store"

    flat = tmp_path / "flat.npz"
    save_server(server, flat)
    flat_save_seconds = _min_seconds(lambda: save_server(server, flat))
    flat_load_seconds = _min_seconds(lambda: load_server(flat))

    def roundtrip():
        ServerStateStore(root).save(server)
        return ServerStateStore(root).load()

    restored, loaded = benchmark.pedantic(roundtrip, rounds=_REPEATS, iterations=1)
    roundtrip_seconds = benchmark.stats.stats.min
    assert loaded.rolled_back == 0
    assert np.array_equal(
        restored.oracle.counting.counters, server.oracle.counting.counters
    )
    store_trajectory["generational_roundtrip"] = {
        "descriptors": _NUM_DESCRIPTORS,
        "roundtrip_seconds": round(roundtrip_seconds, 5),
        "flat_npz_save_seconds": round(flat_save_seconds, 5),
        "flat_npz_load_seconds": round(flat_load_seconds, 5),
        "generations_kept": ServerStateStore(root).store.keep_generations,
    }
    print()
    print(
        f"  generational save+load: {roundtrip_seconds * 1e3:.1f} ms vs "
        f"flat npz {(flat_save_seconds + flat_load_seconds) * 1e3:.1f} ms"
    )


def test_rollback_scan(store_trajectory, tmp_path, benchmark):
    server = _benchmark_server()
    root = tmp_path / "store"
    store = ServerStateStore(root)
    store.save(server)
    newest = store.save(server)
    clean_seconds = _min_seconds(lambda: ServerStateStore(root).load())
    StorageFaultInjector(seed=3).corrupt_file(
        root / f"gen-{newest:06d}" / "counters.npy"
    )

    def rolled_back_load():
        return ServerStateStore(root).load()

    _restored, loaded = benchmark.pedantic(
        rolled_back_load, rounds=_REPEATS, iterations=1
    )
    rollback_seconds = benchmark.stats.stats.min
    assert loaded.rolled_back == 1
    store_trajectory["rollback_scan"] = {
        "descriptors": _NUM_DESCRIPTORS,
        "clean_load_seconds": round(clean_seconds, 5),
        "rollback_load_seconds": round(rollback_seconds, 5),
        "rollback_penalty_ratio": round(
            rollback_seconds / max(clean_seconds, 1e-9), 2
        ),
    }
    print()
    print(
        f"  rollback load: {rollback_seconds * 1e3:.1f} ms "
        f"({rollback_seconds / max(clean_seconds, 1e-9):.2f}x clean)"
    )


def test_trajectory_is_json_serializable(store_trajectory):
    json.dumps(store_trajectory)
