"""Ablation: blur gating (offload shaping).

The client "performs a quick check on each frame to detect blur ...
discarding such frames" before spending SIFT compute and uplink bytes.
This bench quantifies the saving: bytes and keypoints a gated client
spends on a mixed sharp/blurred stream versus an ungated one, and the
match quality of what blurred frames would have uploaded.
"""

from __future__ import annotations

import numpy as np

from repro.core import UniquenessOracle, VisualPrintClient, VisualPrintConfig
from repro.features import BlurDetector
from repro.imaging import motion_blur
from repro.imaging.synth import SceneLibrary


def test_ablation_blur_gating(benchmark):
    def run():
        library = SceneLibrary(
            seed=17, num_scenes=3, num_distractors=3, size=(192, 192),
            blur_probability=0.0,
        )
        config = VisualPrintConfig(descriptor_capacity=50_000, fingerprint_size=40)
        oracle = UniquenessOracle(config)
        seed_keypoints = VisualPrintClient(oracle, config).extract_keypoints(
            library.scene(0)
        )
        if len(seed_keypoints):
            oracle.insert(seed_keypoints.descriptors)

        detector = BlurDetector()
        detector.calibrate([library.scene(scene) for scene in range(3)])
        gated = VisualPrintClient(oracle, config, blur_detector=detector)
        ungated = VisualPrintClient(oracle, config)

        # A stream alternating sharp frames and heavy motion blur.
        frames = []
        for index in range(12):
            frame = library.query_view(index % 3, index % 5)
            if index % 2 == 1:
                frame = motion_blur(frame, 13, 0.6)
            frames.append(frame)
        for index, frame in enumerate(frames):
            gated.process_frame(frame, index)
            ungated.process_frame(frame, index)
        return gated.metrics, ungated.metrics

    gated, ungated = benchmark.pedantic(run, rounds=1, iterations=1)
    gated_bytes = gated.counter("client_upload_bytes_total").value
    ungated_bytes = ungated.counter("client_upload_bytes_total").value
    rejected = gated.counter("client_frames_rejected_blur_total").value
    print()
    print(f"  gated:   {gated_bytes / 1024:.1f} KB uploaded, {rejected} frames rejected")
    print(f"  ungated: {ungated_bytes / 1024:.1f} KB uploaded")
    assert rejected > 0
    assert gated_bytes < ungated_bytes
