"""Ablations of the oracle's design choices (DESIGN.md §4).

1. Verification filter and multiprobe: false-positive / false-negative
   trade-off of the lookup path.
2. Counter saturation width: ranking fidelity vs counter bits.
3. Quantization width W: uniqueness-ranking fidelity.
"""

from __future__ import annotations

from dataclasses import replace

import numpy as np

from repro.core import UniquenessOracle, VisualPrintConfig
from repro.lsh.projections import E2LSHParams
from repro.wardrive.environment import random_sift_descriptor
from repro.util.rng import rng_for


def _training_set(seed: int, num_common: int = 60, num_unique: int = 300):
    rng = rng_for(seed, "ablation")
    common = np.array([random_sift_descriptor(rng) for _ in range(num_common)])
    unique = np.array([random_sift_descriptor(rng) for _ in range(num_unique)])
    return rng, common, unique


def _ranking_quality(oracle: UniquenessOracle, common, unique, rng) -> float:
    """Fraction of unique descriptors ranked ahead of common ones.

    Uses noisy copies (sensor noise) so robustness matters, not just
    memorization.
    """
    noisy_common = np.clip(common + rng.normal(0, 2, common.shape), 0, 255)
    noisy_unique = np.clip(
        unique[:60] + rng.normal(0, 2, unique[:60].shape), 0, 255
    )
    mixed = np.vstack([noisy_common, noisy_unique]).astype(np.float32)
    order = oracle.rank_by_uniqueness(mixed)
    top = set(order[: len(noisy_unique)].tolist())
    unique_rows = set(range(len(noisy_common), len(mixed)))
    return len(top & unique_rows) / len(noisy_unique)


def test_ablation_multiprobe_and_verification(benchmark):
    """Multiprobe rescues noisy members; verification suppresses junk."""

    def run():
        rng, common, unique = _training_set(5)
        config = VisualPrintConfig(descriptor_capacity=10_000)
        oracle = UniquenessOracle(config)
        for _ in range(20):
            oracle.insert(common)
        oracle.insert(unique)
        noisy_members = np.clip(
            unique[:80] + rng.normal(0, 2, (80, 128)), 0, 255
        )
        non_members = np.array(
            [random_sift_descriptor(rng) for _ in range(80)]
        )
        member_pass = np.mean([oracle.lookup(d).present for d in noisy_members])
        non_member_pass = np.mean([oracle.lookup(d).present for d in non_members])
        multiprobe_used = np.mean(
            [oracle.lookup(d).used_multiprobe for d in noisy_members]
        )
        return member_pass, non_member_pass, multiprobe_used

    member_pass, non_member_pass, multiprobe_used = benchmark.pedantic(
        run, rounds=1, iterations=1
    )
    print()
    print(
        f"  members pass {member_pass:.0%}, non-members pass {non_member_pass:.0%}, "
        f"multiprobe used on {multiprobe_used:.0%} of member lookups"
    )
    assert member_pass > non_member_pass


def test_ablation_counter_saturation(benchmark):
    """Low-bit counters saturate early and blur the common/unique gap."""

    def run():
        results = {}
        for bits in (2, 6, 10):
            rng, common, unique = _training_set(6)
            config = VisualPrintConfig(
                descriptor_capacity=10_000, bits_per_counter=bits
            )
            oracle = UniquenessOracle(config)
            for _ in range(20):
                oracle.insert(common)
            oracle.insert(unique)
            results[bits] = _ranking_quality(oracle, common, unique, rng)
        return results

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    for bits, quality in results.items():
        print(f"  {bits:>2}-bit counters: ranking quality {quality:.0%}")
    assert results[10] >= results[2] - 0.1


def test_ablation_quantization_width(benchmark):
    """W controls the locality/selectivity trade-off of the oracle."""

    def run():
        results = {}
        for width in (100.0, 500.0, 2500.0):
            rng, common, unique = _training_set(7)
            config = VisualPrintConfig(
                descriptor_capacity=10_000,
                lsh=E2LSHParams(quantization_width=width),
            )
            oracle = UniquenessOracle(config)
            for _ in range(20):
                oracle.insert(common)
            oracle.insert(unique)
            results[width] = _ranking_quality(oracle, common, unique, rng)
        return results

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    for width, quality in results.items():
        print(f"  W={width:>6.0f}: ranking quality {quality:.0%}")
    print(
        "  (finding: under descriptor noise, overly fine quantization is the"
        " failure mode — W=100 collapses; coarser W trades selectivity for"
        " noise tolerance, which is why the paper tunes W empirically)"
    )
    # too-fine quantization must be the worst operating point
    assert results[500.0] >= results[100.0]
    assert results[2500.0] >= results[100.0]
