"""Serving-layer trajectory: dispatch overhead and shard scaling.

Three measurements land in BENCH_serving.json:

* ``frontend_dispatch_overhead`` — a localization query through a
  one-shard inline :class:`ServingFrontend` versus calling the engine
  directly.  The async router, admission accounting, and per-shard
  instruments must stay a small fraction of real oracle work.
* ``shard_scaling`` — measured per-query service times (from the
  frontend's ``serving_request_seconds`` histogram) replayed through the
  discrete-event load simulator at 1/2/4/8 shards.  This host may have
  a single core, so scaling is established in simulated time — the same
  discipline the channel and latency experiments use — rather than
  wall clock.  The acceptance bar: >= 2x queries/sec at 4 shards.
* ``saturation_shedding`` — the same service times offered open-loop at
  2x a single shard's capacity with a bounded queue: how much a
  ``reject``-mode deployment sheds instead of queueing without bound.
"""

from __future__ import annotations

import json

import numpy as np

from repro.core import Fingerprint, VisualPrintConfig, VisualPrintServer
from repro.features.keypoint import KeypointSet
from repro.obs import MetricsRegistry
from repro.serving import ServingFrontend, ShardLoadModel, simulate_shard_throughput
from repro.util.rng import rng_for
from repro.wardrive.environment import random_sift_descriptor

_NUM_VENUES = 4
_QUERIES_PER_VENUE = 30
_DESCRIPTORS_PER_VENUE = 400
_QUERY_KEYPOINTS = 24
_SHARD_COUNTS = (1, 2, 4, 8)


def _build_fleet(seed: int = 2016) -> dict[str, VisualPrintServer]:
    fleet = {}
    for index in range(_NUM_VENUES):
        name = f"venue-{index}"
        rng = rng_for(seed, f"bench/serving/{name}")
        server = VisualPrintServer(
            VisualPrintConfig(descriptor_capacity=8192, fingerprint_size=10),
            bounds=(np.zeros(3), np.array([10.0, 10.0, 3.0])),
        )
        descriptors = np.array(
            [random_sift_descriptor(rng) for _ in range(_DESCRIPTORS_PER_VENUE)]
        )
        server.ingest(
            descriptors, rng.uniform(0, 10, (_DESCRIPTORS_PER_VENUE, 3))
        )
        fleet[name] = server
    return fleet


def _query_for(server: VisualPrintServer, rng) -> Fingerprint:
    take = np.sort(
        rng.choice(server.num_mappings, size=_QUERY_KEYPOINTS, replace=False)
    )
    descriptors = server.descriptors[take].astype(np.float32)
    n = len(descriptors)
    return Fingerprint(
        keypoints=KeypointSet(
            positions=rng.uniform(50, 590, (n, 2)).astype(np.float32),
            scales=np.ones(n, np.float32),
            orientations=np.zeros(n, np.float32),
            responses=np.ones(n, np.float32),
            descriptors=descriptors,
        ),
        uniqueness_counts=np.zeros(n, dtype=np.int64),
    )


def _workload(fleet: dict[str, VisualPrintServer], seed: int = 2016) -> list:
    rng = rng_for(seed, "bench/serving/queries")
    items = []
    for index in range(_QUERIES_PER_VENUE * len(fleet)):
        name = f"venue-{index % len(fleet)}"
        items.append((name, _query_for(fleet[name], rng)))
    return items


def test_frontend_dispatch_overhead(serving_trajectory, benchmark):
    fleet = _build_fleet()
    items = _workload(fleet)
    name, query = items[0]

    direct_best = float("inf")
    import time

    for _ in range(20):
        start = time.perf_counter()
        fleet[name].localize(query)
        direct_best = min(direct_best, time.perf_counter() - start)

    frontend = ServingFrontend(num_shards=1, registry=MetricsRegistry())
    for venue, server in fleet.items():
        frontend.register_venue(venue, server)
    benchmark.pedantic(
        lambda: frontend.call(name, query), rounds=20, iterations=1
    )
    served_best = benchmark.stats.stats.min
    frontend.close()

    overhead = (served_best - direct_best) / max(direct_best, 1e-9)
    serving_trajectory["frontend_dispatch_overhead"] = {
        "direct_seconds": round(direct_best, 6),
        "served_seconds": round(served_best, 6),
        "overhead_ratio": round(overhead, 3),
    }
    print()
    print(
        f"  frontend dispatch: {served_best * 1e3:.2f} ms vs "
        f"direct {direct_best * 1e3:.2f} ms (+{overhead:.0%})"
    )


def test_shard_scaling(serving_trajectory):
    """>= 2x queries/sec at 4 shards vs 1, on measured service times."""
    fleet = _build_fleet()
    items = _workload(fleet)

    registry = MetricsRegistry()
    with ServingFrontend(num_shards=1, registry=registry) as frontend:
        for venue, server in fleet.items():
            frontend.register_venue(venue, server)
        answers = frontend.map_many(items)
    assert len(answers) == len(items)
    service_seconds = registry.histogram(
        "serving_request_seconds", shard="shard-0"
    ).values()
    assert len(service_seconds) == len(items)

    depth = len(items)  # closed-loop: queue bound never binds
    rows = {}
    for shards in _SHARD_COUNTS:
        result = simulate_shard_throughput(
            service_seconds, ShardLoadModel(shards, queue_depth=depth)
        )
        assert result.served == len(items) and result.shed == 0
        rows[str(shards)] = {
            "queries_per_second": round(result.queries_per_second, 1),
            "makespan_seconds": round(result.makespan_seconds, 5),
            "utilization": round(result.utilization, 3),
        }

    speedup = (
        rows["4"]["queries_per_second"] / rows["1"]["queries_per_second"]
    )
    assert speedup >= 2.0, f"4-shard speedup {speedup:.2f}x below the 2x bar"
    serving_trajectory["shard_scaling"] = {
        "num_queries": len(items),
        "num_venues": _NUM_VENUES,
        "mean_service_ms": round(float(np.mean(service_seconds)) * 1e3, 3),
        "speedup_4_shards": round(speedup, 2),
        "by_shards": rows,
    }
    print()
    for shards in _SHARD_COUNTS:
        row = rows[str(shards)]
        print(
            f"  {shards} shard(s): {row['queries_per_second']:>8.1f} q/s  "
            f"(makespan {row['makespan_seconds'] * 1e3:.1f} ms, "
            f"util {row['utilization']:.0%})"
        )
    print(f"  4-shard speedup: {speedup:.2f}x (bar: 2.0x)")


def test_saturation_shedding(serving_trajectory):
    fleet = _build_fleet()
    items = _workload(fleet)
    registry = MetricsRegistry()
    with ServingFrontend(num_shards=1, registry=registry) as frontend:
        for venue, server in fleet.items():
            frontend.register_venue(venue, server)
        frontend.map_many(items)
    service_seconds = registry.histogram(
        "serving_request_seconds", shard="shard-0"
    ).values()

    # Offer the stream at 2x one shard's sustainable rate with a short
    # queue: a reject-mode deployment sheds the excess instead of
    # building unbounded backlog.
    interarrival = float(np.mean(service_seconds)) / 2.0
    result = simulate_shard_throughput(
        service_seconds,
        ShardLoadModel(1, queue_depth=8, interarrival_seconds=interarrival),
    )
    assert result.served + result.shed == len(items)
    assert result.shed > 0
    serving_trajectory["saturation_shedding"] = {
        "offered_multiplier": 2.0,
        "queue_depth": 8,
        "served": result.served,
        "shed": result.shed,
        "shed_ratio": round(result.shed / len(items), 3),
    }
    print()
    print(
        f"  2x overload, queue 8: served {result.served}, "
        f"shed {result.shed} ({result.shed / len(items):.0%})"
    )


def test_trajectory_is_json_serializable(serving_trajectory):
    json.dumps(serving_trajectory)
