"""Ablation: fingerprint size — the central bandwidth/accuracy knob.

Sweeps k and reports recall together with upload bytes per query: the
trade-off curve behind the paper's choice to evaluate k = 200 and 500.
Expected shape: recall rises steeply then saturates near the LSH-with-
all-keypoints ceiling, while upload grows linearly — the knee is where
VisualPrint wants to operate.
"""

from __future__ import annotations

import numpy as np

from repro.evaluation.datasets import build_workload
from repro.evaluation.retrieval import (
    build_oracle,
    build_scene_database,
    evaluate_scheme_cdfs,
    run_visualprint,
)
from repro.features.serialize import keypoint_record_bytes
from repro.matching import LshMatcher


def test_ablation_fingerprint_size(benchmark, full_scale):
    sizes = (20, 60, 150, 300) if full_scale else (20, 60, 150)
    params = (
        dict(num_scenes=20, num_distractors=60, views_per_scene=5, image_size=256)
        if full_scale
        else dict(num_scenes=10, num_distractors=30, views_per_scene=3, image_size=224)
    )

    def run():
        workload = build_workload(seed=7, cache_dir=".cache", **params)
        database = build_scene_database(workload)
        oracle = build_oracle(workload)
        matcher = LshMatcher(database.descriptors)
        rows = []
        for size in sizes:
            result = run_visualprint(workload, database, matcher, oracle, count=size)
            cdfs = evaluate_scheme_cdfs([result], database)
            recall = float(np.mean(cdfs[result.scheme]["recall"]))
            upload = float(result.uploaded_keypoints.mean()) * keypoint_record_bytes()
            rows.append((size, recall, upload))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print("  k     recall   upload/query")
    for size, recall, upload in rows:
        print(f"  {size:<5} {recall:>6.2f}   {upload / 1024:>8.1f} KB")
    recalls = [recall for _, recall, _ in rows]
    # shape: recall non-decreasing in k (within noise)
    assert all(b >= a - 0.08 for a, b in zip(recalls, recalls[1:]))
