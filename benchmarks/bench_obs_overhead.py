"""Observability-layer cost guards.

Three assertions the obs subsystem must keep true as it grows:

1. Instrumenting :meth:`UniquenessOracle.counts` costs < 5% on a
   1k x 128 descriptor batch versus the uninstrumented path (a disabled
   registry hands out no-op instruments — the baseline).
2. Incremental :meth:`LshIndex.insert` beats rebuild-per-batch ingest
   (the quadratic wardrive pathology the server used to have), with the
   win visible in the ``server_ingest_seconds`` histogram.
3. Full tracing (per-query root span + TraceCollector + FlightRecorder)
   around :meth:`UniquenessOracle.lookup_batch` costs < 5% versus the
   untraced path — the hot-path guard for the tracing layer, recorded
   as a BENCH_obs_trace.json trajectory row.
4. Per-query SLO accounting (a :class:`QuantileSketch` observe plus an
   :class:`SloTracker` record) around the same lookup costs < 5%
   versus the unobserved path — the guard the SLO engine ships under,
   recorded as a second BENCH_obs_trace.json row.
"""

from __future__ import annotations

import time

import numpy as np

from repro.core import UniquenessOracle, VisualPrintConfig
from repro.lsh import LshIndex
from repro.obs import (
    FlightRecorder,
    MetricsRegistry,
    SloTracker,
    TraceCollector,
    default_objectives,
    trace_span,
    use_collector,
)
from repro.util.rng import rng_for

_OVERHEAD_BUDGET = 1.05  # instrumented may cost at most 5% more


def _best_of(func, repeats: int = 9) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        func()
        best = min(best, time.perf_counter() - start)
    return best


def _descriptor_batch(count: int = 1000) -> np.ndarray:
    rng = rng_for(11, "bench/obs-overhead")
    return rng.integers(0, 256, size=(count, 128)).astype(np.float32)


def test_counts_instrumentation_overhead(benchmark):
    """oracle.counts on a 1k batch: instrumented within 5% of baseline."""
    config = VisualPrintConfig(descriptor_capacity=50_000)
    descriptors = _descriptor_batch(1000)

    instrumented = UniquenessOracle(config, registry=MetricsRegistry())
    baseline = UniquenessOracle(config, registry=MetricsRegistry(enabled=False))
    instrumented.insert(descriptors[:500])
    baseline.insert(descriptors[:500])

    # Warm both paths (allocator, caches) before timing.
    instrumented.counts(descriptors)
    baseline.counts(descriptors)

    # Interleave the two sides so clock-frequency drift and scheduler
    # noise hit both equally; best-of keeps the cleanest run of each.
    baseline_seconds = float("inf")
    instrumented_seconds = float("inf")

    def interleaved() -> None:
        nonlocal baseline_seconds, instrumented_seconds
        for _ in range(15):
            start = time.perf_counter()
            baseline.counts(descriptors)
            baseline_seconds = min(baseline_seconds, time.perf_counter() - start)
            start = time.perf_counter()
            instrumented.counts(descriptors)
            instrumented_seconds = min(
                instrumented_seconds, time.perf_counter() - start
            )

    benchmark.pedantic(interleaved, rounds=1, iterations=1)
    # Small absolute epsilon absorbs scheduler noise on sub-ms timings.
    assert instrumented_seconds <= baseline_seconds * _OVERHEAD_BUDGET + 5e-5, (
        f"instrumented counts {instrumented_seconds * 1e3:.3f} ms vs "
        f"baseline {baseline_seconds * 1e3:.3f} ms exceeds "
        f"{(_OVERHEAD_BUDGET - 1) * 100:.0f}% budget"
    )
    samples = instrumented.metrics.histogram("oracle_counts_seconds")
    assert samples.count >= 10


def test_lookup_tracing_overhead(benchmark, obs_trace_trajectory):
    """Traced lookup_batch (collector + flight recorder) within 5% of plain."""
    config = VisualPrintConfig(descriptor_capacity=50_000)
    descriptors = _descriptor_batch(1000)
    oracle = UniquenessOracle(config, registry=MetricsRegistry(enabled=False))
    oracle.insert(descriptors[:500])

    collector = TraceCollector()
    recorder = FlightRecorder(8)

    def plain() -> None:
        oracle.lookup_batch(descriptors)

    def traced() -> None:
        # The full per-query tracing stack: a "query" root span around
        # the lookup, collection, slowest-K retention, then reset —
        # exactly what a --flight-recorder CLI run does per query.
        with use_collector(collector):
            with trace_span("query"):
                oracle.lookup_batch(descriptors)
        recorder.observe_all(collector.traces())
        collector.clear()

    # Warm both paths (allocator, caches) before timing.
    plain()
    traced()

    baseline_seconds = float("inf")
    traced_seconds = float("inf")

    def interleaved() -> None:
        nonlocal baseline_seconds, traced_seconds
        # More rounds than the counts guard: the tracing delta is a few
        # microseconds against a ~40 ms lookup, so the best-of needs
        # enough samples to find a quiet slot on a loaded 1-core host.
        for _ in range(25):
            start = time.perf_counter()
            plain()
            baseline_seconds = min(baseline_seconds, time.perf_counter() - start)
            start = time.perf_counter()
            traced()
            traced_seconds = min(traced_seconds, time.perf_counter() - start)

    benchmark.pedantic(interleaved, rounds=1, iterations=1)
    assert traced_seconds <= baseline_seconds * _OVERHEAD_BUDGET + 5e-5, (
        f"traced lookup_batch {traced_seconds * 1e3:.3f} ms vs "
        f"plain {baseline_seconds * 1e3:.3f} ms exceeds "
        f"{(_OVERHEAD_BUDGET - 1) * 100:.0f}% budget"
    )
    assert len(recorder) == 8  # the recorder really saw the traced queries

    obs_trace_trajectory["lookup_batch_tracing"] = {
        "descriptors": descriptors.shape[0],
        "plain_seconds": round(baseline_seconds, 6),
        "traced_seconds": round(traced_seconds, 6),
        "overhead_ratio": round(traced_seconds / max(baseline_seconds, 1e-9), 4),
        "budget_ratio": _OVERHEAD_BUDGET,
    }


def test_sketch_and_slo_overhead(benchmark, obs_trace_trajectory):
    """Per-query sketch observe + SLO record within 5% of the bare lookup."""
    config = VisualPrintConfig(descriptor_capacity=50_000)
    descriptors = _descriptor_batch(1000)
    oracle = UniquenessOracle(config, registry=MetricsRegistry(enabled=False))
    oracle.insert(descriptors[:500])

    registry = MetricsRegistry()
    sketch = registry.sketch("serving_e2e_seconds", shard="bench")
    tracker = SloTracker(default_objectives(), registry=registry)
    clock = 0.0

    def plain() -> None:
        oracle.lookup_batch(descriptors)

    def observed() -> None:
        # Exactly what the serving frontend adds per served query: one
        # e2e timing into the shard sketch and one per-scope SLO record.
        nonlocal clock
        start = time.perf_counter()
        oracle.lookup_batch(descriptors)
        elapsed = time.perf_counter() - start
        sketch.observe(elapsed)
        clock += 1.0
        tracker.record(latency_seconds=elapsed, ok=True, now=clock, venue="bench")

    # Warm both paths (allocator, caches) before timing.
    plain()
    observed()

    baseline_seconds = float("inf")
    observed_seconds = float("inf")

    def interleaved() -> None:
        nonlocal baseline_seconds, observed_seconds
        for _ in range(25):
            start = time.perf_counter()
            plain()
            baseline_seconds = min(baseline_seconds, time.perf_counter() - start)
            start = time.perf_counter()
            observed()
            observed_seconds = min(observed_seconds, time.perf_counter() - start)

    benchmark.pedantic(interleaved, rounds=1, iterations=1)
    assert observed_seconds <= baseline_seconds * _OVERHEAD_BUDGET + 5e-5, (
        f"sketch+SLO lookup_batch {observed_seconds * 1e3:.3f} ms vs "
        f"plain {baseline_seconds * 1e3:.3f} ms exceeds "
        f"{(_OVERHEAD_BUDGET - 1) * 100:.0f}% budget"
    )
    assert sketch.count >= 26  # every observed query landed in the sketch
    assert tracker.report()["alerts_fired"] == 0

    obs_trace_trajectory["lookup_batch_sketch_slo"] = {
        "descriptors": descriptors.shape[0],
        "plain_seconds": round(baseline_seconds, 6),
        "observed_seconds": round(observed_seconds, 6),
        "overhead_ratio": round(observed_seconds / max(baseline_seconds, 1e-9), 4),
        "budget_ratio": _OVERHEAD_BUDGET,
        "sketch_buckets": sketch.num_buckets,
    }


def test_incremental_insert_beats_rebuild(benchmark, metrics_registry):
    """30-batch ingest: LshIndex.insert is far cheaper than rebuild-each-batch."""
    rng = rng_for(12, "bench/ingest")
    batches = [
        rng.integers(0, 256, size=(400, 128)).astype(np.float32) for _ in range(30)
    ]

    def rebuild_ingest() -> LshIndex:
        index = LshIndex(seed=7)
        history: list[np.ndarray] = []
        for batch in batches:
            history.append(batch)
            stacked = np.vstack(history)
            index.build(stacked, np.arange(stacked.shape[0]))
        return index

    def incremental_ingest() -> LshIndex:
        index = LshIndex(seed=7)
        offset = 0
        ingest_seconds = metrics_registry.histogram("server_ingest_seconds")
        for batch in batches:
            with ingest_seconds.time():
                index.insert(batch, np.arange(offset, offset + batch.shape[0]))
            offset += batch.shape[0]
        return index

    rebuild_seconds = _best_of(rebuild_ingest, repeats=3)
    incremental_seconds = benchmark.pedantic(
        lambda: _best_of(incremental_ingest, repeats=3), rounds=1, iterations=1
    )
    print(
        f"\ningest 30x400 descriptors: rebuild {rebuild_seconds:.3f}s, "
        f"incremental {incremental_seconds:.3f}s "
        f"({rebuild_seconds / max(incremental_seconds, 1e-9):.1f}x)"
    )
    assert incremental_seconds < rebuild_seconds, (
        "incremental insert should beat rebuilding the index per batch"
    )
    # The win is recorded where operators will look for it.
    histogram = metrics_registry.histogram("server_ingest_seconds")
    assert histogram.count == 90  # 3 repeats x 30 batches
    assert histogram.quantile(0.9) < rebuild_seconds