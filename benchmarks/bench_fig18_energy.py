"""Figure 18 bench: average power per configuration."""

from __future__ import annotations

from repro.evaluation.experiments import fig18_energy


def test_fig18_energy(benchmark, full_scale):
    duration = 70.0 if full_scale else 15.0
    result = benchmark.pedantic(
        lambda: fig18_energy.run(duration_seconds=duration), rounds=1, iterations=1
    )
    print()
    for name, watts in result["averages"].items():
        print(f"  {name:<22} {watts:>5.2f} W")
    print(f"  camera+compute fraction: {result['camera_compute_fraction']:.0%}")
    averages = result["averages"]
    assert averages["display"] < averages["camera"] < averages["visualprint_full"]
    assert 5.0 <= averages["visualprint_full"] <= 8.0  # paper: ~6.5 W
    assert averages["frame_upload"] < averages["visualprint_full"]  # paper: 4.9 W
