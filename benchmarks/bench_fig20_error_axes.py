"""Figure 20 bench: localization error by X/Y/Z axis."""

from __future__ import annotations

import numpy as np

from repro.evaluation.experiments import fig20_error_axes


def test_fig20_error_axes(benchmark, full_scale):
    params = (
        dict(venues=("office", "cafeteria", "grocery"), queries_per_venue=40)
        if full_scale
        else dict(venues=("office",), queries_per_venue=12)
    )
    result = benchmark.pedantic(
        lambda: fig20_error_axes.run(**params), rounds=1, iterations=1
    )
    print()
    print("Figure 20: error by axis (median, m)")
    comparable = 0
    for venue, axes in result["axis_errors"].items():
        med = {axis: float(np.median(values)) for axis, values in axes.items()}
        print(f"  {venue:<10} x={med['x']:.2f} y={med['y']:.2f} z={med['z']:.2f}")
        comparable += (med["x"] + med["y"]) / 2 < med["z"] + 1.0
    # shape: in well-mapped venues horizontal accuracy is comparable to or
    # better than vertical (the grocery's aisle failures are horizontal —
    # the same venue-specific weakness the paper reports).
    assert comparable >= (len(result["axis_errors"]) + 1) // 2
