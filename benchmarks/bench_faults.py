"""Fault-injection trajectory: wrapper overhead and chaos economics.

Three measurements land in BENCH_faults.json:

* ``null_wrap_overhead`` — driving 5k submissions through a zero-fault
  :class:`FaultyChannel` versus the bare channel.  The simulated
  latencies must be bit-identical (the zero-fault parity contract); the
  row records the wall-clock cost of the wrapper indirection.
* ``loss_sweep`` — goodput and retry economics of the degradation
  ladder across loss rates: delivered/degraded/abandoned counts, mean
  latency, and the fraction of simulated air time wasted on attempts
  that died.
* ``refresh_flaky_link`` — oracle refresh epochs over a lossy downlink:
  how many epochs served stale, worst-case staleness, and delta-versus-
  snapshot payload bytes.
"""

from __future__ import annotations

import time

import numpy as np

from repro.core import OracleRefresher, UniquenessOracle, VisualPrintConfig
from repro.network import (
    FaultSpec,
    FaultyChannel,
    RetryPolicy,
    UplinkChannel,
    submit_payload,
)
from repro.util.rng import rng_for

_SUBMISSIONS = 5000
_LADDER = [28_808, 14_408, 7_208]  # serialized 200/100/50-keypoint fingerprints


def _lte() -> UplinkChannel:
    return UplinkChannel(
        "lte", bandwidth_mbps=8.0, rtt_ms=60.0, jitter_sigma=0.0, downlink_mbps=24.0
    )


def test_null_wrap_overhead(faults_trajectory, benchmark):
    bare = _lte()
    wrapped = FaultyChannel(_lte(), FaultSpec())
    policy = RetryPolicy()

    start = time.perf_counter()
    bare_latencies = [
        submit_payload(bare, _LADDER, policy).latency_seconds
        for _ in range(_SUBMISSIONS)
    ]
    bare_seconds = time.perf_counter() - start

    def run():
        return [
            submit_payload(wrapped, _LADDER, policy).latency_seconds
            for _ in range(_SUBMISSIONS)
        ]

    wrapped_latencies = benchmark.pedantic(run, rounds=1, iterations=1)
    wrapped_seconds = benchmark.stats.stats.total

    assert wrapped_latencies == bare_latencies  # zero-fault parity
    faults_trajectory["null_wrap_overhead"] = {
        "submissions": _SUBMISSIONS,
        "bare_seconds": round(bare_seconds, 4),
        "wrapped_seconds": round(wrapped_seconds, 4),
        "overhead_ratio": round(wrapped_seconds / max(bare_seconds, 1e-9), 2),
        "bit_identical": True,
    }
    print()
    print(
        f"  null wrap: {wrapped_seconds / max(bare_seconds, 1e-9):.2f}x "
        f"bare over {_SUBMISSIONS} submissions"
    )


def test_loss_sweep(faults_trajectory, benchmark):
    policy = RetryPolicy(max_attempts=4, base_backoff_seconds=0.05)

    def sweep():
        rows = {}
        for loss in (0.1, 0.3, 0.5):
            channel = FaultyChannel(_lte(), FaultSpec(loss=loss, seed=11))
            rng = rng_for(11, f"bench-faults/{loss}")
            outcomes = [
                submit_payload(channel, _LADDER, policy, rng)
                for _ in range(_SUBMISSIONS // 5)
            ]
            latencies = [o.latency_seconds for o in outcomes]
            wasted = sum(o.wasted_seconds for o in outcomes)
            rows[f"loss_{loss}"] = {
                "queries": len(outcomes),
                "delivered": sum(o.status == "delivered" for o in outcomes),
                "degraded": sum(o.status == "degraded" for o in outcomes),
                "abandoned": sum(o.status == "abandoned" for o in outcomes),
                "retries": sum(o.retries for o in outcomes),
                "mean_latency_seconds": round(float(np.mean(latencies)), 4),
                "wasted_air_fraction": round(wasted / max(sum(latencies), 1e-9), 3),
            }
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    for key, row in rows.items():
        assert (
            row["delivered"] + row["degraded"] + row["abandoned"] == row["queries"]
        )
        faults_trajectory[key] = row
    print()
    for key, row in rows.items():
        print(
            f"  {key}: {row['delivered']} ok, {row['degraded']} degraded, "
            f"{row['abandoned']} abandoned, wasted {row['wasted_air_fraction']:.0%}"
        )
    # More loss must never mean more goodput.
    ok = [rows[k]["delivered"] for k in ("loss_0.1", "loss_0.3", "loss_0.5")]
    assert ok == sorted(ok, reverse=True)


def test_refresh_flaky_link(faults_trajectory, benchmark):
    config = VisualPrintConfig(descriptor_capacity=20_000, fingerprint_size=50)
    rng = rng_for(23, "bench-faults/refresh")

    def epochs():
        server = UniquenessOracle(config)
        server.insert(
            rng.integers(0, 256, (400, 128)).astype(np.float32)
        )
        client = UniquenessOracle(config)
        client.counting.counters = server.counting.counters.copy()
        refresher = OracleRefresher(client, RetryPolicy(max_attempts=3))
        channel = FaultyChannel(
            _lte(), FaultSpec(loss=0.45, outage_enter=0.05, seed=23)
        )
        stale_epochs = 0
        worst_staleness = 0.0
        payload_bytes = []
        for epoch in range(20):
            server.insert(
                rng.integers(0, 256, (40, 128)).astype(np.float32)
            )
            report = refresher.refresh(
                server, channel=channel, now_seconds=30.0 * (epoch + 1)
            )
            payload_bytes.append(report.payload_bytes)
            if report.status == "stale":
                stale_epochs += 1
                worst_staleness = max(worst_staleness, report.staleness_seconds)
        return stale_epochs, worst_staleness, payload_bytes, client, server

    stale_epochs, worst_staleness, payload_bytes, client, server = (
        benchmark.pedantic(epochs, rounds=1, iterations=1)
    )
    # Graceful degradation, not divergence: the moment an epoch lands,
    # the client is exactly current again — and some epochs must land.
    assert stale_epochs < 20
    faults_trajectory["refresh_flaky_link"] = {
        "epochs": 20,
        "stale_epochs": stale_epochs,
        "worst_staleness_seconds": round(worst_staleness, 1),
        "mean_refresh_bytes": int(np.mean(payload_bytes)),
    }
    print()
    print(
        f"  refresh: {stale_epochs}/20 epochs stale, worst staleness "
        f"{worst_staleness:.0f} s, mean payload {np.mean(payload_bytes) / 1024:.1f} KB"
    )


def test_adaptive_vs_reactive(faults_trajectory, benchmark):
    """Predictive policy economics at the bursty operating point.

    Same seeded Gilbert–Elliott channel for both arms; the adaptive arm
    additionally runs the link estimator (fed by the channel observer
    hook) and consults the policy before every submission.  The row
    records the wasted-byte and tail-latency delta plus the wall-clock
    cost of the estimator+policy per query — which must stay under 2%
    of the ~33 ms batched frame budget from BENCH_sift.json.
    """
    from repro.network import AdaptiveOffloadPolicy

    frame_budget_seconds = 0.033  # process_frame batched_ms, BENCH_sift
    spec = FaultSpec(loss=0.25, outage_enter=0.06, outage_exit=0.3, seed=11)
    policy = RetryPolicy(max_attempts=4, base_backoff_seconds=0.05)
    queries = _SUBMISSIONS // 5

    reactive_channel = FaultyChannel(_lte(), spec)
    reactive = [
        submit_payload(reactive_channel, _LADDER, policy)
        for _ in range(queries)
    ]

    def adaptive_arm():
        channel = FaultyChannel(_lte(), spec)
        offload = AdaptiveOffloadPolicy()
        outcomes = []
        policy_seconds = 0.0
        for _ in range(queries):
            tick = time.perf_counter()
            decision = offload.decide(channel, ladder_rungs=len(_LADDER))
            policy_seconds += time.perf_counter() - tick
            outcomes.append(
                submit_payload(
                    channel,
                    _LADDER,
                    decision.adapt_retry_policy(policy),
                    start_step=decision.entry_rung,
                )
            )
        return outcomes, policy_seconds

    adaptive, policy_seconds = benchmark.pedantic(
        adaptive_arm, rounds=1, iterations=1
    )
    # The observer fires inside submit_payload, so charge the whole
    # wrapped arm minus the reactive wall clock as a cross-check — the
    # explicit decide() timer is the budgeted number.
    per_query_seconds = policy_seconds / queries

    def row(outcomes):
        latencies = sorted(o.latency_seconds for o in outcomes)
        return {
            "delivered": sum(o.delivered for o in outcomes),
            "wasted_bytes": sum(o.wasted_bytes for o in outcomes),
            "p99_latency_seconds": round(
                latencies[int(0.99 * (len(latencies) - 1))], 4
            ),
        }

    reactive_row, adaptive_row = row(reactive), row(adaptive)
    assert adaptive_row["wasted_bytes"] < reactive_row["wasted_bytes"]
    assert adaptive_row["delivered"] >= reactive_row["delivered"]
    assert per_query_seconds < 0.02 * frame_budget_seconds
    faults_trajectory["adaptive_vs_reactive"] = {
        "queries": queries,
        "regime": "bursty (25% loss, GE 0.06/0.3)",
        "reactive": reactive_row,
        "adaptive": adaptive_row,
        "wasted_bytes_reduction": round(
            1.0
            - adaptive_row["wasted_bytes"]
            / max(reactive_row["wasted_bytes"], 1),
            3,
        ),
        "policy_overhead_us_per_query": round(per_query_seconds * 1e6, 1),
        "frame_budget_fraction": round(
            per_query_seconds / frame_budget_seconds, 5
        ),
    }
    print()
    print(
        f"  adaptive: wasted bytes {adaptive_row['wasted_bytes']:,} vs "
        f"{reactive_row['wasted_bytes']:,} reactive "
        f"({1 - adaptive_row['wasted_bytes'] / max(reactive_row['wasted_bytes'], 1):.0%} less), "
        f"policy {per_query_seconds * 1e6:.0f} us/query "
        f"({per_query_seconds / frame_budget_seconds:.2%} of frame budget)"
    )
