"""Figure 14 bench: cumulative upload, VisualPrint vs whole frames."""

from __future__ import annotations

from repro.evaluation.experiments import fig14_upload


def test_fig14_upload(benchmark, full_scale):
    params = dict(duration_seconds=70.0, image_size=320) if full_scale else dict(
        duration_seconds=30.0, image_size=192, fingerprint_size=30
    )
    result = benchmark.pedantic(
        lambda: fig14_upload.run(**params), rounds=1, iterations=1
    )
    print()
    print("Figure 14: cumulative upload (MB)")
    for t, frame_mb, vp_mb in zip(
        result["times"][::2],
        result["frame_cumulative_mb"][::2],
        result["visualprint_cumulative_mb"][::2],
    ):
        print(f"  t={t:>4.0f}s frames {frame_mb:>8.2f}  visualprint {vp_mb:>7.3f}")
    reduction = result["frame_total_mb"] / max(result["visualprint_total_mb"], 1e-9)
    print(
        f"  per query: {result['mean_fingerprint_bytes'] / 1024:.1f} KB vs "
        f"{result['mean_frame_bytes'] / 1024:.1f} KB (paper: 51.2 vs 523 KB); "
        f"reduction {reduction:.1f}x"
    )
    assert reduction >= 4.0
