"""Figure 2 bench: sustainable FPS vs uplink bandwidth per encoding."""

from __future__ import annotations

from repro.evaluation.experiments import fig2_fps


def test_fig2_fps(benchmark, full_scale):
    size = 384 if full_scale else 192
    result = benchmark.pedantic(
        lambda: fig2_fps.run(num_frames=8, image_size=size),
        rounds=1,
        iterations=1,
    )
    sizes = result["bytes_per_frame"]
    print()
    print("Figure 2 series (bytes/frame):", {k: round(v) for k, v in sizes.items()})
    for name in ("h264", "jpeg", "png", "raw"):
        fps = ", ".join(f"{v:.2f}" for v in result["fps"][name])
        print(f"  {name:<5} fps over {result['bandwidths_mbps'].tolist()} Mbps: {fps}")
    assert sizes["h264"] < sizes["jpeg"] < sizes["png"] < sizes["raw"]
