"""Setup shim: enables legacy editable installs where the offline
environment lacks the ``wheel`` package required by PEP 517 editables
(``pip install -e . --no-build-isolation --no-use-pep517``)."""

from setuptools import setup

setup()
