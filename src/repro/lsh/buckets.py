"""Canonical encoding of quantized LSH bucket vectors for hashing.

Quantized buckets are small signed integers (``floor(projection / W)``).
Bloom-filter hashing and bucket-key derivation both need a fixed-width
unsigned representation; this module centralizes that conversion so the
oracle, the server index, and the tests all agree bit-for-bit.
"""

from __future__ import annotations

import numpy as np

from repro.hashing.murmur3 import murmur3_32_vectors

__all__ = ["QuantizedBuckets"]

_BUCKET_BIAS = np.int64(1 << 20)


class QuantizedBuckets:
    """Wraps a ``(n, L, M)`` int64 bucket tensor with encoding helpers."""

    def __init__(self, buckets: np.ndarray) -> None:
        buckets = np.asarray(buckets, dtype=np.int64)
        if buckets.ndim != 3:
            raise ValueError(f"buckets must be (n, L, M), got shape {buckets.shape}")
        if np.any(np.abs(buckets) >= _BUCKET_BIAS):
            raise ValueError(
                "bucket indices exceed the +/-2^20 encoding range; "
                "quantization width W is implausibly small"
            )
        self.buckets = buckets

    @property
    def num_items(self) -> int:
        return self.buckets.shape[0]

    @property
    def num_tables(self) -> int:
        return self.buckets.shape[1]

    @property
    def num_projections(self) -> int:
        return self.buckets.shape[2]

    def table_vectors(self, table: int) -> np.ndarray:
        """Unsigned ``(n, M)`` uint32 vectors for one LSH table.

        A constant bias shifts the signed bucket indices into unsigned
        range so the mapping is injective (no wraparound aliasing).
        """
        return (self.buckets[:, table, :] + _BUCKET_BIAS).astype(np.uint32)

    def table_keys(self, table: int, seed_base: int = 0) -> np.ndarray:
        """64-bit bucket keys for one table (two Murmur-3 passes).

        Used as dictionary keys in :class:`repro.lsh.LshIndex`.  Key
        collisions are possible but harmless: index candidates are always
        re-verified with exact Euclidean distances.
        """
        vectors = self.table_vectors(table)
        low = murmur3_32_vectors(vectors, seed=seed_base + 2 * table).astype(np.uint64)
        high = murmur3_32_vectors(vectors, seed=seed_base + 2 * table + 1).astype(
            np.uint64
        )
        return (high << np.uint64(32)) | low

    def perturbed(self, table: int, projection: int, delta: int) -> np.ndarray:
        """One-cell perturbation of a single coordinate (multiprobe)."""
        vectors = self.buckets[:, table, :].copy()
        vectors[:, projection] += delta
        return (vectors + _BUCKET_BIAS).astype(np.uint32)

    def probe_vectors(
        self, table: int, projections: np.ndarray, deltas: np.ndarray
    ) -> np.ndarray:
        """All multiprobe vectors for one table in a single tensor.

        ``projections`` and ``deltas`` are ``(n, P)`` per-item perturbation
        schedules (see :func:`repro.lsh.multiprobe.ranked_perturbations`).
        Returns ``(n, P + 1, M)`` uint32 vectors: slot 0 is each item's
        original bucket vector, slot ``j + 1`` its ``j``-th perturbation.
        """
        base = self.buckets[:, table, :]
        n, _ = base.shape
        num_probes = projections.shape[1]
        probes = np.repeat(base[:, np.newaxis, :], num_probes + 1, axis=1)
        if num_probes:
            rows = np.arange(n)[:, np.newaxis]
            slots = np.arange(1, num_probes + 1)[np.newaxis, :]
            probes[rows, slots, projections] += deltas
        return (probes + _BUCKET_BIAS).astype(np.uint32)
