"""Multi-table LSH index for Euclidean nearest-neighbor lookup.

This is the server-side "large-scale image-based content retrieval table"
of the paper: each indexed descriptor carries an opaque payload id (in
VisualPrint, a row into the keypoint-to-3D-position table).  Queries
collect candidates from every table's bucket (optionally multiprobing
adjacent cells), then re-rank candidates by exact Euclidean distance —
so hash-key collisions never produce wrong matches, only extra work.

The index deliberately stores descriptors once but bucket references L
times; :meth:`LshIndex.memory_bytes` reports that replication, which is
what makes conventional LSH "an extremely large memory footprint, much
larger than the input data" in Fig. 15.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.lsh.buckets import QuantizedBuckets
from repro.lsh.projections import E2LSHParams, StableProjections
from repro.util.validation import check_positive

__all__ = ["LshIndex", "LshMatch"]


@dataclass(frozen=True)
class LshMatch:
    """One nearest-neighbor candidate returned by the index."""

    item_id: int
    distance: float


class LshIndex:
    """E2LSH index over 128-D descriptors with integer payload ids."""

    def __init__(
        self,
        params: E2LSHParams | None = None,
        seed: int = 0,
        max_probes_per_table: int = 2,
        max_bucket_size: int = 512,
    ) -> None:
        if max_probes_per_table < 0:
            raise ValueError("max_probes_per_table must be non-negative")
        if max_bucket_size < 1:
            raise ValueError("max_bucket_size must be >= 1")
        self.params = params or E2LSHParams()
        self.projections = StableProjections(self.params, seed=seed)
        self.max_probes_per_table = int(max_probes_per_table)
        # Overfull buckets hold near-duplicate content (e.g. a wallpaper
        # pattern repeated across a building); capping them bounds query
        # cost, as production E2LSH deployments do.  Dropped entries are
        # precisely the ones the ratio test would reject anyway.
        self.max_bucket_size = int(max_bucket_size)
        self._tables: list[dict[int, np.ndarray]] = [
            {} for _ in range(self.params.num_tables)
        ]
        # Amortized-growth row storage: descriptors/ids live in
        # capacity-doubling arrays so :meth:`insert` appends in O(batch)
        # instead of re-copying (and re-hashing) all history per batch.
        self._store: np.ndarray | None = None
        self._ids_store: np.ndarray | None = None
        self._size = 0

    @property
    def _descriptors(self) -> np.ndarray | None:
        if self._store is None or self._size == 0:
            return None
        return self._store[: self._size]

    @property
    def _item_ids(self) -> np.ndarray | None:
        if self._ids_store is None or self._size == 0:
            return None
        return self._ids_store[: self._size]

    @property
    def size(self) -> int:
        """Number of indexed descriptors."""
        return self._size

    def build(self, descriptors: np.ndarray, item_ids: np.ndarray) -> None:
        """(Re)build the index over ``descriptors`` with per-row payload ids."""
        self._tables = [{} for _ in range(self.params.num_tables)]
        self._store = None
        self._ids_store = None
        self._size = 0
        self.insert(descriptors, item_ids)

    def _grow_storage(self, extra_rows: int, dimension: int) -> None:
        needed = self._size + extra_rows
        if self._store is None:
            capacity = max(needed, 1024)
            self._store = np.empty((capacity, dimension), dtype=np.float32)
            self._ids_store = np.empty(capacity, dtype=np.int64)
            return
        if self._store.shape[1] != dimension:
            raise ValueError(
                f"descriptor dimension {dimension} does not match "
                f"indexed dimension {self._store.shape[1]}"
            )
        if needed <= self._store.shape[0]:
            return
        capacity = max(needed, 2 * self._store.shape[0])
        grown = np.empty((capacity, self._store.shape[1]), dtype=np.float32)
        grown[: self._size] = self._store[: self._size]
        self._store = grown
        grown_ids = np.empty(capacity, dtype=np.int64)
        grown_ids[: self._size] = self._ids_store[: self._size]
        self._ids_store = grown_ids

    def insert(self, descriptors: np.ndarray, item_ids: np.ndarray) -> None:
        """Append descriptors incrementally — only the new batch is hashed.

        This is the "incorporated continuously, in constant time and
        memory" ingest path of the paper: per batch the cost is
        O(batch · L) hashing plus amortized-O(batch) row storage, versus
        the quadratic cost of rebuilding over all history each time.
        Bucket capping keeps first-inserted rows, matching what a
        one-shot :meth:`build` over the concatenated data produces.
        """
        descriptors = np.asarray(descriptors, dtype=np.float32)
        item_ids = np.asarray(item_ids, dtype=np.int64)
        if descriptors.ndim != 2:
            raise ValueError(f"descriptors must be 2-D, got {descriptors.shape}")
        if item_ids.shape != (descriptors.shape[0],):
            raise ValueError(
                "item_ids must have one entry per descriptor, got "
                f"{item_ids.shape} for {descriptors.shape[0]} descriptors"
            )
        num_new = descriptors.shape[0]
        if num_new == 0:
            return
        start_row = self._size
        self._grow_storage(num_new, descriptors.shape[1])
        self._store[start_row : start_row + num_new] = descriptors
        self._ids_store[start_row : start_row + num_new] = item_ids
        self._size += num_new

        quantized = QuantizedBuckets(self.projections.quantize(descriptors))
        cap = self.max_bucket_size
        for table in range(self.params.num_tables):
            keys = quantized.table_keys(table)
            order = np.argsort(keys, kind="stable")
            sorted_keys = keys[order]
            boundaries = np.flatnonzero(np.diff(sorted_keys)) + 1
            groups = np.split(order, boundaries)
            starts = np.concatenate(([0], boundaries))
            table_map = self._tables[table]
            for start, group in zip(starts, groups):
                key = int(sorted_keys[start])
                rows = (group + start_row).astype(np.int32)
                existing = table_map.get(key)
                if existing is None:
                    table_map[key] = rows[:cap]
                elif existing.size < cap:
                    table_map[key] = np.concatenate(
                        [existing, rows[: cap - existing.size]]
                    )

    def _candidate_rows_batch(self, descriptors: np.ndarray) -> list[np.ndarray]:
        """Candidate row sets for ``(n, d)`` query descriptors at once.

        All hashing (original buckets plus multiprobe perturbations) is
        vectorized across queries; only the final dictionary lookups run
        per query.
        """
        from repro.hashing.murmur3 import murmur3_32_vectors

        buckets, residuals = self.projections.quantize_with_residuals(descriptors)
        num_queries = buckets.shape[0]
        per_query: list[list[np.ndarray]] = [[] for _ in range(num_queries)]
        bias = np.int64(1 << 20)

        for table in range(self.params.num_tables):
            table_buckets = buckets[:, table, :]  # (n, M)
            table_residuals = residuals[:, table, :]
            probe_vectors = [table_buckets]
            if self.max_probes_per_table > 0:
                # Rank boundary distances per query: residual r means the
                # lower neighbor is r away, the upper 1 - r.
                boundary = np.concatenate(
                    [table_residuals, 1.0 - table_residuals], axis=1
                )  # (n, 2M): first M = delta -1, last M = delta +1
                ranked = np.argsort(boundary, axis=1)[:, : self.max_probes_per_table]
                for probe_rank in range(ranked.shape[1]):
                    choice = ranked[:, probe_rank]
                    projection = choice % self.params.num_projections
                    delta = np.where(
                        choice < self.params.num_projections, -1, 1
                    ).astype(np.int64)
                    perturbed = table_buckets.copy()
                    perturbed[np.arange(num_queries), projection] += delta
                    probe_vectors.append(perturbed)
            table_map = self._tables[table]
            for probe in probe_vectors:
                unsigned = (probe + bias).astype(np.uint32)
                low = murmur3_32_vectors(unsigned, seed=2 * table).astype(np.uint64)
                high = murmur3_32_vectors(unsigned, seed=2 * table + 1).astype(
                    np.uint64
                )
                keys = (high << np.uint64(32)) | low
                for query_index, key in enumerate(keys):
                    rows = table_map.get(int(key))
                    if rows is not None:
                        per_query[query_index].append(rows)
        return [
            np.unique(np.concatenate(rows)) if rows else np.empty(0, dtype=np.int32)
            for rows in per_query
        ]

    def _candidate_rows(self, descriptor: np.ndarray) -> np.ndarray:
        return self._candidate_rows_batch(descriptor.reshape(1, -1))[0]

    def query(self, descriptor: np.ndarray, num_neighbors: int = 1) -> list[LshMatch]:
        """Approximate nearest neighbors of one descriptor.

        Returns up to ``num_neighbors`` matches ordered by exact distance;
        may return fewer (or none) when no bucket holds candidates — the
        defining failure mode E2LSH trades for speed.
        """
        check_positive("num_neighbors", num_neighbors)
        if self._descriptors is None or self._item_ids is None:
            raise RuntimeError("index is empty; call build() first")
        descriptor = np.asarray(descriptor, dtype=np.float32).reshape(1, -1)
        rows = self._candidate_rows(descriptor)
        if rows.size == 0:
            return []
        deltas = self._descriptors[rows] - descriptor
        distances = np.sqrt((deltas.astype(np.float64) ** 2).sum(axis=1))
        order = np.argsort(distances)[:num_neighbors]
        return [
            LshMatch(item_id=int(self._item_ids[rows[i]]), distance=float(distances[i]))
            for i in order
        ]

    def query_batch(
        self, descriptors: np.ndarray, num_neighbors: int = 1
    ) -> list[list[LshMatch]]:
        """Query many descriptors; one (possibly empty) match list per row."""
        check_positive("num_neighbors", num_neighbors)
        if self._descriptors is None or self._item_ids is None:
            raise RuntimeError("index is empty; call build() first")
        descriptors = np.asarray(descriptors, dtype=np.float32)
        if descriptors.ndim != 2:
            raise ValueError(f"descriptors must be 2-D, got {descriptors.shape}")
        candidate_sets = self._candidate_rows_batch(descriptors)
        results: list[list[LshMatch]] = []
        for query, rows in zip(descriptors, candidate_sets):
            if rows.size == 0:
                results.append([])
                continue
            deltas = self._descriptors[rows].astype(np.float64) - query.astype(
                np.float64
            )
            distances = np.sqrt((deltas**2).sum(axis=1))
            order = np.argsort(distances)[:num_neighbors]
            results.append(
                [
                    LshMatch(
                        item_id=int(self._item_ids[rows[i]]),
                        distance=float(distances[i]),
                    )
                    for i in order
                ]
            )
        return results

    def memory_bytes(self) -> int:
        """In-memory footprint: descriptors + L-fold bucket references."""
        total = 0
        if self._descriptors is not None:
            total += self._descriptors.nbytes
        if self._item_ids is not None:
            total += self._item_ids.nbytes
        for table_map in self._tables:
            # dict overhead approximated by key + pointer per entry.
            total += len(table_map) * 16
            total += sum(rows.nbytes for rows in table_map.values())
        return total

    def disk_bytes(self) -> int:
        """Serialized (uncompressed) footprint for Fig. 15's disk column."""
        return self.memory_bytes()
