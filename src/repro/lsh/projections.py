"""p-stable random projections (the E2LSH hash family).

Each of ``L`` tables holds ``M`` hyperplanes with Gaussian-distributed
coefficients — the Gaussian is 2-stable, so projected distances preserve
the L2 norm and nearby descriptors quantize to the same bucket with high
probability.  A descriptor maps to ``L`` bucket vectors, each an
``M``-dimensional integer vector ``floor((a . x + b) / W)``.

The paper's empirically optimized operating point for 128-D SIFT is
``L = 10, M = 7, W = 500`` (descriptor entries are 0..255 integers).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.util.rng import rng_for
from repro.util.validation import check_positive

__all__ = ["E2LSHParams", "StableProjections"]


@dataclass(frozen=True)
class E2LSHParams:
    """E2LSH configuration (paper defaults)."""

    num_tables: int = 10  # L
    num_projections: int = 7  # M
    quantization_width: float = 500.0  # W
    dimension: int = 128

    def __post_init__(self) -> None:
        check_positive("num_tables", self.num_tables)
        check_positive("num_projections", self.num_projections)
        check_positive("quantization_width", self.quantization_width)
        check_positive("dimension", self.dimension)


class StableProjections:
    """The fixed random projections shared by oracle and index.

    "Each of the M x L randomly-chosen projections is held constant for
    the life of the data structure" — so the object is constructed once
    from a seed and reused verbatim on server and client.
    """

    def __init__(self, params: E2LSHParams, seed: int = 0) -> None:
        self.params = params
        self.seed = int(seed)
        generator = rng_for(seed, "e2lsh/projections")
        shape = (params.num_tables, params.num_projections, params.dimension)
        # Gaussian coefficients: the 2-stable distribution preserving L2.
        self._hyperplanes = generator.standard_normal(shape)
        # Random offsets b ~ U[0, W) complete the Datar et al. construction.
        self._offsets = generator.uniform(
            0.0, params.quantization_width, size=(params.num_tables, params.num_projections)
        )

    @property
    def num_tables(self) -> int:
        return self.params.num_tables

    @property
    def num_projections(self) -> int:
        return self.params.num_projections

    def project(self, descriptors: np.ndarray) -> np.ndarray:
        """Raw projection values, shape ``(n, L, M)``."""
        descriptors = np.asarray(descriptors, dtype=np.float64)
        if descriptors.ndim == 1:
            descriptors = descriptors[np.newaxis, :]
        if descriptors.shape[1] != self.params.dimension:
            raise ValueError(
                f"descriptors must have dimension {self.params.dimension}, "
                f"got shape {descriptors.shape}"
            )
        # (L, M, D) x (n, D) -> (n, L, M)
        projected = np.einsum("lmd,nd->nlm", self._hyperplanes, descriptors)
        return projected + self._offsets[np.newaxis, :, :]

    def quantize(self, descriptors: np.ndarray) -> np.ndarray:
        """Bucket vectors ``floor(projection / W)``, shape ``(n, L, M)`` int64."""
        projected = self.project(descriptors)
        return np.floor(projected / self.params.quantization_width).astype(np.int64)

    def quantize_with_residuals(
        self, descriptors: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Bucket vectors plus each projection's position inside its cell.

        Residuals in ``[0, 1)`` drive query-directed multiprobe: a residual
        near 0 means the neighboring lower cell is the likely miss, near 1
        the upper cell.
        """
        projected = self.project(descriptors)
        scaled = projected / self.params.quantization_width
        buckets = np.floor(scaled).astype(np.int64)
        residuals = scaled - buckets
        return buckets, residuals
