"""Multiprobe perturbation schedules (Lv et al., VLDB 2007).

False negatives in E2LSH come from quantization boundaries: two nearby
descriptors can land in adjacent cells.  "Fortunately, the error can be
at most a single quantization bucket", so probing the +/-1 neighbor of
each projection coordinate — preferring the side the query's residual
says is closest — recovers most of those misses.
"""

from __future__ import annotations

import numpy as np

__all__ = ["perturbation_sets"]


def perturbation_sets(
    residuals: np.ndarray, max_probes: int
) -> list[tuple[int, int]]:
    """Rank single-coordinate perturbations for one bucket vector.

    ``residuals`` is the ``(M,)`` within-cell position of each projection
    in ``[0, 1)``.  Returns up to ``max_probes`` ``(projection, delta)``
    pairs ordered by how close the query sits to that boundary: residual
    near 0 -> probe ``delta = -1`` first, near 1 -> ``delta = +1``.
    """
    residuals = np.asarray(residuals, dtype=np.float64)
    if residuals.ndim != 1:
        raise ValueError(f"residuals must be 1-D, got shape {residuals.shape}")
    if max_probes < 0:
        raise ValueError(f"max_probes must be non-negative, got {max_probes}")

    candidates: list[tuple[float, int, int]] = []
    for projection, residual in enumerate(residuals):
        # Distance to the lower boundary is the residual itself; to the
        # upper boundary, one minus it.  Smaller distance = likelier miss.
        candidates.append((float(residual), projection, -1))
        candidates.append((float(1.0 - residual), projection, +1))
    candidates.sort(key=lambda item: item[0])
    return [(projection, delta) for _, projection, delta in candidates[:max_probes]]
