"""Multiprobe perturbation schedules (Lv et al., VLDB 2007).

False negatives in E2LSH come from quantization boundaries: two nearby
descriptors can land in adjacent cells.  "Fortunately, the error can be
at most a single quantization bucket", so probing the +/-1 neighbor of
each projection coordinate — preferring the side the query's residual
says is closest — recovers most of those misses.
"""

from __future__ import annotations

import numpy as np

__all__ = ["perturbation_sets", "ranked_perturbations"]


def perturbation_sets(
    residuals: np.ndarray, max_probes: int
) -> list[tuple[int, int]]:
    """Rank single-coordinate perturbations for one bucket vector.

    ``residuals`` is the ``(M,)`` within-cell position of each projection
    in ``[0, 1)``.  Returns up to ``max_probes`` ``(projection, delta)``
    pairs ordered by how close the query sits to that boundary: residual
    near 0 -> probe ``delta = -1`` first, near 1 -> ``delta = +1``.
    """
    residuals = np.asarray(residuals, dtype=np.float64)
    if residuals.ndim != 1:
        raise ValueError(f"residuals must be 1-D, got shape {residuals.shape}")
    if max_probes < 0:
        raise ValueError(f"max_probes must be non-negative, got {max_probes}")

    candidates: list[tuple[float, int, int]] = []
    for projection, residual in enumerate(residuals):
        # Distance to the lower boundary is the residual itself; to the
        # upper boundary, one minus it.  Smaller distance = likelier miss.
        candidates.append((float(residual), projection, -1))
        candidates.append((float(1.0 - residual), projection, +1))
    candidates.sort(key=lambda item: item[0])
    return [(projection, delta) for _, projection, delta in candidates[:max_probes]]


def ranked_perturbations(
    residuals: np.ndarray, max_probes: int
) -> tuple[np.ndarray, np.ndarray]:
    """Batch form of :func:`perturbation_sets` over ``(n, M)`` residuals.

    Returns ``(projections, deltas)``, both ``(n, P)`` with
    ``P = min(max_probes, 2M)``: row ``i`` holds the same
    ``(projection, delta)`` sequence ``perturbation_sets(residuals[i],
    max_probes)`` would produce, in the same order.  The candidate
    layout interleaves ``(p, -1)`` then ``(p, +1)`` per projection and
    the sort is stable, matching the scalar tie-breaking exactly.
    """
    residuals = np.asarray(residuals, dtype=np.float64)
    if residuals.ndim != 2:
        raise ValueError(f"residuals must be 2-D, got shape {residuals.shape}")
    if max_probes < 0:
        raise ValueError(f"max_probes must be non-negative, got {max_probes}")
    n, m = residuals.shape
    num_probes = min(max_probes, 2 * m)
    if num_probes == 0:
        return (
            np.empty((n, 0), dtype=np.int64),
            np.empty((n, 0), dtype=np.int64),
        )
    distances = np.empty((n, 2 * m), dtype=np.float64)
    distances[:, 0::2] = residuals  # (p, -1) candidates
    distances[:, 1::2] = 1.0 - residuals  # (p, +1) candidates
    order = np.argsort(distances, axis=1, kind="stable")[:, :num_probes]
    projections = order >> 1
    deltas = np.where(order & 1 == 0, -1, +1).astype(np.int64)
    return projections.astype(np.int64), deltas
