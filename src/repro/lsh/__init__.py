"""E2LSH: Euclidean locality-sensitive hashing (Datar et al., p-stable).

Two consumers in VisualPrint:

* The **uniqueness oracle** quantizes each descriptor into ``L`` bucket
  vectors of ``M`` projections each (width ``W``); those vectors feed the
  counting Bloom filters (see :mod:`repro.core.oracle`).
* The **server lookup table** is a conventional multi-table LSH index
  storing a 3D position per descriptor (:class:`repro.lsh.LshIndex`).

Multiprobe perturbation (Lv et al., VLDB'07) rescues descriptors that
land one quantization cell away from their training-time bucket.
"""

from repro.lsh.buckets import QuantizedBuckets
from repro.lsh.index import LshIndex, LshMatch
from repro.lsh.multiprobe import perturbation_sets
from repro.lsh.projections import E2LSHParams, StableProjections

__all__ = [
    "E2LSHParams",
    "LshIndex",
    "LshMatch",
    "QuantizedBuckets",
    "StableProjections",
    "perturbation_sets",
]
