"""The blessed public API of the VisualPrint reproduction.

One import surface for everything a deployment touches, organized
around config-object constructors instead of positional kwargs:

Configs
    :class:`VisualPrintConfig` (the paper's LSH/Bloom operating point),
    :class:`ServerConfig` (pipeline + serving topology),
    :class:`ClientConfig` (pipeline + uplink/degradation policy).

Engines
    :class:`VisualPrintServer` — the single-venue engine
    (``VisualPrintServer.from_config(ServerConfig())``);
    :class:`VisualPrintClient` — the phone-side library
    (``VisualPrintClient.from_config(oracle, ClientConfig())``);
    :class:`UniquenessOracle` — the downloadable filter stack.

Serving
    :class:`ServingFrontend` — multi-venue admission/routing over
    consistent-hashed shards (``ServingFrontend.from_config``);
    :class:`VenueRegistry`, :class:`ConsistentHashRing`,
    :class:`ShardSaturatedError`.

Transport & codecs
    :class:`UplinkChannel` presets (:data:`CHANNEL_PRESETS`),
    :class:`RetryPolicy`, the predictive link layer
    (:class:`AdaptiveConfig`, :class:`AdaptiveOffloadPolicy`,
    :class:`LinkQualityEstimator`, :class:`TransferOutcome`), and the
    frame codecs (:class:`JpegCodec`, :class:`H264Codec`, ...) the
    paper's baselines upload with.

Durability
    :class:`SnapshotStore` / :class:`ServerStateStore` (crash-safe
    generational snapshots), :class:`OracleRefresher` (client-side
    delta/snapshot oracle downloads with swap-in validation).

Anything not exported here — and any module or attribute with a
leading underscore — is internal and may change without a deprecation
cycle (see DESIGN.md §11 for the policy).
"""

from repro.codecs import Codec, H264Codec, JpegCodec, PngCodec, RawCodec
from repro.core import (
    ClientConfig,
    Fingerprint,
    LocalizationAnswer,
    OffloadReport,
    OracleRefresher,
    RefreshReport,
    ServerConfig,
    UniquenessOracle,
    VisualPrintClient,
    VisualPrintConfig,
    VisualPrintServer,
)
from repro.core.persistence import ServerStateStore, load_server, save_server
from repro.network import (
    CHANNEL_PRESETS,
    AdaptiveConfig,
    AdaptiveOffloadPolicy,
    LinkQualityEstimator,
    RetryPolicy,
    SubmissionOutcome,
    TransferOutcome,
    UplinkChannel,
)
from repro.obs import MetricsRegistry
from repro.serving import (
    ConsistentHashRing,
    ServingFrontend,
    ShardSaturatedError,
    VenueRegistry,
)
from repro.store import SnapshotStore

__all__ = [
    "CHANNEL_PRESETS",
    "AdaptiveConfig",
    "AdaptiveOffloadPolicy",
    "ClientConfig",
    "Codec",
    "ConsistentHashRing",
    "Fingerprint",
    "H264Codec",
    "JpegCodec",
    "LinkQualityEstimator",
    "LocalizationAnswer",
    "MetricsRegistry",
    "OffloadReport",
    "OracleRefresher",
    "PngCodec",
    "RawCodec",
    "RefreshReport",
    "RetryPolicy",
    "ServerConfig",
    "ServerStateStore",
    "ServingFrontend",
    "ShardSaturatedError",
    "SnapshotStore",
    "SubmissionOutcome",
    "TransferOutcome",
    "UniquenessOracle",
    "UplinkChannel",
    "VenueRegistry",
    "VisualPrintClient",
    "VisualPrintConfig",
    "VisualPrintServer",
    "load_server",
    "save_server",
]
