"""Fleet-scale load-test runner: calibrate, generate, replay, report.

The evaluation discipline everywhere else in this repo — measure real
costs once, then replay them in simulated time — scaled up to a fleet:

1. **Calibrate.**  Per-query service times come either from a seeded
   synthetic model (:func:`synthetic_service_seconds`, the
   deterministic default — a ``--fast`` CI run must be bit-identical
   across reruns) or from :func:`calibrate_service_seconds`, which
   boots a small *real* :class:`repro.serving.ServingFrontend`, serves
   real localization queries, and harvests the
   ``serving_request_seconds`` histogram.
2. **Generate.**  :func:`repro.loadgen.arrivals.generate_arrivals`
   synthesizes the open-loop arrival stream (Poisson users, burst
   envelope, mobility sessions, Zipf venues) in parallel blocks.
3. **Replay.**  Arrivals run through
   :func:`repro.serving.simulate_queue_network` against the cluster's
   shard queues.  Venue → shard placement is the real serving-layer
   ring (:class:`repro.serving.VenueRegistry` with the cluster's
   ``replication_factor``), so a replicated hot venue offers every
   query its replica set and the simulator joins the shortest queue —
   the same routing :meth:`repro.serving.ServingFrontend.submit` does.
   An optional :class:`repro.network.faults.FaultyChannel` uplink leg
   prices each query's transfer (retries, degradation, abandonment)
   before it reaches admission.
4. **Report.**  End-to-end latency lands in a
   ``loadgen_e2e_seconds`` :class:`repro.obs.QuantileSketch`
   (p50/p99/p999), queue depths in ``loadgen_queue_depth``, volumes in
   ``loadgen_*_total`` counters — all in the contextual registry so
   ``repro metrics-diff`` can gate a run against a baseline snapshot.
   A contextual :class:`repro.obs.SloTracker` (when installed) receives
   a deterministic stride-sample of outcomes stamped with *simulated*
   time, so burn-rate alerts fire on simulated overload and
   ``repro slo-report --fail-on-alerts`` closes the CI gate.

``queries_per_second_per_core`` divides sustained simulated throughput
by the shard count: each shard is one single-threaded worker (one core)
in simulated time, so the figure is host-independent — the same number
on a laptop and a 64-core CI runner.
"""

from __future__ import annotations

import math
from typing import Any, Sequence

import numpy as np

from repro.core.config import ServerConfig
from repro.loadgen.arrivals import (
    _USER_BLOCK,
    ArrivalStream,
    TrafficModel,
    generate_arrivals,
)
from repro.network.faults import RetryPolicy, submit_payload
from repro.network.linkstate import AdaptiveConfig, AdaptiveOffloadPolicy
from repro.obs import (
    MetricsRegistry,
    current_slo_tracker,
    resolve_registry,
)
from repro.serving import QUERY_SERVED, VenueRegistry, simulate_queue_network
from repro.util.rng import rng_for

__all__ = [
    "calibrate_service_seconds",
    "run_loadtest",
    "synthetic_service_seconds",
]

#: Payload-size ladder (bytes) for the optional uplink leg: a full
#: fingerprint down two degradation rungs, matching the client's
#: degrade-under-retry behaviour at round sizes.
DEFAULT_LADDER: tuple[int, ...] = (4096, 2048, 1024)


def synthetic_service_seconds(
    count: int = 256,
    seed: int = 0,
    mean_seconds: float = 0.02,
    sigma: float = 0.4,
) -> np.ndarray:
    """A seeded lognormal service-time sample (deterministic calibration).

    Centered on the order of one real localization query (tens of
    milliseconds) with a right tail, but entirely a function of
    ``(count, seed, mean, sigma)`` — the bit-identical-rerun mode.
    """
    if count < 1:
        raise ValueError(f"count must be >= 1, got {count}")
    if mean_seconds <= 0:
        raise ValueError(f"mean_seconds must be > 0, got {mean_seconds}")
    rng = rng_for(seed, "loadgen/service-model")
    mu = math.log(mean_seconds) - sigma * sigma / 2.0
    return rng.lognormal(mu, sigma, count)


def calibrate_service_seconds(
    queries: int = 48,
    seed: int = 0,
    venues: int = 2,
    descriptors_per_venue: int = 200,
) -> np.ndarray:
    """Measure real per-query service times through a live frontend.

    Builds a miniature fleet (synthetic wardriven venues), serves
    ``queries`` real localization queries through a one-shard inline
    :class:`repro.serving.ServingFrontend`, and returns the
    ``serving_request_seconds`` samples.  Wall-clock measurement — not
    deterministic across hosts or reruns; use
    :func:`synthetic_service_seconds` when the output must be.
    """
    from repro.core import VisualPrintConfig, VisualPrintServer
    from repro.serving import ServingFrontend
    from repro.wardrive.environment import random_sift_descriptor

    registry = MetricsRegistry()
    frontend = ServingFrontend(num_shards=1, registry=registry)
    servers = {}
    for index in range(venues):
        name = f"venue-{index}"
        rng = rng_for(seed, f"loadgen/calibrate/{name}")
        server = VisualPrintServer(
            VisualPrintConfig(descriptor_capacity=4096, fingerprint_size=10),
            bounds=(np.zeros(3), np.array([10.0, 10.0, 3.0])),
        )
        descriptors = np.array(
            [random_sift_descriptor(rng) for _ in range(descriptors_per_venue)]
        )
        server.ingest(
            descriptors, rng.uniform(0, 10, (descriptors_per_venue, 3))
        )
        servers[name] = server
        frontend.register_venue(name, server)
    from repro.cli import _synthetic_query

    rng = rng_for(seed, "loadgen/calibrate/queries")
    for index in range(queries):
        name = f"venue-{index % venues}"
        frontend.call(name, _synthetic_query(servers[name], rng))
    frontend.close()
    samples = registry.histogram("serving_request_seconds").values()
    return np.asarray(samples, dtype=np.float64)


def _replica_choices(
    model: TrafficModel, cluster: ServerConfig
) -> list[tuple[int, ...]]:
    """Venue rank → candidate shard indices, from the real serving ring."""
    registry = VenueRegistry(
        cluster.num_shards,
        replicas=cluster.hash_replicas,
        seed=cluster.seed,
        replication_factor=cluster.replication_factor,
    )
    shard_index = {sid: i for i, sid in enumerate(registry.shard_ids)}
    return [
        tuple(shard_index[sid] for sid in registry.shards_for(f"venue-{rank}"))
        for rank in range(model.venues)
    ]


def _channel_leg(
    count: int,
    channel,
    retry: RetryPolicy,
    ladder: Sequence[int],
    seed: int,
    registry: MetricsRegistry,
    adaptive: AdaptiveOffloadPolicy | None = None,
    arrival_times: np.ndarray | None = None,
) -> tuple[np.ndarray, np.ndarray, dict[str, Any]]:
    """Price every query's uplink; returns (latency, abandoned, summary).

    One :func:`repro.network.faults.submit_payload` per query — Python-
    loop cost, so channel legs are for thousands-scale studies, not the
    million-user fast path (which models the uplink as already priced
    into the latency SLO threshold).

    With ``adaptive`` set, the policy is consulted before every query
    (entry rung, retry budget, backoff scaling) and its estimator is
    advanced by the inter-arrival gaps so confidence decays over quiet
    stretches of the arrival stream.
    """
    rng = rng_for(seed, "loadgen/channel")
    ladder = [int(size) for size in ladder]
    latency = np.zeros(count)
    abandoned = np.zeros(count, dtype=bool)
    degraded = 0
    delivered_bytes = 0
    wasted = 0.0
    wasted_bytes = 0
    retries = 0
    last_time = float(arrival_times[0]) if arrival_times is not None else 0.0
    for index in range(count):
        policy = retry
        start_step = 0
        if adaptive is not None:
            if arrival_times is not None:
                now = float(arrival_times[index])
                adaptive.advance(max(0.0, now - last_time))
                last_time = now
            decision = adaptive.decide(channel, ladder_rungs=len(ladder))
            policy = decision.adapt_retry_policy(retry)
            start_step = decision.entry_rung
        outcome = submit_payload(
            channel, ladder, policy, rng, registry=registry,
            start_step=start_step,
        )
        latency[index] = outcome.latency_seconds
        retries += outcome.retries
        wasted += outcome.wasted_seconds
        wasted_bytes += outcome.wasted_bytes
        if outcome.status == "abandoned":
            abandoned[index] = True
        else:
            delivered_bytes += outcome.payload_bytes
            if outcome.status == "degraded":
                degraded += 1
    summary = {
        "degraded": degraded,
        "delivered_bytes": delivered_bytes,
        "wasted_seconds": float(wasted),
        "wasted_bytes": wasted_bytes,
        "retries": retries,
    }
    if adaptive is not None:
        summary["adaptive"] = adaptive.snapshot()
    return latency, abandoned, summary


def run_loadtest(
    model: TrafficModel,
    cluster: ServerConfig | None = None,
    *,
    seed: int = 0,
    workers: int = 1,
    service_samples: Sequence[float] | np.ndarray | None = None,
    channel=None,
    retry: RetryPolicy | None = None,
    adaptive: AdaptiveOffloadPolicy | AdaptiveConfig | bool | None = None,
    payload_ladder: Sequence[int] = DEFAULT_LADDER,
    registry: MetricsRegistry | None = None,
    slo_tracker=None,
    slo_events_cap: int = 2000,
    block_users: int = _USER_BLOCK,
) -> dict[str, Any]:
    """Run one open-loop load test; returns the JSON-ready report.

    ``service_samples`` defaults to the seeded synthetic model; pass
    :func:`calibrate_service_seconds` output for measured-cost realism.
    ``channel`` (any ``UplinkChannel``-shaped object, typically a
    :class:`repro.network.faults.FaultyChannel`) adds a per-query uplink
    leg; ``adaptive`` (``True``, an
    :class:`repro.network.linkstate.AdaptiveConfig`, or a prebuilt
    :class:`~repro.network.linkstate.AdaptiveOffloadPolicy`) shapes that
    leg predictively.  ``slo_tracker`` defaults to the contextual tracker; it
    receives at most ``slo_events_cap`` stride-sampled outcomes stamped
    with simulated time (the tracker's sliding-window scan is linear per
    event, so feeding every query of a million-query run would be
    quadratic).  Identical arguments produce an identical report — the
    property the CI gate's bit-identical rerun locks.
    """
    cluster = cluster if cluster is not None else ServerConfig(num_shards=4)
    registry = resolve_registry(registry)
    tracker = slo_tracker if slo_tracker is not None else current_slo_tracker()

    stream: ArrivalStream = generate_arrivals(
        model, seed=seed, workers=workers, block_users=block_users
    )
    count = len(stream)
    if service_samples is None:
        samples = synthetic_service_seconds(seed=seed)
    else:
        samples = np.asarray(service_samples, dtype=np.float64)
    if samples.size == 0:
        raise ValueError("service_samples must be non-empty")
    service = samples[
        rng_for(seed, "loadgen/service-resample").integers(0, samples.size, count)
    ]

    uplink_summary: dict[str, Any] | None = None
    if channel is not None and count:
        retry = retry if retry is not None else RetryPolicy()
        policy: AdaptiveOffloadPolicy | None
        if adaptive is None or adaptive is False:
            policy = None
        elif isinstance(adaptive, AdaptiveOffloadPolicy):
            policy = adaptive
        elif adaptive is True:
            policy = AdaptiveOffloadPolicy()
        else:
            policy = AdaptiveOffloadPolicy(adaptive)
        uplink, abandoned_mask, uplink_summary = _channel_leg(
            count, channel, retry, payload_ladder, seed, registry,
            adaptive=policy, arrival_times=stream.times,
        )
        shard_times = stream.times + uplink
        # The uplink delays reorder admissions; re-sort (stably, so the
        # stream stays deterministic) before the replay.
        order = np.argsort(shard_times, kind="stable")
        shard_times = shard_times[order]
        service = service[order]
        uplink = uplink[order]
        abandoned_arg = abandoned_mask[order]
        venue_ranks = stream.venues[order]
    else:
        shard_times = stream.times
        uplink = np.zeros(count)
        abandoned_arg = None
        venue_ranks = stream.venues

    venue_choices = _replica_choices(model, cluster)
    choices = [venue_choices[rank] for rank in venue_ranks]

    e2e = registry.sketch(
        "loadgen_e2e_seconds",
        help="end-to-end simulated latency of served queries (uplink + wait + service)",
    )
    depth_sketch = registry.sketch(
        "loadgen_queue_depth",
        help="queue depth observed by each admitted arrival before joining",
    )
    latency = np.zeros(count)

    def on_served(index: int, wait: float, finish: float) -> None:
        total = uplink[index] + wait + service[index]
        latency[index] = total
        e2e.observe(total)

    def on_arrival(index: int, shard: int, depth: int) -> None:
        depth_sketch.observe(float(depth))

    result, outcomes = simulate_queue_network(
        shard_times,
        service,
        choices,
        cluster.num_shards,
        queue_depth=cluster.queue_depth,
        abandoned=abandoned_arg,
        on_served=on_served,
        on_arrival=on_arrival,
    )

    registry.counter(
        "loadgen_queries_offered_total", help="arrivals offered to the fleet"
    ).inc(result.offered)
    registry.counter(
        "loadgen_queries_served_total", help="arrivals served to completion"
    ).inc(result.served)
    registry.counter(
        "loadgen_queries_shed_total", help="arrivals shed at shard admission"
    ).inc(result.shed)
    registry.counter(
        "loadgen_queries_abandoned_total",
        help="arrivals lost on the uplink before admission",
    ).inc(result.abandoned)

    if tracker is not None and count:
        stride = max(1, result.offered // max(1, slo_events_cap))
        for index in range(0, count, stride):
            ok = outcomes[index] == QUERY_SERVED
            tracker.record(
                latency_seconds=float(latency[index]) if ok else None,
                ok=ok,
                now=float(shard_times[index]),
                component="loadgen",
            )

    quantiles = e2e.quantiles()
    depths = depth_sketch.quantiles()
    report: dict[str, Any] = {
        "traffic": model.as_dict(),
        "cluster": {
            "num_shards": cluster.num_shards,
            "replication_factor": cluster.replication_factor,
            "queue_depth": cluster.queue_depth,
            "hash_replicas": cluster.hash_replicas,
        },
        "seed": seed,
        "workers": workers,
        "offered": result.offered,
        "served": result.served,
        "shed": result.shed,
        "abandoned": result.abandoned,
        "shed_fraction": float(result.shed_fraction),
        "makespan_seconds": float(result.makespan_seconds),
        "last_arrival_seconds": float(result.last_arrival_seconds),
        "last_finish_seconds": float(result.last_finish_seconds),
        "queries_per_second": float(result.queries_per_second),
        "queries_per_second_per_core": float(
            result.queries_per_second / cluster.num_shards
        ),
        "mean_wait_seconds": float(result.mean_wait_seconds),
        "mean_wait_seconds_offered": float(result.mean_wait_seconds_offered),
        "utilization": float(result.utilization),
        "hot_venue_share": stream.hot_venue_share(model.venues),
        "latency_seconds": {
            "p50": float(quantiles[0.5]),
            "p99": float(quantiles[0.99]),
            "p999": float(quantiles[0.999]),
            "mean": float(e2e.mean),
            "max": float(e2e.quantile(1.0)),
        },
        "queue_depth": {
            "p50": float(depths[0.5]),
            "p99": float(depths[0.99]),
            "p999": float(depths[0.999]),
            "max": float(depth_sketch.quantile(1.0)),
        },
    }
    if uplink_summary is not None:
        report["uplink"] = uplink_summary
    if tracker is not None:
        objectives = {}
        for objective in tracker.report()["objectives"]:
            events = sum(s["total_events"] for s in objective["scopes"])
            bad = sum(s["total_bad"] for s in objective["scopes"])
            objectives[objective["name"]] = {
                "total_events": events,
                "total_bad": bad,
                "error_rate": bad / events if events else 0.0,
            }
        report["slo"] = {
            "alerts_fired": tracker.alerts_fired,
            "objectives": objectives,
        }
    return report
