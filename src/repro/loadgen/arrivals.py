"""Open-loop arrival synthesis for fleet-scale load tests.

The generator produces a *merged, time-sorted* stream of query arrivals
for ``users`` simulated devices over ``duration_seconds`` of simulated
time.  Three stochastic layers compose, all drawn from named
:func:`repro.util.rng.rng_for` streams of one experiment seed:

* **Arrivals** — each user queries as a Poisson process at
  ``rate_per_user``; a Markov-modulated burst envelope (one *global*
  two-state calm/burst chain, modeling a flash crowd arriving at a
  venue) multiplies every user's rate by ``burst_multiplier`` while the
  bursty state holds.  Modulation is applied by thinning: users are
  generated at the peak rate and arrivals are kept with probability
  ``multiplier(t) / peak``, so the calm-only stream is a strict superset
  filter of the same draws.
* **Mobility sessions** — users query in bursts of consecutive queries
  against one venue (walking through a museum wing) before moving on.
  Each surviving arrival starts a new session with probability
  ``1 / session_queries`` (the first arrival of a user always does), so
  session lengths are geometric with the configured mean.
* **Venue popularity** — each session picks its venue from a Zipf
  distribution over ``venues`` ranked sites (venue 0 hottest):
  ``P(venue k) ∝ (k + 1) ** -zipf_exponent``.  Skewed exponents
  concentrate traffic on the head venues, which is what hot-venue
  replication (``ServerConfig.replication_factor``) is for.

Determinism contract (held by ``tests/test_loadgen.py``): users are
generated in fixed blocks of ``block_users`` (default 65536), each block
seeded ``rng_for(seed, "loadgen/block/<index>")`` — so user ``i``'s
stream depends only on ``(seed, i // block_users)``, never on how many
workers ran or how blocks were chunked.  ``workers=N`` output is
bit-identical to serial, and the merge sorts with a stable key so tied
arrival times order by block.
"""

from __future__ import annotations

import math
from dataclasses import asdict, dataclass
from typing import Iterable

import numpy as np

from repro.parallel import get_shared, parallel_map
from repro.util.rng import rng_for
from repro.util.validation import check_positive

__all__ = [
    "ArrivalStream",
    "TrafficModel",
    "burst_envelope",
    "empirical_zipf_error",
    "generate_arrivals",
    "zipf_weights",
]

# Users per generation block: the unit of parallelism *and* of rng
# stream assignment.  Fixed (not worker-derived) so per-user streams
# survive any worker count.
_USER_BLOCK = 65536


@dataclass(frozen=True)
class TrafficModel:
    """Shape of the offered load: who queries, how often, against what."""

    users: int = 1000
    venues: int = 50
    duration_seconds: float = 60.0
    # Mean per-user query rate in the calm state (queries/sec).
    rate_per_user: float = 0.05
    # Venue popularity skew: P(rank k) ∝ (k+1)^-s.  1.0 is classic Zipf;
    # larger concentrates harder on the head venue.
    zipf_exponent: float = 1.1
    # Mean queries per mobility session (geometric session lengths).
    session_queries: float = 4.0
    # Burst envelope: while bursting, every user's rate is multiplied by
    # `burst_multiplier`; dwell times in each state are exponential with
    # the given means.  `burst_dwell_seconds = 0` disables bursts.
    burst_multiplier: float = 1.0
    burst_dwell_seconds: float = 0.0
    calm_dwell_seconds: float = 60.0

    def __post_init__(self) -> None:
        check_positive("users", self.users)
        check_positive("venues", self.venues)
        check_positive("duration_seconds", self.duration_seconds)
        check_positive("rate_per_user", self.rate_per_user)
        check_positive("session_queries", self.session_queries)
        if self.zipf_exponent < 0:
            raise ValueError(
                f"zipf_exponent must be >= 0, got {self.zipf_exponent}"
            )
        if self.burst_multiplier < 1.0:
            raise ValueError(
                f"burst_multiplier must be >= 1, got {self.burst_multiplier}"
            )
        if self.burst_dwell_seconds < 0:
            raise ValueError("burst_dwell_seconds must be >= 0")
        if self.burst_dwell_seconds > 0:
            check_positive("calm_dwell_seconds", self.calm_dwell_seconds)

    @property
    def bursty(self) -> bool:
        return self.burst_multiplier > 1.0 and self.burst_dwell_seconds > 0

    def as_dict(self) -> dict:
        return asdict(self)


def zipf_weights(venues: int, exponent: float) -> np.ndarray:
    """Normalized popularity of each venue rank (rank 0 hottest)."""
    if venues < 1:
        raise ValueError(f"venues must be >= 1, got {venues}")
    ranks = np.arange(1, venues + 1, dtype=np.float64)
    weights = ranks ** -float(exponent)
    return weights / weights.sum()


def burst_envelope(
    model: TrafficModel, seed: int
) -> tuple[np.ndarray, np.ndarray]:
    """The global rate-multiplier process as a step function.

    Returns ``(starts, multipliers)``: segment ``j`` covers
    ``[starts[j], starts[j + 1])`` (the last segment extends past the
    horizon) at rate multiplier ``multipliers[j]``.  The chain starts
    calm and alternates calm/burst with exponential dwells; without
    bursts the envelope is a single all-ones segment.
    """
    if not model.bursty:
        return np.zeros(1), np.ones(1)
    rng = rng_for(seed, "loadgen/envelope")
    starts = [0.0]
    multipliers = [1.0]
    now = 0.0
    bursting = False
    while now < model.duration_seconds:
        mean = (
            model.burst_dwell_seconds if bursting else model.calm_dwell_seconds
        )
        now += float(rng.exponential(mean))
        bursting = not bursting
        starts.append(now)
        multipliers.append(model.burst_multiplier if bursting else 1.0)
    return np.asarray(starts), np.asarray(multipliers)


@dataclass
class ArrivalStream:
    """A merged arrival stream, sorted ascending by time.

    Parallel arrays: query ``i`` arrives at ``times[i]`` from user
    ``users[i]`` against venue rank ``venues[i]`` during that user's
    session ``sessions[i]`` (session ids are unique across users).
    """

    times: np.ndarray
    users: np.ndarray
    venues: np.ndarray
    sessions: np.ndarray

    def __len__(self) -> int:
        return int(self.times.shape[0])

    def venue_counts(self, venues: int) -> np.ndarray:
        """Offered queries per venue rank."""
        return np.bincount(self.venues, minlength=venues)

    def hot_venue_share(self, venues: int) -> float:
        """Fraction of offered traffic hitting the single hottest venue."""
        if not len(self):
            return 0.0
        return float(self.venue_counts(venues).max()) / len(self)


def _block_arrivals(
    model: TrafficModel,
    seed: int,
    block_index: int,
    block_users: int,
    starts: np.ndarray,
    multipliers: np.ndarray,
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Arrivals for user block ``block_index``, sorted by (user, time).

    All randomness comes from the block's own named stream, drawn in a
    fixed order (counts → times → thinning → sessions → venues), so the
    block is a pure function of ``(model, seed, block_index)``.
    """
    first_user = block_index * block_users
    n_users = min(model.users - first_user, block_users)
    rng = rng_for(seed, f"loadgen/block/{block_index}")
    peak = float(multipliers.max())
    lam = model.rate_per_user * peak * model.duration_seconds
    counts = rng.poisson(lam, n_users)
    total = int(counts.sum())
    users = np.repeat(
        np.arange(first_user, first_user + n_users, dtype=np.int64), counts
    )
    times = rng.uniform(0.0, model.duration_seconds, total)
    # Uniform order statistics == Poisson arrival times; sort per user.
    order = np.lexsort((times, users))
    times = times[order]
    # Thin the peak-rate stream down to the envelope's current rate.
    if peak > 1.0:
        accept_draw = rng.random(total)[order]
        segment = np.searchsorted(starts, times, side="right") - 1
        keep = accept_draw * peak <= multipliers[segment]
        times = times[keep]
        users = users[keep]
    total = times.shape[0]
    if total == 0:
        empty_i = np.zeros(0, dtype=np.int64)
        return np.zeros(0), empty_i, empty_i.copy(), empty_i.copy()
    # Mobility sessions: geometric runs of queries against one venue.
    new_session = rng.random(total) < 1.0 / model.session_queries
    new_session[0] = True
    new_session[1:] |= users[1:] != users[:-1]  # first arrival of a user
    session_ids = np.cumsum(new_session) - 1
    n_sessions = int(session_ids[-1]) + 1
    cdf = np.cumsum(zipf_weights(model.venues, model.zipf_exponent))
    session_venue = np.searchsorted(cdf, rng.random(n_sessions), side="right")
    session_venue = np.minimum(session_venue, model.venues - 1).astype(np.int64)
    venues = session_venue[session_ids]
    return times, users, venues, session_ids.astype(np.int64)


def _generate_block(block_index: int):
    model, seed, block_users, starts, multipliers = get_shared()
    return _block_arrivals(
        model, seed, block_index, block_users, starts, multipliers
    )


def generate_arrivals(
    model: TrafficModel,
    seed: int = 0,
    workers: int = 1,
    block_users: int = _USER_BLOCK,
) -> ArrivalStream:
    """Generate the full fleet's arrival stream, sorted by time.

    ``workers`` parallelizes over user blocks through
    :func:`repro.parallel.parallel_map`; the output is bit-identical for
    any worker count because every block derives its own rng stream from
    its index.  ``block_users`` is part of the stream definition (the
    default is the production value; tests shrink it to exercise
    multi-block merges with few users).
    """
    check_positive("block_users", block_users)
    starts, multipliers = burst_envelope(model, seed)
    n_blocks = math.ceil(model.users / block_users)
    blocks = parallel_map(
        _generate_block,
        range(n_blocks),
        workers=workers,
        shared=(model, seed, block_users, starts, multipliers),
    )
    times = np.concatenate([block[0] for block in blocks])
    users = np.concatenate([block[1] for block in blocks])
    venues = np.concatenate([block[2] for block in blocks])
    # Session ids are block-local; offset them to be globally unique.
    session_parts: list[np.ndarray] = []
    base = 0
    for block in blocks:
        ids = block[3]
        session_parts.append(ids + base)
        if ids.shape[0]:
            base += int(ids[-1]) + 1
    sessions = (
        np.concatenate(session_parts) if session_parts else np.zeros(0, np.int64)
    )
    # Stable sort: tied times keep block (hence user) order, so the
    # merged stream is deterministic too.
    order = np.argsort(times, kind="stable")
    return ArrivalStream(
        times=times[order],
        users=users[order],
        venues=venues[order],
        sessions=sessions[order],
    )


def empirical_zipf_error(stream: ArrivalStream, model: TrafficModel) -> float:
    """Largest absolute gap between offered and ideal venue frequency.

    Diagnostic used by the determinism tests: with enough arrivals the
    per-venue empirical frequencies converge on
    :func:`zipf_weights`; the max-gap statistic gives them a single
    tolerance to assert.
    """
    if not len(stream):
        return 0.0
    observed = stream.venue_counts(model.venues) / len(stream)
    ideal = zipf_weights(model.venues, model.zipf_exponent)
    return float(np.abs(observed - ideal).max())
