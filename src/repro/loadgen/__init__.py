"""Open-loop fleet-scale traffic generation and load testing.

:mod:`repro.loadgen.arrivals` synthesizes the offered load — millions
of Poisson users under a global burst envelope, mobility sessions, and
Zipf venue popularity — in deterministic parallel blocks.
:mod:`repro.loadgen.runner` replays that load through the serving
layer's queue network (real ring placement, hot-venue replication,
optional faulty uplink leg) and reports tail latency, shed fractions,
and per-core sustained throughput; ``python -m repro loadtest`` is the
CLI face.
"""

from repro.loadgen.arrivals import (
    ArrivalStream,
    TrafficModel,
    burst_envelope,
    empirical_zipf_error,
    generate_arrivals,
    zipf_weights,
)
from repro.loadgen.runner import (
    calibrate_service_seconds,
    run_loadtest,
    synthetic_service_seconds,
)

__all__ = [
    "ArrivalStream",
    "TrafficModel",
    "burst_envelope",
    "calibrate_service_seconds",
    "empirical_zipf_error",
    "generate_arrivals",
    "run_loadtest",
    "synthetic_service_seconds",
    "zipf_weights",
]
