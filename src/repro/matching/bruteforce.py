"""Exact nearest-neighbor matching with Lowe's ratio test.

The paper's BruteForce baseline "finds the 'optimal' nearest neighbor
match" over the whole descriptor database — implemented there as GPU
SIMD, here as chunked numpy matrix products (same arithmetic, same
results).  Distances use the ``|a|^2 + |b|^2 - 2ab`` expansion so one
matmul serves each chunk.
"""

from __future__ import annotations

import numpy as np

__all__ = ["BruteForceMatcher"]


class BruteForceMatcher:
    """Exact 2-NN search over a fixed descriptor database."""

    def __init__(self, descriptors: np.ndarray, chunk_size: int = 512) -> None:
        descriptors = np.asarray(descriptors, dtype=np.float32)
        if descriptors.ndim != 2:
            raise ValueError(f"descriptors must be 2-D, got {descriptors.shape}")
        if chunk_size < 1:
            raise ValueError(f"chunk_size must be >= 1, got {chunk_size}")
        self._database = descriptors
        self._database_sq = (descriptors.astype(np.float64) ** 2).sum(axis=1)
        self.chunk_size = int(chunk_size)

    @property
    def size(self) -> int:
        return int(self._database.shape[0])

    def memory_bytes(self) -> int:
        """Footprint of the in-memory database (Fig. 15's BruteForce bar)."""
        return int(self._database.nbytes + self._database_sq.nbytes)

    def knn(self, queries: np.ndarray, k: int = 2) -> tuple[np.ndarray, np.ndarray]:
        """k nearest database rows per query: ``(indices, distances)``.

        Shapes ``(n, k)``; distances are Euclidean.
        """
        queries = np.asarray(queries, dtype=np.float32)
        if queries.ndim != 2:
            raise ValueError(f"queries must be 2-D, got {queries.shape}")
        if self.size == 0:
            raise RuntimeError("matcher database is empty")
        k = min(k, self.size)
        indices = np.empty((queries.shape[0], k), dtype=np.int64)
        distances = np.empty((queries.shape[0], k), dtype=np.float64)
        for start in range(0, queries.shape[0], self.chunk_size):
            chunk = queries[start : start + self.chunk_size].astype(np.float64)
            cross = chunk @ self._database.T.astype(np.float64)
            sq = (chunk**2).sum(axis=1)[:, np.newaxis] + self._database_sq - 2 * cross
            np.maximum(sq, 0.0, out=sq)
            if k < self.size:
                part = np.argpartition(sq, k - 1, axis=1)[:, :k]
            else:
                part = np.broadcast_to(np.arange(self.size), (chunk.shape[0], k)).copy()
            part_d = np.take_along_axis(sq, part, axis=1)
            order = np.argsort(part_d, axis=1)
            indices[start : start + chunk.shape[0]] = np.take_along_axis(
                part, order, axis=1
            )
            distances[start : start + chunk.shape[0]] = np.sqrt(
                np.take_along_axis(part_d, order, axis=1)
            )
        return indices, distances

    def match(
        self, queries: np.ndarray, ratio: float = 0.8
    ) -> tuple[np.ndarray, np.ndarray]:
        """Ratio-tested matches: ``(query_rows, database_rows)``.

        A query keypoint matches its nearest neighbor only when that
        neighbor is decisively closer than the second best (Lowe's
        criterion) — the filter every scheme applies before voting.
        """
        if not 0 < ratio <= 1:
            raise ValueError(f"ratio must be in (0, 1], got {ratio}")
        indices, distances = self.knn(queries, k=2)
        if indices.shape[1] < 2:
            accepted = np.arange(queries.shape[0])
            return accepted, indices[:, 0]
        good = distances[:, 0] < ratio * distances[:, 1]
        return np.flatnonzero(good), indices[good, 0]
