"""Scene database and the shared scene-voting predictor.

All five Fig. 13 regimes reduce to: match a (sub)set of query keypoints
against the database, then let matched keypoints vote for the scene that
owns their database counterpart.  The query is predicted to capture the
scene with the most votes, provided the winner clears an absolute and a
relative support threshold (otherwise "no scene" — the right answer for
distractor content).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.features.keypoint import KeypointSet

__all__ = ["MatchOutcome", "SceneDatabase", "SchemeResult", "vote_scene"]

NO_SCENE = -1


@dataclass
class SceneDatabase:
    """All database keypoints with their owning scene labels.

    ``labels`` holds the scene index per keypoint, or ``-1`` for
    keypoints that belong to distractor images.
    """

    descriptors: np.ndarray  # (n, 128)
    labels: np.ndarray  # (n,)
    image_ids: np.ndarray  # (n,) source image index (scenes + distractors)

    def __post_init__(self) -> None:
        n = self.descriptors.shape[0]
        if self.labels.shape != (n,) or self.image_ids.shape != (n,):
            raise ValueError("database arrays must align")

    @classmethod
    def from_keypoint_sets(
        cls, keypoint_sets: list[KeypointSet], labels: list[int]
    ) -> "SceneDatabase":
        """Build from per-image keypoint sets and per-image scene labels."""
        if len(keypoint_sets) != len(labels):
            raise ValueError("one label per keypoint set required")
        descriptors = []
        label_rows = []
        image_rows = []
        for image_index, (keypoints, label) in enumerate(zip(keypoint_sets, labels)):
            descriptors.append(keypoints.descriptors)
            label_rows.append(np.full(len(keypoints), label, dtype=np.int64))
            image_rows.append(np.full(len(keypoints), image_index, dtype=np.int64))
        return cls(
            descriptors=np.vstack(descriptors).astype(np.float32),
            labels=np.concatenate(label_rows),
            image_ids=np.concatenate(image_rows),
        )

    @property
    def size(self) -> int:
        return int(self.descriptors.shape[0])

    @property
    def scene_ids(self) -> np.ndarray:
        """Distinct real scene labels (excludes the distractor label)."""
        return np.unique(self.labels[self.labels != NO_SCENE])


@dataclass(frozen=True)
class MatchOutcome:
    """Scene prediction for one query frame."""

    predicted_scene: int  # NO_SCENE when no confident winner
    votes: dict[int, int] = field(default_factory=dict)
    matched_keypoints: int = 0


def vote_scene(
    matched_labels: np.ndarray,
    min_votes: int = 8,
    min_margin: float = 1.5,
) -> MatchOutcome:
    """Predict the scene from matched database keypoint labels.

    The winner must collect at least ``min_votes`` matches and beat the
    runner-up by ``min_margin`` x (distractor matches count as a
    competing "scene" so repetitive content can veto weak predictions).
    """
    matched_labels = np.asarray(matched_labels)
    if matched_labels.size == 0:
        return MatchOutcome(predicted_scene=NO_SCENE)
    values, counts = np.unique(matched_labels, return_counts=True)
    votes = {int(v): int(c) for v, c in zip(values, counts)}
    scene_mask = values != NO_SCENE
    if not scene_mask.any():
        return MatchOutcome(
            predicted_scene=NO_SCENE, votes=votes, matched_keypoints=int(counts.sum())
        )
    scene_values = values[scene_mask]
    scene_counts = counts[scene_mask]
    order = np.argsort(-scene_counts)
    best_scene = int(scene_values[order[0]])
    best_count = int(scene_counts[order[0]])
    runner_up = int(scene_counts[order[1]]) if order.size > 1 else 0
    confident = best_count >= min_votes and best_count >= min_margin * max(
        runner_up, 1
    )
    return MatchOutcome(
        predicted_scene=best_scene if confident else NO_SCENE,
        votes=votes,
        matched_keypoints=int(counts.sum()),
    )


@dataclass
class SchemeResult:
    """Per-query predictions of one scheme over a whole workload."""

    scheme: str
    true_scenes: np.ndarray  # (q,) ground truth scene per query
    predicted_scenes: np.ndarray  # (q,)
    uploaded_keypoints: np.ndarray  # (q,) how many keypoints went on the wire

    def precision_recall_per_scene(
        self, scene_ids: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Per-scene precision/recall exactly as defined in the paper.

        For scene ``k``: precision = |V ∩ P| / |P| and recall =
        |V ∩ P| / |V|, where V are queries truly capturing ``k`` and P
        the queries predicted as ``k``.  Scenes never predicted get
        precision 0 (the paper's CDFs include such scenes at the origin).
        """
        precisions = np.zeros(scene_ids.size)
        recalls = np.zeros(scene_ids.size)
        for i, scene in enumerate(scene_ids):
            truly = self.true_scenes == scene
            predicted = self.predicted_scenes == scene
            hits = int((truly & predicted).sum())
            precisions[i] = hits / predicted.sum() if predicted.any() else 0.0
            recalls[i] = hits / truly.sum() if truly.any() else 0.0
        return precisions, recalls
