"""Matching schemes for the Fig. 13 comparison.

Five regimes, mirroring the paper's evaluation:

* ``BruteForce`` — exact Euclidean nearest neighbor over all database
  descriptors (the paper ran this on a GPU; here it's chunked numpy).
* ``LSH`` — E2LSH approximate NN over all query keypoints, "as would be
  typical of a large-scale reverse image search".
* ``Random`` — uniform keypoint subsampling, "lower-bound ... with no
  intelligence in feature subselection".
* ``VisualPrint-k`` — the paper's system: the oracle-ranked top-k most
  unique keypoints (implemented in :mod:`repro.core`; exposed here via
  the common scheme protocol).

Every scheme funnels matched keypoints into the same scene-voting
predictor so Fig. 13 compares subselection policies, not back-ends.
"""

from repro.matching.bruteforce import BruteForceMatcher
from repro.matching.lsh_match import LshMatcher
from repro.matching.random_select import random_subselect
from repro.matching.schemes import (
    MatchOutcome,
    SceneDatabase,
    SchemeResult,
    vote_scene,
)

__all__ = [
    "BruteForceMatcher",
    "LshMatcher",
    "MatchOutcome",
    "SceneDatabase",
    "SchemeResult",
    "random_subselect",
    "vote_scene",
]
