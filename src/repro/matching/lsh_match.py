"""LSH-backed approximate matching with Lowe's ratio test.

The paper's "LSH" regime applies "the reference E2LSH locality-sensitive
hashing implementation for nearest-neighbor search" over *all* query
keypoints.  Same ratio-test filter as BruteForce; only the NN back-end
differs, so accuracy gaps isolate the approximation error.
"""

from __future__ import annotations

import numpy as np

from repro.lsh import E2LSHParams, LshIndex

__all__ = ["LshMatcher"]


class LshMatcher:
    """E2LSH 2-NN matcher over a fixed descriptor database."""

    def __init__(
        self,
        descriptors: np.ndarray,
        params: E2LSHParams | None = None,
        seed: int = 0,
        max_probes_per_table: int = 2,
    ) -> None:
        descriptors = np.asarray(descriptors, dtype=np.float32)
        self.index = LshIndex(
            params=params, seed=seed, max_probes_per_table=max_probes_per_table
        )
        self.index.build(descriptors, np.arange(descriptors.shape[0]))

    @property
    def size(self) -> int:
        return self.index.size

    def memory_bytes(self) -> int:
        """Index footprint (Fig. 15's LSH bar: replicated bucket tables)."""
        return self.index.memory_bytes()

    def match(
        self, queries: np.ndarray, ratio: float = 0.8
    ) -> tuple[np.ndarray, np.ndarray]:
        """Ratio-tested matches: ``(query_rows, database_rows)``.

        Queries whose buckets are empty (an LSH miss) simply produce no
        match — the characteristic false-negative mode of the scheme.
        """
        if not 0 < ratio <= 1:
            raise ValueError(f"ratio must be in (0, 1], got {ratio}")
        queries = np.asarray(queries, dtype=np.float32)
        results = self.index.query_batch(queries, num_neighbors=2)
        query_rows: list[int] = []
        database_rows: list[int] = []
        for row, matches in enumerate(results):
            if not matches:
                continue
            if len(matches) == 1 or matches[0].distance < ratio * matches[1].distance:
                query_rows.append(row)
                database_rows.append(matches[0].item_id)
        return np.array(query_rows, dtype=np.int64), np.array(
            database_rows, dtype=np.int64
        )
