"""Uniform keypoint subsampling — the paper's strawman baseline.

"Random picks 500 random keypoints from the query image and uploads them
to the server for matching ... a lower-bound on VisualPrint's
performance (one with no intelligence in feature subselection)."
"""

from __future__ import annotations

import numpy as np

from repro.features.keypoint import KeypointSet

__all__ = ["random_subselect"]


def random_subselect(
    keypoints: KeypointSet, count: int, rng: np.random.Generator
) -> KeypointSet:
    """Pick ``count`` keypoints uniformly without replacement."""
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    total = len(keypoints)
    if count >= total:
        return keypoints
    chosen = rng.choice(total, size=count, replace=False)
    return keypoints.select(np.sort(chosen))
