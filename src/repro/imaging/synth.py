"""Procedural indoor scenes with controlled visual entropy.

The paper's dataset structure:

* **100 scenes** — one-of-a-kind content (paintings, posters, distinctive
  corners).  Reproduced as framed multi-octave value-noise "paintings":
  each scene's texture is statistically unique to its seed, so its SIFT
  descriptors are globally rare.
* **400 distractors** — "ceiling, floor, name-plates, furniture ...
  naturally contain repeated patterns".  Reproduced by compositing a
  small set of *building-wide* motifs (tiles, door knobs, vents, name
  plates) that recur across many distractor images, so their descriptors
  are globally common — exactly what the uniqueness oracle must learn to
  discard.

Scenes also carry a few repeated fixtures ("a door knob or light switch
might be unique in a room, but repeated in every room") so that scene
images contain both entropy classes.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np
from scipy import ndimage

from repro.util.rng import rng_for

__all__ = [
    "SceneLibrary",
    "checkerboard",
    "distractor_image",
    "fixture_stamp",
    "scene_image",
    "value_noise_texture",
]


def value_noise_texture(
    shape: tuple[int, int],
    rng: np.random.Generator,
    octaves: int = 4,
    base_cells: int = 4,
    persistence: float = 0.55,
) -> np.ndarray:
    """Multi-octave value noise in ``[0, 1]`` — the "painting" generator.

    Each octave draws a coarse random grid and upsamples it smoothly;
    summing octaves with decaying amplitude yields texture with structure
    at several scales, which is what gives SIFT keypoints across the DoG
    pyramid.
    """
    if octaves < 1:
        raise ValueError(f"octaves must be >= 1, got {octaves}")
    height, width = shape
    total = np.zeros(shape, dtype=np.float32)
    amplitude = 1.0
    amplitude_sum = 0.0
    for octave in range(octaves):
        cells = base_cells * (2**octave)
        grid = rng.random((cells + 1, cells + 1)).astype(np.float32)
        zoom = (height / grid.shape[0], width / grid.shape[1])
        layer = ndimage.zoom(grid, zoom, order=3, mode="nearest", grid_mode=True)
        total += amplitude * layer[:height, :width]
        amplitude_sum += amplitude
        amplitude *= persistence
    total /= amplitude_sum
    low, high = float(total.min()), float(total.max())
    if high > low:
        total = (total - low) / (high - low)
    return total.astype(np.float32)


def checkerboard(
    shape: tuple[int, int], tile: int = 16, low: float = 0.35, high: float = 0.75
) -> np.ndarray:
    """The archetypal low-entropy repetitive pattern (floor tiles)."""
    if tile < 1:
        raise ValueError(f"tile must be >= 1, got {tile}")
    height, width = shape
    ys, xs = np.mgrid[0:height, 0:width]
    board = ((ys // tile + xs // tile) % 2).astype(np.float32)
    return (low + (high - low) * board).astype(np.float32)


def fixture_stamp(kind: str, size: int, rng: np.random.Generator) -> np.ndarray:
    """A small repeated motif: the same stamp appears in many images.

    Kinds: ``knob`` (door knob: bright disk + ring), ``vent`` (horizontal
    slats), ``plate`` (name plate: framed speckle rows), ``switch``
    (light switch: rectangle + toggle).
    """
    if size < 8:
        raise ValueError(f"size must be >= 8, got {size}")
    ys, xs = np.mgrid[0:size, 0:size].astype(np.float32)
    center = (size - 1) / 2.0
    radius = np.sqrt((ys - center) ** 2 + (xs - center) ** 2)
    stamp = np.full((size, size), 0.5, dtype=np.float32)

    if kind == "knob":
        stamp[radius < size * 0.38] = 0.85
        ring = (radius > size * 0.30) & (radius < size * 0.38)
        stamp[ring] = 0.25
        stamp[radius < size * 0.10] = 0.15
    elif kind == "vent":
        slat_period = max(3, size // 6)
        slats = ((ys.astype(int) // slat_period) % 2).astype(np.float32)
        stamp = 0.3 + 0.45 * slats
    elif kind == "plate":
        stamp[:] = 0.8
        border = max(1, size // 10)
        stamp[:border, :] = 0.2
        stamp[-border:, :] = 0.2
        stamp[:, :border] = 0.2
        stamp[:, -border:] = 0.2
        row_height = max(2, size // 8)
        for row_start in range(2 * border, size - 2 * border - row_height, 2 * row_height):
            text = rng.random(size - 4 * border) > 0.5
            strip = np.where(text, 0.3, 0.8).astype(np.float32)
            stamp[row_start : row_start + row_height, 2 * border : size - 2 * border] = strip
    elif kind == "switch":
        stamp[:] = 0.75
        inner = slice(size // 4, 3 * size // 4)
        stamp[inner, inner] = 0.55
        toggle_w = max(2, size // 8)
        toggle = slice(size // 2 - toggle_w, size // 2 + toggle_w)
        stamp[size // 3 : 2 * size // 3, toggle] = 0.15
    else:
        raise ValueError(f"unknown fixture kind {kind!r}")
    return stamp


def _paste(canvas: np.ndarray, stamp: np.ndarray, top: int, left: int) -> None:
    height, width = stamp.shape
    ch, cw = canvas.shape
    top = int(np.clip(top, 0, ch - height))
    left = int(np.clip(left, 0, cw - width))
    canvas[top : top + height, left : left + width] = stamp


@dataclass
class BuildingMotifs:
    """The fixed, building-wide repeated content shared by all images.

    ``wallpaper`` is one textured tile repeated across every wall in the
    building — visually busy (it yields plenty of keypoints) but
    globally common, exactly the content the oracle must learn to
    discard.
    """

    stamps: dict[str, np.ndarray]
    tile_sizes: tuple[int, ...]
    wallpaper: np.ndarray

    @classmethod
    def create(
        cls, seed: int, stamp_size: int = 32, wallpaper_tile: int = 96
    ) -> "BuildingMotifs":
        rng = rng_for(seed, "building/motifs")
        kinds = ("knob", "vent", "plate", "switch")
        stamps = {kind: fixture_stamp(kind, stamp_size, rng) for kind in kinds}
        wallpaper = value_noise_texture(
            (wallpaper_tile, wallpaper_tile),
            rng,
            octaves=5,
            base_cells=6,
            persistence=0.7,
        )
        # Mid-contrast so wallpaper keypoints are real but not dominant.
        wallpaper = 0.5 + (wallpaper - 0.5) * 0.55
        return cls(stamps=stamps, tile_sizes=(12, 16, 24), wallpaper=wallpaper)

    def tiled_wallpaper(self, size: tuple[int, int]) -> np.ndarray:
        """The wallpaper tile repeated to cover ``size``."""
        height, width = size
        tile = self.wallpaper
        reps_y = height // tile.shape[0] + 1
        reps_x = width // tile.shape[1] + 1
        return np.tile(tile, (reps_y, reps_x))[:height, :width].copy()


def scene_image(
    motifs: BuildingMotifs,
    rng: np.random.Generator,
    size: tuple[int, int] = (256, 256),
) -> np.ndarray:
    """A unique scene embedded in building-wide repetition.

    Real hallway photographs are mostly repeated content — wallpaper,
    floor tiles, fixtures — with a *minority* of globally unique pixels
    (the painting).  The mix is what makes intelligent subselection
    matter: random keypoint picks mostly land on repeats, while the
    oracle concentrates the fingerprint on the painting.
    """
    height, width = size
    # Repeated wall covering + a floor band of building-standard tiles.
    canvas = motifs.tiled_wallpaper(size).astype(np.float32)
    floor_top = int(height * 0.8)
    canvas[floor_top:] = checkerboard(
        (height - floor_top, width), tile=int(motifs.tile_sizes[1])
    )
    canvas += 0.015 * rng.standard_normal(size).astype(np.float32)

    # The painting: unique multi-octave texture in a dark frame, covering
    # roughly a quarter of the frame area.
    art_h, art_w = int(height * 0.48), int(width * 0.48)
    art = value_noise_texture(
        (art_h, art_w),
        rng,
        octaves=6,
        base_cells=max(4, art_w // 12),
        persistence=0.7,
    )
    frame = max(2, art_h // 20)
    framed = np.full((art_h + 2 * frame, art_w + 2 * frame), 0.15, dtype=np.float32)
    framed[frame : frame + art_h, frame : frame + art_w] = art
    top = int(height * 0.08) + int(rng.integers(0, height // 8))
    left = int(width * 0.1) + int(rng.integers(0, width // 4))
    _paste(canvas, framed, top, left)

    # A few repeated fixtures (common across the building).
    kinds = rng.choice(list(motifs.stamps), size=2, replace=False)
    stamp_positions = [
        (floor_top - motifs.stamps[kinds[0]].shape[0] - 4, 4),
        (4, width - motifs.stamps[kinds[1]].shape[1] - 4),
    ]
    for kind, (stamp_top, stamp_left) in zip(kinds, stamp_positions):
        _paste(canvas, motifs.stamps[kind], stamp_top, stamp_left)
    return np.clip(canvas, 0.0, 1.0)


def distractor_image(
    motifs: BuildingMotifs,
    rng: np.random.Generator,
    size: tuple[int, int] = (256, 256),
) -> np.ndarray:
    """A repetitive view: tiles plus several building-wide fixtures.

    A faint unique grain is added so distractors are not bit-identical —
    but their *keypoints* come from repeated structure.
    """
    height, width = size
    if rng.random() < 0.5:
        canvas = motifs.tiled_wallpaper(size).astype(np.float32)
        floor_top = int(height * 0.75)
        canvas[floor_top:] = checkerboard(
            (height - floor_top, width), tile=int(motifs.tile_sizes[1])
        )
    else:
        tile = int(rng.choice(motifs.tile_sizes))
        canvas = checkerboard(size, tile=tile)
    # Repeated fixtures scattered on a coarse grid (aligned placement, so
    # the same stamp yields near-identical descriptors across images).
    count = int(rng.integers(3, 7))
    for _ in range(count):
        kind = str(rng.choice(list(motifs.stamps)))
        stamp = motifs.stamps[kind]
        grid = stamp.shape[0]
        top = int(rng.integers(0, max(1, (height - grid) // grid))) * grid
        left = int(rng.integers(0, max(1, (width - grid) // grid))) * grid
        _paste(canvas, stamp, top, left)
    canvas += 0.01 * rng.standard_normal(size).astype(np.float32)
    return np.clip(canvas, 0.0, 1.0)


@dataclass
class SceneLibrary:
    """Deterministic factory for the full image dataset.

    >>> library = SceneLibrary(seed=7, num_scenes=3, num_distractors=5)
    >>> library.scene(0).shape
    (256, 256)
    """

    seed: int
    num_scenes: int = 100
    num_distractors: int = 400
    size: tuple[int, int] = (256, 256)
    views_per_scene: int = 5
    max_view_yaw_degrees: float = 32.0
    # Query realism: "[the paper] found majority of frames to be blurred
    # due to motion and shake" — a fraction of query views get a motion
    # blur of a few pixels, plus sensor noise on all views.
    blur_probability: float = 0.7
    max_blur_length: int = 13
    query_noise_sigma: float = 0.025
    min_view_zoom: float = 0.55  # queries shot farther away than wardriving
    max_view_zoom: float = 1.05
    _motifs: BuildingMotifs = field(init=False, repr=False)

    def __post_init__(self) -> None:
        if self.num_scenes < 1:
            raise ValueError("num_scenes must be >= 1")
        if self.num_distractors < 0:
            raise ValueError("num_distractors must be >= 0")
        self._motifs = BuildingMotifs.create(self.seed)

    def scene(self, index: int) -> np.ndarray:
        """Database image of scene ``index``."""
        if not 0 <= index < self.num_scenes:
            raise IndexError(f"scene index {index} out of range")
        rng = rng_for(self.seed, f"scene/{index}")
        return scene_image(self._motifs, rng, self.size)

    def distractor(self, index: int) -> np.ndarray:
        """Distractor image ``index``."""
        if not 0 <= index < self.num_distractors:
            raise IndexError(f"distractor index {index} out of range")
        rng = rng_for(self.seed, f"distractor/{index}")
        return distractor_image(self._motifs, rng, self.size)

    def query_view(self, scene_index: int, view_index: int) -> np.ndarray:
        """Scene ``scene_index`` re-captured from a different angle.

        Views sweep yaw across ``+/-max_view_yaw_degrees`` with mild
        pitch/roll, photometric jitter, and sensor noise — the paper's
        "five photographs from substantially different angles".
        """
        from repro.imaging.noise import brightness_contrast, gaussian_noise, motion_blur
        from repro.imaging.transform import (
            homography_from_view_angle,
            perspective_warp,
        )

        if not 0 <= view_index < self.views_per_scene:
            raise IndexError(f"view index {view_index} out of range")
        rng = rng_for(self.seed, f"view/{scene_index}/{view_index}")
        base = self.scene(scene_index)
        span = np.deg2rad(self.max_view_yaw_degrees)
        if self.views_per_scene == 1:
            yaw = float(rng.uniform(-span, span))
        else:
            yaw = float(-span + 2 * span * view_index / (self.views_per_scene - 1))
        pitch = float(rng.uniform(-0.08, 0.08))
        roll = float(rng.uniform(-0.06, 0.06))
        height, width = self.size
        homography = homography_from_view_angle(width, height, yaw, pitch, roll)
        # Queries are shot from varying distances: compose a zoom about
        # the image center (zoom < 1 means farther away, scene smaller).
        zoom = float(rng.uniform(self.min_view_zoom, self.max_view_zoom))
        cx, cy = (width - 1) / 2.0, (height - 1) / 2.0
        zoom_matrix = np.array(
            [
                [zoom, 0.0, cx * (1 - zoom)],
                [0.0, zoom, cy * (1 - zoom)],
                [0.0, 0.0, 1.0],
            ]
        )
        view = perspective_warp(base, zoom_matrix @ homography)
        view = brightness_contrast(
            view,
            brightness=float(rng.uniform(-0.06, 0.06)),
            contrast=float(rng.uniform(0.9, 1.1)),
        )
        if rng.random() < self.blur_probability and self.max_blur_length >= 3:
            view = motion_blur(
                view,
                length=int(rng.integers(3, self.max_blur_length + 1)),
                angle_radians=float(rng.uniform(0, np.pi)),
            )
        return gaussian_noise(view, sigma=self.query_noise_sigma, rng=rng)

    def all_database_images(self) -> list[tuple[int, np.ndarray]]:
        """(label, image) for the full database; distractors get label -1.

        Scene labels are their indices ``0..num_scenes-1``.
        """
        images = [(index, self.scene(index)) for index in range(self.num_scenes)]
        images.extend(
            (-1, self.distractor(index)) for index in range(self.num_distractors)
        )
        return images
