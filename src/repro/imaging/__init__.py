"""Synthetic imaging substrate.

The paper photographs 100 unique scenes plus 400 repetitive "distractor"
views (ceiling/floor tiles, name plates, furniture) inside a real
building.  Offline, we reproduce the *entropy structure* of that dataset
procedurally: scene images carry one-of-a-kind multi-octave noise texture
("paintings"), distractors are built from building-wide repeated motifs
(tiles, door knobs, vents).  Query views re-render a scene under
perspective warp, photometric jitter, and sensor noise.

All images are float32 grayscale in ``[0, 1]`` while processing;
:func:`to_uint8` / :func:`to_float` convert at codec boundaries.
"""

from repro.imaging.image import to_float, to_uint8
from repro.imaging.noise import (
    brightness_contrast,
    gaussian_noise,
    motion_blur,
    vignette,
)
from repro.imaging.synth import (
    SceneLibrary,
    checkerboard,
    distractor_image,
    fixture_stamp,
    scene_image,
    value_noise_texture,
)
from repro.imaging.transform import (
    affine_warp,
    homography_from_view_angle,
    perspective_warp,
    rotate_image,
)

__all__ = [
    "SceneLibrary",
    "affine_warp",
    "brightness_contrast",
    "checkerboard",
    "distractor_image",
    "fixture_stamp",
    "gaussian_noise",
    "homography_from_view_angle",
    "motion_blur",
    "perspective_warp",
    "rotate_image",
    "scene_image",
    "to_float",
    "to_uint8",
    "value_noise_texture",
    "vignette",
]
