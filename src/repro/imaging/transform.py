"""Geometric image warps with bilinear sampling.

Query views of a scene are the same wall seen "from substantially
different angles"; we synthesize them by warping the frontal scene image
with a homography induced by an off-axis camera, exactly the distortion
family that degrades SIFT matching with angular separation.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "affine_warp",
    "homography_from_view_angle",
    "perspective_warp",
    "rotate_image",
]


def _bilinear_sample(image: np.ndarray, xs: np.ndarray, ys: np.ndarray) -> np.ndarray:
    """Sample ``image`` at float coordinates; out-of-bounds reads clamp."""
    height, width = image.shape
    xs = np.clip(xs, 0.0, width - 1.001)
    ys = np.clip(ys, 0.0, height - 1.001)
    x0 = np.floor(xs).astype(np.int64)
    y0 = np.floor(ys).astype(np.int64)
    fx = (xs - x0).astype(np.float32)
    fy = (ys - y0).astype(np.float32)
    top = image[y0, x0] * (1 - fx) + image[y0, x0 + 1] * fx
    bottom = image[y0 + 1, x0] * (1 - fx) + image[y0 + 1, x0 + 1] * fx
    return top * (1 - fy) + bottom * fy


def perspective_warp(
    image: np.ndarray, homography: np.ndarray, fill: float = 0.5
) -> np.ndarray:
    """Warp ``image`` by a 3x3 homography (output pixel <- H^-1 input).

    Output pixels whose source falls outside the image get ``fill``.
    """
    homography = np.asarray(homography, dtype=np.float64)
    if homography.shape != (3, 3):
        raise ValueError(f"homography must be 3x3, got {homography.shape}")
    height, width = image.shape
    inverse = np.linalg.inv(homography)
    ys, xs = np.mgrid[0:height, 0:width].astype(np.float64)
    ones = np.ones_like(xs)
    coords = np.stack([xs.ravel(), ys.ravel(), ones.ravel()])
    mapped = inverse @ coords
    with np.errstate(divide="ignore", invalid="ignore"):
        src_x = mapped[0] / mapped[2]
        src_y = mapped[1] / mapped[2]
    inside = (
        (src_x >= 0) & (src_x <= width - 1) & (src_y >= 0) & (src_y <= height - 1)
        & np.isfinite(src_x) & np.isfinite(src_y)
    )
    out = np.full(height * width, fill, dtype=np.float32)
    out[inside] = _bilinear_sample(
        image.astype(np.float32), src_x[inside], src_y[inside]
    )
    return out.reshape(height, width)


def affine_warp(
    image: np.ndarray,
    matrix: np.ndarray,
    translation: tuple[float, float] = (0.0, 0.0),
    fill: float = 0.5,
) -> np.ndarray:
    """Warp by a 2x2 linear map plus translation (about the image center)."""
    matrix = np.asarray(matrix, dtype=np.float64)
    if matrix.shape != (2, 2):
        raise ValueError(f"matrix must be 2x2, got {matrix.shape}")
    height, width = image.shape
    center = np.array([(width - 1) / 2.0, (height - 1) / 2.0])
    homography = np.eye(3)
    homography[:2, :2] = matrix
    shift = center - matrix @ center + np.asarray(translation, dtype=np.float64)
    homography[:2, 2] = shift
    return perspective_warp(image, homography, fill=fill)


def rotate_image(image: np.ndarray, angle_radians: float, fill: float = 0.5) -> np.ndarray:
    """Rotate about the image center."""
    cos_a, sin_a = np.cos(angle_radians), np.sin(angle_radians)
    return affine_warp(image, np.array([[cos_a, -sin_a], [sin_a, cos_a]]), fill=fill)


def homography_from_view_angle(
    width: int,
    height: int,
    yaw_radians: float,
    pitch_radians: float = 0.0,
    roll_radians: float = 0.0,
    distance_ratio: float = 1.8,
) -> np.ndarray:
    """Homography of a planar scene seen from an off-axis camera.

    Models the scene image as a plane at distance ``distance_ratio x
    width`` from a pinhole camera that is rotated by (yaw, pitch, roll).
    Yaw is rotation about the vertical axis — the paper's "substantially
    different angles" along a corridor.
    """
    focal = distance_ratio * width
    cx, cy = (width - 1) / 2.0, (height - 1) / 2.0
    intrinsics = np.array([[focal, 0, cx], [0, focal, cy], [0, 0, 1.0]])

    def rot_y(a: float) -> np.ndarray:
        c, s = np.cos(a), np.sin(a)
        return np.array([[c, 0, s], [0, 1, 0], [-s, 0, c]])

    def rot_x(a: float) -> np.ndarray:
        c, s = np.cos(a), np.sin(a)
        return np.array([[1, 0, 0], [0, c, -s], [0, s, c]])

    def rot_z(a: float) -> np.ndarray:
        c, s = np.cos(a), np.sin(a)
        return np.array([[c, -s, 0], [s, c, 0], [0, 0, 1]])

    rotation = rot_z(roll_radians) @ rot_x(pitch_radians) @ rot_y(yaw_radians)
    # Plane-induced homography for a fronto-parallel plane at depth f:
    # H = K R K^-1 (rotation about the optical center) — the perspective
    # foreshortening family SIFT must survive.  The photographer re-aims
    # at the scene, so we compose a translation that maps the scene
    # center back to the image center.
    homography = intrinsics @ rotation @ np.linalg.inv(intrinsics)
    homography /= homography[2, 2]
    center = np.array([cx, cy, 1.0])
    mapped = homography @ center
    mapped /= mapped[2]
    recenter = np.array(
        [[1, 0, cx - mapped[0]], [0, 1, cy - mapped[1]], [0, 0, 1.0]]
    )
    homography = recenter @ homography
    return homography / homography[2, 2]
