"""Photometric degradations applied to query views.

Real query photos differ from wardriven imagery in exposure, sensor
noise, and motion blur (the paper found "majority of frames to be blurred
due to motion and shake").  These operators create that gap.
"""

from __future__ import annotations

import numpy as np
from scipy import ndimage

__all__ = ["brightness_contrast", "gaussian_noise", "motion_blur", "vignette"]


def gaussian_noise(
    image: np.ndarray, sigma: float, rng: np.random.Generator
) -> np.ndarray:
    """Additive zero-mean Gaussian sensor noise, clipped to ``[0, 1]``."""
    if sigma < 0:
        raise ValueError(f"sigma must be non-negative, got {sigma}")
    noisy = image + rng.normal(0.0, sigma, size=image.shape).astype(np.float32)
    return np.clip(noisy, 0.0, 1.0)


def brightness_contrast(
    image: np.ndarray, brightness: float = 0.0, contrast: float = 1.0
) -> np.ndarray:
    """Linear photometric change about mid-gray: ``(i - .5) * c + .5 + b``."""
    adjusted = (image - 0.5) * contrast + 0.5 + brightness
    return np.clip(adjusted, 0.0, 1.0).astype(np.float32)


def motion_blur(image: np.ndarray, length: int, angle_radians: float) -> np.ndarray:
    """Directional blur from camera shake: convolve with a line kernel."""
    if length < 1:
        raise ValueError(f"length must be >= 1, got {length}")
    if length == 1:
        return image.astype(np.float32)
    size = length if length % 2 == 1 else length + 1
    kernel = np.zeros((size, size), dtype=np.float32)
    center = size // 2
    cos_a, sin_a = np.cos(angle_radians), np.sin(angle_radians)
    for step in np.linspace(-center, center, 4 * size):
        col = int(round(center + step * cos_a))
        row = int(round(center + step * sin_a))
        if 0 <= row < size and 0 <= col < size:
            kernel[row, col] = 1.0
    kernel /= kernel.sum()
    blurred = ndimage.convolve(image.astype(np.float32), kernel, mode="nearest")
    return blurred.astype(np.float32)


def vignette(image: np.ndarray, strength: float = 0.3) -> np.ndarray:
    """Radial darkening toward the corners (cheap lens model)."""
    if not 0.0 <= strength <= 1.0:
        raise ValueError(f"strength must be in [0, 1], got {strength}")
    height, width = image.shape
    ys, xs = np.mgrid[0:height, 0:width].astype(np.float32)
    cy, cx = (height - 1) / 2.0, (width - 1) / 2.0
    radius = np.sqrt(((ys - cy) / cy) ** 2 + ((xs - cx) / cx) ** 2) / np.sqrt(2.0)
    falloff = 1.0 - strength * radius**2
    return np.clip(image * falloff, 0.0, 1.0).astype(np.float32)
