"""Image representation conventions and conversions."""

from __future__ import annotations

import numpy as np

__all__ = ["to_float", "to_uint8"]


def to_uint8(image: np.ndarray) -> np.ndarray:
    """Convert a float image in ``[0, 1]`` to uint8 (clipping out-of-range)."""
    image = np.asarray(image)
    if image.dtype == np.uint8:
        return image
    return np.clip(np.rint(image * 255.0), 0, 255).astype(np.uint8)


def to_float(image: np.ndarray) -> np.ndarray:
    """Convert a uint8 image to float32 in ``[0, 1]``."""
    image = np.asarray(image)
    if image.dtype == np.uint8:
        return image.astype(np.float32) / 255.0
    return image.astype(np.float32)
