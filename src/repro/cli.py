"""Command-line interface: ``python -m repro <experiment> [--fast]``.

Runs one paper-figure driver (or all of them) and prints the series the
paper reports.  ``--fast`` shrinks workloads for a quick look.

Every experiment runs inside a :func:`repro.obs.use_registry` scope, so
clients, oracles, servers, and the channel model all report into one
:class:`repro.obs.MetricsRegistry`.  ``--metrics-json PATH`` writes the
snapshot as JSON (and prints a compact metrics summary);
``--metrics-prom PATH`` writes the Prometheus text rendering.

Tracing rides the same scope: any of ``--trace-out`` (Chrome
trace-event JSON for ``chrome://tracing``/Perfetto), ``--trace-ndjson``
(structured event log), or ``--flight-recorder K`` (print the K slowest
query traces with full span trees) installs a
:class:`repro.obs.TraceCollector` around the run — worker spans ship
back through :mod:`repro.parallel`, so ``--workers N`` loses nothing.

``python -m repro metrics-diff BASELINE CURRENT`` is the perf gate: it
compares two ``--metrics-json`` snapshots against tolerance thresholds
and exits nonzero on regression (see :mod:`repro.obs.diff`).

``python -m repro verify-state PATH`` is the integrity gate: it audits
saved server state (an ``.npz`` file or a snapshot-store directory),
exits nonzero on any corruption, and with ``--rebuild-venue`` can
reconstruct unrecoverable state from a fresh wardrive (see
:mod:`repro.store.fsck`).

``python -m repro loadtest`` runs the open-loop fleet load test
(:mod:`repro.loadgen`): millions of simulated users with Poisson/bursty
arrivals, mobility sessions, and Zipf venue popularity replayed against
the serving layer's shard queues (hot-venue replication included) in
simulated time, reporting p50/p99/p999 latency, shed fraction, and
sustained queries/sec/core to ``--out`` (default ``BENCH_loadgen.json``).

``python -m repro serve --state DIR`` boots the multi-venue
:class:`repro.serving.ServingFrontend` over saved venue state (one
snapshot store per venue) and drives synthetic localization queries
through it; it shares the observability flags above, plus
``--shards``/``--workers``/``--queue-depth``/``--admission`` for the
serving topology and ``--bootstrap N`` to synthesize venues first.

SLOs and events ride the same shared flags: ``--slo-report PATH``
tracks the default latency/availability objectives (see
:mod:`repro.obs.slo`) over every served query and writes the
budget/burn report; ``--events-ndjson PATH`` records structured events
(admission rejects, degradation steps, retry exhaustion, snapshot
quarantines, topology changes) with trace correlation.  ``python -m
repro top METRICS.json`` is the live dashboard over a snapshot being
rewritten by a running fleet, and ``python -m repro slo-report PATH``
renders budget/burn tables from either artifact (``--fail-on-alerts``
makes it a CI gate).
"""

from __future__ import annotations

import argparse
import contextlib
import json
import sys

from repro.obs import (
    EventLog,
    FlightRecorder,
    MetricsRegistry,
    SloTracker,
    TraceCollector,
    default_objectives,
    diff_metrics,
    format_report,
    format_trace,
    parse_metric_key,
    run_top,
    use_collector,
    use_event_log,
    use_registry,
    use_slo_tracker,
    write_chrome_trace,
    write_ndjson,
)

from repro.evaluation.experiments import (
    adaptive_offload,
    fig2_fps,
    fig3_keypoints,
    fig5_feature_ratio,
    fig6_dimension_stats,
    fig13_precision_recall,
    fig14_upload,
    fig15_memory,
    fig16_latency,
    fig18_energy,
    fig19_localization,
    fig20_error_axes,
    latency_e2e,
    takeaways_exp,
)

__all__ = ["main"]

_EXPERIMENTS = {
    "adaptive": adaptive_offload,
    "latency": latency_e2e,
    "fig2": fig2_fps,
    "fig3": fig3_keypoints,
    "fig5": fig5_feature_ratio,
    "fig6": fig6_dimension_stats,
    "fig13": fig13_precision_recall,
    "fig14": fig14_upload,
    "fig15": fig15_memory,
    "fig16": fig16_latency,
    "fig18": fig18_energy,
    "fig19": fig19_localization,
    "fig20": fig20_error_axes,
    "takeaways": takeaways_exp,
}

# Experiments whose run()/main() accept a workers= fan-out parameter.
_WORKERS_AWARE = {"fig13", "fig14", "fig16", "latency"}

# Experiments whose run()/main() accept faults= / retry= (chaos runs).
_FAULT_AWARE = {"fig13", "fig14", "fig16", "latency"}

# Experiments whose run() accepts serving= (route queries through a
# ServingFrontend with that many shards; bit-identical to the direct path).
_SERVING_AWARE = {"fig13", "fig16"}

_FAST_PARAMS: dict[str, dict] = {
    "adaptive": dict(queries=240),
    "fig2": dict(num_frames=6, image_size=160),
    "fig3": dict(num_images=12, image_size=160),
    "fig5": dict(num_images=12, image_size=160),
    "fig6": dict(num_scenes=6, num_distractors=10, image_size=160, cache_dir=None),
    "fig13": dict(
        num_scenes=10,
        num_distractors=30,
        views_per_scene=3,
        image_size=224,
        small_count=60,
        large_count=150,
        random_count=150,
        include_bruteforce=False,
        cache_dir=None,
    ),
    "fig14": dict(duration_seconds=20.0, image_size=192, fingerprint_size=30),
    "fig16": dict(num_frames=6, image_size=224),
    "fig18": dict(duration_seconds=10.0),
    "fig19": dict(venues=("office",), queries_per_venue=8),
    "fig20": dict(venues=("office",), queries_per_venue=8),
}


def _print_summary(result: object, indent: str = "  ") -> None:
    """Compact recursive rendering of a driver's result dict."""
    import numpy as np

    if not isinstance(result, dict):
        print(f"{indent}{result}")
        return
    for key, value in result.items():
        if isinstance(value, dict):
            print(f"{indent}{key}:")
            _print_summary(value, indent + "  ")
        elif isinstance(value, np.ndarray) and value.size > 6:
            print(
                f"{indent}{key}: n={value.size} median={np.median(value):.3g} "
                f"p90={np.percentile(value, 90):.3g}"
            )
        else:
            print(f"{indent}{key}: {value}")


def _print_metrics_summary(registry: MetricsRegistry) -> None:
    """Compact per-instrument rendering of a run's metrics registry."""
    print("=== metrics " + "=" * 49)
    for instrument in registry.instruments():
        label = instrument.name
        if instrument.labels:
            label += (
                "{"
                + ",".join(f"{k}={v}" for k, v in sorted(instrument.labels.items()))
                + "}"
            )
        if instrument.kind == "histogram":
            quantiles = instrument.quantiles((0.5, 0.9))
            print(
                f"  {label}: n={instrument.count} "
                f"p50={quantiles[0.5]:.4g} p90={quantiles[0.9]:.4g} "
                f"sum={instrument.sum:.4g}"
            )
        elif instrument.kind == "sketch":
            quantiles = instrument.quantiles()
            print(
                f"  {label}: n={instrument.count} "
                f"p50={quantiles[0.5]:.4g} p99={quantiles[0.99]:.4g} "
                f"p999={quantiles[0.999]:.4g} sum={instrument.sum:.4g}"
            )
        else:
            print(f"  {label}: {instrument.value:.6g}")


def _run_metrics_diff(argv: list[str]) -> int:
    """The ``metrics-diff`` subcommand: gate CURRENT against BASELINE."""
    parser = argparse.ArgumentParser(
        prog="python -m repro metrics-diff",
        description="Compare two --metrics-json snapshots; exit 1 on regression.",
    )
    parser.add_argument("baseline", help="baseline metrics JSON (the contract)")
    parser.add_argument("current", help="current metrics JSON to check")
    parser.add_argument(
        "--rel-tol",
        type=float,
        default=0.25,
        help="relative tolerance per scalar (default 0.25)",
    )
    parser.add_argument(
        "--abs-tol",
        type=float,
        default=0.0,
        help="absolute tolerance per scalar (default 0)",
    )
    parser.add_argument(
        "--include",
        action="append",
        metavar="GLOB",
        default=None,
        help="restrict the contract to baseline scalars matching GLOB "
        "(repeatable; default: every baseline scalar)",
    )
    args = parser.parse_args(argv)
    with open(args.baseline, "r", encoding="utf-8") as handle:
        baseline = json.load(handle)
    with open(args.current, "r", encoding="utf-8") as handle:
        current = json.load(handle)
    num_checked, violations = diff_metrics(
        baseline,
        current,
        rel_tol=args.rel_tol,
        abs_tol=args.abs_tol,
        include=args.include,
    )
    print(format_report(num_checked, violations))
    return 1 if violations else 0


def _run_verify_state(argv: list[str]) -> int:
    """The ``verify-state`` subcommand: fsck for saved server state."""
    parser = argparse.ArgumentParser(
        prog="python -m repro verify-state",
        description="Audit a saved-state .npz file or a SnapshotStore "
        "directory; exit 0 only when every generation verifies.",
    )
    parser.add_argument(
        "path", help="state file (.npz) or snapshot-store directory to audit"
    )
    parser.add_argument(
        "--rebuild-venue",
        default=None,
        metavar="VENUE",
        help="if nothing verifies, re-wardrive this venue (e.g. 'office') "
        "and commit a fresh generation",
    )
    parser.add_argument(
        "--seed",
        type=int,
        default=0,
        help="seed for the rebuild wardrive (default 0)",
    )
    parser.add_argument(
        "--json",
        action="store_true",
        help="emit the report as JSON instead of the human rendering",
    )
    args = parser.parse_args(argv)
    # Imported lazily: the store stack is not needed for experiment runs.
    from repro.store.fsck import verify_state

    report = verify_state(
        args.path, rebuild_venue=args.rebuild_venue, seed=args.seed
    )
    if args.json:
        print(json.dumps(report.to_dict(), indent=2, sort_keys=True))
    else:
        print(report.render())
    return report.exit_code


def _run_top(argv: list[str]) -> int:
    """The ``top`` subcommand: live dashboard over a metrics snapshot."""
    parser = argparse.ArgumentParser(
        prog="python -m repro top",
        description="Watch a --metrics-json snapshot (being rewritten by a "
        "running fleet) as a live serving dashboard: per-shard saturation "
        "and latency quantiles, SLO budgets/burn, recent events.",
    )
    parser.add_argument("metrics", help="metrics JSON path to watch")
    parser.add_argument(
        "--events",
        metavar="PATH",
        default=None,
        help="NDJSON event log to tail alongside (an --events-ndjson output)",
    )
    parser.add_argument(
        "--interval",
        type=float,
        default=2.0,
        metavar="SECONDS",
        help="repaint period (default 2.0)",
    )
    parser.add_argument(
        "--iterations",
        type=int,
        default=None,
        metavar="N",
        help="paint N frames then exit (default: run until Ctrl-C)",
    )
    parser.add_argument(
        "--plain",
        action="store_true",
        help="print frames to stdout instead of the curses UI",
    )
    args = parser.parse_args(argv)
    return run_top(
        args.metrics,
        events_path=args.events,
        interval_seconds=args.interval,
        iterations=args.iterations,
        plain=args.plain,
    )


def _render_slo_report(report: dict) -> str:
    """Human rendering of an ``slo_report.json`` (SloTracker.report())."""
    lines = []
    for objective in report.get("objectives", ()):
        header = (
            f"objective {objective['name']} ({objective['kind']}, "
            f"target {objective['target']:.3%}"
        )
        if objective.get("threshold_seconds") is not None:
            header += f" within {objective['threshold_seconds']:g}s"
        header += f", window {objective['window_seconds']:g}s)"
        lines.append(header)
        scopes = objective.get("scopes", ())
        if not scopes:
            lines.append("  (no recorded events)")
            continue
        lines.append(
            f"  {'scope':<28} {'events':>7} {'bad':>5} {'err':>7} "
            f"{'burn':>7} {'budget left':>12} {'alerts':>7}"
        )
        for scope in scopes:
            scope_label = ",".join(
                f"{k}={v}" for k, v in sorted(scope["scope"].items())
            ) or "(fleet)"
            flag = " !" if scope["alerting"] or scope["alerts_fired"] else ""
            lines.append(
                f"  {scope_label:<28} {scope['window_events']:>7} "
                f"{scope['window_bad']:>5} {scope['error_rate']:>6.2%} "
                f"{scope['burn_rate']:>7.2f} {scope['budget_remaining']:>11.1%} "
                f"{scope['alerts_fired']:>7}{flag}"
            )
    lines.append(f"alerts fired: {report.get('alerts_fired', 0)}")
    return "\n".join(lines)


def _run_slo_report(argv: list[str]) -> int:
    """The ``slo-report`` subcommand: budget/burn tables from JSON."""
    parser = argparse.ArgumentParser(
        prog="python -m repro slo-report",
        description="Render SLO budget/burn tables from an slo_report.json "
        "(a --slo-report artifact) or from a --metrics-json snapshot "
        "containing slo_* gauges.",
    )
    parser.add_argument(
        "path", help="slo_report.json or metrics JSON snapshot to render"
    )
    parser.add_argument(
        "--fail-on-alerts",
        action="store_true",
        help="exit 1 when any burn alert fired (the CI smoke gate)",
    )
    args = parser.parse_args(argv)
    with open(args.path, "r", encoding="utf-8") as handle:
        data = json.load(handle)
    print("=== slo report " + "=" * 46)
    if "objectives" in data:
        print(_render_slo_report(data))
        alerts = int(data.get("alerts_fired", 0))
    else:
        from repro.obs.top import _slo_rows

        rows = _slo_rows(data)
        if rows:
            print("\n".join(rows))
        else:
            print("  no SLO gauges in this snapshot (run with --slo-report)")
        alerts = int(
            sum(
                float(entry["value"])
                for key, entry in data.get("counters", {}).items()
                if parse_metric_key(key)[0] == "slo_burn_alerts_total"
            )
        )
        print(f"alerts fired: {alerts}")
    return 1 if args.fail_on_alerts and alerts else 0


def _print_flight_recorder(recorder: FlightRecorder) -> None:
    print("=== flight recorder " + "=" * 41)
    print(
        f"  {len(recorder)}/{recorder.capacity} slowest traces retained, "
        f"{recorder.evicted} evicted"
    )
    for trace in recorder.slowest():
        for line in format_trace(trace).splitlines():
            print(f"  {line}")


def _add_obs_arguments(parser: argparse.ArgumentParser) -> None:
    """The shared observability flags (experiment subcommands + serve)."""
    parser.add_argument(
        "--metrics-json",
        metavar="PATH",
        default=None,
        help="write the run's metrics registry to PATH as JSON "
        "and print a metrics summary",
    )
    parser.add_argument(
        "--metrics-prom",
        metavar="PATH",
        default=None,
        help="write the run's metrics registry to PATH in Prometheus text format",
    )
    parser.add_argument(
        "--trace-out",
        metavar="PATH",
        default=None,
        help="write the run's query traces to PATH as Chrome trace-event "
        "JSON (load in chrome://tracing or Perfetto)",
    )
    parser.add_argument(
        "--trace-ndjson",
        metavar="PATH",
        default=None,
        help="write the run's spans to PATH as newline-delimited JSON",
    )
    parser.add_argument(
        "--flight-recorder",
        type=int,
        default=0,
        metavar="K",
        help="retain and print the K slowest query traces with full span trees",
    )
    parser.add_argument(
        "--slo-report",
        metavar="PATH",
        default=None,
        help="track SLOs (latency + availability, default objectives) "
        "during the run and write the budget/burn report to PATH as JSON",
    )
    parser.add_argument(
        "--events-ndjson",
        metavar="PATH",
        default=None,
        help="record structured events (admission rejects, degradation "
        "steps, retry exhaustion, quarantines, topology changes) and "
        "write them to PATH as newline-delimited JSON",
    )


def _make_collector(args, registry: MetricsRegistry) -> TraceCollector | None:
    if args.trace_out or args.trace_ndjson or args.flight_recorder > 0:
        return TraceCollector(registry=registry)
    return None


def _make_event_log(args, registry: MetricsRegistry) -> EventLog | None:
    if getattr(args, "events_ndjson", None):
        return EventLog(registry=registry)
    return None


def _make_slo_tracker(args, registry: MetricsRegistry) -> SloTracker | None:
    if getattr(args, "slo_report", None):
        return SloTracker(default_objectives(), registry=registry)
    return None


@contextlib.contextmanager
def _obs_scope(
    registry: MetricsRegistry,
    collector: TraceCollector | None = None,
    events: EventLog | None = None,
    slo: SloTracker | None = None,
):
    """Install the run's observability sinks as the contextual defaults.

    The event log installs before the SLO tracker so burn alerts the
    tracker raises land in the log.
    """
    with contextlib.ExitStack() as stack:
        stack.enter_context(use_registry(registry))
        if collector is not None:
            stack.enter_context(use_collector(collector))
        if events is not None:
            stack.enter_context(use_event_log(events))
        if slo is not None:
            stack.enter_context(use_slo_tracker(slo))
        yield


def _write_obs_outputs(
    args,
    registry: MetricsRegistry,
    collector: TraceCollector | None,
    slo: SloTracker | None = None,
    events: EventLog | None = None,
) -> None:
    """Emit the trace/metrics artifacts the shared obs flags asked for."""
    if collector is not None:
        num_spans = sum(1 for _ in collector.spans())
        if args.trace_out:
            write_chrome_trace(collector.roots, args.trace_out)
            print(
                f"chrome trace ({len(collector.traces())} traces, "
                f"{num_spans} spans) written to {args.trace_out}"
            )
        if args.trace_ndjson:
            write_ndjson(collector.roots, args.trace_ndjson)
            print(f"span NDJSON ({num_spans} spans) written to {args.trace_ndjson}")
        if args.flight_recorder > 0:
            recorder = FlightRecorder(args.flight_recorder, registry=registry)
            recorder.observe_all(collector.traces())
            _print_flight_recorder(recorder)
    if args.metrics_json or args.metrics_prom:
        _print_metrics_summary(registry)
    if args.metrics_json:
        registry.write_json(args.metrics_json)
        print(f"metrics JSON written to {args.metrics_json}")
    if args.metrics_prom:
        with open(args.metrics_prom, "w", encoding="utf-8") as handle:
            handle.write(registry.to_prometheus())
        print(f"metrics Prometheus text written to {args.metrics_prom}")
    if slo is not None and args.slo_report:
        slo.write_json(args.slo_report)
        print(
            f"SLO report ({slo.alerts_fired} burn alerts) "
            f"written to {args.slo_report}"
        )
    if events is not None and args.events_ndjson:
        events.write_ndjson(args.events_ndjson)
        print(
            f"event NDJSON ({len(events)} events, {events.dropped} dropped) "
            f"written to {args.events_ndjson}"
        )


def _bootstrap_venues(root, count: int, seed: int) -> list[str]:
    """Create ``count`` small synthetic venues under ``root``, one store each.

    Each venue is a wardriven-in-miniature :class:`VisualPrintServer`
    (random SIFT descriptors at random 3D positions) committed through
    its generational snapshot store, so a bootstrapped state directory
    is indistinguishable from one produced by real ingest + save.
    """
    import numpy as np

    from repro.core import VisualPrintConfig, VisualPrintServer
    from repro.core.persistence import ServerStateStore
    from repro.util.rng import rng_for
    from repro.wardrive.environment import random_sift_descriptor

    names = []
    for index in range(count):
        name = f"venue-{index}"
        rng = rng_for(seed, f"serve/bootstrap/{name}")
        server = VisualPrintServer(
            VisualPrintConfig(descriptor_capacity=4096, fingerprint_size=10),
            bounds=(np.zeros(3), np.array([10.0, 10.0, 3.0])),
        )
        descriptors = np.array([random_sift_descriptor(rng) for _ in range(120)])
        server.ingest(descriptors, rng.uniform(0.0, 10.0, (120, 3)))
        ServerStateStore(root / name).save(server)
        names.append(name)
    return names


def _synthetic_query(server, rng, size: int = 24):
    """A localization query drawn from a venue's own stored descriptors."""
    import numpy as np

    from repro.core import Fingerprint
    from repro.features.keypoint import KeypointSet

    take = rng.choice(
        server.num_mappings, size=min(size, server.num_mappings), replace=False
    )
    descriptors = server.descriptors[np.sort(take)]
    n = descriptors.shape[0]
    keypoints = KeypointSet(
        positions=rng.uniform(50.0, 590.0, size=(n, 2)).astype(np.float32),
        scales=np.ones(n, np.float32),
        orientations=np.zeros(n, np.float32),
        responses=np.ones(n, np.float32),
        descriptors=descriptors.astype(np.float32),
    )
    return Fingerprint(
        keypoints=keypoints, uniqueness_counts=np.zeros(n, dtype=np.int64)
    )


def _run_serve(argv: list[str]) -> int:
    """The ``serve`` subcommand: boot the frontend over saved venue state."""
    parser = argparse.ArgumentParser(
        prog="python -m repro serve",
        description="Boot the multi-venue ServingFrontend over saved venue "
        "state (one snapshot store per venue under --state) and drive "
        "synthetic localization queries through it.",
    )
    parser.add_argument(
        "--state",
        required=True,
        metavar="DIR",
        help="venue state root: one snapshot-store directory per venue",
    )
    parser.add_argument(
        "--bootstrap",
        type=int,
        default=0,
        metavar="N",
        help="first create N small synthetic venues under --state "
        "(default: serve whatever venues already exist there)",
    )
    parser.add_argument(
        "--shards",
        type=int,
        default=1,
        metavar="N",
        help="shards on the consistent-hash ring (default 1)",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=1,
        metavar="N",
        help="1 = inline shard execution (deterministic); >1 = one "
        "process per shard, engines restored from --state in-worker",
    )
    parser.add_argument(
        "--queries",
        type=int,
        default=8,
        metavar="N",
        help="synthetic localization queries to serve, round-robin "
        "across venues (default 8)",
    )
    parser.add_argument(
        "--queue-depth",
        type=int,
        default=64,
        metavar="N",
        help="bounded per-shard admission queue (default 64)",
    )
    parser.add_argument(
        "--admission",
        choices=("wait", "reject"),
        default="wait",
        help="backpressure policy when a shard queue fills (default wait)",
    )
    parser.add_argument(
        "--channel",
        default="lte",
        metavar="NAME",
        help="uplink preset to price each query's upload on (default lte)",
    )
    parser.add_argument("--seed", type=int, default=0)
    _add_obs_arguments(parser)
    args = parser.parse_args(argv)

    from pathlib import Path

    from repro.network import resolve_channel
    from repro.serving import ServingFrontend, load_venue_server
    from repro.util.rng import rng_for

    channel = resolve_channel(args.channel)
    root = Path(args.state)
    registry = MetricsRegistry()
    collector = _make_collector(args, registry)
    events = _make_event_log(args, registry)
    slo = _make_slo_tracker(args, registry)
    with _obs_scope(registry, collector, events, slo):
        if args.bootstrap > 0:
            names = _bootstrap_venues(root, args.bootstrap, args.seed)
            print(f"bootstrapped {len(names)} venue(s) under {root}")
        else:
            names = sorted(
                p.name
                for p in root.iterdir()
                if p.is_dir() and any(p.glob("gen-*"))
            ) if root.is_dir() else []
        if not names:
            print(f"no venues found under {root} (try --bootstrap N)")
            return 2
        frontend = ServingFrontend(
            num_shards=args.shards,
            workers=args.workers,
            queue_depth=args.queue_depth,
            admission=args.admission,
            seed=args.seed,
            registry=registry,
        )
        # The parent restores every venue once: inline shards serve
        # these copies directly; process shards rebuild their own from
        # the store (EngineSpec), and the parent copies only feed
        # query synthesis.
        servers = {
            name: load_venue_server(root, name, registry=registry)
            for name in names
        }
        for name in names:
            if args.workers > 1:
                frontend.register_venue(
                    name, frontend.venues.spec_for_stored_venue(name, root)
                )
            else:
                frontend.register_venue(name, servers[name])
        rng = rng_for(args.seed, "serve/queries")
        items = []
        for index in range(args.queries):
            name = names[index % len(names)]
            items.append((name, _synthetic_query(servers[name], rng)))
        answers = frontend.map_many(items)
        transfer_rng = rng_for(args.seed, "serve/uplink")
        for (_, fingerprint), _answer in zip(items, answers):
            channel.transfer_seconds(fingerprint.upload_bytes, transfer_rng)
        localized = sum(1 for answer in answers if answer.matched_points > 0)
        print(
            f"served {len(answers)} queries over {len(names)} venue(s) on "
            f"{args.shards} shard(s) (workers={args.workers}, "
            f"channel={args.channel}): {localized} localized"
        )
        for shard_id, venues in sorted(frontend.placement().items()):
            print(f"  {shard_id}: {', '.join(venues) if venues else '(empty)'}")
        frontend.close()
    _write_obs_outputs(args, registry, collector, slo=slo, events=events)
    return 0


def _run_loadtest(argv: list[str]) -> int:
    """The ``loadtest`` subcommand: open-loop fleet load test in sim time."""
    parser = argparse.ArgumentParser(
        prog="python -m repro loadtest",
        description="Simulate an open-loop fleet of users (Poisson arrivals, "
        "burst envelope, mobility sessions, Zipf venue popularity) against "
        "the serving layer's shard queues with hot-venue replication, and "
        "report tail latency, shed fraction, and per-core throughput.",
    )
    parser.add_argument(
        "--users", type=int, default=20000, help="simulated devices (default 20000)"
    )
    parser.add_argument(
        "--venues", type=int, default=100, help="deployed venues (default 100)"
    )
    parser.add_argument(
        "--duration",
        type=float,
        default=60.0,
        metavar="SEC",
        help="simulated run length (default 60)",
    )
    parser.add_argument(
        "--rate",
        type=float,
        default=0.05,
        metavar="QPS",
        help="mean per-user query rate in the calm state (default 0.05)",
    )
    parser.add_argument(
        "--zipf",
        type=float,
        default=1.1,
        metavar="S",
        help="venue popularity exponent, P(rank k) ~ (k+1)^-S (default 1.1)",
    )
    parser.add_argument(
        "--session-queries",
        type=float,
        default=4.0,
        metavar="N",
        help="mean queries per mobility session (default 4)",
    )
    parser.add_argument(
        "--burst-multiplier",
        type=float,
        default=1.0,
        metavar="X",
        help="flash-crowd rate multiplier while bursting (default 1 = off)",
    )
    parser.add_argument(
        "--burst-dwell",
        type=float,
        default=0.0,
        metavar="SEC",
        help="mean burst-state dwell; 0 disables the envelope (default 0)",
    )
    parser.add_argument(
        "--calm-dwell",
        type=float,
        default=60.0,
        metavar="SEC",
        help="mean calm-state dwell between bursts (default 60)",
    )
    parser.add_argument(
        "--shards", type=int, default=4, help="shard queues (default 4)"
    )
    parser.add_argument(
        "--replication-factor",
        type=int,
        default=1,
        metavar="R",
        help="shards serving each venue; >1 spreads hot venues (default 1)",
    )
    parser.add_argument(
        "--queue-depth",
        type=int,
        default=64,
        metavar="N",
        help="bounded per-shard admission queue (default 64)",
    )
    parser.add_argument(
        "--channel",
        default=None,
        metavar="NAME",
        help="price each query's uplink on this channel preset before "
        "admission (Python-loop cost: use at thousands scale, not millions)",
    )
    parser.add_argument(
        "--loss",
        type=float,
        default=0.0,
        metavar="P",
        help="per-attempt uplink loss probability (needs --channel)",
    )
    parser.add_argument(
        "--adaptive",
        action="store_true",
        help="shape the uplink leg with the predictive link-quality "
        "policy (entry rung / retry budget before each query; needs "
        "--channel)",
    )
    parser.add_argument(
        "--calibrate",
        action="store_true",
        help="measure real service times through a live frontend instead of "
        "the seeded synthetic model (wall-clock: not bit-identical)",
    )
    parser.add_argument(
        "--service-mean",
        type=float,
        default=0.02,
        metavar="SEC",
        help="mean of the synthetic lognormal service model (default 0.02)",
    )
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--workers",
        type=int,
        default=1,
        metavar="N",
        help="arrival-generation worker processes (bit-identical to serial)",
    )
    parser.add_argument(
        "--fast",
        action="store_true",
        help="CI scale: cap the simulated duration at 5 s",
    )
    parser.add_argument(
        "--out",
        metavar="PATH",
        default="BENCH_loadgen.json",
        help="write the load-test report JSON here (default BENCH_loadgen.json)",
    )
    _add_obs_arguments(parser)
    args = parser.parse_args(argv)

    from repro.core import ServerConfig
    from repro.loadgen import (
        TrafficModel,
        calibrate_service_seconds,
        run_loadtest,
        synthetic_service_seconds,
    )

    duration = min(args.duration, 5.0) if args.fast else args.duration
    model = TrafficModel(
        users=args.users,
        venues=args.venues,
        duration_seconds=duration,
        rate_per_user=args.rate,
        zipf_exponent=args.zipf,
        session_queries=args.session_queries,
        burst_multiplier=args.burst_multiplier,
        burst_dwell_seconds=args.burst_dwell,
        calm_dwell_seconds=args.calm_dwell,
    )
    cluster = ServerConfig(
        num_shards=args.shards,
        queue_depth=args.queue_depth,
        replication_factor=args.replication_factor,
        seed=args.seed,
    )
    channel = None
    if args.channel is not None:
        from repro.network import resolve_channel
        from repro.network.faults import FaultyChannel

        channel = FaultyChannel(
            resolve_channel(args.channel), loss=args.loss, seed=args.seed
        )
    if args.adaptive and channel is None:
        print("--adaptive needs --channel")
        return 2
    if args.calibrate:
        service_samples = calibrate_service_seconds(seed=args.seed)
    else:
        service_samples = synthetic_service_seconds(
            seed=args.seed, mean_seconds=args.service_mean
        )

    registry = MetricsRegistry()
    collector = _make_collector(args, registry)
    events = _make_event_log(args, registry)
    slo = _make_slo_tracker(args, registry)
    with _obs_scope(registry, collector, events, slo):
        report = run_loadtest(
            model,
            cluster,
            seed=args.seed,
            workers=args.workers,
            service_samples=service_samples,
            channel=channel,
            adaptive=args.adaptive,
            registry=registry,
            slo_tracker=slo,
        )
    latency = report["latency_seconds"]
    print(
        f"offered {report['offered']} queries from {args.users} users over "
        f"{duration:g} s sim: served {report['served']}, "
        f"shed {report['shed']} ({report['shed_fraction']:.1%}), "
        f"abandoned {report['abandoned']}"
    )
    print(
        f"latency p50/p99/p999: {latency['p50'] * 1e3:.1f} / "
        f"{latency['p99'] * 1e3:.1f} / {latency['p999'] * 1e3:.1f} ms"
    )
    print(
        f"sustained {report['queries_per_second']:.1f} qps on "
        f"{args.shards} shard(s) x{args.replication_factor} replication "
        f"= {report['queries_per_second_per_core']:.1f} qps/core, "
        f"hot venue share {report['hot_venue_share']:.1%}"
    )
    with open(args.out, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"load-test report written to {args.out}")
    _write_obs_outputs(args, registry, collector, slo=slo, events=events)
    return 0


def main(argv: list[str] | None = None) -> int:
    if argv is None:
        argv = sys.argv[1:]
    # Dispatch the snapshot-comparison subcommand before the experiment
    # parser: it takes file paths, not an experiment name.
    if argv and argv[0] == "metrics-diff":
        return _run_metrics_diff(argv[1:])
    if argv and argv[0] == "verify-state":
        return _run_verify_state(argv[1:])
    if argv and argv[0] == "serve":
        return _run_serve(argv[1:])
    if argv and argv[0] == "loadtest":
        return _run_loadtest(argv[1:])
    if argv and argv[0] == "top":
        return _run_top(argv[1:])
    if argv and argv[0] == "slo-report":
        return _run_slo_report(argv[1:])
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Reproduce a figure from 'Low Bandwidth Offload for Mobile AR'.",
    )
    parser.add_argument(
        "experiment",
        choices=sorted(_EXPERIMENTS) + ["all"],
        help="which paper artifact to regenerate",
    )
    parser.add_argument(
        "--fast",
        action="store_true",
        help="shrink workloads for a quick (less faithful) run",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=1,
        metavar="N",
        help="process-pool width for experiments with parallel hot paths "
        f"({', '.join(sorted(_WORKERS_AWARE))}); results are bit-identical "
        "to --workers 1 (0 = all available cores)",
    )
    parser.add_argument(
        "--serving",
        type=int,
        default=None,
        metavar="SHARDS",
        help="route query loops through a ServingFrontend with SHARDS "
        f"shards ({', '.join(sorted(_SERVING_AWARE))}); inline workers, "
        "bit-identical to the direct path",
    )
    faults_group = parser.add_argument_group(
        "fault injection",
        "wrap the experiment's channel in a seeded FaultyChannel and "
        f"retry under a backoff policy ({', '.join(sorted(_FAULT_AWARE))})",
    )
    faults_group.add_argument(
        "--channel-loss",
        type=float,
        default=None,
        metavar="P",
        help="per-attempt packet-loss probability in the good link state",
    )
    faults_group.add_argument(
        "--channel-outage",
        type=float,
        default=None,
        metavar="P",
        help="per-attempt probability of entering a transient outage "
        "(Gilbert–Elliott good→bad transition)",
    )
    faults_group.add_argument(
        "--retry-attempts",
        type=int,
        default=None,
        metavar="N",
        help="max transfer attempts per query (default 4)",
    )
    faults_group.add_argument(
        "--retry-backoff",
        type=float,
        default=None,
        metavar="SECONDS",
        help="base exponential-backoff pause before the first retry "
        "(default 0.05)",
    )
    faults_group.add_argument(
        "--retry-budget",
        type=float,
        default=None,
        metavar="SECONDS",
        help="per-query simulated latency budget before abandoning "
        "(default 30)",
    )
    _add_obs_arguments(parser)
    args = parser.parse_args(argv)

    workers = args.workers
    if workers == 0:
        from repro.parallel import default_workers

        workers = default_workers()

    # Any fault/retry flag opts the run into the recovery path; the
    # spec defaults unset probabilities to 0 so e.g. --retry-attempts
    # alone retries over a fault-free channel (and stays bit-identical
    # to a plain run — zero-fault parity).
    fault_args = (
        args.channel_loss,
        args.channel_outage,
        args.retry_attempts,
        args.retry_backoff,
        args.retry_budget,
    )
    fault_kwargs: dict = {}
    if any(value is not None for value in fault_args):
        from repro.network import FaultSpec, RetryPolicy

        policy_overrides = {}
        if args.retry_attempts is not None:
            policy_overrides["max_attempts"] = args.retry_attempts
        if args.retry_backoff is not None:
            policy_overrides["base_backoff_seconds"] = args.retry_backoff
        if args.retry_budget is not None:
            policy_overrides["budget_seconds"] = args.retry_budget
        fault_kwargs = {
            "faults": FaultSpec(
                loss=args.channel_loss or 0.0,
                outage_enter=args.channel_outage or 0.0,
            ),
            "retry": RetryPolicy(**policy_overrides),
        }

    # A silently ignored --serving would look like a passing parity run
    # that never exercised the serving layer; `all` is exempt (the flag
    # applies to whichever experiments in the sweep support it).
    if (
        args.serving is not None
        and args.experiment != "all"
        and args.experiment not in _SERVING_AWARE
    ):
        print(
            f"--serving is not supported by {args.experiment} "
            f"(supported: {', '.join(sorted(_SERVING_AWARE))})"
        )
        return 2

    registry = MetricsRegistry()
    collector = _make_collector(args, registry)
    events = _make_event_log(args, registry)
    slo = _make_slo_tracker(args, registry)
    names = sorted(_EXPERIMENTS) if args.experiment == "all" else [args.experiment]
    with _obs_scope(registry, collector, events, slo):
        for name in names:
            module = _EXPERIMENTS[name]
            extra = {"workers": workers} if name in _WORKERS_AWARE else {}
            if name in _FAULT_AWARE:
                extra.update(fault_kwargs)
            if args.serving is not None and name in _SERVING_AWARE:
                extra["serving"] = args.serving
            print(f"=== {name} " + "=" * max(1, 60 - len(name)))
            if args.fast and name in _FAST_PARAMS:
                result = module.run(**_FAST_PARAMS[name], **extra)
                _print_summary(result)
            else:
                module.main(**extra)
            print()

    _write_obs_outputs(args, registry, collector, slo=slo, events=events)
    return 0


if __name__ == "__main__":
    sys.exit(main())
