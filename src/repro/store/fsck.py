"""``repro verify-state`` — an fsck for saved server state.

Audits either a single ``.npz`` state file (the legacy
:func:`repro.core.persistence.save_server` format) or a generational
:class:`repro.store.SnapshotStore` directory, and reports three tiers:

* **clean** — every retained generation (or the file) verifies and
  restores into a structurally-valid server;
* **recoverable** — the newest generation is damaged but an older one
  verifies: the rollback ladder will serve last-good state;
* **unrecoverable** — nothing verifies.  With a rebuild venue given,
  the auditor re-wardrives the venue from scratch and commits a fresh
  generation — the paper's data is reconstructible, so unrecoverable
  state is an availability event, not a data-loss event.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path

__all__ = ["FsckReport", "verify_state"]


@dataclass
class FsckReport:
    """Outcome of one :func:`verify_state` audit."""

    path: str
    kind: str  # "store" | "npz" | "missing"
    ok: bool = False
    recoverable: bool = False
    restored_generation: int | None = None
    rebuilt: bool = False
    problems: list[str] = field(default_factory=list)
    generation_summaries: list[str] = field(default_factory=list)

    @property
    def exit_code(self) -> int:
        """0 only for a fully-clean audit; corruption is always nonzero."""
        return 0 if self.ok else 1

    def to_dict(self) -> dict:
        return {
            "path": self.path,
            "kind": self.kind,
            "ok": self.ok,
            "recoverable": self.recoverable,
            "restored_generation": self.restored_generation,
            "rebuilt": self.rebuilt,
            "problems": list(self.problems),
            "generations": list(self.generation_summaries),
        }

    def render(self) -> str:
        lines = [f"verify-state: {self.path} [{self.kind}]"]
        lines.extend(f"  {summary}" for summary in self.generation_summaries)
        for problem in self.problems:
            lines.append(f"  problem: {problem}")
        if self.ok:
            lines.append("  state OK")
        elif self.rebuilt:
            lines.append(
                f"  state was UNRECOVERABLE — rebuilt from wardrive as "
                f"generation {self.restored_generation}"
            )
        elif self.recoverable:
            lines.append(
                f"  state CORRUPT — recoverable via rollback to "
                f"generation {self.restored_generation}"
            )
        else:
            lines.append("  state UNRECOVERABLE")
        return "\n".join(lines)


def _rebuild_from_wardrive(path: Path, venue: str, seed: int) -> int:
    """Re-wardrive ``venue`` and commit the result as a fresh generation."""
    # Imported lazily: persistence imports repro.store at module level.
    from repro.core.config import VisualPrintConfig
    from repro.core.persistence import ServerStateStore
    from repro.core.server import VisualPrintServer
    from repro.wardrive import IndoorEnvironment, WardriveSession

    environment = IndoorEnvironment.build(venue, seed=seed)
    mapping = WardriveSession(environment, seed=seed).run()
    config = VisualPrintConfig(
        descriptor_capacity=max(mapping.descriptors.shape[0], 1024)
    )
    server = VisualPrintServer(config)
    server.ingest(mapping.descriptors, mapping.positions)
    return ServerStateStore(path).save(server)


def _audit_store(path: Path, report: FsckReport) -> None:
    from repro.bloom.container import SnapshotCorruptError
    from repro.core.persistence import ServerStateStore
    from repro.store.snapshot import SnapshotStore

    store = SnapshotStore(path)
    generations = store.generations()
    if not generations:
        report.problems.append("no committed generations")
        return
    clean = True
    for verdict in store.verify():
        status = "ok" if verdict.ok else "CORRUPT"
        report.generation_summaries.append(
            f"generation {verdict.generation}: {status}"
        )
        if not verdict.ok:
            clean = False
            report.problems.extend(
                f"generation {verdict.generation}: {problem}"
                for problem in verdict.problems
            )
    try:
        # Full restore, not just CRCs: structural validation (geometry,
        # alignment, saturation bounds) runs inside restore_state /
        # restore_counts and can fail on damage the checksums cover but
        # a hand-edited manifest would not.
        _, loaded = ServerStateStore(path).load()
    except SnapshotCorruptError as error:
        report.problems.append(str(error))
        return
    report.restored_generation = loaded.generation
    report.recoverable = True
    report.ok = clean and loaded.rolled_back == 0


def _audit_npz(path: Path, report: FsckReport) -> None:
    from repro.bloom.container import SnapshotCorruptError
    from repro.core.persistence import load_server

    try:
        load_server(path)
    except SnapshotCorruptError as error:
        report.problems.append(str(error))
        return
    except (OSError, ValueError, KeyError) as error:
        report.problems.append(f"unreadable state file: {error}")
        return
    report.ok = True
    report.recoverable = True


def verify_state(
    path: str | Path,
    rebuild_venue: str | None = None,
    seed: int = 0,
) -> FsckReport:
    """Audit saved server state; optionally rebuild when unrecoverable."""
    path = Path(path)
    if path.is_dir():
        report = FsckReport(path=str(path), kind="store")
        _audit_store(path, report)
    elif path.is_file():
        report = FsckReport(path=str(path), kind="npz")
        _audit_npz(path, report)
    else:
        report = FsckReport(path=str(path), kind="missing")
        report.problems.append("path does not exist")
    if (
        not report.recoverable
        and report.kind in ("store", "missing")
        and rebuild_venue is not None
    ):
        generation = _rebuild_from_wardrive(path, rebuild_venue, seed)
        report.rebuilt = True
        report.recoverable = True
        report.restored_generation = generation
        report.generation_summaries.append(
            f"generation {generation}: rebuilt from wardrive venue "
            f"{rebuild_venue!r}"
        )
    return report
