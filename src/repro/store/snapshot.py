"""Crash-safe, integrity-verified, generational snapshot store.

Durable state in this system (the server's keypoint table, the oracle's
filters) is only useful if it is *trustworthy*: a bit-flipped counter
silently inverts uniqueness decisions, which is worse than losing the
file outright.  :class:`SnapshotStore` therefore never trusts the disk:

* **Atomic commits** — each generation is staged in a ``.tmp-*``
  directory (every section file fsynced), its manifest written last,
  and the whole directory renamed into place.  Readers only ever see a
  fully-written generation or none at all; a crash mid-save leaves a
  stale temp directory that the next save sweeps up.
* **Per-section checksums** — the manifest records every section's byte
  length and CRC (CRC32C where the accelerator package exists, zlib
  CRC32 otherwise — the manifest names the algorithm), plus a CRC over
  the manifest itself.
* **Generational retention with last-good rollback** — ``save`` keeps
  the newest ``keep_generations`` generations; ``load`` walks newest to
  oldest and returns the first generation that verifies, counting each
  skipped one in ``store_rollbacks_total``.  Only when *no* generation
  verifies does it raise :class:`SnapshotCorruptError` — the caller's
  cue to rebuild from wardrive.

A :class:`repro.store.StorageFaultInjector` can be threaded into the
write path, corrupting the bytes that "hit the disk" while the manifest
keeps the true digests — which is exactly what makes every detection
path deterministically testable.
"""

from __future__ import annotations

import json
import os
import re
import shutil
import time
from dataclasses import dataclass, field
from pathlib import Path

from repro.bloom.container import SnapshotCorruptError
from repro.obs import MetricsRegistry, Tracer, resolve_registry
from repro.store.faults import StorageFaultInjector
from repro.store.integrity import CHECKSUM_ALGO, checksum_bytes, checksum_named

__all__ = [
    "LoadedSnapshot",
    "SectionReport",
    "SnapshotStore",
    "VerifyReport",
]

MANIFEST_NAME = "MANIFEST.json"
_FORMAT_VERSION = 1
_GEN_PATTERN = re.compile(r"^gen-(\d{6})$")
_TMP_PREFIX = ".tmp-"
_SECTION_PATTERN = re.compile(r"^[A-Za-z0-9][A-Za-z0-9._-]*$")


def _fsync_path(path: Path) -> None:
    """fsync a file or directory, ignoring filesystems that refuse."""
    try:
        fd = os.open(path, os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(fd)
    except OSError:
        pass
    finally:
        os.close(fd)


@dataclass(frozen=True)
class SectionReport:
    """Integrity verdict for one section of one generation."""

    name: str
    ok: bool
    expected_bytes: int
    actual_bytes: int
    expected_crc: int
    actual_crc: int | None
    error: str = ""


@dataclass(frozen=True)
class VerifyReport:
    """Integrity verdict for one generation."""

    generation: int
    ok: bool
    sections: tuple[SectionReport, ...] = ()
    error: str = ""  # manifest-level failure, when sections never ran

    @property
    def problems(self) -> list[str]:
        out = [self.error] if self.error else []
        out.extend(
            f"section {s.name!r}: {s.error}" for s in self.sections if not s.ok
        )
        return out


@dataclass(frozen=True)
class LoadedSnapshot:
    """A verified generation's contents."""

    generation: int
    sections: dict[str, bytes]
    metadata: dict
    rolled_back: int  # newer generations skipped because they failed verification
    skipped: tuple[VerifyReport, ...] = field(default=())


class SnapshotStore:
    """Directory of checksummed, atomically-committed state generations."""

    def __init__(
        self,
        root: str | Path,
        keep_generations: int = 3,
        fault_injector: StorageFaultInjector | None = None,
        registry: MetricsRegistry | None = None,
    ) -> None:
        if keep_generations < 1:
            raise ValueError(
                f"keep_generations must be >= 1, got {keep_generations}"
            )
        self.root = Path(root)
        self.keep_generations = int(keep_generations)
        self.fault_injector = fault_injector
        self._registry = resolve_registry(registry)
        self.tracer = Tracer(self._registry)
        self._m_saves = self._registry.counter(
            "store_saves_total", help="snapshot generations committed"
        )
        self._m_rollbacks = self._registry.counter(
            "store_rollbacks_total",
            help="generations skipped by load() because they failed verification",
        )
        self._m_corrupt = self._registry.counter(
            "store_snapshots_corrupt_total",
            help="generation verifications that found corruption",
        )
        self._m_generations = self._registry.gauge(
            "store_generations", help="verifiable generations currently retained"
        )
        self._m_loads = {
            outcome: self._registry.counter(
                "store_loads_total",
                help="snapshot loads by outcome",
                outcome=outcome,
            )
            for outcome in ("ok", "rolled_back", "unrecoverable")
        }

    @property
    def metrics(self) -> MetricsRegistry:
        return self._registry

    # ------------------------------------------------------------------
    # Layout
    # ------------------------------------------------------------------

    def _generation_dir(self, generation: int) -> Path:
        return self.root / f"gen-{generation:06d}"

    def generations(self) -> list[int]:
        """Committed generation numbers, oldest first."""
        if not self.root.is_dir():
            return []
        found = []
        for entry in self.root.iterdir():
            match = _GEN_PATTERN.match(entry.name)
            if match and entry.is_dir():
                found.append(int(match.group(1)))
        return sorted(found)

    def latest_generation(self) -> int | None:
        generations = self.generations()
        return generations[-1] if generations else None

    # ------------------------------------------------------------------
    # Save
    # ------------------------------------------------------------------

    def _write_file(self, path: Path, data: bytes, label: str) -> None:
        if self.fault_injector is not None:
            data, _ = self.fault_injector.mangle(data, label)
        with open(path, "wb") as handle:
            handle.write(data)
            handle.flush()
            os.fsync(handle.fileno())

    def save(
        self, sections: dict[str, bytes], metadata: dict | None = None
    ) -> int:
        """Commit one generation; returns its number.

        The manifest digests are computed from the *true* bytes before
        the fault injector sees them, so anything the injector corrupts
        is detectable afterwards — the manifest is the contract, the
        files are the suspects.
        """
        if not sections:
            raise ValueError("a snapshot needs at least one section")
        for name in sections:
            if not _SECTION_PATTERN.match(name) or name == MANIFEST_NAME:
                raise ValueError(f"invalid section name {name!r}")
        with self.tracer.span("store.save", sections=len(sections)):
            self.root.mkdir(parents=True, exist_ok=True)
            self._sweep_temp_dirs()
            generation = (self.latest_generation() or 0) + 1
            tmp_dir = self.root / f"{_TMP_PREFIX}{generation:06d}"
            if tmp_dir.exists():
                shutil.rmtree(tmp_dir)
            tmp_dir.mkdir()
            manifest: dict = {
                "format_version": _FORMAT_VERSION,
                "generation": generation,
                "algo": CHECKSUM_ALGO,
                "created_unix": time.time(),
                "metadata": metadata or {},
                "sections": {
                    name: {"bytes": len(data), "crc": checksum_bytes(data)}
                    for name, data in sections.items()
                },
            }
            for name, data in sections.items():
                self._write_file(tmp_dir / name, data, label=f"section/{name}")
            body = json.dumps(manifest, sort_keys=True)
            manifest["manifest_crc"] = checksum_bytes(body.encode("utf-8"))
            self._write_file(
                tmp_dir / MANIFEST_NAME,
                json.dumps(manifest, sort_keys=True, indent=2).encode("utf-8"),
                label="manifest",
            )
            _fsync_path(tmp_dir)
            if self.fault_injector is not None and self.fault_injector.drop_rename(
                f"gen-{generation:06d}"
            ):
                # Crash between fsync and rename: the staged directory
                # stays behind (ignored by readers, swept by the next
                # save) and the previous generation remains current.
                return generation
            os.rename(tmp_dir, self._generation_dir(generation))
            _fsync_path(self.root)
            self._m_saves.inc()
            self._prune()
            self._m_generations.set(len(self.generations()))
        return generation

    def _sweep_temp_dirs(self) -> None:
        for entry in self.root.iterdir():
            if entry.name.startswith(_TMP_PREFIX) and entry.is_dir():
                shutil.rmtree(entry, ignore_errors=True)

    def _prune(self) -> None:
        for generation in self.generations()[: -self.keep_generations]:
            shutil.rmtree(self._generation_dir(generation), ignore_errors=True)

    # ------------------------------------------------------------------
    # Verify / load
    # ------------------------------------------------------------------

    def _read_manifest(self, generation: int) -> dict:
        path = self._generation_dir(generation) / MANIFEST_NAME
        try:
            raw = path.read_bytes()
        except OSError as error:
            raise SnapshotCorruptError(f"manifest unreadable: {error}")
        try:
            manifest = json.loads(raw.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as error:
            raise SnapshotCorruptError(f"manifest unparseable: {error}")
        if not isinstance(manifest, dict):
            raise SnapshotCorruptError("manifest is not a JSON object")
        if manifest.get("format_version") != _FORMAT_VERSION:
            raise SnapshotCorruptError(
                f"unsupported manifest format {manifest.get('format_version')!r}"
            )
        algo = manifest.get("algo")
        declared = manifest.get("manifest_crc")
        if not isinstance(declared, int):
            raise SnapshotCorruptError("manifest_crc missing")
        body = {k: v for k, v in manifest.items() if k != "manifest_crc"}
        try:
            actual = checksum_named(
                algo, json.dumps(body, sort_keys=True).encode("utf-8")
            )
        except (TypeError, ValueError) as error:
            raise SnapshotCorruptError(f"manifest checksum unverifiable: {error}")
        if actual != declared:
            raise SnapshotCorruptError(
                f"manifest self-checksum mismatch "
                f"(declared {declared}, computed {actual})"
            )
        sections = manifest.get("sections")
        if not isinstance(sections, dict) or not sections:
            raise SnapshotCorruptError("manifest lists no sections")
        return manifest

    def _verify_sections(
        self, generation: int, manifest: dict, keep_bytes: bool
    ) -> tuple[list[SectionReport], dict[str, bytes]]:
        gen_dir = self._generation_dir(generation)
        algo = manifest["algo"]
        reports: list[SectionReport] = []
        contents: dict[str, bytes] = {}
        for name, expect in sorted(manifest["sections"].items()):
            expected_bytes = int(expect.get("bytes", -1))
            expected_crc = int(expect.get("crc", -1))
            try:
                data = (gen_dir / name).read_bytes()
            except OSError as error:
                reports.append(
                    SectionReport(
                        name=name,
                        ok=False,
                        expected_bytes=expected_bytes,
                        actual_bytes=0,
                        expected_crc=expected_crc,
                        actual_crc=None,
                        error=f"unreadable: {error}",
                    )
                )
                continue
            actual_crc = checksum_named(algo, data)
            if len(data) != expected_bytes:
                error = (
                    f"length mismatch (manifest {expected_bytes}, "
                    f"file {len(data)})"
                )
            elif actual_crc != expected_crc:
                error = (
                    f"checksum mismatch (manifest {expected_crc}, "
                    f"file {actual_crc})"
                )
            else:
                error = ""
                if keep_bytes:
                    contents[name] = data
            reports.append(
                SectionReport(
                    name=name,
                    ok=not error,
                    expected_bytes=expected_bytes,
                    actual_bytes=len(data),
                    expected_crc=expected_crc,
                    actual_crc=actual_crc,
                    error=error,
                )
            )
        return reports, contents

    def verify_generation(self, generation: int) -> VerifyReport:
        """Audit one generation without loading it."""
        report, _ = self._verify_and_read(generation, keep_bytes=False)
        return report

    def _verify_and_read(
        self, generation: int, keep_bytes: bool
    ) -> tuple[VerifyReport, tuple[dict, dict[str, bytes]] | None]:
        try:
            manifest = self._read_manifest(generation)
        except SnapshotCorruptError as error:
            self._m_corrupt.inc()
            return VerifyReport(generation=generation, ok=False, error=str(error)), None
        sections, contents = self._verify_sections(generation, manifest, keep_bytes)
        ok = all(section.ok for section in sections)
        if not ok:
            self._m_corrupt.inc()
            return (
                VerifyReport(generation=generation, ok=False, sections=tuple(sections)),
                None,
            )
        return (
            VerifyReport(generation=generation, ok=True, sections=tuple(sections)),
            (manifest, contents),
        )

    def verify(self) -> list[VerifyReport]:
        """Audit every retained generation, oldest first."""
        with self.tracer.span("store.verify"):
            return [self.verify_generation(g) for g in self.generations()]

    def load(self) -> LoadedSnapshot:
        """Return the newest generation that verifies, rolling back past
        any that do not.

        Raises :class:`SnapshotCorruptError` when no generation (or none
        at all) survives verification — unrecoverable; rebuild upstream.
        """
        with self.tracer.span("store.load") as span:
            generations = self.generations()
            skipped: list[VerifyReport] = []
            for generation in reversed(generations):
                report, verified = self._verify_and_read(generation, keep_bytes=True)
                if verified is None:
                    skipped.append(report)
                    self._m_rollbacks.inc()
                    continue
                manifest, contents = verified
                outcome = "rolled_back" if skipped else "ok"
                self._m_loads[outcome].inc()
                span.set("generation", generation)
                span.set("rolled_back", len(skipped))
                return LoadedSnapshot(
                    generation=generation,
                    sections=contents,
                    metadata=manifest.get("metadata", {}),
                    rolled_back=len(skipped),
                    skipped=tuple(skipped),
                )
            self._m_loads["unrecoverable"].inc()
            if not generations:
                raise SnapshotCorruptError(
                    f"no snapshot generations under {self.root}"
                )
            problems = "; ".join(
                f"gen {r.generation}: {'; '.join(r.problems) or 'corrupt'}"
                for r in skipped
            )
            raise SnapshotCorruptError(
                f"every generation under {self.root} failed verification "
                f"({problems})"
            )
