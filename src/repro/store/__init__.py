"""``repro.store`` — crash-safe, integrity-verified snapshot storage.

PR 4 hardened the network leg of the offload pipeline; this package
hardens the durable-state leg.  Both the server's persisted state and
the client's downloaded oracle ride through the same machinery:

* :class:`SnapshotStore` — atomic generational commits (temp dir +
  fsync + rename, manifest written last) with per-section CRCs and
  automatic rollback to the newest generation that verifies;
* :class:`StorageFaultInjector` / :class:`StorageFaultSpec` — seeded
  bit flips, truncations, torn writes, and stale renames, mirroring
  :class:`repro.network.faults.FaultyChannel` so every corruption path
  is deterministically testable;
* :func:`validate_refresh_payload` — client-side swap-in validation of
  downloaded oracle snapshots and deltas (wired into
  :class:`repro.core.OracleRefresher`);
* :func:`verify_state` — the ``repro verify-state`` fsck, with
  rebuild-from-wardrive for unrecoverable state.

Failure accounting: ``snapshot_faults_injected_total`` (what the chaos
rig did), ``store_snapshots_corrupt_total`` / ``store_rollbacks_total``
(what verification caught), ``oracle_snapshots_rejected_total`` (what
the client refused to swap in).  The invariant the chaos suite holds is
that corrupted bytes are *never* swapped in: every injected fault ends
in detect→rollback, detect→stale-serve, or detect→rebuild.
"""

from repro.bloom.container import SnapshotCorruptError
from repro.store.faults import FAULT_KINDS, StorageFaultInjector, StorageFaultSpec
from repro.store.fsck import FsckReport, verify_state
from repro.store.integrity import (
    CHECKSUM_ALGO,
    available_algorithms,
    checksum_bytes,
    checksum_named,
)
from repro.store.snapshot import (
    LoadedSnapshot,
    SectionReport,
    SnapshotStore,
    VerifyReport,
)
from repro.store.validate import (
    ValidatedRefresh,
    validate_counting_snapshot,
    validate_delta,
    validate_refresh_payload,
)

__all__ = [
    "CHECKSUM_ALGO",
    "FAULT_KINDS",
    "FsckReport",
    "LoadedSnapshot",
    "SectionReport",
    "SnapshotCorruptError",
    "SnapshotStore",
    "StorageFaultInjector",
    "StorageFaultSpec",
    "ValidatedRefresh",
    "VerifyReport",
    "available_algorithms",
    "checksum_bytes",
    "checksum_named",
    "validate_counting_snapshot",
    "validate_delta",
    "validate_refresh_payload",
    "verify_state",
]
