"""Seeded fault injection for the durable-state leg.

:class:`repro.network.faults.FaultyChannel` made the flaky *pipe*
deterministically testable; this module does the same for the flaky
*disk*.  A :class:`StorageFaultInjector` sits between a writer and the
bytes that actually land on storage (or arrive from a download) and,
driven by a private :func:`repro.util.rng.rng_for` stream, injects the
classic durability failures:

* **bit flips** — up to ``max_bit_flips`` random bits inverted anywhere
  in the payload (silent media corruption);
* **truncation** — a random-length tail lost (crash mid-append, lost
  cache writeback);
* **torn writes** — only an aligned prefix persisted (power cut between
  pages; modeled as a cut at a 4096-byte boundary);
* **stale renames** — the commit rename never lands, leaving the
  previous generation in place (crash between ``fsync`` and ``rename``).

A null spec injects nothing and consumes no randomness, so a zero-fault
wrap is byte-identical to no wrap at all — the same zero-fault-parity
contract the network layer keeps.  Every injected fault increments
``snapshot_faults_injected_total{kind=...}`` in the ambient metrics
registry, which is how the chaos tests assert "every fault was either
detected or harmless".
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.obs import current_registry
from repro.util.rng import rng_for
from repro.util.validation import check_in_range, check_positive

__all__ = ["FAULT_KINDS", "StorageFaultInjector", "StorageFaultSpec"]

#: Every fault class the injector can draw, in draw order.
FAULT_KINDS = ("bit_flip", "truncate", "torn_write", "stale_rename")

_PAGE_BYTES = 4096


@dataclass(frozen=True)
class StorageFaultSpec:
    """Fault mix for one :class:`StorageFaultInjector`.

    Each probability is per *file operation* (one section write, one
    manifest write, one commit rename, or one downloaded payload).  At
    most one fault fires per operation; draws are gated on the
    corresponding probability being non-zero so enabling one fault class
    never shifts another's stream.
    """

    bit_flip: float = 0.0
    truncate: float = 0.0
    torn_write: float = 0.0
    stale_rename: float = 0.0
    max_bit_flips: int = 8
    seed: int = 0

    def __post_init__(self) -> None:
        for field in ("bit_flip", "truncate", "torn_write", "stale_rename"):
            check_in_range(field, getattr(self, field), 0.0, 1.0)
        check_positive("max_bit_flips", self.max_bit_flips)

    @property
    def is_null(self) -> bool:
        """True when the spec can never perturb a write."""
        return (
            self.bit_flip == 0.0
            and self.truncate == 0.0
            and self.torn_write == 0.0
            and self.stale_rename == 0.0
        )


class StorageFaultInjector:
    """Deterministically corrupts bytes on their way to durable storage.

    >>> injector = StorageFaultInjector(bit_flip=1.0, seed=7)
    >>> mangled, kind = injector.mangle(b"x" * 64, "demo")
    >>> kind
    'bit_flip'
    >>> mangled != b"x" * 64
    True
    """

    def __init__(
        self, spec: StorageFaultSpec | None = None, **spec_fields
    ) -> None:
        if spec is not None and spec_fields:
            raise ValueError("pass either a StorageFaultSpec or field overrides, not both")
        self.spec = spec if spec is not None else StorageFaultSpec(**spec_fields)
        self._rng = rng_for(self.spec.seed, "store/faults")
        self.faults_injected = 0

    def _count(self, kind: str) -> None:
        self.faults_injected += 1
        registry = current_registry()
        if registry is not None:
            registry.counter(
                "snapshot_faults_injected_total",
                help="snapshot bytes corrupted by the storage fault injector",
                kind=kind,
            ).inc()

    def _draw(self) -> str | None:
        """At most one fault kind per operation; gated like FaultyChannel."""
        spec = self.spec
        rng = self._rng
        for kind in ("bit_flip", "truncate", "torn_write"):
            probability = getattr(spec, kind)
            if probability and float(rng.random()) < probability:
                return kind
        return None

    def _corrupt(self, data: bytes, kind: str) -> bytes:
        rng = self._rng
        if kind == "bit_flip":
            if not data:
                return data
            mutable = np.frombuffer(data, dtype=np.uint8).copy()
            flips = int(rng.integers(1, self.spec.max_bit_flips + 1))
            positions = rng.integers(0, mutable.size, size=flips)
            bits = rng.integers(0, 8, size=flips)
            # np.add-style accumulation is irrelevant: XOR twice on the
            # same (position, bit) pair un-flips, which is still a fault
            # the manifest CRC may or may not see — keep the raw draw.
            for position, bit in zip(positions, bits):
                mutable[position] ^= np.uint8(1 << int(bit))
            return mutable.tobytes()
        if kind == "truncate":
            if not data:
                return data
            keep = int(rng.integers(0, len(data)))
            return data[:keep]
        if kind == "torn_write":
            # Power loss between page writebacks: an aligned prefix
            # survives, everything after the torn page is gone.
            if len(data) <= _PAGE_BYTES:
                return b""
            pages = len(data) // _PAGE_BYTES
            keep_pages = int(rng.integers(0, pages))
            return data[: keep_pages * _PAGE_BYTES]
        raise ValueError(f"unknown fault kind {kind!r}")

    # -- hooks the snapshot store calls --------------------------------

    def mangle(self, data: bytes, label: str = "") -> tuple[bytes, str | None]:
        """Possibly corrupt one file write; returns ``(bytes, kind)``.

        With a null spec the input is returned untouched and the private
        rng is never consumed.
        """
        if self.spec.is_null:
            return data, None
        kind = self._draw()
        if kind is None:
            return data, None
        self._count(kind)
        return self._corrupt(data, kind), kind

    def drop_rename(self, label: str = "") -> bool:
        """True when the commit rename should be swallowed (crash model)."""
        spec = self.spec
        if spec.stale_rename and float(self._rng.random()) < spec.stale_rename:
            self._count("stale_rename")
            return True
        return False

    # -- forced corruption for fsck smokes and the CLI ------------------

    def corrupt_file(self, path: str | Path, kind: str = "bit_flip") -> str:
        """Force one fault of ``kind`` onto an existing file, in place.

        Used by the CI corruption smoke ("save a server, flip bytes,
        assert ``repro verify-state`` exits nonzero") and by tests that
        need a *guaranteed* fault rather than a probabilistic one.
        """
        if kind not in ("bit_flip", "truncate", "torn_write"):
            raise ValueError(
                f"corrupt_file supports bit_flip/truncate/torn_write, got {kind!r}"
            )
        path = Path(path)
        data = path.read_bytes()
        corrupted = self._corrupt(data, kind)
        if corrupted == data and kind == "bit_flip" and data:
            # A zero-byte flip count cannot happen (flips >= 1), but the
            # same bit drawn twice can cancel out; force one real flip.
            mutable = bytearray(data)
            mutable[0] ^= 0x01
            corrupted = bytes(mutable)
        self._count(kind)
        path.write_bytes(corrupted)
        return kind
