"""Checksums for durable snapshot sections.

Every section a :class:`repro.store.SnapshotStore` writes is covered by
a 32-bit CRC recorded in the generation's manifest.  CRC32C (Castagnoli)
is preferred when the optional ``crc32c`` accelerator package is
importable; otherwise the stdlib's zlib CRC32 is used.  The manifest
records *which* algorithm produced its digests, so a snapshot written on
a host with the accelerator verifies correctly on one without it (and
vice versa) — as long as the named algorithm is computable locally.
"""

from __future__ import annotations

import zlib
from typing import Callable

__all__ = [
    "CHECKSUM_ALGO",
    "available_algorithms",
    "checksum_bytes",
    "checksum_named",
]

_ALGORITHMS: dict[str, Callable[[bytes], int]] = {
    "crc32": lambda data: zlib.crc32(data) & 0xFFFFFFFF,
}

try:  # pragma: no cover - exercised only where the wheel is installed
    import crc32c as _crc32c

    _ALGORITHMS["crc32c"] = lambda data: _crc32c.crc32c(data) & 0xFFFFFFFF
    CHECKSUM_ALGO = "crc32c"
except ImportError:
    #: The algorithm new manifests are written with on this host.
    CHECKSUM_ALGO = "crc32"


def available_algorithms() -> tuple[str, ...]:
    """Names accepted by :func:`checksum_named` on this host."""
    return tuple(sorted(_ALGORITHMS))


def checksum_bytes(data: bytes) -> int:
    """Digest ``data`` with this host's preferred algorithm."""
    return _ALGORITHMS[CHECKSUM_ALGO](data)


def checksum_named(algo: str, data: bytes) -> int:
    """Digest ``data`` with the manifest-named algorithm.

    Raises :class:`ValueError` for an algorithm this host cannot compute
    — the caller treats that as an unverifiable (hence untrusted)
    snapshot, not as a pass.
    """
    try:
        function = _ALGORITHMS[algo]
    except KeyError:
        raise ValueError(
            f"checksum algorithm {algo!r} unavailable "
            f"(have: {', '.join(available_algorithms())})"
        )
    return function(data)
