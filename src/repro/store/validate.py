"""Swap-in validation for downloaded oracle payloads.

PR 4 made a *failed* download harmless (the client keeps serving its
stale filter).  A *corrupt* download is nastier: gzip usually catches a
flipped bit, but a payload corrupted before compression — or one whose
header and body disagree — would silently replace the client's counters
with garbage and invert uniqueness decisions from then on.

These validators parse a refresh payload fully, check it against the
client's active filter (geometry, hash configuration, header/body
length consistency, counter-saturation bounds), and only then hand the
decoded content back for the actual swap.  Nothing here mutates the
base filter: validation either returns everything needed to apply the
refresh, or raises :class:`repro.bloom.SnapshotCorruptError` and the
stale filter keeps serving.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.bloom.container import SnapshotCorruptError, deserialize_counting
from repro.bloom.counting import CountingBloomFilter

__all__ = ["ValidatedRefresh", "validate_refresh_payload"]


@dataclass(frozen=True)
class ValidatedRefresh:
    """A refresh payload that passed every swap-in check.

    For ``kind="snapshot"`` the decoded replacement counters are in
    ``counters``; for ``kind="delta"`` the sparse update is in
    ``(indices, values)``.
    """

    kind: str
    counters: np.ndarray | None = None
    indices: np.ndarray | None = None
    values: np.ndarray | None = None


def _check_geometry(fresh: CountingBloomFilter, base: CountingBloomFilter) -> None:
    if fresh.num_counters != base.num_counters:
        raise SnapshotCorruptError(
            f"snapshot carries {fresh.num_counters} counters, the active "
            f"filter has {base.num_counters}"
        )
    if fresh.num_hashes != base.num_hashes:
        raise SnapshotCorruptError(
            f"snapshot hashed {fresh.num_hashes} ways, the active filter "
            f"uses {base.num_hashes}"
        )
    if fresh.bits_per_counter != base.bits_per_counter:
        raise SnapshotCorruptError(
            f"snapshot uses {fresh.bits_per_counter}-bit counters, the "
            f"active filter {base.bits_per_counter}-bit"
        )


def validate_counting_snapshot(
    payload: bytes, base: CountingBloomFilter
) -> ValidatedRefresh:
    """Fully validate a counting-filter snapshot against ``base``."""
    fresh = deserialize_counting(payload)
    _check_geometry(fresh, base)
    # Bit-packing makes >saturation values unrepresentable when the
    # widths match, but a defensive bound keeps the invariant explicit
    # (and catches any future change to the decode path).
    if fresh.counters.size and int(fresh.counters.max()) > base.saturation:
        raise SnapshotCorruptError(
            f"snapshot counter {int(fresh.counters.max())} exceeds the "
            f"saturation ceiling {base.saturation}"
        )
    return ValidatedRefresh(kind="snapshot", counters=fresh.counters)


def validate_delta(payload: bytes, base: CountingBloomFilter) -> ValidatedRefresh:
    """Fully validate a VPDT counter delta against ``base``.

    Stricter than :func:`repro.core.updates.apply_delta`: values beyond
    the saturation ceiling are *rejected* rather than clamped — the
    server can never produce them, so on this path they are evidence of
    corruption, not something to paper over.
    """
    # Imported lazily: repro.core.updates imports this module at top
    # level (the refresher wiring), so the dependency must not be
    # circular at import time.
    from repro.core.updates import parse_delta

    indices, values = parse_delta(base, payload)
    if values.size and int(values.max()) > base.saturation:
        raise SnapshotCorruptError(
            f"delta value {int(values.max())} exceeds the saturation "
            f"ceiling {base.saturation}"
        )
    return ValidatedRefresh(kind="delta", indices=indices, values=values)


def validate_refresh_payload(
    kind: str, payload: bytes, base: CountingBloomFilter
) -> ValidatedRefresh:
    """Dispatch on the refresh kind (``"delta"`` | ``"snapshot"``)."""
    if kind == "delta":
        return validate_delta(payload, base)
    if kind == "snapshot":
        return validate_counting_snapshot(payload, base)
    raise ValueError(f"unknown refresh kind {kind!r}")
