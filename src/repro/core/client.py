"""The VisualPrint client library.

Per frame: extract SIFT keypoints, query the downloaded uniqueness
oracle for every descriptor (constant time each), rank, keep the top-k,
serialize.  The client reports everything the paper's client-overhead
figures (Figs. 14 and 16) need into a :class:`repro.obs.MetricsRegistry`:
per-stage latency histograms (``client_sift_seconds``,
``client_oracle_seconds``, ``client_serialize_seconds``),
frame/keypoint/byte counters, and a blur-rejection counter — plus
nested per-frame :class:`repro.obs.Span` traces via ``client.tracer``.

The metrics surface is ``client.metrics`` (the registry) and
``client.latency_quantiles(stage)``; the pre-``repro.obs`` views
(``client.stats`` / ``client.median_latency``) completed their
deprecation cycle and are gone.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from repro.core.config import ClientConfig, VisualPrintConfig
from repro.core.fingerprint import Fingerprint, degradation_keep_counts
from repro.core.oracle import UniquenessOracle
from repro.features.keypoint import DESCRIPTOR_DIM, KeypointSet
from repro.features.serialize import serialize_keypoints_into, serialized_size
from repro.features.sift import SiftExtractor, SiftParams
from repro.network.faults import RetryPolicy, TransferOutcome, submit_payload
from repro.network.linkstate import AdaptiveConfig, AdaptiveOffloadPolicy
from repro.obs import (
    DEFAULT_BYTE_BUCKETS,
    MetricsRegistry,
    Tracer,
    resolve_registry,
    use_trace_context,
)

__all__ = ["OffloadReport", "VisualPrintClient"]

#: Stages with a per-frame latency histogram (``client_<stage>_seconds``).
_STAGES = ("sift", "oracle", "serialize")


@dataclass(frozen=True)
class OffloadReport:
    """One frame's shutter-to-uplink outcome (see :meth:`offload_frame`).

    ``status`` is ``"rejected"`` (blur gate, nothing uploaded),
    ``"delivered"`` (full fingerprint), ``"degraded"`` (a shrunken
    fingerprint made it through), or ``"abandoned"`` (retry budget
    exhausted).
    """

    status: str
    fingerprint: Fingerprint | None
    outcome: TransferOutcome | None


class VisualPrintClient:
    """Extract → rank by uniqueness → upload only the top-k."""

    def __init__(
        self,
        oracle: UniquenessOracle,
        config: VisualPrintConfig | None = None,
        sift_params: SiftParams | None = None,
        blur_detector: "BlurDetector | None" = None,
        registry: MetricsRegistry | None = None,
        retry_policy: RetryPolicy | None = None,
        degrade_floor: int = 16,
        degrade_steps: int = 2,
        adaptive: "AdaptiveOffloadPolicy | AdaptiveConfig | None" = None,
    ) -> None:
        self.oracle = oracle
        self.config = config or oracle.config
        self._registry = resolve_registry(registry)
        self._extractor = SiftExtractor(
            sift_params or SiftParams(contrast_threshold=0.01),
            registry=self._registry,
        )
        # Optional frame gate: "performs a quick check on each frame to
        # detect blur ... discarding such frames" (paper, client app).
        self.blur_detector = blur_detector
        self.tracer = Tracer(self._registry)
        # Zero-copy serialization state: the wire payload is written into
        # this reusable bytearray (grown once to the high-water mark),
        # with a float32 scratch for the descriptor rint/clip pass.
        self._serialize_buffer = bytearray()
        self._serialize_scratch: np.ndarray | None = None
        self._last_upload_bytes = 0
        self.retry_policy = retry_policy
        self.degrade_floor = int(degrade_floor)
        self.degrade_steps = int(degrade_steps)
        # How many ladder rungs recent submissions had to step down;
        # starts the next submission pre-degraded (see DESIGN.md §9).
        self._backpressure_level = 0
        # Optional predictive layer: consulted ahead of every
        # submission to shape entry rung / retry budget / path before
        # the first byte goes out (see DESIGN.md §15).
        if adaptive is not None and not isinstance(adaptive, AdaptiveOffloadPolicy):
            adaptive = AdaptiveOffloadPolicy(adaptive)
        self.adaptive = adaptive
        self._m_stage_seconds = {
            stage: self._registry.histogram(
                f"client_{stage}_seconds",
                help=f"per-frame wall-clock of the client {stage} stage",
            )
            for stage in _STAGES
        }
        self._m_frames = self._registry.counter(
            "client_frames_total", help="frames fully processed"
        )
        self._m_frames_blur = self._registry.counter(
            "client_frames_rejected_blur_total", help="frames dropped by the blur gate"
        )
        self._m_keypoints_extracted = self._registry.counter(
            "client_keypoints_extracted_total", help="keypoints out of SIFT"
        )
        self._m_keypoints_uploaded = self._registry.counter(
            "client_keypoints_uploaded_total", help="keypoints kept in fingerprints"
        )
        self._m_upload_bytes_total = self._registry.counter(
            "client_upload_bytes_total", help="cumulative fingerprint bytes"
        )
        self._m_upload_bytes = self._registry.histogram(
            "client_upload_bytes",
            help="per-fingerprint upload size",
            buckets=DEFAULT_BYTE_BUCKETS,
        )
        self._m_frame_seconds = self._registry.sketch(
            "client_frame_seconds",
            help="whole-frame pipeline wall-clock (quantile sketch)",
        )

    @classmethod
    def from_config(
        cls,
        oracle: UniquenessOracle,
        config: ClientConfig | None = None,
        blur_detector: "BlurDetector | None" = None,
        registry: MetricsRegistry | None = None,
    ) -> "VisualPrintClient":
        """Build a client from a :class:`repro.core.config.ClientConfig`."""
        config = config or ClientConfig(pipeline=oracle.config)
        return cls(
            oracle,
            config=config.pipeline,
            sift_params=config.sift,
            blur_detector=blur_detector,
            registry=registry,
            retry_policy=config.retry,
            degrade_floor=config.degrade_floor,
            degrade_steps=config.degrade_steps,
            adaptive=config.adaptive,
        )

    # ------------------------------------------------------------------
    # Metrics API
    # ------------------------------------------------------------------

    @property
    def metrics(self) -> MetricsRegistry:
        """The registry all client instrumentation reports into."""
        return self._registry

    def latency_quantiles(
        self, stage: str, qs: tuple[float, ...] = (0.5, 0.9, 0.99)
    ) -> dict[float, float]:
        """Per-frame latency quantiles (seconds) for one pipeline stage.

        ``stage`` is one of ``"sift"``, ``"oracle"``, ``"serialize"``.
        Returns ``{q: seconds}``; all zeros before the first frame.
        """
        if stage not in _STAGES:
            raise ValueError(f"unknown stage {stage!r}; expected one of {_STAGES}")
        return self._m_stage_seconds[stage].quantiles(qs)

    # ------------------------------------------------------------------
    # Pipeline
    # ------------------------------------------------------------------

    def extract_keypoints(self, image: np.ndarray) -> KeypointSet:
        """SIFT extraction with latency accounting."""
        with self.tracer.span("sift") as span:
            with self._m_stage_seconds["sift"].time():
                keypoints = self._extractor.extract(image)
            span.set("keypoints", len(keypoints))
        return keypoints

    def fingerprint_keypoints(
        self, keypoints: KeypointSet, frame_index: int = 0
    ) -> Fingerprint:
        """Rank pre-extracted keypoints by uniqueness and keep the top-k."""
        config = self.config
        if len(keypoints) == 0:
            fingerprint = Fingerprint(
                keypoints=keypoints,
                uniqueness_counts=np.empty(0, dtype=np.int64),
                frame_index=frame_index,
            )
            self._account(keypoints, fingerprint)
            return fingerprint
        with self.tracer.span("oracle") as span:
            with self._m_stage_seconds["oracle"].time():
                counts = self.oracle.counts(keypoints.descriptors)
                order = self.oracle.rank_by_uniqueness(
                    keypoints.descriptors, counts=counts
                )
                kept = order[: config.fingerprint_size]
            span.set("candidates", len(keypoints))
            span.set("kept", int(kept.shape[0]))
        fingerprint = Fingerprint(
            keypoints=keypoints.select(kept),
            uniqueness_counts=counts[kept],
            frame_index=frame_index,
        )
        self._account(keypoints, fingerprint)
        return fingerprint

    def process_frame(
        self, image: np.ndarray, frame_index: int = 0
    ) -> Fingerprint | None:
        """Full per-frame pipeline: blur gate, extract, rank, fingerprint.

        Returns ``None`` when the frame is rejected as blurred (nothing
        is uploaded for it) — only possible when a
        :class:`repro.features.BlurDetector` was supplied.

        The "frame" root span is the query's trace root: its
        ``trace_id`` identifies this query everywhere downstream, and
        ``client.tracer.last_context()`` hands drivers the
        :class:`repro.obs.TraceContext` to attach the channel transfer
        and server localize legs to (see DESIGN.md §8).
        """
        started = time.perf_counter()
        try:
            with self.tracer.span("frame", frame_index=frame_index) as span:
                if self.blur_detector is not None and self.blur_detector.is_blurred(image):
                    self._m_frames_blur.inc()
                    span.set("rejected", "blur")
                    return None
                keypoints = self.extract_keypoints(image)
                return self.fingerprint_keypoints(keypoints, frame_index=frame_index)
        finally:
            self._m_frame_seconds.observe(time.perf_counter() - started)

    # ------------------------------------------------------------------
    # Recovery: retries, degradation, backpressure
    # ------------------------------------------------------------------

    @property
    def backpressure_level(self) -> int:
        """Current degradation-ladder starting rung (0 = full quality)."""
        return self._backpressure_level

    def degradation_ladder(self, fingerprint: Fingerprint) -> list[int]:
        """Payload sizes from full quality downward for one fingerprint.

        Rung 0 is the fingerprint as-is; each further rung halves the
        keypoint budget (keeping the most-unique prefix) down to
        ``degrade_floor``.  Sizes follow the fixed-width wire format, so
        no serialization happens here.
        """
        return [
            serialized_size(count)
            for count in degradation_keep_counts(
                len(fingerprint),
                floor=self.degrade_floor,
                max_steps=self.degrade_steps,
            )
        ]

    def submit_fingerprint(
        self,
        fingerprint: Fingerprint,
        channel,
        rng: np.random.Generator | None = None,
        retry_policy: RetryPolicy | None = None,
    ) -> TransferOutcome:
        """Push one fingerprint through ``channel`` with retries.

        Failed attempts step down the degradation ladder; persistent
        trouble raises :attr:`backpressure_level` so the *next*
        submission starts pre-shrunk, and a delivery at any rung probes
        one rung back up (additive-increase / additive-decrease).  On a
        fault-free channel this is exactly one ``transfer_seconds``
        call — zero-fault parity with driving the channel directly.

        With :attr:`adaptive` set, the policy is consulted *before* the
        first byte goes out: it may pre-degrade the entry rung, widen
        the retry budget, scale backoff, and (in multi-path mode) pick
        the uplink channel — the reactive backpressure level still
        applies, as a lower bound on the entry rung.
        """
        policy = retry_policy or self.retry_policy or RetryPolicy()
        ladder = self.degradation_ladder(fingerprint)
        start = min(self._backpressure_level, len(ladder) - 1)
        if self.adaptive is not None:
            decision = self.adaptive.decide(channel, ladder_rungs=len(ladder))
            channel = decision.channel
            start = min(max(start, decision.entry_rung), len(ladder) - 1)
            policy = decision.adapt_retry_policy(policy)
        outcome = submit_payload(
            channel,
            ladder,
            policy,
            rng,
            registry=self._registry,
            start_step=start,
        )
        if outcome.delivered:
            self._backpressure_level = max(0, outcome.ladder_step - 1)
        else:
            self._backpressure_level = min(
                self._backpressure_level + 1, len(ladder) - 1
            )
        return outcome

    def offload_frame(
        self,
        image: np.ndarray,
        channel,
        frame_index: int = 0,
        rng: np.random.Generator | None = None,
        retry_policy: RetryPolicy | None = None,
    ) -> OffloadReport:
        """Full shutter-to-uplink path: process the frame, then submit it.

        The submission joins the frame's trace (one ``trace_id`` from
        SIFT through the last channel attempt).  A blur-rejected frame
        never touches the channel.
        """
        fingerprint = self.process_frame(image, frame_index=frame_index)
        if fingerprint is None:
            return OffloadReport(status="rejected", fingerprint=None, outcome=None)
        with use_trace_context(self.tracer.last_context()):
            outcome = self.submit_fingerprint(
                fingerprint, channel, rng=rng, retry_policy=retry_policy
            )
        return OffloadReport(
            status=outcome.status, fingerprint=fingerprint, outcome=outcome
        )

    @property
    def last_payload(self) -> memoryview:
        """Wire bytes of the most recent fingerprint (a read-only view).

        Valid until the next frame overwrites the shared serialization
        buffer; callers needing to keep it must copy.
        """
        return memoryview(self._serialize_buffer)[: self._last_upload_bytes].toreadonly()

    def _account(self, keypoints: KeypointSet, fingerprint: Fingerprint) -> None:
        count = len(fingerprint)
        scratch = self._serialize_scratch
        if scratch is None or scratch.shape[0] < count:
            scratch = self._serialize_scratch = np.empty(
                (count, DESCRIPTOR_DIM), dtype=np.float32
            )
        with self.tracer.span("serialize") as span:
            with self._m_stage_seconds["serialize"].time():
                upload_bytes = serialize_keypoints_into(
                    fingerprint.keypoints,
                    self._serialize_buffer,
                    scratch=scratch[:count],
                )
            span.set("bytes", upload_bytes)
        self._last_upload_bytes = upload_bytes
        self._m_frames.inc()
        self._m_keypoints_extracted.inc(len(keypoints))
        self._m_keypoints_uploaded.inc(len(fingerprint))
        self._m_upload_bytes_total.inc(upload_bytes)
        self._m_upload_bytes.observe(upload_bytes)
