"""The VisualPrint client library.

Per frame: extract SIFT keypoints, query the downloaded uniqueness
oracle for every descriptor (constant time each), rank, keep the top-k,
serialize.  The client reports everything the paper's client-overhead
figures (Figs. 14 and 16) need into a :class:`repro.obs.MetricsRegistry`:
per-stage latency histograms (``client_sift_seconds``,
``client_oracle_seconds``, ``client_serialize_seconds``),
frame/keypoint/byte counters, and a blur-rejection counter — plus
nested per-frame :class:`repro.obs.Span` traces via ``client.tracer``.

The legacy ``client.stats`` (:class:`ClientStats`) and
``client.median_latency`` APIs survive as thin deprecated views over
the registry; new code should use ``client.metrics`` and
``client.latency_quantiles``.
"""

from __future__ import annotations

import warnings

import numpy as np

from repro.core.config import VisualPrintConfig
from repro.core.fingerprint import Fingerprint
from repro.core.oracle import UniquenessOracle
from repro.features.keypoint import KeypointSet
from repro.features.sift import SiftExtractor, SiftParams
from repro.obs import (
    DEFAULT_BYTE_BUCKETS,
    MetricsRegistry,
    Tracer,
    resolve_registry,
)

__all__ = ["ClientStats", "VisualPrintClient"]

#: Stages with a per-frame latency histogram (``client_<stage>_seconds``).
_STAGES = ("sift", "oracle", "serialize")


def _deprecated(message: str) -> None:
    warnings.warn(message, DeprecationWarning, stacklevel=3)


class ClientStats:
    """Deprecated read-only view over a client's metrics registry.

    Kept so pre-``repro.obs`` callers (``client.stats.bytes_uploaded``,
    ``client.stats.sift_seconds``) keep working; every attribute emits a
    :class:`DeprecationWarning` pointing at the replacement.  Latency
    lists are reservoir snapshots — exact until ~1k frames, a uniform
    subsample after.
    """

    def __init__(self, registry: MetricsRegistry | None = None) -> None:
        self._registry = registry if registry is not None else MetricsRegistry()

    def _counter_value(self, name: str, replacement: str) -> int:
        _deprecated(
            f"ClientStats.{replacement} is deprecated; read "
            f"client.metrics.counter({name!r}).value instead"
        )
        return int(self._registry.counter(name).value)

    @property
    def frames_processed(self) -> int:
        return self._counter_value("client_frames_total", "frames_processed")

    @property
    def frames_rejected_blur(self) -> int:
        return self._counter_value(
            "client_frames_rejected_blur_total", "frames_rejected_blur"
        )

    @property
    def keypoints_extracted(self) -> int:
        return self._counter_value(
            "client_keypoints_extracted_total", "keypoints_extracted"
        )

    @property
    def keypoints_uploaded(self) -> int:
        return self._counter_value(
            "client_keypoints_uploaded_total", "keypoints_uploaded"
        )

    @property
    def bytes_uploaded(self) -> int:
        return self._counter_value("client_upload_bytes_total", "bytes_uploaded")

    def _stage_samples(self, stage: str) -> list[float]:
        _deprecated(
            f"ClientStats.{stage}_seconds is deprecated; read "
            f"client.metrics.histogram('client_{stage}_seconds').values() "
            "or client.latency_quantiles(stage) instead"
        )
        return self._registry.histogram(f"client_{stage}_seconds").values()

    @property
    def sift_seconds(self) -> list[float]:
        return self._stage_samples("sift")

    @property
    def oracle_seconds(self) -> list[float]:
        return self._stage_samples("oracle")


class VisualPrintClient:
    """Extract → rank by uniqueness → upload only the top-k."""

    def __init__(
        self,
        oracle: UniquenessOracle,
        config: VisualPrintConfig | None = None,
        sift_params: SiftParams | None = None,
        blur_detector: "BlurDetector | None" = None,
        registry: MetricsRegistry | None = None,
    ) -> None:
        self.oracle = oracle
        self.config = config or oracle.config
        self._extractor = SiftExtractor(
            sift_params or SiftParams(contrast_threshold=0.01)
        )
        # Optional frame gate: "performs a quick check on each frame to
        # detect blur ... discarding such frames" (paper, client app).
        self.blur_detector = blur_detector
        self._registry = resolve_registry(registry)
        self.tracer = Tracer(self._registry)
        self._stats_view: ClientStats | None = None
        self._m_stage_seconds = {
            stage: self._registry.histogram(
                f"client_{stage}_seconds",
                help=f"per-frame wall-clock of the client {stage} stage",
            )
            for stage in _STAGES
        }
        self._m_frames = self._registry.counter(
            "client_frames_total", help="frames fully processed"
        )
        self._m_frames_blur = self._registry.counter(
            "client_frames_rejected_blur_total", help="frames dropped by the blur gate"
        )
        self._m_keypoints_extracted = self._registry.counter(
            "client_keypoints_extracted_total", help="keypoints out of SIFT"
        )
        self._m_keypoints_uploaded = self._registry.counter(
            "client_keypoints_uploaded_total", help="keypoints kept in fingerprints"
        )
        self._m_upload_bytes_total = self._registry.counter(
            "client_upload_bytes_total", help="cumulative fingerprint bytes"
        )
        self._m_upload_bytes = self._registry.histogram(
            "client_upload_bytes",
            help="per-fingerprint upload size",
            buckets=DEFAULT_BYTE_BUCKETS,
        )

    # ------------------------------------------------------------------
    # Metrics API
    # ------------------------------------------------------------------

    @property
    def metrics(self) -> MetricsRegistry:
        """The registry all client instrumentation reports into."""
        return self._registry

    def latency_quantiles(
        self, stage: str, qs: tuple[float, ...] = (0.5, 0.9, 0.99)
    ) -> dict[float, float]:
        """Per-frame latency quantiles (seconds) for one pipeline stage.

        ``stage`` is one of ``"sift"``, ``"oracle"``, ``"serialize"``.
        Returns ``{q: seconds}``; all zeros before the first frame.
        """
        if stage not in _STAGES:
            raise ValueError(f"unknown stage {stage!r}; expected one of {_STAGES}")
        return self._m_stage_seconds[stage].quantiles(qs)

    @property
    def stats(self) -> ClientStats:
        """Deprecated: use :attr:`metrics` / :meth:`latency_quantiles`."""
        _deprecated(
            "VisualPrintClient.stats is deprecated; use client.metrics "
            "and client.latency_quantiles(stage) instead"
        )
        if self._stats_view is None:
            self._stats_view = ClientStats(self._registry)
        return self._stats_view

    def median_latency(self, stage: str) -> float:
        """Deprecated: median per-frame seconds for one stage.

        Equivalent to ``client.latency_quantiles(stage)[0.5]``.
        """
        _deprecated(
            "VisualPrintClient.median_latency is deprecated; use "
            "client.latency_quantiles(stage)[0.5] instead"
        )
        if stage not in _STAGES:
            raise ValueError(f"unknown stage {stage!r}; expected one of {_STAGES}")
        return self._m_stage_seconds[stage].quantile(0.5)

    # ------------------------------------------------------------------
    # Pipeline
    # ------------------------------------------------------------------

    def extract_keypoints(self, image: np.ndarray) -> KeypointSet:
        """SIFT extraction with latency accounting."""
        with self.tracer.span("sift") as span:
            with self._m_stage_seconds["sift"].time():
                keypoints = self._extractor.extract(image)
            span.set("keypoints", len(keypoints))
        return keypoints

    def fingerprint_keypoints(
        self, keypoints: KeypointSet, frame_index: int = 0
    ) -> Fingerprint:
        """Rank pre-extracted keypoints by uniqueness and keep the top-k."""
        config = self.config
        if len(keypoints) == 0:
            fingerprint = Fingerprint(
                keypoints=keypoints,
                uniqueness_counts=np.empty(0, dtype=np.int64),
                frame_index=frame_index,
            )
            self._account(keypoints, fingerprint)
            return fingerprint
        with self.tracer.span("oracle") as span:
            with self._m_stage_seconds["oracle"].time():
                counts = self.oracle.counts(keypoints.descriptors)
                order = self.oracle.rank_by_uniqueness(
                    keypoints.descriptors, counts=counts
                )
                kept = order[: config.fingerprint_size]
            span.set("candidates", len(keypoints))
            span.set("kept", int(kept.shape[0]))
        fingerprint = Fingerprint(
            keypoints=keypoints.select(kept),
            uniqueness_counts=counts[kept],
            frame_index=frame_index,
        )
        self._account(keypoints, fingerprint)
        return fingerprint

    def process_frame(
        self, image: np.ndarray, frame_index: int = 0
    ) -> Fingerprint | None:
        """Full per-frame pipeline: blur gate, extract, rank, fingerprint.

        Returns ``None`` when the frame is rejected as blurred (nothing
        is uploaded for it) — only possible when a
        :class:`repro.features.BlurDetector` was supplied.

        The "frame" root span is the query's trace root: its
        ``trace_id`` identifies this query everywhere downstream, and
        ``client.tracer.last_context()`` hands drivers the
        :class:`repro.obs.TraceContext` to attach the channel transfer
        and server localize legs to (see DESIGN.md §8).
        """
        with self.tracer.span("frame", frame_index=frame_index) as span:
            if self.blur_detector is not None and self.blur_detector.is_blurred(image):
                self._m_frames_blur.inc()
                span.set("rejected", "blur")
                return None
            keypoints = self.extract_keypoints(image)
            return self.fingerprint_keypoints(keypoints, frame_index=frame_index)

    def _account(self, keypoints: KeypointSet, fingerprint: Fingerprint) -> None:
        with self.tracer.span("serialize") as span:
            with self._m_stage_seconds["serialize"].time():
                upload_bytes = fingerprint.upload_bytes
            span.set("bytes", upload_bytes)
        self._m_frames.inc()
        self._m_keypoints_extracted.inc(len(keypoints))
        self._m_keypoints_uploaded.inc(len(fingerprint))
        self._m_upload_bytes_total.inc(upload_bytes)
        self._m_upload_bytes.observe(upload_bytes)
