"""The VisualPrint client library.

Per frame: extract SIFT keypoints, query the downloaded uniqueness
oracle for every descriptor (constant time each), rank, keep the top-k,
serialize.  The client also keeps the running statistics the paper's
client-overhead figures report (per-stage latency, cumulative upload).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.config import VisualPrintConfig
from repro.core.fingerprint import Fingerprint
from repro.core.oracle import UniquenessOracle
from repro.features.keypoint import KeypointSet
from repro.features.sift import SiftExtractor, SiftParams
from repro.util.timing import Stopwatch

__all__ = ["ClientStats", "VisualPrintClient"]


@dataclass
class ClientStats:
    """Running client-side accounting (Figs. 14 and 16)."""

    frames_processed: int = 0
    frames_rejected_blur: int = 0
    keypoints_extracted: int = 0
    keypoints_uploaded: int = 0
    bytes_uploaded: int = 0
    sift_seconds: list[float] = field(default_factory=list)
    oracle_seconds: list[float] = field(default_factory=list)


class VisualPrintClient:
    """Extract → rank by uniqueness → upload only the top-k."""

    def __init__(
        self,
        oracle: UniquenessOracle,
        config: VisualPrintConfig | None = None,
        sift_params: SiftParams | None = None,
        blur_detector: "BlurDetector | None" = None,
    ) -> None:
        self.oracle = oracle
        self.config = config or oracle.config
        self._extractor = SiftExtractor(
            sift_params or SiftParams(contrast_threshold=0.01)
        )
        # Optional frame gate: "performs a quick check on each frame to
        # detect blur ... discarding such frames" (paper, client app).
        self.blur_detector = blur_detector
        self.stats = ClientStats()
        self._watch = Stopwatch()

    def extract_keypoints(self, image: np.ndarray) -> KeypointSet:
        """SIFT extraction with latency accounting."""
        with self._watch.measure("sift"):
            keypoints = self._extractor.extract(image)
        self.stats.sift_seconds.append(self._watch.samples("sift")[-1])
        return keypoints

    def fingerprint_keypoints(
        self, keypoints: KeypointSet, frame_index: int = 0
    ) -> Fingerprint:
        """Rank pre-extracted keypoints by uniqueness and keep the top-k."""
        config = self.config
        if len(keypoints) == 0:
            fingerprint = Fingerprint(
                keypoints=keypoints,
                uniqueness_counts=np.empty(0, dtype=np.int64),
                frame_index=frame_index,
            )
            self._account(keypoints, fingerprint)
            return fingerprint
        with self._watch.measure("oracle"):
            counts = self.oracle.counts(keypoints.descriptors)
            order = self.oracle.rank_by_uniqueness(
                keypoints.descriptors, counts=counts
            )
            kept = order[: config.fingerprint_size]
        self.stats.oracle_seconds.append(self._watch.samples("oracle")[-1])
        fingerprint = Fingerprint(
            keypoints=keypoints.select(kept),
            uniqueness_counts=counts[kept],
            frame_index=frame_index,
        )
        self._account(keypoints, fingerprint)
        return fingerprint

    def process_frame(
        self, image: np.ndarray, frame_index: int = 0
    ) -> Fingerprint | None:
        """Full per-frame pipeline: blur gate, extract, rank, fingerprint.

        Returns ``None`` when the frame is rejected as blurred (nothing
        is uploaded for it) — only possible when a
        :class:`repro.features.BlurDetector` was supplied.
        """
        if self.blur_detector is not None and self.blur_detector.is_blurred(image):
            self.stats.frames_rejected_blur += 1
            return None
        keypoints = self.extract_keypoints(image)
        return self.fingerprint_keypoints(keypoints, frame_index=frame_index)

    def _account(self, keypoints: KeypointSet, fingerprint: Fingerprint) -> None:
        self.stats.frames_processed += 1
        self.stats.keypoints_extracted += len(keypoints)
        self.stats.keypoints_uploaded += len(fingerprint)
        self.stats.bytes_uploaded += fingerprint.upload_bytes

    def median_latency(self, stage: str) -> float:
        """Median per-frame seconds for ``"sift"`` or ``"oracle"``."""
        samples = {
            "sift": self.stats.sift_seconds,
            "oracle": self.stats.oracle_seconds,
        }.get(stage)
        if samples is None:
            raise ValueError(f"unknown stage {stage!r}")
        if not samples:
            return 0.0
        return float(np.median(samples))
