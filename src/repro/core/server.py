"""The VisualPrint cloud service.

Maintains the two server data structures of the paper: (1) the
keypoint-to-3D-position LSH lookup table and (2) the LSH-indexed
counting Bloom filters (the uniqueness oracle clients download).  "As
new keypoint-to-location mappings can be incorporated continuously, in
constant time and memory" — :meth:`ingest` updates both structures
incrementally.

For localization queries the server retrieves ``n`` nearest 3D points
per fingerprint keypoint, keeps the largest spatial cluster, and runs
the angular-constraint solver (:mod:`repro.localization`).

For the Fig. 13 retrieval experiments the same machinery answers
scene-identification queries over an image database (labels instead of
3D positions).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.config import ServerConfig, VisualPrintConfig
from repro.core.fingerprint import Fingerprint
from repro.core.oracle import UniquenessOracle
from repro.geometry.camera import CameraIntrinsics
from repro.geometry.pose import Pose
from repro.localization.clustering import largest_cluster
from repro.localization.solver import (
    AngularLocalizer,
    LocalizationProblem,
    LocalizationSolution,
)
from repro.lsh import LshIndex
from repro.obs import DEFAULT_BYTE_BUCKETS, MetricsRegistry, Tracer, resolve_registry

__all__ = ["LocalizationAnswer", "VisualPrintServer"]


@dataclass(frozen=True)
class LocalizationAnswer:
    """Server reply to a localization query."""

    pose: Pose
    solution: LocalizationSolution
    matched_points: int
    clustered_points: int


class VisualPrintServer:
    """Cloud-side state: keypoint->3D table + uniqueness oracle."""

    def __init__(
        self,
        config: VisualPrintConfig | None = None,
        bounds: tuple[np.ndarray, np.ndarray] | None = None,
        intrinsics: CameraIntrinsics | None = None,
        registry: MetricsRegistry | None = None,
    ) -> None:
        self.config = config or VisualPrintConfig()
        self._registry = resolve_registry(registry)
        self.tracer = Tracer(self._registry)
        self.oracle = UniquenessOracle(self.config, registry=self._registry)
        # The lookup table shares the oracle's LSH parameters but is a
        # separate structure (it stores payloads, not counters).
        self.lookup = LshIndex(
            params=self.config.lsh,
            seed=self.config.seed + 7,
            max_probes_per_table=self.config.max_probes_per_table,
        )
        self.intrinsics = intrinsics or CameraIntrinsics()
        self._descriptors: list[np.ndarray] = []
        self._positions: list[np.ndarray] = []
        self._bounds = bounds
        self._localizer = AngularLocalizer(seed=self.config.seed)
        self._m_ingest_seconds = self._registry.histogram(
            "server_ingest_seconds", help="wall-clock per ingest() batch"
        )
        self._m_ingest_bytes = self._registry.histogram(
            "server_ingest_bytes",
            help="descriptor payload bytes per ingest() batch",
            buckets=DEFAULT_BYTE_BUCKETS,
        )
        self._m_ingest_descriptors = self._registry.counter(
            "server_ingest_descriptors_total", help="keypoint-to-3D mappings ingested"
        )
        self._m_localize_seconds = self._registry.histogram(
            "server_localize_seconds", help="wall-clock per localize() query"
        )
        self._m_localizations = self._registry.counter(
            "server_localizations_total", help="localization queries answered"
        )
        self._m_fallback_poses = self._registry.counter(
            "server_fallback_poses_total",
            help="queries answered with the no-match fallback pose",
        )
        self._m_matched_points = self._registry.histogram(
            "server_matched_points",
            help="LSH-matched 3D points per query",
            buckets=(0.0, 1.0, 3.0, 10.0, 30.0, 100.0, 300.0, 1000.0),
        )
        self._m_clustered_points = self._registry.histogram(
            "server_clustered_points",
            help="points surviving spatial clustering per query",
            buckets=(0.0, 1.0, 3.0, 10.0, 30.0, 100.0, 300.0, 1000.0),
        )

    @classmethod
    def from_config(
        cls,
        config: "ServerConfig",
        bounds: tuple[np.ndarray, np.ndarray] | None = None,
        intrinsics: CameraIntrinsics | None = None,
        registry: MetricsRegistry | None = None,
    ) -> "VisualPrintServer":
        """Build a single-venue engine from a :class:`ServerConfig`.

        Only ``config.pipeline`` matters here; the topology fields are
        consumed by :meth:`repro.serving.ServingFrontend.from_config`.
        """
        return cls(
            config.pipeline, bounds=bounds, intrinsics=intrinsics, registry=registry
        )

    @property
    def metrics(self) -> MetricsRegistry:
        """The registry this server (and its oracle) reports into."""
        return self._registry

    # ------------------------------------------------------------------
    # Ingest (wardriving)
    # ------------------------------------------------------------------

    def ingest(self, descriptors: np.ndarray, positions_3d: np.ndarray) -> None:
        """Add keypoint-to-3D mappings from a wardriving session.

        "As new keypoint-to-location mappings can be incorporated
        continuously, in constant time and memory" — both the oracle and
        the LSH lookup table are updated incrementally; only the new
        batch is hashed (see :meth:`repro.lsh.LshIndex.insert`).
        """
        descriptors = np.asarray(descriptors, dtype=np.float32)
        positions_3d = np.asarray(positions_3d, dtype=np.float64)
        if descriptors.shape[0] != positions_3d.shape[0]:
            raise ValueError("descriptors and positions must align")
        with self._m_ingest_seconds.time():
            start_row = self.num_mappings
            self._descriptors.append(descriptors)
            self._positions.append(positions_3d)
            self.oracle.insert(descriptors)
            self.lookup.insert(
                descriptors,
                np.arange(start_row, start_row + descriptors.shape[0]),
            )
        self._m_ingest_bytes.observe(descriptors.nbytes)
        self._m_ingest_descriptors.inc(descriptors.shape[0])

    def restore_state(
        self,
        descriptors: np.ndarray,
        positions: np.ndarray,
        bounds: tuple[np.ndarray, np.ndarray] | None = None,
    ) -> None:
        """Replace the keypoint-to-3D table with persisted state.

        The public restore path: rebuilds the LSH lookup table from the
        saved descriptor rows *without* re-curating the oracle (restored
        counters are authoritative — see
        :meth:`repro.core.UniquenessOracle.restore_counts`).  Inputs are
        validated before anything is mutated; a corrupt table raises
        :class:`repro.bloom.SnapshotCorruptError` and leaves the server
        untouched.
        """
        from repro.bloom.container import SnapshotCorruptError

        descriptors = np.asarray(descriptors, dtype=np.float32)
        positions = np.asarray(positions, dtype=np.float64)
        if descriptors.ndim != 2:
            raise SnapshotCorruptError(
                f"restored descriptors must be 2-D, got shape {descriptors.shape}"
            )
        if positions.ndim != 2 or positions.shape[1] != 3:
            raise SnapshotCorruptError(
                f"restored positions must be (n, 3), got shape {positions.shape}"
            )
        if descriptors.shape[0] != positions.shape[0]:
            raise SnapshotCorruptError(
                f"restored table misaligned: {descriptors.shape[0]} descriptors "
                f"vs {positions.shape[0]} positions"
            )
        if not np.isfinite(positions).all():
            raise SnapshotCorruptError("restored positions contain non-finite values")
        if bounds is not None:
            low, high = (np.asarray(b, dtype=np.float64) for b in bounds)
            if low.shape != (3,) or high.shape != (3,):
                raise SnapshotCorruptError(
                    "restored bounds must be a pair of 3-vectors"
                )
            if not (np.isfinite(low).all() and np.isfinite(high).all()):
                raise SnapshotCorruptError("restored bounds are non-finite")
            self._bounds = (low, high)
        if descriptors.shape[0]:
            self._descriptors = [descriptors.copy()]
            self._positions = [positions.copy()]
            self.lookup.build(descriptors, np.arange(descriptors.shape[0]))
        else:
            self._descriptors = []
            self._positions = []

    @property
    def num_mappings(self) -> int:
        return sum(d.shape[0] for d in self._descriptors)

    @property
    def positions(self) -> np.ndarray:
        if not self._positions:
            return np.empty((0, 3))
        return np.vstack(self._positions)

    @property
    def descriptors(self) -> np.ndarray:
        """All ingested descriptor rows (the persisted lookup-table keys)."""
        if not self._descriptors:
            return np.empty((0, 128), dtype=np.float32)
        return np.vstack(self._descriptors)

    def bounds(self) -> tuple[np.ndarray, np.ndarray]:
        """Venue extents for the solver's search box."""
        if self._bounds is not None:
            return self._bounds
        positions = self.positions
        if positions.shape[0] == 0:
            return np.zeros(3), np.ones(3)
        return positions.min(axis=0) - 1.0, positions.max(axis=0) + 1.0

    # ------------------------------------------------------------------
    # Client download
    # ------------------------------------------------------------------

    def publish_oracle(self) -> UniquenessOracle:
        """What the client downloads (here: a shared reference)."""
        return self.oracle

    # ------------------------------------------------------------------
    # Localization queries
    # ------------------------------------------------------------------

    def localize(self, fingerprint: Fingerprint) -> LocalizationAnswer:
        """Answer a fingerprint query with a 6-DoF pose estimate.

        The ``localize`` span joins the querying frame's trace when the
        call runs under that frame's span or inside a
        :func:`repro.obs.use_trace_context` block — one ``trace_id``
        then covers client compute, channel transfer, and this server
        leg end to end.
        """
        with self.tracer.span(
            "localize", frame_index=fingerprint.frame_index
        ) as span:
            with self._m_localize_seconds.time():
                answer = self._localize(fingerprint)
            span.set("matched_points", answer.matched_points)
            span.set("clustered_points", answer.clustered_points)
        self._m_localizations.inc()
        self._m_matched_points.observe(answer.matched_points)
        self._m_clustered_points.observe(answer.clustered_points)
        if not answer.solution.converged and answer.matched_points == 0:
            self._m_fallback_poses.inc()
        return answer

    def _localize(self, fingerprint: Fingerprint) -> LocalizationAnswer:
        low, high = self.bounds()
        positions = self.positions
        matches = self.lookup.query_batch(
            fingerprint.keypoints.descriptors,
            num_neighbors=self.config.nearest_neighbors_per_keypoint,
        )
        pixel_rows: list[int] = []
        point_rows: list[int] = []
        for row, row_matches in enumerate(matches):
            for match in row_matches:
                pixel_rows.append(row)
                point_rows.append(match.item_id)
        matched = len(point_rows)
        if matched == 0:
            center = (low + high) / 2.0
            fallback = LocalizationSolution(
                pose=Pose(x=center[0], y=center[1], z=center[2]),
                residual=np.inf,
                num_pairs=0,
                converged=False,
            )
            return LocalizationAnswer(
                pose=fallback.pose,
                solution=fallback,
                matched_points=0,
                clustered_points=0,
            )

        candidate_points = positions[point_rows]
        kept = largest_cluster(
            candidate_points,
            eps=self.config.cluster_radius,
            min_samples=self.config.min_cluster_size,
        )
        if kept.size < 3:
            kept = np.arange(candidate_points.shape[0])
        # One 3D point per keypoint: if several of a keypoint's neighbors
        # survive clustering, keep its closest-descriptor match (first).
        pixels = fingerprint.keypoints.positions
        seen: set[int] = set()
        final_pixels: list[np.ndarray] = []
        final_points: list[np.ndarray] = []
        for index in kept:
            keypoint_row = pixel_rows[index]
            if keypoint_row in seen:
                continue
            seen.add(keypoint_row)
            final_pixels.append(pixels[keypoint_row])
            final_points.append(candidate_points[index])

        problem = LocalizationProblem(
            pixels=np.array(final_pixels),
            world_points=np.array(final_points),
            intrinsics=self.intrinsics,
            bounds_low=low,
            bounds_high=high,
        )
        solution = self._localizer.solve(problem)
        return LocalizationAnswer(
            pose=solution.pose,
            solution=solution,
            matched_points=matched,
            clustered_points=int(kept.size),
        )

    # ------------------------------------------------------------------
    # Footprints (Fig. 15 / takeaways)
    # ------------------------------------------------------------------

    def lookup_memory_bytes(self) -> int:
        """Server-side LSH table RAM (the 9.4 GB-class number)."""
        return self.lookup.memory_bytes()

    def oracle_download_bytes(self) -> int:
        """Compressed oracle download size (the ~10 MB number)."""
        return self.oracle.download_bytes()
