"""VisualPrint core: the uniqueness oracle, client, and cloud server.

The contribution of the paper: "VisualPrint enables mobile devices to
filter visual data by global uniqueness — allowing only the most
important bits to be used in a query — and reducing network offload by
an order of magnitude."

* :class:`UniquenessOracle` — LSH-indexed counting Bloom filters with a
  verification filter and multiprobe lookups; compact enough to download
  to the phone, constant-time per keypoint.
* :class:`VisualPrintClient` — extracts keypoints, ranks them by oracle
  count, uploads only the top-k as a :class:`Fingerprint`.
* :class:`VisualPrintServer` — ingests wardriven keypoint-to-3D
  mappings, curates the oracle, and answers fingerprint queries with a
  3D location (and scene retrieval for the Fig. 13 experiments).
"""

from repro.core.config import ClientConfig, ServerConfig, VisualPrintConfig
from repro.core.fingerprint import Fingerprint, degradation_keep_counts
from repro.core.client import OffloadReport, VisualPrintClient
from repro.core.oracle import OracleLookup, UniquenessOracle
from repro.core.server import LocalizationAnswer, VisualPrintServer
from repro.core.updates import (
    OracleDelta,
    OracleRefresher,
    QuarantinedPayload,
    RefreshReport,
    apply_delta,
    choose_refresh_payload,
    diff_counting_filters,
    parse_delta,
)

__all__ = [
    "ClientConfig",
    "Fingerprint",
    "LocalizationAnswer",
    "OffloadReport",
    "OracleDelta",
    "OracleLookup",
    "OracleRefresher",
    "QuarantinedPayload",
    "RefreshReport",
    "ServerConfig",
    "UniquenessOracle",
    "VisualPrintClient",
    "VisualPrintServer",
    "VisualPrintConfig",
    "apply_delta",
    "choose_refresh_payload",
    "degradation_keep_counts",
    "diff_counting_filters",
    "parse_delta",
]
