"""Server-state persistence.

A production VisualPrint cloud service survives restarts: the
keypoint-to-3D table and the oracle are its only state.  Two formats
are provided, both restoring an *equivalent* server — identical oracle
counts and identical lookup results, verified in the test suite:

* :func:`save_server` / :func:`load_server` — the single-file ``.npz``
  format.  Since format v2 the file is written atomically (temp +
  fsync + rename) and embeds per-section CRCs; :func:`load_server`
  verifies them and raises
  :class:`repro.bloom.SnapshotCorruptError` on any mismatch instead of
  restoring a silently-wrong server.  v1 files (no checksums) still
  load.
* :class:`ServerStateStore` — the generational
  :class:`repro.store.SnapshotStore` layout: atomic commits, manifest
  checksums, retention, and automatic rollback to the newest
  generation that verifies.  This is what ``repro verify-state``
  audits and what deployments should use.

Restores route through the public :meth:`VisualPrintServer.restore_state`
and :meth:`UniquenessOracle.restore_counts` APIs — persistence no
longer reaches into private server state.
"""

from __future__ import annotations

import io
import json
import os
import zipfile
import zlib
from dataclasses import asdict
from pathlib import Path

import numpy as np

from repro.bloom.container import SnapshotCorruptError
from repro.core.config import VisualPrintConfig
from repro.core.server import VisualPrintServer
from repro.lsh.projections import E2LSHParams
from repro.store.integrity import CHECKSUM_ALGO, checksum_bytes, checksum_named
from repro.store.snapshot import LoadedSnapshot, SnapshotStore

__all__ = ["ServerStateStore", "load_server", "save_server"]

_FORMAT_VERSION = 2

#: npz entries covered by the embedded integrity record (v2+).
_CHECKED_SECTIONS = (
    "config_json",
    "descriptors",
    "positions",
    "bounds_low",
    "bounds_high",
    "oracle_counters",
    "verification_bits",
    "inserted_count",
)


def _config_to_json(config: VisualPrintConfig) -> bytes:
    config_dict = asdict(config)
    config_dict["lsh"] = asdict(config.lsh)
    return json.dumps(config_dict).encode("utf-8")


def _config_from_json(payload: bytes) -> VisualPrintConfig:
    try:
        config_dict = json.loads(payload.decode("utf-8"))
        lsh = E2LSHParams(**config_dict.pop("lsh"))
        return VisualPrintConfig(lsh=lsh, **config_dict)
    except (UnicodeDecodeError, json.JSONDecodeError, TypeError, KeyError) as error:
        raise SnapshotCorruptError(f"saved configuration unparseable: {error}")


def _server_arrays(server: VisualPrintServer) -> dict[str, np.ndarray]:
    low, high = server.bounds()
    descriptors = server.descriptors
    return {
        "config_json": np.frombuffer(_config_to_json(server.config), dtype=np.uint8),
        "descriptors": descriptors,
        "positions": server.positions,
        "bounds_low": low,
        "bounds_high": high,
        "oracle_counters": server.oracle.counting.counters,
        "verification_bits": np.frombuffer(
            server.oracle.verification.packed_bytes(), dtype=np.uint8
        ),
        "inserted_count": np.array([server.oracle.inserted_count]),
    }


def save_server(server: VisualPrintServer, path: str | Path, fault_injector=None) -> None:
    """Atomically write the server's full state to ``path`` (.npz).

    The file only replaces a previous one after it is fully written and
    fsynced; a crash mid-save leaves the old state intact.  Per-section
    CRCs are embedded so :func:`load_server` can refuse corrupted state.
    ``fault_injector`` (a :class:`repro.store.StorageFaultInjector`)
    corrupts the bytes that hit the disk — for chaos tests only.
    """
    path = Path(path)
    arrays = _server_arrays(server)
    integrity = {
        "algo": CHECKSUM_ALGO,
        "sections": {
            name: {
                "crc": checksum_bytes(np.ascontiguousarray(array).tobytes()),
                "bytes": int(np.ascontiguousarray(array).nbytes),
                "dtype": str(array.dtype),
                "shape": list(array.shape),
            }
            for name, array in arrays.items()
        },
    }
    buffer = io.BytesIO()
    np.savez_compressed(
        buffer,
        format_version=np.array([_FORMAT_VERSION]),
        integrity_json=np.frombuffer(
            json.dumps(integrity, sort_keys=True).encode("utf-8"), dtype=np.uint8
        ),
        **arrays,
    )
    data = buffer.getvalue()
    if fault_injector is not None:
        data, _ = fault_injector.mangle(data, label=f"npz/{path.name}")
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp_path = path.parent / f".{path.name}.tmp-{os.getpid()}"
    with open(tmp_path, "wb") as handle:
        handle.write(data)
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp_path, path)


def _verify_npz_integrity(entries: dict[str, np.ndarray]) -> None:
    try:
        integrity = json.loads(bytes(entries["integrity_json"]).decode("utf-8"))
        algo = integrity["algo"]
        sections = integrity["sections"]
    except (KeyError, UnicodeDecodeError, json.JSONDecodeError, TypeError) as error:
        raise SnapshotCorruptError(f"state-file integrity record unparseable: {error}")
    for name in _CHECKED_SECTIONS:
        if name not in sections:
            raise SnapshotCorruptError(
                f"state-file integrity record misses section {name!r}"
            )
        array = entries[name]
        expect = sections[name]
        if list(array.shape) != list(expect.get("shape", [])) or str(
            array.dtype
        ) != expect.get("dtype"):
            raise SnapshotCorruptError(
                f"state-file section {name!r} shape/dtype drifted from its "
                f"integrity record"
            )
        actual = checksum_named(algo, np.ascontiguousarray(array).tobytes())
        if actual != int(expect.get("crc", -1)):
            raise SnapshotCorruptError(
                f"state-file section {name!r} failed its checksum "
                f"(recorded {expect.get('crc')}, computed {actual})"
            )


def _restore_server(
    config: VisualPrintConfig,
    bounds: tuple[np.ndarray, np.ndarray],
    descriptors: np.ndarray,
    positions: np.ndarray,
    oracle_counters: np.ndarray,
    verification_bits: bytes,
    inserted_count: int,
    registry=None,
) -> VisualPrintServer:
    """Build an equivalent server through the public restore APIs."""
    server = VisualPrintServer(config, bounds=bounds, registry=registry)
    server.restore_state(descriptors, positions)
    server.oracle.restore_counts(
        oracle_counters,
        verification_bits=verification_bits,
        inserted_count=inserted_count,
    )
    return server


def load_server(path: str | Path, registry=None) -> VisualPrintServer:
    """Reconstruct a server saved by :func:`save_server`.

    Every integrity failure — an unreadable archive, a missing section,
    a checksum mismatch, structurally-impossible contents — raises
    :class:`SnapshotCorruptError` rather than restoring a server whose
    answers would be silently wrong.
    """
    path = Path(path)
    try:
        with np.load(path) as data:
            entries = {name: data[name] for name in data.files}
    except (OSError, zipfile.BadZipFile, zlib.error, EOFError, ValueError) as error:
        raise SnapshotCorruptError(f"state file {path} unreadable: {error}")
    try:
        version = int(entries["format_version"][0])
    except (KeyError, IndexError, ValueError) as error:
        raise SnapshotCorruptError(f"state file {path} has no format version: {error}")
    if version not in (1, _FORMAT_VERSION):
        raise SnapshotCorruptError(f"unsupported server state version {version}")
    missing = [name for name in _CHECKED_SECTIONS if name not in entries]
    if missing:
        raise SnapshotCorruptError(
            f"state file {path} misses sections: {', '.join(missing)}"
        )
    if version >= 2:
        _verify_npz_integrity(entries)
    config = _config_from_json(bytes(entries["config_json"]))
    bounds = (entries["bounds_low"].copy(), entries["bounds_high"].copy())
    try:
        inserted = int(entries["inserted_count"][0])
    except (IndexError, ValueError) as error:
        raise SnapshotCorruptError(f"insertion count unreadable: {error}")
    return _restore_server(
        config,
        bounds,
        entries["descriptors"],
        entries["positions"],
        entries["oracle_counters"],
        bytes(entries["verification_bits"]),
        inserted,
        registry=registry,
    )


# ----------------------------------------------------------------------
# Generational store layout
# ----------------------------------------------------------------------

_STORE_STATE_VERSION = 1


def _npy_bytes(array: np.ndarray) -> bytes:
    buffer = io.BytesIO()
    np.save(buffer, np.ascontiguousarray(array), allow_pickle=False)
    return buffer.getvalue()


def _npy_from_bytes(data: bytes, section: str) -> np.ndarray:
    try:
        return np.load(io.BytesIO(data), allow_pickle=False)
    except (ValueError, OSError, EOFError) as error:
        raise SnapshotCorruptError(f"section {section!r} unparseable: {error}")


class ServerStateStore:
    """Generational, rollback-capable persistence for a VisualPrint server.

    Thin layer over :class:`repro.store.SnapshotStore`: each ``save``
    commits one checksummed generation; ``load`` restores the newest
    generation that verifies (rolling back past damaged ones) through
    the public restore APIs.
    """

    def __init__(
        self,
        root: str | Path,
        keep_generations: int = 3,
        fault_injector=None,
        registry=None,
    ) -> None:
        self.store = SnapshotStore(
            root,
            keep_generations=keep_generations,
            fault_injector=fault_injector,
            registry=registry,
        )
        self._registry = registry

    def save(self, server: VisualPrintServer) -> int:
        """Commit the server's state as a new generation; returns its number."""
        arrays = _server_arrays(server)
        low, high = server.bounds()
        sections = {
            "config.json": _config_to_json(server.config),
            "descriptors.npy": _npy_bytes(arrays["descriptors"]),
            "positions.npy": _npy_bytes(arrays["positions"]),
            "bounds.npy": _npy_bytes(np.vstack([low, high])),
            "counters.npy": _npy_bytes(arrays["oracle_counters"]),
            "verification.bin": server.oracle.verification.packed_bytes(),
            "meta.json": json.dumps(
                {
                    "state_version": _STORE_STATE_VERSION,
                    "inserted_count": server.oracle.inserted_count,
                    "num_mappings": server.num_mappings,
                },
                sort_keys=True,
            ).encode("utf-8"),
        }
        return self.store.save(
            sections, metadata={"state_version": _STORE_STATE_VERSION}
        )

    def load(self) -> tuple[VisualPrintServer, LoadedSnapshot]:
        """Restore the newest verifiable generation.

        Returns ``(server, loaded)`` — ``loaded.rolled_back`` says how
        many damaged generations were skipped.  Raises
        :class:`SnapshotCorruptError` when nothing restores.
        """
        loaded = self.store.load()
        sections = loaded.sections
        required = (
            "config.json",
            "descriptors.npy",
            "positions.npy",
            "bounds.npy",
            "counters.npy",
            "verification.bin",
            "meta.json",
        )
        missing = [name for name in required if name not in sections]
        if missing:
            raise SnapshotCorruptError(
                f"generation {loaded.generation} misses sections: "
                f"{', '.join(missing)}"
            )
        try:
            meta = json.loads(sections["meta.json"].decode("utf-8"))
            inserted = int(meta["inserted_count"])
        except (
            UnicodeDecodeError,
            json.JSONDecodeError,
            KeyError,
            TypeError,
            ValueError,
        ) as error:
            raise SnapshotCorruptError(f"section 'meta.json' unparseable: {error}")
        config = _config_from_json(sections["config.json"])
        bounds_array = _npy_from_bytes(sections["bounds.npy"], "bounds.npy")
        if bounds_array.shape != (2, 3):
            raise SnapshotCorruptError(
                f"section 'bounds.npy' has shape {bounds_array.shape}, needs (2, 3)"
            )
        server = _restore_server(
            config,
            (bounds_array[0].copy(), bounds_array[1].copy()),
            _npy_from_bytes(sections["descriptors.npy"], "descriptors.npy"),
            _npy_from_bytes(sections["positions.npy"], "positions.npy"),
            _npy_from_bytes(sections["counters.npy"], "counters.npy"),
            sections["verification.bin"],
            inserted,
            registry=self._registry,
        )
        return server, loaded
