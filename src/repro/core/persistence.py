"""Server-state persistence.

A production VisualPrint cloud service survives restarts: the
keypoint-to-3D table and the oracle are its only state.  This module
serializes both to a single ``.npz`` (descriptors, positions, oracle
counters, verification bits, and configuration), from which an
equivalent server is reconstructed — equivalent meaning: identical
oracle counts and identical lookup results, verified in the test suite.
"""

from __future__ import annotations

import json
from dataclasses import asdict
from pathlib import Path

import numpy as np

from repro.core.config import VisualPrintConfig
from repro.core.server import VisualPrintServer
from repro.lsh.projections import E2LSHParams

__all__ = ["load_server", "save_server"]

_FORMAT_VERSION = 1


def save_server(server: VisualPrintServer, path: str | Path) -> None:
    """Write the server's full state to ``path`` (.npz)."""
    path = Path(path)
    config = server.config
    config_dict = asdict(config)
    config_dict["lsh"] = asdict(config.lsh)
    low, high = server.bounds()
    descriptors = (
        np.vstack(server._descriptors)
        if server._descriptors
        else np.empty((0, 128), dtype=np.float32)
    )
    np.savez_compressed(
        path,
        format_version=np.array([_FORMAT_VERSION]),
        config_json=np.frombuffer(
            json.dumps(config_dict).encode("utf-8"), dtype=np.uint8
        ),
        descriptors=descriptors,
        positions=server.positions,
        bounds_low=low,
        bounds_high=high,
        oracle_counters=server.oracle.counting.counters,
        verification_bits=np.frombuffer(
            server.oracle.verification.packed_bytes(), dtype=np.uint8
        ),
        inserted_count=np.array([server.oracle.inserted_count]),
    )


def load_server(path: str | Path) -> VisualPrintServer:
    """Reconstruct a server saved by :func:`save_server`."""
    path = Path(path)
    with np.load(path) as data:
        version = int(data["format_version"][0])
        if version != _FORMAT_VERSION:
            raise ValueError(f"unsupported server state version {version}")
        config_dict = json.loads(bytes(data["config_json"]).decode("utf-8"))
        lsh = E2LSHParams(**config_dict.pop("lsh"))
        config = VisualPrintConfig(lsh=lsh, **config_dict)
        bounds = (data["bounds_low"].copy(), data["bounds_high"].copy())
        server = VisualPrintServer(config, bounds=bounds)

        descriptors = data["descriptors"]
        positions = data["positions"]
        if descriptors.shape[0]:
            # Rebuild the lookup table without re-curating the oracle —
            # the saved counters are authoritative.
            server._descriptors = [descriptors.copy()]
            server._positions = [positions.copy()]
            all_ids = np.arange(descriptors.shape[0])
            server.lookup.build(descriptors, all_ids)
        server.oracle.counting.counters = data["oracle_counters"].copy()
        server.oracle.verification.load_packed_bytes(
            bytes(data["verification_bits"])
        )
        server.oracle._inserted = int(data["inserted_count"][0])
    return server
