"""The fingerprint: the only thing VisualPrint puts on the uplink.

A fingerprint is the top-k most-unique keypoints of a frame — pixel
coordinates plus integer descriptors — serialized with the standard
keypoint wire format.  At k = 200 this is ≈ 30-50 KB, versus ≈ 500 KB
for the lossless frame it replaces.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.features.keypoint import KeypointSet
from repro.features.serialize import (
    deserialize_keypoints,
    serialize_keypoints,
    serialized_size,
)

__all__ = ["Fingerprint", "degradation_keep_counts"]


def degradation_keep_counts(
    count: int, floor: int = 16, max_steps: int = 2
) -> list[int]:
    """Keypoint budgets for progressively smaller resubmissions.

    Starts at the full fingerprint and halves up to ``max_steps`` times,
    never dropping below ``floor`` keypoints — below that a fingerprint
    stops carrying enough unique features to vote a scene (cf. the
    Fig. 13 small-count regime).  Keypoints are stored most-unique
    first, so "the first k" is exactly "the k most unique".
    """
    counts = [int(count)]
    while counts[-1] // 2 >= floor and len(counts) <= max_steps:
        counts.append(counts[-1] // 2)
    return counts


@dataclass(frozen=True)
class Fingerprint:
    """A concise, upload-ready scene signature."""

    keypoints: KeypointSet
    uniqueness_counts: np.ndarray  # (k,) oracle count per kept keypoint
    frame_index: int = 0

    def __post_init__(self) -> None:
        if self.uniqueness_counts.shape != (len(self.keypoints),):
            raise ValueError("one uniqueness count per keypoint required")

    def __len__(self) -> int:
        return len(self.keypoints)

    def to_bytes(self, compress: bool = False) -> bytes:
        """Wire encoding (what Fig. 14 counts as uploaded data)."""
        return serialize_keypoints(self.keypoints, compress=compress)

    @property
    def upload_bytes(self) -> int:
        """Uncompressed wire size — O(1), the records are fixed width."""
        return serialized_size(len(self.keypoints))

    def truncate(self, count: int) -> "Fingerprint":
        """The same fingerprint keeping only its ``count`` most-unique keypoints.

        Keypoints are stored in uniqueness-rank order, so truncation is
        a prefix — this is the degradation move the client makes under
        network backpressure.  The result is a zero-copy view sharing
        storage with ``self`` (see :meth:`KeypointSet.head`).
        """
        if count < 0:
            raise ValueError(f"count must be non-negative, got {count}")
        if count >= len(self):
            return self
        return Fingerprint(
            keypoints=self.keypoints.head(count),
            uniqueness_counts=self.uniqueness_counts[:count],
            frame_index=self.frame_index,
        )

    @classmethod
    def from_bytes(cls, payload: bytes, frame_index: int = 0) -> "Fingerprint":
        keypoints = deserialize_keypoints(payload)
        return cls(
            keypoints=keypoints,
            uniqueness_counts=np.zeros(len(keypoints), dtype=np.int64),
            frame_index=frame_index,
        )
