"""The fingerprint: the only thing VisualPrint puts on the uplink.

A fingerprint is the top-k most-unique keypoints of a frame — pixel
coordinates plus integer descriptors — serialized with the standard
keypoint wire format.  At k = 200 this is ≈ 30-50 KB, versus ≈ 500 KB
for the lossless frame it replaces.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.features.keypoint import KeypointSet
from repro.features.serialize import deserialize_keypoints, serialize_keypoints

__all__ = ["Fingerprint"]


@dataclass(frozen=True)
class Fingerprint:
    """A concise, upload-ready scene signature."""

    keypoints: KeypointSet
    uniqueness_counts: np.ndarray  # (k,) oracle count per kept keypoint
    frame_index: int = 0

    def __post_init__(self) -> None:
        if self.uniqueness_counts.shape != (len(self.keypoints),):
            raise ValueError("one uniqueness count per keypoint required")

    def __len__(self) -> int:
        return len(self.keypoints)

    def to_bytes(self, compress: bool = False) -> bytes:
        """Wire encoding (what Fig. 14 counts as uploaded data)."""
        return serialize_keypoints(self.keypoints, compress=compress)

    @property
    def upload_bytes(self) -> int:
        return len(self.to_bytes())

    @classmethod
    def from_bytes(cls, payload: bytes, frame_index: int = 0) -> "Fingerprint":
        keypoints = deserialize_keypoints(payload)
        return cls(
            keypoints=keypoints,
            uniqueness_counts=np.zeros(len(keypoints), dtype=np.int64),
            frame_index=frame_index,
        )
