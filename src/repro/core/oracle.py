"""The uniqueness "oracle": locality-sensitive counting Bloom filters.

Indexing (Fig. 8, top): a descriptor is E2LSH-quantized into ``L``
bucket vectors; each bucket vector is Murmur-3 hashed ``K`` ways into
the shared counting Bloom filter, bumping ``K`` saturating counters per
table.  Every insertion also records its counter-position tuple in the
verification Bloom filter.

Lookup (Fig. 8, bottom): a query descriptor's count estimate is the
minimum probed counter across all tables — an upper bound on how many
database descriptors share its neighborhood, i.e. its *commonness*.
Multiprobe re-checks the two most likely adjacent quantization cells per
table (off-by-one rescue), and the verification filter vetoes positives
whose position tuple was never actually inserted.

The structure is "aggressively probabilistic — false positives create a
minimal performance penalty" — a keypoint wrongly counted as common just
loses its spot in the fingerprint to the next-most-unique one.

Every oracle reports into a :class:`repro.obs.MetricsRegistry`
(explicit, contextual, or private — see :func:`repro.obs.resolve_registry`):
insert/lookup latency histograms, descriptor counters, multiprobe-accept
and verification-veto counters, and a counter-saturation gauge.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from functools import partial

import numpy as np

from repro.bloom.container import (
    DEFAULT_GZIP_LEVEL,
    BloomSnapshot,
    serialize_counting,
    serialize_verification,
)
from repro.bloom.counting import CountingBloomFilter
from repro.bloom.verification import VerificationBloomFilter
from repro.core.config import VisualPrintConfig
from repro.hashing.families import Murmur3Family
from repro.lsh.buckets import QuantizedBuckets
from repro.lsh.multiprobe import perturbation_sets, ranked_perturbations
from repro.lsh.projections import StableProjections
from repro.obs import MetricsRegistry, Tracer, resolve_registry

__all__ = ["OracleLookup", "UniquenessOracle"]


def _build_hasher(
    config: VisualPrintConfig,
) -> tuple[StableProjections, list[Murmur3Family]]:
    """The (projections, per-table hash families) pair for one config."""
    projections = StableProjections(config.lsh, seed=config.seed)
    families = [
        Murmur3Family(
            num_hashes=config.bloom_hashes,
            table_size=config.num_counters,
            base_seed=config.seed + 1000 + table * config.bloom_hashes,
        )
        for table in range(config.lsh.num_tables)
    ]
    return projections, families


# Per-process cache for pool workers: rebuilding the projections for every
# wardrive batch would dominate the hashing work they parallelize.
_WORKER_HASHERS: dict[VisualPrintConfig, tuple[StableProjections, list[Murmur3Family]]] = {}


def _hash_wardrive_batch(
    config: VisualPrintConfig, descriptors: np.ndarray
) -> list[np.ndarray]:
    """Quantize + hash one ingest batch (the CPU-bound part of insert).

    Pure function of (config, descriptors) so it can run in any pool
    worker; returns the per-table ``(n, K)`` counter-index arrays the
    parent applies to its filters.
    """
    cached = _WORKER_HASHERS.get(config)
    if cached is None:
        cached = _WORKER_HASHERS[config] = _build_hasher(config)
    projections, families = cached
    quantized = QuantizedBuckets(projections.quantize(descriptors))
    return [
        family.indices(quantized.table_vectors(table))
        for table, family in enumerate(families)
    ]


@dataclass(frozen=True)
class OracleLookup:
    """Detailed lookup result for one descriptor."""

    count: int  # minimum-counter commonness estimate
    present: bool  # passed membership (with multiprobe) + verification
    used_multiprobe: bool  # the accepting probe was a perturbed bucket


class UniquenessOracle:
    """Compact, downloadable commonness estimator for SIFT descriptors."""

    def __init__(
        self,
        config: VisualPrintConfig | None = None,
        registry: MetricsRegistry | None = None,
    ) -> None:
        self.config = config or VisualPrintConfig()
        cfg = self.config
        # One Murmur-3 family per LSH table so tables probe independent
        # positions of the shared counter array.
        self.projections, self._families = _build_hasher(cfg)
        self.counting = CountingBloomFilter(
            num_counters=cfg.num_counters,
            num_hashes=cfg.bloom_hashes,
            bits_per_counter=cfg.bits_per_counter,
            seed=cfg.seed + 101,
        )
        self.verification = VerificationBloomFilter(
            num_bits=cfg.verification_bits, seed=cfg.seed + 202
        )
        self._inserted = 0
        self._download_cache: tuple[tuple[int, int], int] | None = None
        self._registry = resolve_registry(registry)
        self.tracer = Tracer(self._registry)
        # Instrument handles are bound once: the counts() hot path pays
        # one perf_counter pair + two attribute calls, nothing more.
        self._m_insert_seconds = self._registry.histogram(
            "oracle_insert_seconds", help="wall-clock per insert() call"
        )
        self._m_inserted_total = self._registry.counter(
            "oracle_descriptors_inserted_total", help="descriptors indexed"
        )
        self._m_counts_seconds = self._registry.histogram(
            "oracle_counts_seconds", help="wall-clock per counts() batch"
        )
        self._m_counts_descriptors = self._registry.counter(
            "oracle_counts_descriptors_total", help="descriptors passed to counts()"
        )
        self._m_lookup_seconds = self._registry.histogram(
            "oracle_lookup_seconds", help="wall-clock per lookup_batch() call"
        )
        self._m_lookups_total = self._registry.counter(
            "oracle_lookups_total", help="descriptors resolved via lookup paths"
        )
        self._m_multiprobe_accepts = self._registry.counter(
            "oracle_multiprobe_accepts_total",
            help="table accepts where the accepting probe was perturbed",
        )
        self._m_verification_vetoes = self._registry.counter(
            "oracle_verification_vetoes_total",
            help="probe matches vetoed by the verification filter",
        )
        self._m_saturation = self._registry.gauge(
            "oracle_counter_saturation",
            help="fraction of counting-filter counters at the saturation ceiling",
        )

    @property
    def metrics(self) -> MetricsRegistry:
        """The registry this oracle reports into."""
        return self._registry

    # ------------------------------------------------------------------
    # Indexing
    # ------------------------------------------------------------------

    @property
    def inserted_count(self) -> int:
        return self._inserted

    def saturation_ratio(self) -> float:
        """Fraction of counters pinned at the saturation ceiling."""
        return self.counting.saturated_fraction()

    def insert(
        self,
        descriptors: np.ndarray,
        batch_size: int = 20_000,
        workers: int = 1,
    ) -> None:
        """Index descriptors: bump K counters per table per descriptor.

        With ``workers > 1`` the CPU-bound half of ingest — quantizing
        and Murmur-hashing each wardrive batch — fans out across a
        :func:`repro.parallel.parallel_map` pool; the returned counter
        indices are applied to the shared filters serially in batch
        order.  Counter saturation and Bloom bit-sets are commutative,
        so the final filter state is identical to a serial ingest.
        """
        descriptors = np.asarray(descriptors, dtype=np.float32)
        if descriptors.ndim != 2:
            raise ValueError(f"descriptors must be 2-D, got {descriptors.shape}")
        batches = [
            descriptors[start : start + batch_size]
            for start in range(0, descriptors.shape[0], batch_size)
        ]
        with self._m_insert_seconds.time():
            if workers > 1 and len(batches) > 1:
                from repro.parallel import parallel_map

                hashed = parallel_map(
                    partial(_hash_wardrive_batch, self.config),
                    batches,
                    workers=workers,
                )
                for batch, table_indices in zip(batches, hashed):
                    self._apply_hashed(table_indices, batch.shape[0])
            else:
                for batch in batches:
                    self._insert_batch(batch)
        self._m_inserted_total.inc(descriptors.shape[0])
        self._m_saturation.set(self.saturation_ratio())

    def _insert_batch(self, descriptors: np.ndarray) -> None:
        quantized = QuantizedBuckets(self.projections.quantize(descriptors))
        table_indices = [
            family.indices(quantized.table_vectors(table))
            for table, family in enumerate(self._families)
        ]
        self._apply_hashed(table_indices, descriptors.shape[0])

    def _apply_hashed(
        self, table_indices: list[np.ndarray], num_descriptors: int
    ) -> None:
        """Apply precomputed per-table ``(n, K)`` indices to the filters."""
        for indices in table_indices:
            self.counting.bump_counters(indices.ravel())
            self.verification.add(indices)
        self._inserted += num_descriptors

    def restore_counts(
        self,
        counters: np.ndarray,
        verification_bits: bytes | None = None,
        inserted_count: int = 0,
    ) -> None:
        """Replace this oracle's filter state with persisted state.

        The public restore path (persistence and snapshot stores route
        through it instead of poking ``oracle.counting.counters`` and
        ``oracle._inserted`` directly).  Inputs are validated before
        anything is mutated — a corrupt array raises
        :class:`repro.bloom.SnapshotCorruptError` and leaves the oracle
        untouched.
        """
        from repro.bloom.container import SnapshotCorruptError

        counters = np.asarray(counters)
        if counters.shape != (self.counting.num_counters,):
            raise SnapshotCorruptError(
                f"restored counters have shape {counters.shape}, this oracle "
                f"needs ({self.counting.num_counters},)"
            )
        if not np.issubdtype(counters.dtype, np.integer):
            raise SnapshotCorruptError(
                f"restored counters must be integers, got {counters.dtype}"
            )
        if counters.size and (
            int(counters.min()) < 0
            or int(counters.max()) > self.counting.saturation
        ):
            raise SnapshotCorruptError(
                f"restored counters fall outside [0, {self.counting.saturation}]"
            )
        if inserted_count < 0:
            raise SnapshotCorruptError(
                f"restored insertion count is negative ({inserted_count})"
            )
        expected_bits = (self.verification.num_bits + 7) // 8
        if verification_bits is not None and len(verification_bits) != expected_bits:
            raise SnapshotCorruptError(
                f"restored verification filter is {len(verification_bits)} "
                f"bytes, this oracle needs {expected_bits}"
            )
        self.counting.counters = counters.astype(np.uint16).copy()
        if verification_bits is not None:
            self.verification.load_packed_bytes(verification_bits)
        self._inserted = int(inserted_count)
        self.invalidate_transfer_cache()
        self._m_saturation.set(self.saturation_ratio())

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------

    def _counts_from_quantized(self, quantized: QuantizedBuckets) -> np.ndarray:
        """Min-counter estimate for already-quantized descriptors."""
        estimate = np.full(
            quantized.num_items, np.iinfo(np.int64).max, dtype=np.int64
        )
        for table, family in enumerate(self._families):
            indices = family.indices(quantized.table_vectors(table))
            table_min = self.counting.count_from_indices(indices)
            np.minimum(estimate, table_min, out=estimate)
        return estimate

    def counts(self, descriptors: np.ndarray) -> np.ndarray:
        """Commonness estimate per descriptor (vectorized hot path).

        The classic counting-filter estimate: minimum over every probed
        counter (K per table, across all L tables).  A nonzero minimum
        means the descriptor landed in a populated bucket in *every*
        table — i.e. it is cleanly present in the global database — and
        the value bounds how often.  Sensor noise that knocks a
        descriptor out of even one table's bucket drives the estimate to
        zero; combined with the count-0-last rule in
        :meth:`rank_by_uniqueness`, the fingerprint therefore
        concentrates on keypoints that are simultaneously *rare*,
        *present*, and *cleanly observed* — precisely the ones the
        server can match.  The client calls this on every extracted
        keypoint each frame, so it stays constant-time per keypoint:
        quantize, hash, gather, min-reduce.
        """
        start = time.perf_counter()
        descriptors = np.asarray(descriptors, dtype=np.float32)
        quantized = QuantizedBuckets(self.projections.quantize(descriptors))
        estimate = self._counts_from_quantized(quantized)
        self._m_counts_seconds.observe(time.perf_counter() - start)
        self._m_counts_descriptors.inc(descriptors.shape[0])
        return estimate

    def lookup(self, descriptor: np.ndarray) -> OracleLookup:
        """Full lookup with multiprobe and verification for one descriptor.

        Scalar convenience wrapper over :meth:`lookup_batch`.
        """
        descriptor = np.asarray(descriptor, dtype=np.float32).reshape(1, -1)
        return self.lookup_batch(descriptor)[0]

    def lookup_batch(self, descriptors: np.ndarray) -> list[OracleLookup]:
        """Full lookups (multiprobe + verification) for a descriptor batch.

        Implements the paper's retrieval path: the original bucket plus
        multiprobe perturbations are checked per table; a probe passes on
        a full K-match, or on a K-1 partial match (the off-by-one false
        negative case); either way the verification filter must confirm
        the probe's position tuple.

        Fully vectorized: per table, the perturbation schedules for the
        whole batch come from one ranked argsort
        (:func:`repro.lsh.multiprobe.ranked_perturbations`), every probe
        of every descriptor is Murmur-hashed in one
        ``(n * (P + 1), M)`` pass, and counters resolve with one gather.
        The scalar walk stopped at the first accepting probe per table;
        here all probes are evaluated and the first accept selected by
        ``argmax`` — same outcome, including which vetoes are counted
        (only those before the first accept).  Bit-equivalent to
        :meth:`_lookup_batch_scalar`, the retained reference
        implementation.

        One ``oracle.lookup_batch`` span covers the whole batch (span
        cost amortizes over the rows, keeping the hot path inside the
        obs overhead budget); under an open client span or a
        :func:`repro.obs.use_trace_context` block it joins the calling
        query's trace.
        """
        descriptors = np.asarray(descriptors, dtype=np.float32)
        if descriptors.ndim != 2:
            raise ValueError(f"descriptors must be 2-D, got {descriptors.shape}")
        if descriptors.shape[0] == 0:
            return []
        with self.tracer.span(
            "oracle.lookup_batch", batch=int(descriptors.shape[0])
        ) as span:
            results = self._lookup_batch_vectorized(descriptors)
            span.set("present", sum(1 for r in results if r.present))
        return results

    def _lookup_batch_vectorized(
        self, descriptors: np.ndarray
    ) -> list[OracleLookup]:
        start = time.perf_counter()
        descriptors = np.asarray(descriptors, dtype=np.float32)
        if descriptors.ndim != 2:
            raise ValueError(f"descriptors must be 2-D, got {descriptors.shape}")
        num = descriptors.shape[0]
        if num == 0:
            return []
        buckets, residuals = self.projections.quantize_with_residuals(descriptors)
        quantized = QuantizedBuckets(buckets)
        counts = self._counts_from_quantized(quantized)
        num_hashes = self.config.bloom_hashes
        quorum = (self.config.lsh.num_tables + 1) // 2
        accepting_tables = np.zeros(num, dtype=np.int64)
        used_multiprobe = np.zeros(num, dtype=bool)
        multiprobe_accepts = 0
        verification_vetoes = 0
        for table, family in enumerate(self._families):
            projections, deltas = ranked_perturbations(
                residuals[:, table, :], self.config.max_probes_per_table
            )
            probes = quantized.probe_vectors(table, projections, deltas)
            num_slots = probes.shape[1]  # original + P perturbations
            indices = family.indices(probes.reshape(num * num_slots, -1))
            probed = self.counting.gather(indices)
            nonzero = (probed > 0).sum(axis=1)
            match = (nonzero == num_hashes) | (nonzero == num_hashes - 1)
            verified = self.verification.verify(indices)
            accept = (match & verified).reshape(num, num_slots)
            veto = (match & ~verified).reshape(num, num_slots)
            any_accept = accept.any(axis=1)
            first_accept = np.argmax(accept, axis=1)
            # Vetoes are only observed up to (not including) the first
            # accepting probe — the scalar walk broke out there.
            cutoff = np.where(any_accept, first_accept, num_slots)
            slot_index = np.arange(num_slots)[np.newaxis, :]
            verification_vetoes += int(
                (veto & (slot_index < cutoff[:, np.newaxis])).sum()
            )
            perturbed_accept = any_accept & (first_accept > 0)
            accepting_tables += any_accept
            used_multiprobe |= perturbed_accept
            multiprobe_accepts += int(perturbed_accept.sum())
        results = [
            OracleLookup(
                count=int(counts[row]),
                present=bool(accepting_tables[row] >= quorum),
                used_multiprobe=bool(used_multiprobe[row]),
            )
            for row in range(num)
        ]
        self._m_lookup_seconds.observe(time.perf_counter() - start)
        self._m_lookups_total.inc(num)
        if multiprobe_accepts:
            self._m_multiprobe_accepts.inc(multiprobe_accepts)
        if verification_vetoes:
            self._m_verification_vetoes.inc(verification_vetoes)
        return results

    def _lookup_batch_scalar(self, descriptors: np.ndarray) -> list[OracleLookup]:
        """Reference per-row implementation of :meth:`lookup_batch`.

        The pre-vectorization probe walk, kept (a) as the ground truth
        the property tests compare the vectorized path against and (b)
        as the baseline the ``bench_parallel`` trajectory measures.
        """
        start = time.perf_counter()
        descriptors = np.asarray(descriptors, dtype=np.float32)
        if descriptors.ndim != 2:
            raise ValueError(f"descriptors must be 2-D, got {descriptors.shape}")
        num = descriptors.shape[0]
        if num == 0:
            return []
        buckets, residuals = self.projections.quantize_with_residuals(descriptors)
        quantized = QuantizedBuckets(buckets)
        counts = self._counts_from_quantized(quantized)
        counters = self.counting.counters
        quorum = (self.config.lsh.num_tables + 1) // 2
        multiprobe_accepts = 0
        verification_vetoes = 0
        results: list[OracleLookup] = []
        for row in range(num):
            row_quantized = QuantizedBuckets(buckets[row : row + 1])
            accepting_tables = 0
            used_multiprobe = False
            for table, family in enumerate(self._families):
                probes: list[tuple[np.ndarray, bool]] = [
                    (row_quantized.table_vectors(table)[0], False)
                ]
                for projection, delta in perturbation_sets(
                    residuals[row, table, :], self.config.max_probes_per_table
                ):
                    probes.append(
                        (row_quantized.perturbed(table, projection, delta)[0], True)
                    )
                for vector, is_probe in probes:
                    indices = family.indices(vector[np.newaxis, :])
                    probed = counters[indices[0]]
                    nonzero = int((probed > 0).sum())
                    full_match = nonzero == self.config.bloom_hashes
                    partial_match = nonzero == self.config.bloom_hashes - 1
                    if not (full_match or partial_match):
                        continue
                    if not bool(self.verification.verify(indices)[0]):
                        verification_vetoes += 1
                        continue
                    accepting_tables += 1
                    if is_probe:
                        used_multiprobe = True
                        multiprobe_accepts += 1
                    break  # original bucket first; stop at the first accept
            # Presence needs a quorum of tables: with coarse quantization
            # (W = 500) a few "hotspot" buckets absorb many descriptors,
            # so a single-table accept is exactly the LSH/Bloom-interplay
            # false positive the paper warns about.  Requiring agreement
            # from half the tables mirrors the median aggregation of
            # :meth:`counts`.
            results.append(
                OracleLookup(
                    count=int(counts[row]),
                    present=accepting_tables >= quorum,
                    used_multiprobe=used_multiprobe,
                )
            )
        self._m_lookup_seconds.observe(time.perf_counter() - start)
        self._m_lookups_total.inc(num)
        if multiprobe_accepts:
            self._m_multiprobe_accepts.inc(multiprobe_accepts)
        if verification_vetoes:
            self._m_verification_vetoes.inc(verification_vetoes)
        return results

    def rank_by_uniqueness(
        self, descriptors: np.ndarray, counts: np.ndarray | None = None
    ) -> np.ndarray:
        """Keypoint indices ordered most-unique first.

        "Uniqueness counts ... yield a partial ordering, ranking
        keypoints from highly unique to common."  Saturated counts sort
        last; ties break by original order (stable sort) so the ranking
        is deterministic.
        """
        if counts is None:
            counts = self.counts(descriptors)
        capped = np.minimum(counts, self.counting.saturation)
        # Count 0 means "definitely not in the global database" — such
        # keypoints (sensor noise, blur artifacts) cannot match anything
        # server-side, so they rank after every present keypoint.  The
        # most valuable features appear globally, but rarely.
        sort_key = np.where(capped == 0, self.counting.saturation + 1, capped)
        return np.argsort(sort_key, kind="stable")

    # ------------------------------------------------------------------
    # Transfer
    # ------------------------------------------------------------------

    def snapshot(self, gzip_level: int = DEFAULT_GZIP_LEVEL) -> BloomSnapshot:
        """The GZIP'd download the client fetches ("approximately 10MB")."""
        return serialize_counting(self.counting, gzip_level)

    def download_bytes(self, gzip_level: int = DEFAULT_GZIP_LEVEL) -> int:
        """Size of the compressed client download (counting + verification).

        Both filters route through the serialization container at the
        same GZIP level.  Compressing a multi-megabyte filter pair is
        the expensive part of size accounting, so the result is cached
        until the next insertion changes the filters.
        """
        key = (self._inserted, gzip_level)
        if self._download_cache is not None and self._download_cache[0] == key:
            return self._download_cache[1]
        total = (
            self.snapshot(gzip_level).compressed_bytes
            + serialize_verification(self.verification, gzip_level).compressed_bytes
        )
        self._download_cache = (key, total)
        return total

    def invalidate_transfer_cache(self) -> None:
        """Drop the cached download size.

        The cache keys on the insertion count, so callers that mutate
        the filters without inserting (a delta refresh patching
        ``counting.counters`` in place) must invalidate explicitly.
        """
        self._download_cache = None

    def storage_bytes(self) -> int:
        """Uncompressed logical size (Fig. 15's in-memory VisualPrint bar)."""
        return self.counting.storage_bytes() + self.verification.storage_bytes()
