"""Incremental oracle updates — the paper's named future work.

"The app periodically refreshes its copy of the Bloom filter to stay
current with the server.  We could reduce data transfer by sending only
a compressed bitmask representing the diff between versions (not yet
implemented)."

This module implements that diff path.  Counting-filter versions differ
only where new insertions landed, so a delta is naturally sparse: we
encode the changed counter positions and their new values, then GZIP.
For modest growth between refreshes the delta is a small fraction of a
full snapshot; :func:`choose_refresh_payload` picks whichever is smaller
(heavy growth eventually favors the full snapshot, which the format
signals explicitly).

Delta wire format (v2): the header carries the target filter's full
geometry — ``num_counters``, ``num_hashes``, ``bits_per_counter`` and
the hash-family seed — so :func:`apply_delta` can refuse to patch a
filter the delta was not diffed against.  v1 headers recorded only
``num_counters``; a v1 payload whose other fields mismatch the base is
indistinguishable from a valid one, so v1 is rejected outright.

:class:`OracleRefresher` drives the refresh over a (possibly faulty)
channel: on delivery it applies the delta or snapshot; on failure the
client keeps serving from its stale filter and the gap is surfaced as
the ``oracle_staleness_seconds`` gauge.
"""

from __future__ import annotations

import gzip
import struct
import zlib
from dataclasses import dataclass

import numpy as np

from repro.bloom.container import SnapshotCorruptError
from repro.bloom.counting import CountingBloomFilter
from repro.core.oracle import UniquenessOracle
from repro.network.faults import (
    AttemptRecord,
    RetryPolicy,
    TransferOutcome,
    submit_payload,
)
from repro.network.upload import record_wasted_transfer
from repro.obs import MetricsRegistry, emit_event, record_span, resolve_registry
from repro.store.validate import validate_refresh_payload

__all__ = [
    "OracleDelta",
    "OracleRefresher",
    "QuarantinedPayload",
    "RefreshReport",
    "apply_delta",
    "choose_refresh_payload",
    "diff_counting_filters",
    "parse_delta",
]

_MAGIC = b"VPDT"
# v2: magic, version, num_counters, num_changes, num_hashes,
# bits_per_counter, hash seed (signed 8-byte — seeds may be negative).
_HEADER = struct.Struct("<4sIIIIIq")
_HEADER_V1 = struct.Struct("<4sIII")
_VERSION = 2


@dataclass(frozen=True)
class OracleDelta:
    """A compressed counter diff between two oracle versions."""

    payload: bytes
    num_changes: int
    raw_bytes: int

    @property
    def compressed_bytes(self) -> int:
        return len(self.payload)


def diff_counting_filters(
    old: CountingBloomFilter, new: CountingBloomFilter, gzip_level: int = 6
) -> OracleDelta:
    """Encode the counters that changed between two filter versions."""
    if old.num_counters != new.num_counters:
        raise ValueError("filters must have the same geometry to diff")
    if old.num_hashes != new.num_hashes:
        raise ValueError("filters must share their hash configuration")
    if old.bits_per_counter != new.bits_per_counter:
        raise ValueError("filters must share their counter width to diff")
    if old.hash_seed != new.hash_seed:
        raise ValueError("filters must share their hash seed to diff")
    changed = np.flatnonzero(old.counters != new.counters)
    body = (
        changed.astype("<u4").tobytes()
        + new.counters[changed].astype("<u2").tobytes()
    )
    raw = (
        _HEADER.pack(
            _MAGIC,
            _VERSION,
            new.num_counters,
            changed.size,
            new.num_hashes,
            new.bits_per_counter,
            new.hash_seed,
        )
        + body
    )
    return OracleDelta(
        payload=gzip.compress(raw, compresslevel=gzip_level),
        num_changes=int(changed.size),
        raw_bytes=len(raw),
    )


def parse_delta(
    base: CountingBloomFilter, delta: OracleDelta | bytes
) -> tuple[np.ndarray, np.ndarray]:
    """Decode and fully validate a delta against ``base`` without applying.

    Returns the ``(indices, values)`` pair of the sparse update.  Every
    failure mode — a damaged GZIP stream, a truncated header, geometry
    or hash-seed mismatch, a body whose length disagrees with the
    header's ``num_changes``, or counter indices beyond the filter —
    raises :class:`repro.bloom.SnapshotCorruptError` (a
    :class:`ValueError` subclass), so nothing corrupt ever reaches the
    assignment.
    """
    payload = delta.payload if isinstance(delta, OracleDelta) else delta
    try:
        raw = gzip.decompress(payload)
    except (OSError, EOFError, zlib.error) as error:
        raise SnapshotCorruptError(f"delta payload is not valid GZIP: {error}")
    if len(raw) < struct.calcsize("<4sI"):
        raise SnapshotCorruptError(
            f"delta truncated before its header ({len(raw)} bytes)"
        )
    magic, version = struct.unpack_from("<4sI", raw, 0)
    if magic != _MAGIC:
        raise SnapshotCorruptError("not a VisualPrint oracle delta (bad magic)")
    if version == 1:
        # A v1 header only recorded num_counters: a payload diffed
        # against a filter with different hashes/width/seed would pass
        # its checks and corrupt the base — ambiguity we refuse.
        raise SnapshotCorruptError(
            "delta format v1 lacks hash-geometry fields and cannot be "
            "validated; regenerate the delta (format v2)"
        )
    if version != _VERSION:
        raise SnapshotCorruptError(f"unsupported delta version {version}")
    if len(raw) < _HEADER.size:
        raise SnapshotCorruptError(
            f"delta truncated before its header ({len(raw)} bytes)"
        )
    (
        _,
        _,
        num_counters,
        num_changes,
        num_hashes,
        bits_per_counter,
        hash_seed,
    ) = _HEADER.unpack_from(raw, 0)
    if num_counters != base.num_counters:
        raise SnapshotCorruptError(
            f"delta targets {num_counters} counters, filter has {base.num_counters}"
        )
    if num_hashes != base.num_hashes:
        raise SnapshotCorruptError(
            f"delta targets {num_hashes} hashes, filter has {base.num_hashes}"
        )
    if bits_per_counter != base.bits_per_counter:
        raise SnapshotCorruptError(
            f"delta targets {bits_per_counter}-bit counters, "
            f"filter has {base.bits_per_counter}-bit"
        )
    if hash_seed != base.hash_seed:
        raise SnapshotCorruptError(
            f"delta targets hash seed {hash_seed}, filter has {base.hash_seed}"
        )
    body = len(raw) - _HEADER.size
    if body != num_changes * 6:
        raise SnapshotCorruptError(
            f"delta body is {body} bytes but the header's {num_changes} "
            f"changes require {num_changes * 6}"
        )
    offset = _HEADER.size
    indices = np.frombuffer(raw, dtype="<u4", count=num_changes, offset=offset)
    offset += num_changes * 4
    values = np.frombuffer(raw, dtype="<u2", count=num_changes, offset=offset)
    if indices.size and int(indices.max()) >= base.num_counters:
        raise SnapshotCorruptError(
            f"delta touches counter {int(indices.max())}, filter has only "
            f"{base.num_counters}"
        )
    return indices, values


def apply_delta(base: CountingBloomFilter, delta: OracleDelta | bytes) -> None:
    """Patch ``base`` in place to the delta's target version.

    Accepts an :class:`OracleDelta` or its raw compressed payload (what
    arrives over the channel); validation is :func:`parse_delta`'s.
    Applied values are clamped to ``base.saturation`` as a last defense
    against corrupt payloads (the on-wire ``<u2`` can encode values the
    filter's ``bits_per_counter`` cannot) — the refresher's swap-in
    validation is stricter and rejects such payloads outright.
    """
    indices, values = parse_delta(base, delta)
    clamped = np.minimum(values.astype(np.int64), base.saturation)
    base.set_at(indices.astype(np.int64), clamped)


def choose_refresh_payload(
    old_oracle: UniquenessOracle, new_oracle: UniquenessOracle
) -> tuple[str, bytes]:
    """Pick the cheaper client refresh: counter delta or full snapshot.

    Returns ``("delta", payload)`` or ``("snapshot", payload)``.  The two
    oracles must share configuration (the client's copy is always an
    older version of the server's, so this holds by construction).
    """
    delta = diff_counting_filters(old_oracle.counting, new_oracle.counting)
    snapshot = new_oracle.snapshot()
    if delta.compressed_bytes < snapshot.compressed_bytes:
        return "delta", delta.payload
    return "snapshot", snapshot.payload


@dataclass(frozen=True)
class RefreshReport:
    """One :meth:`OracleRefresher.refresh` attempt, summarized."""

    status: str  # "applied" | "stale" | "rejected"
    kind: str  # "delta" | "snapshot"
    payload_bytes: int
    attempts: int
    latency_seconds: float
    staleness_seconds: float


@dataclass(frozen=True)
class QuarantinedPayload:
    """A delivered-but-corrupt refresh payload the client refused to apply."""

    kind: str  # "delta" | "snapshot"
    payload: bytes
    error: str


class OracleRefresher:
    """Keeps a client oracle current; degrades gracefully when it can't.

    The refresher downloads the server's delta (or snapshot, whichever
    is smaller) over ``channel`` with retries.  When every attempt
    fails, the client's copy is left untouched — it keeps answering
    uniqueness queries from the stale snapshot — and the age of that
    snapshot is published as the ``oracle_staleness_seconds`` gauge so
    dashboards can see how far behind a degraded client is running.

    Time is the caller's simulated clock (``now_seconds``); the
    refresher never reads the wall clock.
    """

    def __init__(
        self,
        oracle: UniquenessOracle,
        retry_policy: RetryPolicy | None = None,
        registry: MetricsRegistry | None = None,
        fault_injector=None,
        quarantine_limit: int = 4,
    ) -> None:
        self.oracle = oracle
        self.retry_policy = retry_policy or RetryPolicy()
        self._registry = resolve_registry(registry)
        self.last_refresh_seconds = 0.0
        # Chaos hook: a repro.store.StorageFaultInjector corrupting the
        # delivered payload bytes (a flipped bit in flight or in the
        # download cache) before swap-in validation sees them.
        self.fault_injector = fault_injector
        self.quarantine_limit = int(quarantine_limit)
        self.quarantined: list[QuarantinedPayload] = []
        self._m_staleness = self._registry.gauge(
            "oracle_staleness_seconds",
            help="age of the client's oracle copy (0 right after a refresh)",
        )
        self._m_refreshes = {
            outcome: self._registry.counter(
                "oracle_refreshes_total",
                help="oracle refresh attempts by outcome",
                outcome=outcome,
            )
            for outcome in ("applied", "failed", "rejected")
        }
        self._m_rejected = {
            kind: self._registry.counter(
                "oracle_snapshots_rejected_total",
                help="delivered refresh payloads refused by swap-in validation",
                kind=kind,
            )
            for kind in ("delta", "snapshot")
        }

    @property
    def metrics(self) -> MetricsRegistry:
        return self._registry

    def staleness_seconds(self, now_seconds: float) -> float:
        """Age of the client's oracle copy at ``now_seconds``."""
        return max(0.0, now_seconds - self.last_refresh_seconds)

    def refresh(
        self,
        server_oracle: UniquenessOracle,
        channel=None,
        rng: np.random.Generator | None = None,
        now_seconds: float = 0.0,
    ) -> RefreshReport:
        """Pull the server's state down; keep the stale copy on failure."""
        kind, payload = choose_refresh_payload(self.oracle, server_oracle)
        if channel is not None:
            outcome = submit_payload(
                channel,
                [len(payload)],
                self.retry_policy,
                rng,
                registry=self._registry,
                leg="down",
            )
        else:
            outcome = TransferOutcome(
                status="delivered",
                attempt_records=(AttemptRecord("ok", 0.0, len(payload), 0),),
            )
        if not outcome.delivered:
            staleness = self.staleness_seconds(now_seconds)
            self._m_staleness.set(staleness)
            self._m_refreshes["failed"].inc()
            record_span(
                "oracle.refresh",
                outcome.latency_seconds,
                kind=kind,
                status="stale",
                staleness_seconds=staleness,
            )
            return RefreshReport(
                status="stale",
                kind=kind,
                payload_bytes=len(payload),
                attempts=outcome.attempts,
                latency_seconds=outcome.latency_seconds,
                staleness_seconds=staleness,
            )
        if self.fault_injector is not None:
            payload, _ = self.fault_injector.mangle(
                payload, label=f"download/{kind}"
            )
        try:
            self._apply(kind, payload)
        except SnapshotCorruptError as error:
            # Delivered but damaged: quarantine the payload for forensics,
            # count the rejection, and keep serving the stale filter —
            # a corrupt oracle must never be swapped in.
            self.quarantined.append(
                QuarantinedPayload(kind=kind, payload=payload, error=str(error))
            )
            del self.quarantined[: -self.quarantine_limit]
            emit_event(
                "snapshot.quarantine",
                snapshot=kind,
                payload_bytes=len(payload),
                error=str(error),
            )
            # The downlink delivered these bytes for nothing: account
            # them as wasted transfer alongside the in-flight losses.
            record_wasted_transfer(
                len(payload),
                channel=getattr(channel, "name", "download"),
                registry=self._registry,
            )
            staleness = self.staleness_seconds(now_seconds)
            self._m_staleness.set(staleness)
            self._m_refreshes["rejected"].inc()
            self._m_rejected[kind].inc()
            record_span(
                "oracle.refresh",
                outcome.latency_seconds,
                kind=kind,
                status="rejected",
                staleness_seconds=staleness,
            )
            return RefreshReport(
                status="rejected",
                kind=kind,
                payload_bytes=len(payload),
                attempts=outcome.attempts,
                latency_seconds=outcome.latency_seconds,
                staleness_seconds=staleness,
            )
        self.last_refresh_seconds = now_seconds
        self._m_staleness.set(0.0)
        self._m_refreshes["applied"].inc()
        record_span(
            "oracle.refresh",
            outcome.latency_seconds,
            kind=kind,
            status="applied",
            bytes=len(payload),
        )
        return RefreshReport(
            status="applied",
            kind=kind,
            payload_bytes=len(payload),
            attempts=outcome.attempts,
            latency_seconds=outcome.latency_seconds,
            staleness_seconds=0.0,
        )

    def _apply(self, kind: str, payload: bytes) -> None:
        """Validate then swap in; raises before any mutation on corruption.

        :func:`repro.store.validate_refresh_payload` parses the payload
        fully (header/body length consistency, geometry and hash
        compatibility with the active filter, counter-saturation bounds)
        without touching the base filter; only a payload that passes
        everything is applied, in one assignment.
        """
        base = self.oracle.counting
        validated = validate_refresh_payload(kind, payload, base)
        if validated.kind == "delta":
            base.set_at(validated.indices.astype(np.int64), validated.values)
        else:
            base.counters = validated.counters
        self.oracle.invalidate_transfer_cache()
