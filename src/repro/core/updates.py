"""Incremental oracle updates — the paper's named future work.

"The app periodically refreshes its copy of the Bloom filter to stay
current with the server.  We could reduce data transfer by sending only
a compressed bitmask representing the diff between versions (not yet
implemented)."

This module implements that diff path.  Counting-filter versions differ
only where new insertions landed, so a delta is naturally sparse: we
encode the changed counter positions and their new values, then GZIP.
For modest growth between refreshes the delta is a small fraction of a
full snapshot; :func:`choose_refresh_payload` picks whichever is smaller
(heavy growth eventually favors the full snapshot, which the format
signals explicitly).
"""

from __future__ import annotations

import gzip
import struct
from dataclasses import dataclass

import numpy as np

from repro.bloom.counting import CountingBloomFilter
from repro.core.oracle import UniquenessOracle

__all__ = [
    "OracleDelta",
    "apply_delta",
    "choose_refresh_payload",
    "diff_counting_filters",
]

_MAGIC = b"VPDT"
_HEADER = struct.Struct("<4sIII")  # magic, version, num_counters, num_changes


@dataclass(frozen=True)
class OracleDelta:
    """A compressed counter diff between two oracle versions."""

    payload: bytes
    num_changes: int
    raw_bytes: int

    @property
    def compressed_bytes(self) -> int:
        return len(self.payload)


def diff_counting_filters(
    old: CountingBloomFilter, new: CountingBloomFilter, gzip_level: int = 6
) -> OracleDelta:
    """Encode the counters that changed between two filter versions."""
    if old.num_counters != new.num_counters:
        raise ValueError("filters must have the same geometry to diff")
    if old.num_hashes != new.num_hashes:
        raise ValueError("filters must share their hash configuration")
    changed = np.flatnonzero(old.counters != new.counters)
    body = (
        changed.astype("<u4").tobytes()
        + new.counters[changed].astype("<u2").tobytes()
    )
    raw = _HEADER.pack(_MAGIC, 1, new.num_counters, changed.size) + body
    return OracleDelta(
        payload=gzip.compress(raw, compresslevel=gzip_level),
        num_changes=int(changed.size),
        raw_bytes=len(raw),
    )


def apply_delta(base: CountingBloomFilter, delta: OracleDelta) -> None:
    """Patch ``base`` in place to the delta's target version."""
    raw = gzip.decompress(delta.payload)
    magic, version, num_counters, num_changes = _HEADER.unpack_from(raw, 0)
    if magic != _MAGIC:
        raise ValueError("not a VisualPrint oracle delta (bad magic)")
    if version != 1:
        raise ValueError(f"unsupported delta version {version}")
    if num_counters != base.num_counters:
        raise ValueError(
            f"delta targets {num_counters} counters, filter has {base.num_counters}"
        )
    offset = _HEADER.size
    indices = np.frombuffer(raw, dtype="<u4", count=num_changes, offset=offset)
    offset += num_changes * 4
    values = np.frombuffer(raw, dtype="<u2", count=num_changes, offset=offset)
    base.counters[indices.astype(np.int64)] = values


def choose_refresh_payload(
    old_oracle: UniquenessOracle, new_oracle: UniquenessOracle
) -> tuple[str, bytes]:
    """Pick the cheaper client refresh: counter delta or full snapshot.

    Returns ``("delta", payload)`` or ``("snapshot", payload)``.  The two
    oracles must share configuration (the client's copy is always an
    older version of the server's, so this holds by construction).
    """
    delta = diff_counting_filters(old_oracle.counting, new_oracle.counting)
    snapshot = new_oracle.snapshot()
    if delta.compressed_bytes < snapshot.compressed_bytes:
        return "delta", delta.payload
    return "snapshot", snapshot.payload
