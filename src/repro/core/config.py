"""System-wide configuration.

The LSH/Bloom operating point follows the paper's empirical tuning:
``L = 10, M = 7, W = 500, K = 8``, 10-bit counters (saturation 1023, the
largest value 10 bits represent — "beyond [that], we treat a keypoint as
not unique enough for consideration"), and Bloom capacity "up to 2.5M
unique feature vectors with less than 1% false positives".
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.lsh.projections import E2LSHParams
from repro.util.validation import check_positive

if TYPE_CHECKING:  # avoid import cycles; configs only reference these
    from repro.features.sift import SiftParams
    from repro.network.faults import RetryPolicy
    from repro.network.linkstate import AdaptiveConfig

__all__ = ["ClientConfig", "ServerConfig", "VisualPrintConfig"]


def _counters_for_capacity(capacity: int, hashes_per_insert: int) -> int:
    """Counting-filter size at the paper's operating density.

    Each descriptor insertion bumps ``hashes_per_insert`` counters (K per
    LSH table).  The paper runs its filters *dense* — at 2.5M descriptors
    it reports 162 MB of in-RAM filter state, i.e. roughly 0.4 counters
    per insertion-hash — trading some counter collision (tolerated via
    saturation plus the verification filter) for a download small enough
    to ship to phones.  We adopt the same density, rounded to a power of
    two.
    """
    raw = 0.4 * capacity * hashes_per_insert
    return 1 << max(10, math.ceil(math.log2(raw)))


@dataclass(frozen=True)
class VisualPrintConfig:
    """All tunables of the VisualPrint pipeline in one place."""

    # E2LSH (paper: L=10, M=7, W=500 over 128-D integer SIFT).
    lsh: E2LSHParams = field(default_factory=E2LSHParams)
    # Counting Bloom filter.
    bloom_hashes: int = 8  # K
    bits_per_counter: int = 10  # saturation at 1023
    descriptor_capacity: int = 500_000  # descriptors the oracle is sized for
    # Verification filter sizing relative to the primary.
    verification_bits_factor: float = 1.0
    # Multiprobe lookups per table (beyond the original bucket).
    max_probes_per_table: int = 2
    # Client fingerprinting.
    fingerprint_size: int = 200  # the paper evaluates 200 and 500
    # Server retrieval.
    match_ratio: float = 0.8
    nearest_neighbors_per_keypoint: int = 3  # |K| * n candidate 3D points
    # Localization.
    cluster_radius: float = 3.0
    min_cluster_size: int = 5
    seed: int = 0

    def __post_init__(self) -> None:
        check_positive("bloom_hashes", self.bloom_hashes)
        check_positive("fingerprint_size", self.fingerprint_size)
        check_positive("descriptor_capacity", self.descriptor_capacity)
        if not 0 < self.match_ratio <= 1:
            raise ValueError(f"match_ratio must be in (0, 1], got {self.match_ratio}")

    @property
    def hashes_per_insert(self) -> int:
        """Counter bumps per descriptor insertion: K per LSH table."""
        return self.bloom_hashes * self.lsh.num_tables

    @property
    def num_counters(self) -> int:
        """Primary counting-filter size derived from the capacity."""
        return _counters_for_capacity(self.descriptor_capacity, self.hashes_per_insert)

    @property
    def verification_bits(self) -> int:
        """Verification filter size (1 bit per position)."""
        return max(1024, int(self.num_counters * self.verification_bits_factor))

    @property
    def saturation(self) -> int:
        return (1 << self.bits_per_counter) - 1

    def paper_scale(self) -> "VisualPrintConfig":
        """The same config at the paper's 2.5M-descriptor operating point."""
        from dataclasses import replace

        return replace(self, descriptor_capacity=2_500_000)


_ADMISSION_MODES = ("wait", "reject")


@dataclass(frozen=True)
class ServerConfig:
    """Everything the server-side stack needs, as one config object.

    ``pipeline`` carries the paper's LSH/Bloom operating point
    (:class:`VisualPrintConfig`); the remaining fields describe the
    serving topology a :class:`repro.serving.ServingFrontend` builds
    from this config (shard count, per-shard execution mode, queue
    bound, admission policy).  ``VisualPrintServer.from_config`` reads
    only ``pipeline`` — a single-shard engine needs no topology.
    """

    pipeline: VisualPrintConfig = field(default_factory=VisualPrintConfig)
    # Serving topology (see repro.serving.ServingFrontend.from_config).
    num_shards: int = 1
    workers: int = 1
    queue_depth: int = 64
    admission: str = "wait"
    hash_replicas: int = 64
    # Shards serving each venue (successor-list replication on the
    # ring); >1 lets one hot venue spread over several shard queues.
    replication_factor: int = 1
    seed: int = 0

    def __post_init__(self) -> None:
        check_positive("num_shards", self.num_shards)
        check_positive("queue_depth", self.queue_depth)
        check_positive("hash_replicas", self.hash_replicas)
        check_positive("replication_factor", self.replication_factor)
        if self.workers < 1:
            raise ValueError(f"workers must be >= 1, got {self.workers}")
        if self.admission not in _ADMISSION_MODES:
            raise ValueError(
                f"admission must be one of {_ADMISSION_MODES}, "
                f"got {self.admission!r}"
            )


@dataclass(frozen=True)
class ClientConfig:
    """Everything the client library needs, as one config object.

    Replaces the grab-bag of positional kwargs on
    :class:`repro.core.VisualPrintClient`: ``pipeline`` is the shared
    operating point, ``sift`` overrides extractor tuning (``None`` keeps
    the client's default low-contrast threshold), ``retry`` is the
    uplink retry policy, the ``degrade_*`` fields shape the
    fingerprint degradation ladder (DESIGN.md §9), and ``adaptive``
    (an :class:`repro.network.linkstate.AdaptiveConfig`) turns on
    predictive link-quality estimation — the client then shapes each
    transmission *before* sending instead of only reacting to failures
    (DESIGN.md §15).
    """

    pipeline: VisualPrintConfig = field(default_factory=VisualPrintConfig)
    sift: "SiftParams | None" = None
    retry: "RetryPolicy | None" = None
    degrade_floor: int = 16
    degrade_steps: int = 2
    adaptive: "AdaptiveConfig | None" = None

    def __post_init__(self) -> None:
        check_positive("degrade_floor", self.degrade_floor)
        if self.degrade_steps < 0:
            raise ValueError(
                f"degrade_steps must be >= 0, got {self.degrade_steps}"
            )
