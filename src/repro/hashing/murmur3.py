"""MurmurHash3, x86 32-bit variant (Austin Appleby's public-domain design).

Two implementations share the same mixing constants:

* :func:`murmur3_32` — byte-exact scalar reference over ``bytes``.
* :func:`murmur3_32_vectors` — numpy-vectorized over rows of ``uint32``
  blocks, used to hash millions of LSH bucket vectors per second.

The vectorized variant treats each row as the little-endian byte string of
its ``uint32`` words, so for block-aligned input it matches the scalar
function bit for bit (verified in the test suite).
"""

from __future__ import annotations

import numpy as np

__all__ = ["murmur3_32", "murmur3_32_vectors", "murmur3_32_vectors_multiseed"]

_C1 = 0xCC9E2D51
_C2 = 0x1B873593
_MASK32 = 0xFFFFFFFF


def _rotl32(value: int, shift: int) -> int:
    return ((value << shift) | (value >> (32 - shift))) & _MASK32


def _fmix32(value: int) -> int:
    value ^= value >> 16
    value = (value * 0x85EBCA6B) & _MASK32
    value ^= value >> 13
    value = (value * 0xC2B2AE35) & _MASK32
    value ^= value >> 16
    return value


def murmur3_32(data: bytes, seed: int = 0) -> int:
    """Hash ``data`` to an unsigned 32-bit integer (scalar reference)."""
    length = len(data)
    state = seed & _MASK32
    rounded_end = (length // 4) * 4

    for offset in range(0, rounded_end, 4):
        block = int.from_bytes(data[offset : offset + 4], "little")
        block = (block * _C1) & _MASK32
        block = _rotl32(block, 15)
        block = (block * _C2) & _MASK32
        state ^= block
        state = _rotl32(state, 13)
        state = (state * 5 + 0xE6546B64) & _MASK32

    tail = 0
    remaining = length & 3
    if remaining == 3:
        tail ^= data[rounded_end + 2] << 16
    if remaining >= 2:
        tail ^= data[rounded_end + 1] << 8
    if remaining >= 1:
        tail ^= data[rounded_end]
        tail = (tail * _C1) & _MASK32
        tail = _rotl32(tail, 15)
        tail = (tail * _C2) & _MASK32
        state ^= tail

    state ^= length
    return _fmix32(state)


def _rotl32_array(values: np.ndarray, shift: int) -> np.ndarray:
    return (values << np.uint32(shift)) | (values >> np.uint32(32 - shift))


def _fmix32_array(values: np.ndarray) -> np.ndarray:
    values = values ^ (values >> np.uint32(16))
    values = values * np.uint32(0x85EBCA6B)
    values = values ^ (values >> np.uint32(13))
    values = values * np.uint32(0xC2B2AE35)
    values = values ^ (values >> np.uint32(16))
    return values


def murmur3_32_vectors(blocks: np.ndarray, seed: int = 0) -> np.ndarray:
    """Hash each row of ``blocks`` (shape ``(n, words)``, dtype uint32).

    Every row is interpreted as the concatenation of its words in
    little-endian byte order, so
    ``murmur3_32_vectors(rows)[i] == murmur3_32(rows[i].tobytes())``.

    Returns an array of ``n`` unsigned 32-bit hashes.
    """
    blocks = np.ascontiguousarray(blocks, dtype=np.uint32)
    if blocks.ndim != 2:
        raise ValueError(f"blocks must be 2-D (n, words), got shape {blocks.shape}")
    n_rows, n_words = blocks.shape

    with np.errstate(over="ignore"):
        state = np.full(n_rows, seed & _MASK32, dtype=np.uint32)
        for word_index in range(n_words):
            block = blocks[:, word_index].copy()
            block *= np.uint32(_C1)
            block = _rotl32_array(block, 15)
            block *= np.uint32(_C2)
            state ^= block
            state = _rotl32_array(state, 13)
            state = state * np.uint32(5) + np.uint32(0xE6546B64)
        state ^= np.uint32(4 * n_words)
        return _fmix32_array(state)


def murmur3_32_vectors_multiseed(blocks: np.ndarray, seeds: np.ndarray) -> np.ndarray:
    """Hash each row of ``blocks`` under every seed in ``seeds`` at once.

    Returns shape ``(len(seeds), n)`` where row ``s`` equals
    ``murmur3_32_vectors(blocks, seed=seeds[s])`` bit for bit: the mixing
    of each input word into a per-chunk key is seed-independent, so it is
    computed once and broadcast into all seed states — the per-word ops
    are identical to the single-seed path, just stacked.

    A Bloom hash family needs K seeds over the *same* vectors, so this
    turns K full passes (each re-mixing every input word) into one.
    """
    blocks = np.ascontiguousarray(blocks, dtype=np.uint32)
    if blocks.ndim != 2:
        raise ValueError(f"blocks must be 2-D (n, words), got shape {blocks.shape}")
    seeds = np.asarray(seeds, dtype=np.int64)
    if seeds.ndim != 1:
        raise ValueError(f"seeds must be 1-D, got shape {seeds.shape}")
    n_rows, n_words = blocks.shape

    with np.errstate(over="ignore"):
        state = np.empty((seeds.shape[0], n_rows), dtype=np.uint32)
        state[:] = (seeds & _MASK32).astype(np.uint32)[:, None]
        for word_index in range(n_words):
            block = blocks[:, word_index].copy()
            block *= np.uint32(_C1)
            block = _rotl32_array(block, 15)
            block *= np.uint32(_C2)
            state ^= block[None, :]
            state = _rotl32_array(state, 13)
            state = state * np.uint32(5) + np.uint32(0xE6546B64)
        state ^= np.uint32(4 * n_words)
        return _fmix32_array(state)
