"""Families of K independent hash functions for Bloom filter indexing.

A counting Bloom filter needs ``K`` independent indices per element.  Both
families here map a batch of fixed-length integer vectors (the quantized
LSH bucket vectors) to ``(n, K)`` indices in ``[0, table_size)``.

:class:`Murmur3Family` follows the paper: one Murmur-3 evaluation per
``(element, k)`` pair using ``k`` as the hash seed.  It is fully
vectorized across elements.  :class:`MultiplyShiftFamily` is a cheaper
universal-hash alternative kept for the ablation benchmarks.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

from repro.hashing.murmur3 import murmur3_32_vectors, murmur3_32_vectors_multiseed
from repro.util.validation import check_positive

__all__ = ["HashFamily", "Murmur3Family", "MultiplyShiftFamily"]


class HashFamily(ABC):
    """K hash functions from integer vectors to table indices."""

    def __init__(self, num_hashes: int, table_size: int) -> None:
        check_positive("num_hashes", num_hashes)
        check_positive("table_size", table_size)
        self.num_hashes = int(num_hashes)
        self.table_size = int(table_size)

    @abstractmethod
    def indices(self, vectors: np.ndarray) -> np.ndarray:
        """Map ``(n, words)`` integer vectors to ``(n, K)`` table indices."""

    def indices_single(self, vector: np.ndarray) -> np.ndarray:
        """Convenience wrapper for one vector; returns shape ``(K,)``."""
        return self.indices(np.asarray(vector)[np.newaxis, :])[0]


class Murmur3Family(HashFamily):
    """K MurmurHash3 functions distinguished by seed (the paper's choice)."""

    def __init__(self, num_hashes: int, table_size: int, base_seed: int = 0) -> None:
        super().__init__(num_hashes, table_size)
        self.base_seed = int(base_seed)

    def indices(self, vectors: np.ndarray) -> np.ndarray:
        vectors = np.ascontiguousarray(vectors, dtype=np.uint32)
        if vectors.ndim != 2:
            raise ValueError(f"vectors must be 2-D, got shape {vectors.shape}")
        seeds = self.base_seed + np.arange(self.num_hashes, dtype=np.int64)
        hashes = murmur3_32_vectors_multiseed(vectors, seeds).T.astype(np.uint64)
        return (hashes % np.uint64(self.table_size)).astype(np.int64)

    def indices_reference(self, vectors: np.ndarray) -> np.ndarray:
        """One murmur pass per seed — the pre-batched reference for parity."""
        vectors = np.ascontiguousarray(vectors, dtype=np.uint32)
        if vectors.ndim != 2:
            raise ValueError(f"vectors must be 2-D, got shape {vectors.shape}")
        columns = [
            murmur3_32_vectors(vectors, seed=self.base_seed + k)
            for k in range(self.num_hashes)
        ]
        hashes = np.stack(columns, axis=1).astype(np.uint64)
        return (hashes % np.uint64(self.table_size)).astype(np.int64)


class MultiplyShiftFamily(HashFamily):
    """Dietzfelbinger multiply-shift universal hashing (ablation baseline)."""

    def __init__(
        self,
        num_hashes: int,
        table_size: int,
        rng: np.random.Generator | None = None,
    ) -> None:
        super().__init__(num_hashes, table_size)
        generator = rng if rng is not None else np.random.default_rng(0)
        # Odd 64-bit multipliers, one row per hash function.
        self._multipliers = (
            generator.integers(1, 2**63, size=(num_hashes, 64), dtype=np.uint64)
            * np.uint64(2)
            + np.uint64(1)
        )

    def indices(self, vectors: np.ndarray) -> np.ndarray:
        vectors = np.ascontiguousarray(vectors, dtype=np.uint64)
        if vectors.ndim != 2:
            raise ValueError(f"vectors must be 2-D, got shape {vectors.shape}")
        n_rows, n_words = vectors.shape
        if n_words > self._multipliers.shape[1]:
            raise ValueError(
                f"vectors have {n_words} words; family supports at most "
                f"{self._multipliers.shape[1]}"
            )
        out = np.empty((n_rows, self.num_hashes), dtype=np.int64)
        with np.errstate(over="ignore"):
            for k in range(self.num_hashes):
                mixed = vectors * self._multipliers[k, :n_words]
                combined = np.zeros(n_rows, dtype=np.uint64)
                for word_index in range(n_words):
                    combined = combined * np.uint64(0x9E3779B97F4A7C15) + mixed[
                        :, word_index
                    ]
                out[:, k] = ((combined >> np.uint64(16)).astype(np.uint64)
                             % np.uint64(self.table_size)).astype(np.int64)
        return out
