"""Non-cryptographic hashing used by Bloom filters and LSH bucket keys.

The paper hashes LSH bucket vectors with MurmurHash3 ("a hash is selected
for execution speed over cryptographic guarantees, such as Murmur-3").
This package provides a faithful scalar MurmurHash3 (x86, 32-bit) plus a
numpy-vectorized variant that hashes many fixed-length integer vectors at
once — the hot path when indexing hundreds of thousands of descriptors.
"""

from repro.hashing.families import HashFamily, MultiplyShiftFamily, Murmur3Family
from repro.hashing.murmur3 import (
    murmur3_32,
    murmur3_32_vectors,
    murmur3_32_vectors_multiseed,
)

__all__ = [
    "HashFamily",
    "MultiplyShiftFamily",
    "Murmur3Family",
    "murmur3_32",
    "murmur3_32_vectors",
    "murmur3_32_vectors_multiseed",
]
