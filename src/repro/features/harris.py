"""Harris corner detection (lightweight alternative front-end).

The paper notes VisualPrint is not SIFT-specific: "one can use any
keypoint detection algorithm ... without modification in the system
pipeline".  The Harris detector exercises that claim in tests and in the
detector-ablation benchmark; descriptors still come from the SIFT
descriptor stage, applied at a fixed scale.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import ndimage

from repro.features.keypoint import KeypointSet

__all__ = ["harris_response", "HarrisDetector"]


def harris_response(
    image: np.ndarray, sigma: float = 1.5, kappa: float = 0.05
) -> np.ndarray:
    """The Harris corner response ``det(M) - kappa * trace(M)^2``."""
    image = np.asarray(image, dtype=np.float32)
    if image.ndim != 2:
        raise ValueError(f"image must be 2-D grayscale, got {image.shape}")
    gy, gx = np.gradient(image)
    sxx = ndimage.gaussian_filter(gx * gx, sigma, mode="nearest")
    syy = ndimage.gaussian_filter(gy * gy, sigma, mode="nearest")
    sxy = ndimage.gaussian_filter(gx * gy, sigma, mode="nearest")
    det = sxx * syy - sxy**2
    trace = sxx + syy
    return det - kappa * trace**2


@dataclass
class HarrisDetector:
    """Non-maximum-suppressed Harris corners with SIFT-style descriptors."""

    sigma: float = 1.5
    kappa: float = 0.05
    relative_threshold: float = 0.01
    nms_radius: int = 4
    max_keypoints: int | None = 1000

    def detect(self, image: np.ndarray) -> KeypointSet:
        """Detect corners and describe them with the SIFT descriptor stage."""
        from repro.features.sift import SiftExtractor, SiftParams

        response = harris_response(image, self.sigma, self.kappa)
        local_max = ndimage.maximum_filter(
            response, size=2 * self.nms_radius + 1, mode="nearest"
        )
        threshold = self.relative_threshold * float(response.max())
        mask = (response == local_max) & (response > max(threshold, 0.0))
        margin = 8
        mask[:margin, :] = False
        mask[-margin:, :] = False
        mask[:, :margin] = False
        mask[:, -margin:] = False
        ys, xs = np.nonzero(mask)
        if ys.size == 0:
            return KeypointSet.empty()

        strengths = response[ys, xs]
        order = np.argsort(-strengths)
        if self.max_keypoints is not None:
            order = order[: self.max_keypoints]
        ys, xs, strengths = ys[order], xs[order], strengths[order]

        # Describe at a fixed scale through the SIFT descriptor machinery:
        # build a tiny "pyramid" view and reuse the private describe stage.
        extractor = SiftExtractor(SiftParams())
        from repro.features.gaussian import GaussianPyramid

        pyramid = GaussianPyramid.build(image, num_octaves=1)
        oriented = np.column_stack(
            [
                np.full(ys.shape, 1.0),  # level 1
                ys.astype(np.float64),
                xs.astype(np.float64),
                strengths.astype(np.float64),
                np.zeros(ys.shape),  # upright orientation
            ]
        )
        return extractor._describe(pyramid, 0, oriented)
