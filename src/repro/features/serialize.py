"""Keypoint wire format.

Figure 5 measures "SIFT feature size (in bytes) ratio to image size",
uncompressed and after "heavy GZIP compression"; Figure 14's fingerprint
upload (about 51.2 KB for 200 keypoints with framing) uses the same
record layout.  Each record is:

======== ======= ==========================================
field    bytes   encoding
======== ======= ==========================================
x, y     8       two float32 pixel coordinates
scale    4       float32
angle    4       float32 radians
descr    128     128 x uint8 (the integer SIFT descriptor)
======== ======= ==========================================

144 bytes per keypoint — "extracted keypoints typically require at least
as much space as the image itself" once thousands are present.
"""

from __future__ import annotations

import gzip
import struct

import numpy as np

from repro.features.keypoint import DESCRIPTOR_DIM, KeypointSet

__all__ = [
    "keypoint_record_bytes",
    "serialize_keypoints",
    "serialized_size",
    "deserialize_keypoints",
]

_HEADER = struct.Struct("<4sI")
_MAGIC = b"VPKP"


def keypoint_record_bytes() -> int:
    """Bytes per serialized keypoint record."""
    return 4 * 4 + DESCRIPTOR_DIM


def serialized_size(count: int) -> int:
    """Uncompressed wire bytes for a ``count``-keypoint payload.

    Lets degradation planning price a shrunken fingerprint without
    serializing it: header plus ``count`` fixed-width records.
    """
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    return _HEADER.size + count * keypoint_record_bytes()


def serialize_keypoints(keypoints: KeypointSet, compress: bool = False) -> bytes:
    """Pack a keypoint set into its wire format (optionally GZIP'd)."""
    count = len(keypoints)
    meta = np.empty((count, 4), dtype="<f4")
    meta[:, 0:2] = keypoints.positions
    meta[:, 2] = keypoints.scales
    meta[:, 3] = keypoints.orientations
    descriptors = np.clip(np.rint(keypoints.descriptors), 0, 255).astype(np.uint8)
    payload = _HEADER.pack(_MAGIC, count) + meta.tobytes() + descriptors.tobytes()
    if compress:
        return gzip.compress(payload, compresslevel=9)
    return payload


def deserialize_keypoints(payload: bytes) -> KeypointSet:
    """Inverse of :func:`serialize_keypoints` (detects GZIP automatically)."""
    if payload[:2] == b"\x1f\x8b":
        payload = gzip.decompress(payload)
    magic, count = _HEADER.unpack_from(payload, 0)
    if magic != _MAGIC:
        raise ValueError("not a VisualPrint keypoint payload (bad magic)")
    offset = _HEADER.size
    meta = np.frombuffer(payload, dtype="<f4", count=count * 4, offset=offset)
    meta = meta.reshape(count, 4)
    offset += count * 16
    descriptors = np.frombuffer(
        payload, dtype=np.uint8, count=count * DESCRIPTOR_DIM, offset=offset
    ).reshape(count, DESCRIPTOR_DIM)
    return KeypointSet(
        positions=meta[:, 0:2].astype(np.float32).copy(),
        scales=meta[:, 2].astype(np.float32).copy(),
        orientations=meta[:, 3].astype(np.float32).copy(),
        responses=np.zeros(count, dtype=np.float32),
        descriptors=descriptors.astype(np.float32),
    )
