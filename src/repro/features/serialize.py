"""Keypoint wire format.

Figure 5 measures "SIFT feature size (in bytes) ratio to image size",
uncompressed and after "heavy GZIP compression"; Figure 14's fingerprint
upload (about 51.2 KB for 200 keypoints with framing) uses the same
record layout.  Each record is:

======== ======= ==========================================
field    bytes   encoding
======== ======= ==========================================
x, y     8       two float32 pixel coordinates
scale    4       float32
angle    4       float32 radians
descr    128     128 x uint8 (the integer SIFT descriptor)
======== ======= ==========================================

144 bytes per keypoint — "extracted keypoints typically require at least
as much space as the image itself" once thousands are present.
"""

from __future__ import annotations

import gzip
import struct

import numpy as np

from repro.features.keypoint import DESCRIPTOR_DIM, KeypointSet

__all__ = [
    "keypoint_record_bytes",
    "serialize_keypoints",
    "serialize_keypoints_into",
    "serialized_size",
    "deserialize_keypoints",
]

_HEADER = struct.Struct("<4sI")
_MAGIC = b"VPKP"


def keypoint_record_bytes() -> int:
    """Bytes per serialized keypoint record."""
    return 4 * 4 + DESCRIPTOR_DIM


def serialized_size(count: int) -> int:
    """Uncompressed wire bytes for a ``count``-keypoint payload.

    Lets degradation planning price a shrunken fingerprint without
    serializing it: header plus ``count`` fixed-width records.
    """
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    return _HEADER.size + count * keypoint_record_bytes()


def serialize_keypoints(keypoints: KeypointSet, compress: bool = False) -> bytes:
    """Pack a keypoint set into its wire format (optionally GZIP'd)."""
    count = len(keypoints)
    meta = np.empty((count, 4), dtype="<f4")
    meta[:, 0:2] = keypoints.positions
    meta[:, 2] = keypoints.scales
    meta[:, 3] = keypoints.orientations
    descriptors = np.clip(np.rint(keypoints.descriptors), 0, 255).astype(np.uint8)
    payload = _HEADER.pack(_MAGIC, count) + meta.tobytes() + descriptors.tobytes()
    if compress:
        return gzip.compress(payload, compresslevel=9)
    return payload


def serialize_keypoints_into(
    keypoints: KeypointSet,
    buffer: bytearray,
    scratch: np.ndarray | None = None,
) -> int:
    """Serialize into a caller-owned ``bytearray``; returns payload size.

    The zero-copy counterpart of :func:`serialize_keypoints`: the header
    is packed in place, the float metadata and uint8 descriptors are
    written through ``np.frombuffer`` views straight into ``buffer``,
    and the only intermediate is the (optional, reusable) float32
    ``scratch`` used for rint/clip before the uint8 narrowing.  The
    buffer is grown once to the high-water mark and then reused; valid
    bytes are ``buffer[:returned_size]``.  Byte-for-byte identical to
    ``serialize_keypoints(keypoints, compress=False)``.
    """
    count = len(keypoints)
    size = serialized_size(count)
    if len(buffer) < size:
        buffer.extend(bytes(size - len(buffer)))
    _HEADER.pack_into(buffer, 0, _MAGIC, count)
    if count == 0:
        return size
    meta = np.frombuffer(
        buffer, dtype="<f4", count=count * 4, offset=_HEADER.size
    ).reshape(count, 4)
    meta[:, 0:2] = keypoints.positions
    meta[:, 2] = keypoints.scales
    meta[:, 3] = keypoints.orientations
    if scratch is None or scratch.shape != (count, DESCRIPTOR_DIM):
        scratch = np.empty((count, DESCRIPTOR_DIM), dtype=np.float32)
    np.rint(keypoints.descriptors, out=scratch)
    np.clip(scratch, 0, 255, out=scratch)
    packed = np.frombuffer(
        buffer,
        dtype=np.uint8,
        count=count * DESCRIPTOR_DIM,
        offset=_HEADER.size + count * 16,
    ).reshape(count, DESCRIPTOR_DIM)
    # Values are integral and within [0, 255] after the clip, so the
    # narrowing cast is exact.
    np.copyto(packed, scratch, casting="unsafe")
    return size


def deserialize_keypoints(payload: bytes) -> KeypointSet:
    """Inverse of :func:`serialize_keypoints` (detects GZIP automatically)."""
    if payload[:2] == b"\x1f\x8b":
        payload = gzip.decompress(payload)
    magic, count = _HEADER.unpack_from(payload, 0)
    if magic != _MAGIC:
        raise ValueError("not a VisualPrint keypoint payload (bad magic)")
    offset = _HEADER.size
    meta = np.frombuffer(payload, dtype="<f4", count=count * 4, offset=offset)
    meta = meta.reshape(count, 4)
    offset += count * 16
    descriptors = np.frombuffer(
        payload, dtype=np.uint8, count=count * DESCRIPTOR_DIM, offset=offset
    ).reshape(count, DESCRIPTOR_DIM)
    return KeypointSet(
        positions=meta[:, 0:2].astype(np.float32).copy(),
        scales=meta[:, 2].astype(np.float32).copy(),
        orientations=meta[:, 3].astype(np.float32).copy(),
        responses=np.zeros(count, dtype=np.float32),
        descriptors=descriptors.astype(np.float32),
    )
