"""Keypoint detection and description (from-scratch SIFT).

The paper extracts SIFT keypoints with "OpenCV's default SIFT
implementation"; OpenCV is unavailable offline, so this package
implements Lowe's pipeline directly on numpy/scipy:

Gaussian scale space -> difference-of-Gaussians extrema -> low-contrast
and edge rejection -> orientation assignment from gradient histograms ->
128-D (4x4 spatial x 8 orientation) gradient descriptors, normalized,
clamped at 0.2, renormalized, and quantized to 0..255 integers exactly
like the descriptors VisualPrint hashes and ships.

:class:`HarrisDetector` provides a cheap corner detector used by tests
and by the ablation comparing detector front-ends (the paper notes the
pipeline is not SIFT-specific).
"""

from repro.features.binary import BriefDescriptor, HammingMatcher, hamming_distance
from repro.features.blur import BlurDetector, laplacian_variance
from repro.features.gaussian import DogPyramid, GaussianPyramid
from repro.features.harris import HarrisDetector, harris_response
from repro.features.keypoint import KeypointSet
from repro.features.serialize import (
    deserialize_keypoints,
    keypoint_record_bytes,
    serialize_keypoints,
)
from repro.features.sift import SiftExtractor, SiftParams

__all__ = [
    "BlurDetector",
    "BriefDescriptor",
    "DogPyramid",
    "GaussianPyramid",
    "HammingMatcher",
    "HarrisDetector",
    "KeypointSet",
    "SiftExtractor",
    "SiftParams",
    "deserialize_keypoints",
    "hamming_distance",
    "harris_response",
    "keypoint_record_bytes",
    "laplacian_variance",
    "serialize_keypoints",
]
