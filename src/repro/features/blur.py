"""Blur detection for the client's frame gate.

The paper's client "performs a quick check on each frame to detect blur
(often due to quick motion), discarding such frames" — blurred frames
"lack ample visual features [and] do not result [in a] match on the
server", so uploading them wastes bandwidth.

The detector is the standard variance-of-Laplacian focus measure: the
Laplacian responds to fine detail, and motion blur suppresses exactly
that band.  It costs one 3x3 convolution — cheap enough for the
per-frame critical path, unlike running SIFT first and counting.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import ndimage

__all__ = ["BlurDetector", "laplacian_variance"]

_LAPLACIAN = np.array(
    [[0.0, 1.0, 0.0], [1.0, -4.0, 1.0], [0.0, 1.0, 0.0]], dtype=np.float32
)


def laplacian_variance(image: np.ndarray) -> float:
    """Variance of the Laplacian response — higher means sharper."""
    image = np.asarray(image, dtype=np.float32)
    if image.ndim != 2:
        raise ValueError(f"image must be 2-D grayscale, got shape {image.shape}")
    response = ndimage.convolve(image, _LAPLACIAN, mode="nearest")
    return float(response.var())


@dataclass
class BlurDetector:
    """Threshold gate on the focus measure.

    ``threshold`` is scene-dependent; :meth:`calibrate` sets it from a
    handful of known-sharp frames (a fraction of their median sharpness),
    which is how a deployed client would bootstrap on install.
    """

    threshold: float = 5e-4
    calibration_fraction: float = 0.45

    def sharpness(self, image: np.ndarray) -> float:
        return laplacian_variance(image)

    def is_blurred(self, image: np.ndarray) -> bool:
        """True when the frame should be discarded, not uploaded."""
        return self.sharpness(image) < self.threshold

    def calibrate(self, sharp_frames: list[np.ndarray]) -> float:
        """Set the threshold from known-sharp reference frames."""
        if not sharp_frames:
            raise ValueError("need at least one calibration frame")
        baseline = float(np.median([self.sharpness(f) for f in sharp_frames]))
        self.threshold = self.calibration_fraction * baseline
        return self.threshold
