"""From-scratch SIFT detector + descriptor (Lowe 1999/2004).

The pipeline follows the standard construction used by OpenCV's default
SIFT (which the paper uses), vectorized over keypoints with numpy:

1. Gaussian scale-space pyramid and DoG stacks (:mod:`repro.features.gaussian`).
2. 3x3x3 DoG extrema with low-contrast rejection and Harris-style edge
   rejection, plus quadratic sub-pixel refinement.
3. Orientation assignment from a 36-bin gradient histogram around each
   keypoint; secondary peaks above 80% of the maximum spawn additional
   keypoints at the same location.
4. 128-D descriptors: a 16x16 sample grid around the keypoint (rotated to
   its orientation, scaled to its sigma) accumulated into 4x4 spatial x 8
   orientation bins with trilinear interpolation; normalized, clamped at
   0.2, renormalized, and quantized to integers in 0..255 — the integer
   descriptors VisualPrint hashes, ranks, and ships.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.features.gaussian import DogPyramid, GaussianPyramid
from repro.features.keypoint import DESCRIPTOR_DIM, KeypointSet

__all__ = ["SiftParams", "SiftExtractor"]


@dataclass(frozen=True)
class SiftParams:
    """SIFT tuning knobs (defaults mirror the common OpenCV operating point)."""

    scales_per_octave: int = 3
    base_sigma: float = 1.6
    contrast_threshold: float = 0.03
    edge_ratio: float = 10.0
    num_orientation_bins: int = 36
    orientation_peak_ratio: float = 0.8
    descriptor_grid: int = 16  # 16x16 samples
    descriptor_spatial_bins: int = 4  # 4x4 regions
    descriptor_orientation_bins: int = 8
    descriptor_scale_factor: float = 3.0  # bin width = 3 sigma
    descriptor_clip: float = 0.2
    max_keypoints: int | None = None

    def __post_init__(self) -> None:
        if self.scales_per_octave < 1:
            raise ValueError("scales_per_octave must be >= 1")
        if not 0 < self.orientation_peak_ratio <= 1:
            raise ValueError("orientation_peak_ratio must be in (0, 1]")
        expected_dim = self.descriptor_spatial_bins**2 * self.descriptor_orientation_bins
        if expected_dim != DESCRIPTOR_DIM:
            raise ValueError(
                f"descriptor bins yield dimension {expected_dim}, expected {DESCRIPTOR_DIM}"
            )


class SiftExtractor:
    """Detect keypoints and compute 128-D descriptors for one image.

    >>> import numpy as np
    >>> from repro.imaging import value_noise_texture
    >>> from repro.util import rng_for
    >>> image = value_noise_texture((128, 128), rng_for(0, "doc"))
    >>> keypoints = SiftExtractor().extract(image)
    >>> keypoints.descriptors.shape[1]
    128
    """

    def __init__(self, params: SiftParams | None = None) -> None:
        self.params = params or SiftParams()

    def extract(self, image: np.ndarray) -> KeypointSet:
        """Run the full pipeline on a float grayscale image in ``[0, 1]``."""
        image = np.asarray(image, dtype=np.float32)
        if image.ndim != 2:
            raise ValueError(f"image must be 2-D grayscale, got shape {image.shape}")
        params = self.params
        pyramid = GaussianPyramid.build(
            image,
            scales_per_octave=params.scales_per_octave,
            base_sigma=params.base_sigma,
        )
        dog = DogPyramid.from_gaussian(pyramid)
        parts: list[KeypointSet] = []
        for octave in range(dog.num_octaves):
            candidates = self._detect_octave(dog, octave)
            if candidates.shape[0] == 0:
                continue
            oriented = self._assign_orientations(pyramid, octave, candidates)
            if oriented.shape[0] == 0:
                continue
            parts.append(self._describe(pyramid, octave, oriented))
        keypoints = KeypointSet.concatenate(parts)
        if params.max_keypoints is not None:
            keypoints = keypoints.top_by_response(params.max_keypoints)
        return keypoints

    # ------------------------------------------------------------------
    # Detection
    # ------------------------------------------------------------------

    def _detect_octave(self, dog: DogPyramid, octave: int) -> np.ndarray:
        """Find refined extrema in one octave.

        Returns ``(n, 4)`` float64 rows of (level, y, x, response) in
        octave-local coordinates, with sub-pixel offsets applied.
        """
        from scipy import ndimage

        params = self.params
        stack = dog.octaves[octave]
        num_levels = stack.shape[0]
        if num_levels < 3:
            return np.empty((0, 4))

        maxima = ndimage.maximum_filter(stack, size=3, mode="nearest")
        minima = ndimage.minimum_filter(stack, size=3, mode="nearest")
        threshold = params.contrast_threshold * 0.5
        is_extremum = ((stack == maxima) & (stack > threshold)) | (
            (stack == minima) & (stack < -threshold)
        )
        # Only interior levels and a 5-pixel spatial margin are eligible.
        is_extremum[0] = False
        is_extremum[-1] = False
        margin = 5
        is_extremum[:, :margin, :] = False
        is_extremum[:, -margin:, :] = False
        is_extremum[:, :, :margin] = False
        is_extremum[:, :, -margin:] = False

        levels, ys, xs = np.nonzero(is_extremum)
        if levels.size == 0:
            return np.empty((0, 4))

        refined = self._refine(stack, levels, ys, xs)
        if refined.shape[0] == 0:
            return np.empty((0, 4))
        keep = self._reject_edges(stack, refined)
        return refined[keep]

    def _refine(
        self, stack: np.ndarray, levels: np.ndarray, ys: np.ndarray, xs: np.ndarray
    ) -> np.ndarray:
        """Quadratic sub-pixel refinement + interpolated-contrast check."""
        params = self.params
        # First derivatives (central differences at the candidate points).
        d_level = 0.5 * (stack[levels + 1, ys, xs] - stack[levels - 1, ys, xs])
        d_y = 0.5 * (stack[levels, ys + 1, xs] - stack[levels, ys - 1, xs])
        d_x = 0.5 * (stack[levels, ys, xs + 1] - stack[levels, ys, xs - 1])
        center = stack[levels, ys, xs]
        # Diagonal second derivatives (a diagonal Hessian approximation
        # keeps the refinement stable and fully vectorized).
        h_ll = stack[levels + 1, ys, xs] + stack[levels - 1, ys, xs] - 2 * center
        h_yy = stack[levels, ys + 1, xs] + stack[levels, ys - 1, xs] - 2 * center
        h_xx = stack[levels, ys, xs + 1] + stack[levels, ys, xs - 1] - 2 * center

        with np.errstate(divide="ignore", invalid="ignore"):
            off_level = np.where(np.abs(h_ll) > 1e-8, -d_level / h_ll, 0.0)
            off_y = np.where(np.abs(h_yy) > 1e-8, -d_y / h_yy, 0.0)
            off_x = np.where(np.abs(h_xx) > 1e-8, -d_x / h_xx, 0.0)
        off_level = np.clip(off_level, -0.5, 0.5)
        off_y = np.clip(off_y, -0.5, 0.5)
        off_x = np.clip(off_x, -0.5, 0.5)

        interpolated = center + 0.5 * (d_level * off_level + d_y * off_y + d_x * off_x)
        keep = np.abs(interpolated) >= params.contrast_threshold
        return np.column_stack(
            [
                levels[keep] + off_level[keep],
                ys[keep] + off_y[keep],
                xs[keep] + off_x[keep],
                interpolated[keep],
            ]
        )

    def _reject_edges(self, stack: np.ndarray, refined: np.ndarray) -> np.ndarray:
        """Harris-style rejection of DoG responses on straight edges."""
        ratio = self.params.edge_ratio
        levels = np.clip(np.rint(refined[:, 0]).astype(int), 0, stack.shape[0] - 1)
        ys = np.clip(np.rint(refined[:, 1]).astype(int), 1, stack.shape[1] - 2)
        xs = np.clip(np.rint(refined[:, 2]).astype(int), 1, stack.shape[2] - 2)
        center = stack[levels, ys, xs]
        dxx = stack[levels, ys, xs + 1] + stack[levels, ys, xs - 1] - 2 * center
        dyy = stack[levels, ys + 1, xs] + stack[levels, ys - 1, xs] - 2 * center
        dxy = 0.25 * (
            stack[levels, ys + 1, xs + 1]
            - stack[levels, ys + 1, xs - 1]
            - stack[levels, ys - 1, xs + 1]
            + stack[levels, ys - 1, xs - 1]
        )
        trace = dxx + dyy
        det = dxx * dyy - dxy**2
        bound = (ratio + 1.0) ** 2 / ratio
        return (det > 0) & (trace**2 / np.maximum(det, 1e-12) < bound)

    # ------------------------------------------------------------------
    # Orientation
    # ------------------------------------------------------------------

    @staticmethod
    def _gradients(level_image: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        gy, gx = np.gradient(level_image.astype(np.float32))
        magnitude = np.hypot(gx, gy)
        angle = np.arctan2(gy, gx)
        return magnitude, angle

    def _assign_orientations(
        self, pyramid: GaussianPyramid, octave: int, candidates: np.ndarray
    ) -> np.ndarray:
        """Attach one or more orientations to each candidate.

        Returns ``(m, 5)`` rows (level, y, x, response, orientation);
        ``m >= n`` because secondary histogram peaks duplicate keypoints.
        """
        params = self.params
        stack = pyramid.octaves[octave]
        num_bins = params.num_orientation_bins
        out_rows: list[np.ndarray] = []

        levels_int = np.clip(
            np.rint(candidates[:, 0]).astype(int), 1, stack.shape[0] - 2
        )
        for level in np.unique(levels_int):
            mask = levels_int == level
            rows = candidates[mask]
            magnitude, angle = self._gradients(stack[level])
            sigma = 1.5 * float(pyramid.sigmas[level])
            radius = max(2, int(round(3.0 * sigma)))
            if 2 * radius + 1 > min(stack.shape[1], stack.shape[2]):
                # The orientation window does not fit the octave image at
                # any center pixel (tiny images reaching high levels, where
                # the smoothing radius outgrows the frame).  np.clip with
                # lo > hi would silently produce negative centers and an
                # out-of-bounds gather, so these candidates are dropped.
                continue
            offsets = np.arange(-radius, radius + 1)
            weight_1d = np.exp(-(offsets**2) / (2.0 * sigma**2))
            window_weight = np.outer(weight_1d, weight_1d)  # (P, P)

            ys = np.clip(np.rint(rows[:, 1]).astype(int), radius, stack.shape[1] - radius - 1)
            xs = np.clip(np.rint(rows[:, 2]).astype(int), radius, stack.shape[2] - radius - 1)
            # Gather (k, P, P) windows with broadcasting.
            win_y = ys[:, None, None] + offsets[None, :, None]
            win_x = xs[:, None, None] + offsets[None, None, :]
            win_mag = magnitude[win_y, win_x] * window_weight[None, :, :]
            win_ang = angle[win_y, win_x]

            bins = np.floor((win_ang + np.pi) / (2 * np.pi) * num_bins).astype(int)
            bins = np.clip(bins, 0, num_bins - 1)
            k = rows.shape[0]
            flat_bins = (np.arange(k)[:, None, None] * num_bins + bins).ravel()
            histograms = np.bincount(
                flat_bins, weights=win_mag.ravel(), minlength=k * num_bins
            ).reshape(k, num_bins)

            # Two passes of circular [1, 1, 1] / 3 smoothing.
            for _ in range(2):
                histograms = (
                    np.roll(histograms, 1, axis=1)
                    + histograms
                    + np.roll(histograms, -1, axis=1)
                ) / 3.0

            peak_value = histograms.max(axis=1, keepdims=True)
            left = np.roll(histograms, 1, axis=1)
            right = np.roll(histograms, -1, axis=1)
            is_peak = (
                (histograms >= left)
                & (histograms > right)
                & (histograms >= params.orientation_peak_ratio * peak_value)
                & (peak_value > 0)
            )
            kp_index, bin_index = np.nonzero(is_peak)
            if kp_index.size == 0:
                continue
            # Parabolic interpolation of the peak bin.
            center_v = histograms[kp_index, bin_index]
            left_v = left[kp_index, bin_index]
            right_v = right[kp_index, bin_index]
            denominator = left_v - 2 * center_v + right_v
            shift = np.where(
                np.abs(denominator) > 1e-12,
                0.5 * (left_v - right_v) / denominator,
                0.0,
            )
            shift = np.clip(shift, -0.5, 0.5)
            orientation = ((bin_index + 0.5 + shift) / num_bins) * 2 * np.pi - np.pi
            out_rows.append(
                np.column_stack(
                    [
                        rows[kp_index, 0],
                        rows[kp_index, 1],
                        rows[kp_index, 2],
                        rows[kp_index, 3],
                        orientation,
                    ]
                )
            )
        if not out_rows:
            return np.empty((0, 5))
        return np.concatenate(out_rows)

    # ------------------------------------------------------------------
    # Description
    # ------------------------------------------------------------------

    def _describe(
        self, pyramid: GaussianPyramid, octave: int, oriented: np.ndarray
    ) -> KeypointSet:
        """Compute descriptors for all oriented keypoints of one octave."""
        params = self.params
        stack = pyramid.octaves[octave]
        grid = params.descriptor_grid
        spatial_bins = params.descriptor_spatial_bins
        ori_bins = params.descriptor_orientation_bins

        positions: list[np.ndarray] = []
        scales: list[np.ndarray] = []
        orientations: list[np.ndarray] = []
        responses: list[np.ndarray] = []
        descriptors: list[np.ndarray] = []

        levels_int = np.clip(
            np.rint(oriented[:, 0]).astype(int), 1, stack.shape[0] - 2
        )
        # Normalized sample grid: (grid*grid, 2) offsets in bin units,
        # covering [-spatial_bins/2, spatial_bins/2).
        steps = (np.arange(grid) + 0.5) / grid * spatial_bins - spatial_bins / 2.0
        grid_u, grid_v = np.meshgrid(steps, steps)  # u: x-direction, v: y
        flat_u = grid_u.ravel()
        flat_v = grid_v.ravel()
        # Gaussian window over the descriptor, sigma = half the window.
        window_sigma = 0.5 * spatial_bins
        sample_weight = np.exp(
            -(flat_u**2 + flat_v**2) / (2.0 * window_sigma**2)
        ).astype(np.float32)

        for level in np.unique(levels_int):
            mask = levels_int == level
            rows = oriented[mask]
            k = rows.shape[0]
            magnitude, angle = self._gradients(stack[level])
            sigma = float(pyramid.sigmas[level])
            bin_width = params.descriptor_scale_factor * sigma

            theta = rows[:, 4]
            cos_t = np.cos(theta)[:, None]
            sin_t = np.sin(theta)[:, None]
            # Rotate the grid into each keypoint's frame; offsets in pixels.
            du = (flat_u[None, :] * cos_t - flat_v[None, :] * sin_t) * bin_width
            dv = (flat_u[None, :] * sin_t + flat_v[None, :] * cos_t) * bin_width
            sample_x = np.clip(
                np.rint(rows[:, 2][:, None] + du).astype(int), 0, stack.shape[2] - 1
            )
            sample_y = np.clip(
                np.rint(rows[:, 1][:, None] + dv).astype(int), 0, stack.shape[1] - 1
            )
            sampled_mag = magnitude[sample_y, sample_x] * sample_weight[None, :]
            sampled_ang = angle[sample_y, sample_x] - theta[:, None]

            # Trilinear accumulation into (rows+2, cols+2, ori) histograms.
            row_bin = flat_v[None, :] + spatial_bins / 2.0 - 0.5  # (k, s)
            col_bin = flat_u[None, :] + spatial_bins / 2.0 - 0.5
            row_bin = np.broadcast_to(row_bin, sampled_mag.shape)
            col_bin = np.broadcast_to(col_bin, sampled_mag.shape)
            ori_bin = (sampled_ang % (2 * np.pi)) / (2 * np.pi) * ori_bins

            descriptor = self._trilinear_accumulate(
                row_bin, col_bin, ori_bin, sampled_mag, spatial_bins, ori_bins
            )
            descriptor = self._finalize_descriptors(descriptor)

            scale_mult = pyramid.octave_scale(octave)
            positions.append(
                np.column_stack([rows[:, 2] * scale_mult, rows[:, 1] * scale_mult])
            )
            level_sigmas = pyramid.base_sigma * (
                2.0 ** (rows[:, 0] / params.scales_per_octave)
            )
            scales.append(level_sigmas * scale_mult)
            orientations.append(theta)
            responses.append(np.abs(rows[:, 3]))
            descriptors.append(descriptor)

        return KeypointSet(
            positions=np.concatenate(positions).astype(np.float32),
            scales=np.concatenate(scales).astype(np.float32),
            orientations=np.concatenate(orientations).astype(np.float32),
            responses=np.concatenate(responses).astype(np.float32),
            descriptors=np.concatenate(descriptors).astype(np.float32),
        )

    @staticmethod
    def _trilinear_accumulate(
        row_bin: np.ndarray,
        col_bin: np.ndarray,
        ori_bin: np.ndarray,
        weights: np.ndarray,
        spatial_bins: int,
        ori_bins: int,
    ) -> np.ndarray:
        """Scatter samples into per-keypoint histograms with trilinear weights.

        All inputs are ``(k, samples)``.  Returns ``(k, 128)``.
        """
        k, _ = weights.shape
        padded = spatial_bins + 2  # one guard bin on each side
        row_floor = np.floor(row_bin).astype(int)
        col_floor = np.floor(col_bin).astype(int)
        ori_floor = np.floor(ori_bin).astype(int)
        row_frac = row_bin - row_floor
        col_frac = col_bin - col_floor
        ori_frac = ori_bin - ori_floor

        kp_index = np.broadcast_to(np.arange(k)[:, None], weights.shape)

        stride_o = 1
        stride_c = ori_bins
        stride_r = padded * ori_bins
        stride_k = padded * padded * ori_bins
        flat_size = k * stride_k
        flat_histogram = np.zeros(flat_size, dtype=np.float64)

        for d_row in (0, 1):
            w_row = np.where(d_row == 0, 1 - row_frac, row_frac)
            row_index = np.clip(row_floor + d_row + 1, 0, padded - 1)
            for d_col in (0, 1):
                w_col = np.where(d_col == 0, 1 - col_frac, col_frac)
                col_index = np.clip(col_floor + d_col + 1, 0, padded - 1)
                for d_ori in (0, 1):
                    w_ori = np.where(d_ori == 0, 1 - ori_frac, ori_frac)
                    ori_index = (ori_floor + d_ori) % ori_bins
                    contribution = weights * w_row * w_col * w_ori
                    flat = (
                        kp_index * stride_k
                        + row_index * stride_r
                        + col_index * stride_c
                        + ori_index * stride_o
                    )
                    flat_histogram += np.bincount(
                        flat.ravel(),
                        weights=contribution.ravel(),
                        minlength=flat_size,
                    )
        # Drop guard bins, flatten to 128-D.
        histogram = flat_histogram.reshape(k, padded, padded, ori_bins)
        core = histogram[:, 1 : spatial_bins + 1, 1 : spatial_bins + 1, :]
        return core.reshape(k, spatial_bins * spatial_bins * ori_bins)

    def _finalize_descriptors(self, descriptors: np.ndarray) -> np.ndarray:
        """Normalize, clip at the illumination cap, renormalize, integerize."""
        clip = self.params.descriptor_clip
        norms = np.linalg.norm(descriptors, axis=1, keepdims=True)
        norms = np.maximum(norms, 1e-12)
        descriptors = np.minimum(descriptors / norms, clip)
        norms = np.maximum(np.linalg.norm(descriptors, axis=1, keepdims=True), 1e-12)
        descriptors = descriptors / norms
        return np.clip(np.rint(descriptors * 512.0), 0, 255).astype(np.float32)
