"""From-scratch SIFT detector + descriptor (Lowe 1999/2004).

The pipeline follows the standard construction used by OpenCV's default
SIFT (which the paper uses), vectorized over keypoints with numpy:

1. Gaussian scale-space pyramid and DoG stacks (:mod:`repro.features.gaussian`).
2. 3x3x3 DoG extrema with low-contrast rejection and Harris-style edge
   rejection, plus quadratic sub-pixel refinement.
3. Orientation assignment from a 36-bin gradient histogram around each
   keypoint; secondary peaks above 80% of the maximum spawn additional
   keypoints at the same location.
4. 128-D descriptors: a 16x16 sample grid around the keypoint (rotated to
   its orientation, scaled to its sigma) accumulated into 4x4 spatial x 8
   orientation bins with trilinear interpolation; normalized, clamped at
   0.2, renormalized, and quantized to integers in 0..255 — the integer
   descriptors VisualPrint hashes, ranks, and ships.

Hot-path layout (the per-frame client cost lives here):

* Extrema detection runs as separable shifted-window max/min reductions
  in pure numpy — no scipy filter calls — and is exactly equal to the
  retained ``maximum_filter`` reference on every eligible voxel.
* Gradient maps are computed once per octave (batched over the candidate
  levels) and shared between orientation assignment and description,
  instead of twice per level.
* Orientation histograms for the whole octave accumulate through a
  single ``bincount`` scatter; smoothing, peak finding, and parabolic
  interpolation run once over all candidates.
* The 8-corner trilinear descriptor scatter collapses to a precomputed
  spatial scatter matrix (the sample grid is fixed in the descriptor
  frame, so spatial corner indices/weights never depend on the keypoint)
  applied with one batched matmul over an orientation-corner tensor.

The pre-vectorization implementations are retained verbatim as
``extract_reference`` / ``_detect_octave_reference`` /
``_assign_orientations_reference`` / ``_describe_reference`` — the
ground truth the hypothesis parity suite (tests/test_sift_parity.py) and
the ``bench_sift`` trajectory compare against.  Geometry (positions,
scales, orientations, responses) is bit-identical; descriptor floats
reassociate in the matmul, so final integer descriptors may differ by
±1 quantization step (documented tolerance).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.features.gaussian import DogPyramid, GaussianPyramid
from repro.features.keypoint import DESCRIPTOR_DIM, KeypointSet
from repro.obs import MetricsRegistry, resolve_registry

__all__ = ["SiftParams", "SiftExtractor"]


@dataclass(frozen=True)
class SiftParams:
    """SIFT tuning knobs (defaults mirror the common OpenCV operating point)."""

    scales_per_octave: int = 3
    base_sigma: float = 1.6
    contrast_threshold: float = 0.03
    edge_ratio: float = 10.0
    num_orientation_bins: int = 36
    orientation_peak_ratio: float = 0.8
    descriptor_grid: int = 16  # 16x16 samples
    descriptor_spatial_bins: int = 4  # 4x4 regions
    descriptor_orientation_bins: int = 8
    descriptor_scale_factor: float = 3.0  # bin width = 3 sigma
    descriptor_clip: float = 0.2
    max_keypoints: int | None = None

    def __post_init__(self) -> None:
        if self.scales_per_octave < 1:
            raise ValueError("scales_per_octave must be >= 1")
        if not 0 < self.orientation_peak_ratio <= 1:
            raise ValueError("orientation_peak_ratio must be in (0, 1]")
        expected_dim = self.descriptor_spatial_bins**2 * self.descriptor_orientation_bins
        if expected_dim != DESCRIPTOR_DIM:
            raise ValueError(
                f"descriptor bins yield dimension {expected_dim}, expected {DESCRIPTOR_DIM}"
            )


class SiftExtractor:
    """Detect keypoints and compute 128-D descriptors for one image.

    >>> import numpy as np
    >>> from repro.imaging import value_noise_texture
    >>> from repro.util import rng_for
    >>> image = value_noise_texture((128, 128), rng_for(0, "doc"))
    >>> keypoints = SiftExtractor().extract(image)
    >>> keypoints.descriptors.shape[1]
    128
    """

    def __init__(
        self,
        params: SiftParams | None = None,
        registry: MetricsRegistry | None = None,
    ) -> None:
        self.params = params or SiftParams()
        self._registry = resolve_registry(registry)
        self._m_candidates_dropped = self._registry.counter(
            "sift_candidates_dropped_total",
            help="extrema dropped because the orientation window outgrew the octave",
        )
        # Per-frame reusable DoG buffers (shape-keyed; see DogPyramid).
        self._dog_scratch: dict[tuple[int, int, int], np.ndarray] = {}
        # Shape-keyed buffers for the shifted-window extrema reductions.
        self._detect_scratch: dict[tuple[int, int, int], tuple[np.ndarray, ...]] = {}
        # sigma-keyed orientation window weights (per-level constants).
        self._orientation_windows: dict[float, tuple[int, np.ndarray]] = {}
        self._descriptor_tables_cache: tuple[np.ndarray, ...] | None = None

    @property
    def metrics(self) -> MetricsRegistry:
        """The registry this extractor reports into."""
        return self._registry

    def extract(self, image: np.ndarray) -> KeypointSet:
        """Run the full pipeline on a float grayscale image in ``[0, 1]``."""
        image = np.asarray(image, dtype=np.float32)
        if image.ndim != 2:
            raise ValueError(f"image must be 2-D grayscale, got shape {image.shape}")
        params = self.params
        pyramid = GaussianPyramid.build(
            image,
            scales_per_octave=params.scales_per_octave,
            base_sigma=params.base_sigma,
        )
        dog = DogPyramid.from_gaussian(pyramid, scratch=self._dog_scratch)
        parts: list[KeypointSet] = []
        for octave in range(dog.num_octaves):
            candidates = self._detect_octave(dog, octave)
            if candidates.shape[0] == 0:
                continue
            stack = pyramid.octaves[octave]
            levels_int = np.clip(
                np.rint(candidates[:, 0]).astype(int), 1, stack.shape[0] - 2
            )
            gradients = self._octave_gradients(stack, np.unique(levels_int))
            oriented = self._assign_orientations(
                pyramid, octave, candidates, gradients=gradients
            )
            if oriented.shape[0] == 0:
                continue
            parts.append(
                self._describe(pyramid, octave, oriented, gradients=gradients)
            )
        keypoints = KeypointSet.concatenate(parts)
        if params.max_keypoints is not None:
            keypoints = keypoints.top_by_response(params.max_keypoints)
        return keypoints

    def extract_reference(self, image: np.ndarray) -> KeypointSet:
        """The pre-vectorization pipeline, retained for parity and benchmarks.

        Scalar-shaped per-level loops throughout: ``gaussian_filter``
        pyramid, scipy 3x3x3 extrema filters, per-level gradient
        recomputation, and the 8-``bincount`` trilinear scatter.
        """
        image = np.asarray(image, dtype=np.float32)
        if image.ndim != 2:
            raise ValueError(f"image must be 2-D grayscale, got shape {image.shape}")
        params = self.params
        pyramid = GaussianPyramid.build_reference(
            image,
            scales_per_octave=params.scales_per_octave,
            base_sigma=params.base_sigma,
        )
        dog = DogPyramid.from_gaussian(pyramid)
        parts: list[KeypointSet] = []
        for octave in range(dog.num_octaves):
            candidates = self._detect_octave_reference(dog, octave)
            if candidates.shape[0] == 0:
                continue
            oriented = self._assign_orientations_reference(pyramid, octave, candidates)
            if oriented.shape[0] == 0:
                continue
            parts.append(self._describe_reference(pyramid, octave, oriented))
        keypoints = KeypointSet.concatenate(parts)
        if params.max_keypoints is not None:
            keypoints = keypoints.top_by_response(params.max_keypoints)
        return keypoints

    # ------------------------------------------------------------------
    # Detection
    # ------------------------------------------------------------------

    def _detect_octave(self, dog: DogPyramid, octave: int) -> np.ndarray:
        """Find refined extrema in one octave.

        Returns ``(n, 4)`` float64 rows of (level, y, x, response) in
        octave-local coordinates, with sub-pixel offsets applied.

        The 3x3x3 neighborhood max/min are separable shifted-window
        reductions evaluated on the interior voxels only; every
        candidate the reference's boundary-padded scipy filters could
        accept sits inside the 5-pixel margin anyway, so the masks are
        exactly equal (asserted by the parity suite).
        """
        params = self.params
        stack = dog.octaves[octave]
        num_levels = stack.shape[0]
        if num_levels < 3 or stack.shape[1] < 3 or stack.shape[2] < 3:
            return np.empty((0, 4))
        threshold = params.contrast_threshold * 0.5

        # Reusable per-shape scratch: the same octave shapes recur every
        # frame, so the shifted-window reductions run allocation-free.
        shape_x = (num_levels, stack.shape[1], stack.shape[2] - 2)
        shape_xy = (num_levels, stack.shape[1] - 2, stack.shape[2] - 2)
        scratch = self._detect_scratch.get(shape_xy)
        if scratch is None:
            scratch = self._detect_scratch[shape_xy] = (
                np.empty(shape_x, dtype=np.float32),
                np.empty(shape_x, dtype=np.float32),
                np.empty(shape_xy, dtype=np.float32),
                np.empty(shape_xy, dtype=np.float32),
            )
        row_max, row_min, spatial_max, spatial_min = scratch
        np.maximum(stack[:, :, :-2], stack[:, :, 1:-1], out=row_max)
        np.maximum(row_max, stack[:, :, 2:], out=row_max)
        np.minimum(stack[:, :, :-2], stack[:, :, 1:-1], out=row_min)
        np.minimum(row_min, stack[:, :, 2:], out=row_min)
        np.maximum(row_max[:, :-2, :], row_max[:, 1:-1, :], out=spatial_max)
        np.maximum(spatial_max, row_max[:, 2:, :], out=spatial_max)
        np.minimum(row_min[:, :-2, :], row_min[:, 1:-1, :], out=spatial_min)
        np.minimum(spatial_min, row_min[:, 2:, :], out=spatial_min)
        center = stack[1:-1, 1:-1, 1:-1]
        # The level reduction writes into the scratch's own interior, one
        # shifted pairwise op at a time (safe: reads stay ahead of writes).
        window_max = np.maximum(spatial_max[:-2], spatial_max[1:-1])
        np.maximum(window_max, spatial_max[2:], out=window_max)
        window_min = np.minimum(spatial_min[:-2], spatial_min[1:-1])
        np.minimum(window_min, spatial_min[2:], out=window_min)
        is_extremum = center == window_max
        is_extremum &= center > threshold
        is_minimum = center == window_min
        is_minimum &= center < -threshold
        is_extremum |= is_minimum
        # 5-pixel margin in full-stack coordinates; the interior crop
        # already removed one pixel per side.
        trim = 5 - 1
        is_extremum[:, :trim, :] = False
        is_extremum[:, -trim:, :] = False
        is_extremum[:, :, :trim] = False
        is_extremum[:, :, -trim:] = False

        levels, ys, xs = np.nonzero(is_extremum)
        if levels.size == 0:
            return np.empty((0, 4))
        levels = levels + 1
        ys = ys + 1
        xs = xs + 1

        refined = self._refine(stack, levels, ys, xs)
        if refined.shape[0] == 0:
            return np.empty((0, 4))
        keep = self._reject_edges(stack, refined)
        return refined[keep]

    def _detect_octave_reference(self, dog: DogPyramid, octave: int) -> np.ndarray:
        """Scipy-filter extrema detection (the retained reference)."""
        from scipy import ndimage

        params = self.params
        stack = dog.octaves[octave]
        num_levels = stack.shape[0]
        if num_levels < 3:
            return np.empty((0, 4))

        maxima = ndimage.maximum_filter(stack, size=3, mode="nearest")
        minima = ndimage.minimum_filter(stack, size=3, mode="nearest")
        threshold = params.contrast_threshold * 0.5
        is_extremum = ((stack == maxima) & (stack > threshold)) | (
            (stack == minima) & (stack < -threshold)
        )
        # Only interior levels and a 5-pixel spatial margin are eligible.
        is_extremum[0] = False
        is_extremum[-1] = False
        margin = 5
        is_extremum[:, :margin, :] = False
        is_extremum[:, -margin:, :] = False
        is_extremum[:, :, :margin] = False
        is_extremum[:, :, -margin:] = False

        levels, ys, xs = np.nonzero(is_extremum)
        if levels.size == 0:
            return np.empty((0, 4))

        refined = self._refine(stack, levels, ys, xs)
        if refined.shape[0] == 0:
            return np.empty((0, 4))
        keep = self._reject_edges(stack, refined)
        return refined[keep]

    def _refine(
        self, stack: np.ndarray, levels: np.ndarray, ys: np.ndarray, xs: np.ndarray
    ) -> np.ndarray:
        """Quadratic sub-pixel refinement + interpolated-contrast check."""
        params = self.params
        # First derivatives (central differences at the candidate points).
        d_level = 0.5 * (stack[levels + 1, ys, xs] - stack[levels - 1, ys, xs])
        d_y = 0.5 * (stack[levels, ys + 1, xs] - stack[levels, ys - 1, xs])
        d_x = 0.5 * (stack[levels, ys, xs + 1] - stack[levels, ys, xs - 1])
        center = stack[levels, ys, xs]
        # Diagonal second derivatives (a diagonal Hessian approximation
        # keeps the refinement stable and fully vectorized).
        h_ll = stack[levels + 1, ys, xs] + stack[levels - 1, ys, xs] - 2 * center
        h_yy = stack[levels, ys + 1, xs] + stack[levels, ys - 1, xs] - 2 * center
        h_xx = stack[levels, ys, xs + 1] + stack[levels, ys, xs - 1] - 2 * center

        with np.errstate(divide="ignore", invalid="ignore"):
            off_level = np.where(np.abs(h_ll) > 1e-8, -d_level / h_ll, 0.0)
            off_y = np.where(np.abs(h_yy) > 1e-8, -d_y / h_yy, 0.0)
            off_x = np.where(np.abs(h_xx) > 1e-8, -d_x / h_xx, 0.0)
        off_level = np.clip(off_level, -0.5, 0.5)
        off_y = np.clip(off_y, -0.5, 0.5)
        off_x = np.clip(off_x, -0.5, 0.5)

        interpolated = center + 0.5 * (d_level * off_level + d_y * off_y + d_x * off_x)
        keep = np.abs(interpolated) >= params.contrast_threshold
        return np.column_stack(
            [
                levels[keep] + off_level[keep],
                ys[keep] + off_y[keep],
                xs[keep] + off_x[keep],
                interpolated[keep],
            ]
        )

    def _reject_edges(self, stack: np.ndarray, refined: np.ndarray) -> np.ndarray:
        """Harris-style rejection of DoG responses on straight edges."""
        ratio = self.params.edge_ratio
        levels = np.clip(np.rint(refined[:, 0]).astype(int), 0, stack.shape[0] - 1)
        ys = np.clip(np.rint(refined[:, 1]).astype(int), 1, stack.shape[1] - 2)
        xs = np.clip(np.rint(refined[:, 2]).astype(int), 1, stack.shape[2] - 2)
        center = stack[levels, ys, xs]
        dxx = stack[levels, ys, xs + 1] + stack[levels, ys, xs - 1] - 2 * center
        dyy = stack[levels, ys + 1, xs] + stack[levels, ys - 1, xs] - 2 * center
        dxy = 0.25 * (
            stack[levels, ys + 1, xs + 1]
            - stack[levels, ys + 1, xs - 1]
            - stack[levels, ys - 1, xs + 1]
            + stack[levels, ys - 1, xs - 1]
        )
        trace = dxx + dyy
        det = dxx * dyy - dxy**2
        bound = (ratio + 1.0) ** 2 / ratio
        return (det > 0) & (trace**2 / np.maximum(det, 1e-12) < bound)

    # ------------------------------------------------------------------
    # Orientation
    # ------------------------------------------------------------------

    @staticmethod
    def _gradients(level_image: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        gy, gx = np.gradient(level_image.astype(np.float32))
        magnitude = np.hypot(gx, gy)
        angle = np.arctan2(gy, gx)
        return magnitude, angle

    @staticmethod
    def _octave_gradients(
        stack: np.ndarray, levels: np.ndarray
    ) -> dict[int, tuple[np.ndarray, np.ndarray]]:
        """Gradient maps for the requested levels, one batched pass.

        Shared between :meth:`_assign_orientations` and :meth:`_describe`
        so each level's gradients are computed exactly once per frame
        (the reference recomputed them in both stages).  Elementwise
        identical to per-level :meth:`_gradients` calls.
        """
        selected = np.asarray(levels, dtype=int)
        if selected.size == 0:
            return {}
        sub = stack[selected]
        gy, gx = np.gradient(sub, axis=(1, 2))
        magnitude = np.hypot(gx, gy)
        angle = np.arctan2(gy, gx)
        return {
            int(level): (magnitude[i], angle[i])
            for i, level in enumerate(selected)
        }

    def _assign_orientations(
        self,
        pyramid: GaussianPyramid,
        octave: int,
        candidates: np.ndarray,
        gradients: dict[int, tuple[np.ndarray, np.ndarray]] | None = None,
    ) -> np.ndarray:
        """Attach one or more orientations to each candidate.

        Returns ``(m, 5)`` rows (level, y, x, response, orientation);
        ``m >= n`` because secondary histogram peaks duplicate keypoints.

        Whole-octave batched: per candidate level only the window gather
        runs (window radius is a per-level constant), all scattered into
        one flat ``bincount``; smoothing, peak detection, and parabolic
        interpolation run once over every candidate of the octave.
        Bit-identical to the retained reference, including row order
        (candidates are processed in ascending level, original order
        within a level — exactly the reference's ``np.unique`` walk).

        Candidates whose orientation window cannot fit the octave image
        at any center pixel (tiny images reaching high levels) are
        dropped and counted in ``sift_candidates_dropped_total``.
        """
        params = self.params
        stack = pyramid.octaves[octave]
        num_bins = params.num_orientation_bins
        height, width = stack.shape[1], stack.shape[2]

        levels_int = np.clip(
            np.rint(candidates[:, 0]).astype(int), 1, stack.shape[0] - 2
        )
        order = np.argsort(levels_int, kind="stable")
        sorted_levels = levels_int[order]
        sorted_candidates = candidates[order]
        if gradients is None:
            gradients = self._octave_gradients(stack, np.unique(sorted_levels))

        kept_rows: list[np.ndarray] = []
        flat_parts: list[np.ndarray] = []
        weight_parts: list[np.ndarray] = []
        total = 0
        dropped = 0
        for level in np.unique(sorted_levels):
            rows = sorted_candidates[sorted_levels == level]
            sigma = 1.5 * float(pyramid.sigmas[level])
            window = self._orientation_windows.get(sigma)
            if window is None:
                radius = max(2, int(round(3.0 * sigma)))
                offsets = np.arange(-radius, radius + 1)
                weight_1d = np.exp(-(offsets**2) / (2.0 * sigma**2))
                window = self._orientation_windows[sigma] = (
                    radius,
                    np.outer(weight_1d, weight_1d)[None, :, :],  # (1, P, P)
                )
            radius, window_weight = window
            if 2 * radius + 1 > min(height, width):
                # The orientation window does not fit the octave image at
                # any center pixel; np.clip with lo > hi would silently
                # produce an out-of-bounds gather, so these candidates
                # are dropped — and now counted (satellite fix; the seed
                # dropped them with no signal).
                dropped += rows.shape[0]
                continue
            magnitude, angle = gradients[int(level)]

            ys = np.clip(np.rint(rows[:, 1]).astype(int), radius, height - radius - 1)
            xs = np.clip(np.rint(rows[:, 2]).astype(int), radius, width - radius - 1)
            # Gather (k, P, P) windows through one flat int32 index array.
            offsets = np.arange(-radius, radius + 1, dtype=np.int32)
            flat_window = (
                (ys * width + xs).astype(np.int32)[:, None, None]
                + (offsets * np.int32(width))[None, :, None]
                + offsets[None, None, :]
            )
            win_mag = magnitude.ravel()[flat_window] * window_weight
            win_ang = angle.ravel()[flat_window]

            # Exact reference op order: + pi, / 2pi, * bins, floor (via
            # int truncation — the operand is non-negative).
            win_ang = win_ang + np.pi
            win_ang /= 2 * np.pi
            win_ang *= num_bins
            bins = win_ang.astype(np.int64)
            np.clip(bins, 0, num_bins - 1, out=bins)
            k = rows.shape[0]
            bins += (np.arange(k, dtype=np.int64)[:, None, None] + total) * num_bins
            flat_parts.append(bins.ravel())
            weight_parts.append(win_mag.ravel())
            kept_rows.append(rows)
            total += k
        if dropped:
            self._m_candidates_dropped.inc(dropped)
        if total == 0:
            return np.empty((0, 5))

        rows = np.concatenate(kept_rows)
        histograms = np.bincount(
            np.concatenate(flat_parts),
            weights=np.concatenate(weight_parts),
            minlength=total * num_bins,
        ).reshape(total, num_bins)

        # Two passes of circular [1, 1, 1] / 3 smoothing.
        for _ in range(2):
            histograms = (
                np.roll(histograms, 1, axis=1)
                + histograms
                + np.roll(histograms, -1, axis=1)
            ) / 3.0

        peak_value = histograms.max(axis=1, keepdims=True)
        left = np.roll(histograms, 1, axis=1)
        right = np.roll(histograms, -1, axis=1)
        is_peak = (
            (histograms >= left)
            & (histograms > right)
            & (histograms >= params.orientation_peak_ratio * peak_value)
            & (peak_value > 0)
        )
        kp_index, bin_index = np.nonzero(is_peak)
        if kp_index.size == 0:
            return np.empty((0, 5))
        # Parabolic interpolation of the peak bin.
        center_v = histograms[kp_index, bin_index]
        left_v = left[kp_index, bin_index]
        right_v = right[kp_index, bin_index]
        denominator = left_v - 2 * center_v + right_v
        shift = np.where(
            np.abs(denominator) > 1e-12,
            0.5 * (left_v - right_v) / denominator,
            0.0,
        )
        shift = np.clip(shift, -0.5, 0.5)
        orientation = ((bin_index + 0.5 + shift) / num_bins) * 2 * np.pi - np.pi
        selected = rows[kp_index]
        return np.column_stack(
            [
                selected[:, 0],
                selected[:, 1],
                selected[:, 2],
                selected[:, 3],
                orientation,
            ]
        )

    def _assign_orientations_reference(
        self, pyramid: GaussianPyramid, octave: int, candidates: np.ndarray
    ) -> np.ndarray:
        """Per-level orientation assignment (the retained reference)."""
        params = self.params
        stack = pyramid.octaves[octave]
        num_bins = params.num_orientation_bins
        out_rows: list[np.ndarray] = []

        levels_int = np.clip(
            np.rint(candidates[:, 0]).astype(int), 1, stack.shape[0] - 2
        )
        for level in np.unique(levels_int):
            mask = levels_int == level
            rows = candidates[mask]
            magnitude, angle = self._gradients(stack[level])
            sigma = 1.5 * float(pyramid.sigmas[level])
            radius = max(2, int(round(3.0 * sigma)))
            if 2 * radius + 1 > min(stack.shape[1], stack.shape[2]):
                continue
            offsets = np.arange(-radius, radius + 1)
            weight_1d = np.exp(-(offsets**2) / (2.0 * sigma**2))
            window_weight = np.outer(weight_1d, weight_1d)  # (P, P)

            ys = np.clip(np.rint(rows[:, 1]).astype(int), radius, stack.shape[1] - radius - 1)
            xs = np.clip(np.rint(rows[:, 2]).astype(int), radius, stack.shape[2] - radius - 1)
            win_y = ys[:, None, None] + offsets[None, :, None]
            win_x = xs[:, None, None] + offsets[None, None, :]
            win_mag = magnitude[win_y, win_x] * window_weight[None, :, :]
            win_ang = angle[win_y, win_x]

            bins = np.floor((win_ang + np.pi) / (2 * np.pi) * num_bins).astype(int)
            bins = np.clip(bins, 0, num_bins - 1)
            k = rows.shape[0]
            flat_bins = (np.arange(k)[:, None, None] * num_bins + bins).ravel()
            histograms = np.bincount(
                flat_bins, weights=win_mag.ravel(), minlength=k * num_bins
            ).reshape(k, num_bins)

            for _ in range(2):
                histograms = (
                    np.roll(histograms, 1, axis=1)
                    + histograms
                    + np.roll(histograms, -1, axis=1)
                ) / 3.0

            peak_value = histograms.max(axis=1, keepdims=True)
            left = np.roll(histograms, 1, axis=1)
            right = np.roll(histograms, -1, axis=1)
            is_peak = (
                (histograms >= left)
                & (histograms > right)
                & (histograms >= params.orientation_peak_ratio * peak_value)
                & (peak_value > 0)
            )
            kp_index, bin_index = np.nonzero(is_peak)
            if kp_index.size == 0:
                continue
            center_v = histograms[kp_index, bin_index]
            left_v = left[kp_index, bin_index]
            right_v = right[kp_index, bin_index]
            denominator = left_v - 2 * center_v + right_v
            shift = np.where(
                np.abs(denominator) > 1e-12,
                0.5 * (left_v - right_v) / denominator,
                0.0,
            )
            shift = np.clip(shift, -0.5, 0.5)
            orientation = ((bin_index + 0.5 + shift) / num_bins) * 2 * np.pi - np.pi
            out_rows.append(
                np.column_stack(
                    [
                        rows[kp_index, 0],
                        rows[kp_index, 1],
                        rows[kp_index, 2],
                        rows[kp_index, 3],
                        orientation,
                    ]
                )
            )
        if not out_rows:
            return np.empty((0, 5))
        return np.concatenate(out_rows)

    # ------------------------------------------------------------------
    # Description
    # ------------------------------------------------------------------

    def _descriptor_tables(self) -> tuple[np.ndarray, ...]:
        """Precomputed per-sample descriptor geometry (params-invariant).

        ``flat_u`` / ``flat_v``: sample grid offsets in bin units.
        ``sample_weight``: the descriptor's Gaussian window per sample.
        ``spatial_scatter``: the ``(samples, spatial_bins**2)`` bilinear
        scatter matrix.  The sample grid lives in the descriptor frame,
        so each sample's spatial corner bins and weights are the same
        for every keypoint — the four spatial corners of the reference's
        trilinear scatter, precomputed once (guard-bin clipping
        included); only the orientation corners vary per keypoint.
        """
        tables = self._descriptor_tables_cache
        if tables is not None:
            return tables
        params = self.params
        grid = params.descriptor_grid
        spatial_bins = params.descriptor_spatial_bins
        steps = (np.arange(grid) + 0.5) / grid * spatial_bins - spatial_bins / 2.0
        grid_u, grid_v = np.meshgrid(steps, steps)  # u: x-direction, v: y
        flat_u = grid_u.ravel()
        flat_v = grid_v.ravel()
        # Gaussian window over the descriptor, sigma = half the window.
        window_sigma = 0.5 * spatial_bins
        sample_weight = np.exp(
            -(flat_u**2 + flat_v**2) / (2.0 * window_sigma**2)
        ).astype(np.float32)

        padded = spatial_bins + 2  # one guard bin on each side
        row_bin = flat_v + spatial_bins / 2.0 - 0.5
        col_bin = flat_u + spatial_bins / 2.0 - 0.5
        row_floor = np.floor(row_bin).astype(int)
        col_floor = np.floor(col_bin).astype(int)
        row_frac = row_bin - row_floor
        col_frac = col_bin - col_floor
        num_samples = flat_u.size
        scatter = np.zeros((num_samples, padded, padded))
        sample_index = np.arange(num_samples)
        for d_row in (0, 1):
            w_row = row_frac if d_row else 1.0 - row_frac
            row_index = np.clip(row_floor + d_row + 1, 0, padded - 1)
            for d_col in (0, 1):
                w_col = col_frac if d_col else 1.0 - col_frac
                col_index = np.clip(col_floor + d_col + 1, 0, padded - 1)
                np.add.at(
                    scatter, (sample_index, row_index, col_index), w_row * w_col
                )
        spatial_scatter = np.ascontiguousarray(
            scatter[:, 1 : spatial_bins + 1, 1 : spatial_bins + 1].reshape(
                num_samples, spatial_bins * spatial_bins
            ).T,
            dtype=np.float32,
        )  # (spatial_bins**2, samples); the bilinear weights are dyadic
        # rationals with few mantissa bits, so float32 holds them exactly
        tables = (flat_u, flat_v, sample_weight, spatial_scatter)
        self._descriptor_tables_cache = tables
        return tables

    def _describe(
        self,
        pyramid: GaussianPyramid,
        octave: int,
        oriented: np.ndarray,
        gradients: dict[int, tuple[np.ndarray, np.ndarray]] | None = None,
    ) -> KeypointSet:
        """Compute descriptors for all oriented keypoints of one octave.

        One batched pass over every keypoint of the octave: the only
        per-level work left is the gradient-map gather.  The trilinear
        scatter runs as an orientation-corner scatter into a dense
        ``(k, samples, ori_bins)`` tensor followed by one matmul with
        the precomputed spatial scatter matrix — no ``bincount`` at all.
        Geometry matches the reference bit for bit; descriptor sums
        reassociate in the matmul (±1 integer step after quantization).
        """
        params = self.params
        stack = pyramid.octaves[octave]
        ori_bins = params.descriptor_orientation_bins
        spatial_bins = params.descriptor_spatial_bins
        height, width = stack.shape[1], stack.shape[2]
        flat_u, flat_v, sample_weight, spatial_scatter = self._descriptor_tables()

        if oriented.shape[0] == 0:
            return KeypointSet.empty()
        levels_int = np.clip(
            np.rint(oriented[:, 0]).astype(int), 1, stack.shape[0] - 2
        )
        # Ascending level, stable within a level — the reference's
        # per-level concatenation order.
        order = np.argsort(levels_int, kind="stable")
        rows = oriented[order]
        sorted_levels = levels_int[order]
        if gradients is None:
            gradients = self._octave_gradients(stack, np.unique(sorted_levels))

        k = rows.shape[0]
        num_samples = flat_u.size
        theta = rows[:, 4]
        cos_t = np.cos(theta)[:, None]
        sin_t = np.sin(theta)[:, None]
        bin_width = (
            params.descriptor_scale_factor * pyramid.sigmas[sorted_levels]
        )[:, None]
        # Rotate the grid into each keypoint's frame; offsets in pixels.
        # Sample coordinates stay float64: rint is discontinuous, and a
        # one-ulp drift across a .5 boundary would move a sample to a
        # different pixel entirely (unbounded descriptor change).
        du = (flat_u[None, :] * cos_t - flat_v[None, :] * sin_t) * bin_width
        dv = (flat_u[None, :] * sin_t + flat_v[None, :] * cos_t) * bin_width
        np.add(du, rows[:, 2][:, None], out=du)
        np.add(dv, rows[:, 1][:, None], out=dv)
        sample_x = np.rint(du).astype(np.int32)
        sample_y = np.rint(dv).astype(np.int32)
        np.clip(sample_x, 0, width - 1, out=sample_x)
        np.clip(sample_y, 0, height - 1, out=sample_y)

        sample_y *= np.int32(width)
        sample_y += sample_x  # now the flat sample index
        sampled_mag = np.empty((k, num_samples), dtype=np.float32)
        sampled_ang = np.empty((k, num_samples), dtype=np.float32)
        for level in np.unique(sorted_levels):
            group = sorted_levels == level
            magnitude, angle = gradients[int(level)]
            gathered = sample_y[group]
            sampled_mag[group] = magnitude.ravel()[gathered]
            sampled_ang[group] = angle.ravel()[gathered]
        sampled_mag *= sample_weight[None, :]
        # Orientation math in float32: unlike rint above, the descriptor
        # is CONTINUOUS in ori_bin (as the fraction crosses a bin edge
        # the edge bin's weight goes through zero), so float32 rounding
        # perturbs descriptor values by ~1e-5 relative — absorbed by the
        # documented ±1 integer quantization tolerance.
        relative_ang = sampled_ang - theta[:, None].astype(np.float32)
        relative_ang[relative_ang < 0] += np.float32(2 * np.pi)
        ori_bin = relative_ang
        ori_bin *= np.float32(ori_bins / (2 * np.pi))
        ori_floor = ori_bin.astype(np.int32)  # values >= 0: trunc == floor
        ori_frac = ori_bin
        ori_frac -= ori_floor
        weight_high = sampled_mag * ori_frac
        weight_low = sampled_mag
        weight_low -= weight_high
        bin_high = ori_floor + np.int32(1)
        bin_low = ori_floor
        if ori_bins & (ori_bins - 1) == 0:
            bin_low &= np.int32(ori_bins - 1)
            bin_high &= np.int32(ori_bins - 1)
        else:
            bin_low %= ori_bins
            bin_high %= ori_bins

        # Orientation-corner scatter: each (keypoint, sample) splits its
        # magnitude between two adjacent orientation bins — distinct bins
        # whenever ori_bins >= 2, so plain assignment scatters are exact.
        # One flat assignment per corner (indices within a corner are
        # unique because (keypoint, sample) pairs are).
        lane_base = np.arange(
            0, k * num_samples * ori_bins, ori_bins, dtype=np.int32
        ).reshape(k, num_samples)
        bin_low += lane_base
        bin_high += lane_base
        contributions = np.zeros((k, num_samples, ori_bins), dtype=np.float32)
        flat = contributions.reshape(-1)
        flat[bin_low] = weight_low
        flat[bin_high] = weight_high
        # (1, spatial**2, samples) @ (k, samples, ori) -> (k, spatial**2, ori)
        descriptor = np.matmul(spatial_scatter[None, :, :], contributions)
        descriptor = descriptor.reshape(k, spatial_bins * spatial_bins * ori_bins)
        descriptor = self._finalize_descriptors(descriptor.astype(np.float64))

        scale_mult = pyramid.octave_scale(octave)
        positions = np.column_stack(
            [rows[:, 2] * scale_mult, rows[:, 1] * scale_mult]
        )
        level_sigmas = pyramid.base_sigma * (
            2.0 ** (rows[:, 0] / params.scales_per_octave)
        )
        return KeypointSet(
            positions=positions.astype(np.float32),
            scales=(level_sigmas * scale_mult).astype(np.float32),
            orientations=theta.astype(np.float32),
            responses=np.abs(rows[:, 3]).astype(np.float32),
            descriptors=descriptor.astype(np.float32),
        )

    def _describe_reference(
        self, pyramid: GaussianPyramid, octave: int, oriented: np.ndarray
    ) -> KeypointSet:
        """Per-level description with the 8-corner scatter (the reference)."""
        params = self.params
        stack = pyramid.octaves[octave]
        grid = params.descriptor_grid
        spatial_bins = params.descriptor_spatial_bins
        ori_bins = params.descriptor_orientation_bins

        positions: list[np.ndarray] = []
        scales: list[np.ndarray] = []
        orientations: list[np.ndarray] = []
        responses: list[np.ndarray] = []
        descriptors: list[np.ndarray] = []

        levels_int = np.clip(
            np.rint(oriented[:, 0]).astype(int), 1, stack.shape[0] - 2
        )
        # Normalized sample grid: (grid*grid, 2) offsets in bin units,
        # covering [-spatial_bins/2, spatial_bins/2).
        steps = (np.arange(grid) + 0.5) / grid * spatial_bins - spatial_bins / 2.0
        grid_u, grid_v = np.meshgrid(steps, steps)  # u: x-direction, v: y
        flat_u = grid_u.ravel()
        flat_v = grid_v.ravel()
        # Gaussian window over the descriptor, sigma = half the window.
        window_sigma = 0.5 * spatial_bins
        sample_weight = np.exp(
            -(flat_u**2 + flat_v**2) / (2.0 * window_sigma**2)
        ).astype(np.float32)

        for level in np.unique(levels_int):
            mask = levels_int == level
            rows = oriented[mask]
            magnitude, angle = self._gradients(stack[level])
            sigma = float(pyramid.sigmas[level])
            bin_width = params.descriptor_scale_factor * sigma

            theta = rows[:, 4]
            cos_t = np.cos(theta)[:, None]
            sin_t = np.sin(theta)[:, None]
            du = (flat_u[None, :] * cos_t - flat_v[None, :] * sin_t) * bin_width
            dv = (flat_u[None, :] * sin_t + flat_v[None, :] * cos_t) * bin_width
            sample_x = np.clip(
                np.rint(rows[:, 2][:, None] + du).astype(int), 0, stack.shape[2] - 1
            )
            sample_y = np.clip(
                np.rint(rows[:, 1][:, None] + dv).astype(int), 0, stack.shape[1] - 1
            )
            sampled_mag = magnitude[sample_y, sample_x] * sample_weight[None, :]
            sampled_ang = angle[sample_y, sample_x] - theta[:, None]

            # Trilinear accumulation into (rows+2, cols+2, ori) histograms.
            row_bin = flat_v[None, :] + spatial_bins / 2.0 - 0.5  # (k, s)
            col_bin = flat_u[None, :] + spatial_bins / 2.0 - 0.5
            row_bin = np.broadcast_to(row_bin, sampled_mag.shape)
            col_bin = np.broadcast_to(col_bin, sampled_mag.shape)
            ori_bin = (sampled_ang % (2 * np.pi)) / (2 * np.pi) * ori_bins

            descriptor = self._trilinear_accumulate(
                row_bin, col_bin, ori_bin, sampled_mag, spatial_bins, ori_bins
            )
            descriptor = self._finalize_descriptors(descriptor)

            scale_mult = pyramid.octave_scale(octave)
            positions.append(
                np.column_stack([rows[:, 2] * scale_mult, rows[:, 1] * scale_mult])
            )
            level_sigmas = pyramid.base_sigma * (
                2.0 ** (rows[:, 0] / params.scales_per_octave)
            )
            scales.append(level_sigmas * scale_mult)
            orientations.append(theta)
            responses.append(np.abs(rows[:, 3]))
            descriptors.append(descriptor)

        if not positions:
            return KeypointSet.empty()
        return KeypointSet(
            positions=np.concatenate(positions).astype(np.float32),
            scales=np.concatenate(scales).astype(np.float32),
            orientations=np.concatenate(orientations).astype(np.float32),
            responses=np.concatenate(responses).astype(np.float32),
            descriptors=np.concatenate(descriptors).astype(np.float32),
        )

    @staticmethod
    def _trilinear_accumulate(
        row_bin: np.ndarray,
        col_bin: np.ndarray,
        ori_bin: np.ndarray,
        weights: np.ndarray,
        spatial_bins: int,
        ori_bins: int,
    ) -> np.ndarray:
        """Scatter samples into per-keypoint histograms with trilinear weights.

        All inputs are ``(k, samples)``.  Returns ``(k, 128)``.  The
        8-corner ``bincount`` walk — retained as the reference the fast
        matmul formulation in :meth:`_describe` is verified against.
        """
        k, _ = weights.shape
        padded = spatial_bins + 2  # one guard bin on each side
        row_floor = np.floor(row_bin).astype(int)
        col_floor = np.floor(col_bin).astype(int)
        ori_floor = np.floor(ori_bin).astype(int)
        row_frac = row_bin - row_floor
        col_frac = col_bin - col_floor
        ori_frac = ori_bin - ori_floor

        kp_index = np.broadcast_to(np.arange(k)[:, None], weights.shape)

        stride_o = 1
        stride_c = ori_bins
        stride_r = padded * ori_bins
        stride_k = padded * padded * ori_bins
        flat_size = k * stride_k
        flat_histogram = np.zeros(flat_size, dtype=np.float64)

        for d_row in (0, 1):
            w_row = np.where(d_row == 0, 1 - row_frac, row_frac)
            row_index = np.clip(row_floor + d_row + 1, 0, padded - 1)
            for d_col in (0, 1):
                w_col = np.where(d_col == 0, 1 - col_frac, col_frac)
                col_index = np.clip(col_floor + d_col + 1, 0, padded - 1)
                for d_ori in (0, 1):
                    w_ori = np.where(d_ori == 0, 1 - ori_frac, ori_frac)
                    ori_index = (ori_floor + d_ori) % ori_bins
                    contribution = weights * w_row * w_col * w_ori
                    flat = (
                        kp_index * stride_k
                        + row_index * stride_r
                        + col_index * stride_c
                        + ori_index * stride_o
                    )
                    flat_histogram += np.bincount(
                        flat.ravel(),
                        weights=contribution.ravel(),
                        minlength=flat_size,
                    )
        # Drop guard bins, flatten to 128-D.
        histogram = flat_histogram.reshape(k, padded, padded, ori_bins)
        core = histogram[:, 1 : spatial_bins + 1, 1 : spatial_bins + 1, :]
        return core.reshape(k, spatial_bins * spatial_bins * ori_bins)

    def _finalize_descriptors(self, descriptors: np.ndarray) -> np.ndarray:
        """Normalize, clip at the illumination cap, renormalize, integerize."""
        clip = self.params.descriptor_clip
        norms = np.linalg.norm(descriptors, axis=1, keepdims=True)
        norms = np.maximum(norms, 1e-12)
        descriptors = np.minimum(descriptors / norms, clip)
        norms = np.maximum(np.linalg.norm(descriptors, axis=1, keepdims=True), 1e-12)
        descriptors = descriptors / norms
        return np.clip(np.rint(descriptors * 512.0), 0, 255).astype(np.float32)
