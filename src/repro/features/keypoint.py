"""Keypoint containers.

A keypoint is "typically represented using 2D pixel coordinate and a
multi-dimensional feature description vector"; we carry scale,
orientation, and detector response as well, stored as parallel arrays
for vectorized downstream processing.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["KeypointSet"]

DESCRIPTOR_DIM = 128


@dataclass
class KeypointSet:
    """Parallel arrays describing ``n`` keypoints of one image.

    Attributes:
        positions:    ``(n, 2)`` float32, (x, y) pixel coordinates.
        scales:       ``(n,)`` float32, detection scale (sigma).
        orientations: ``(n,)`` float32, radians.
        responses:    ``(n,)`` float32, detector response (|DoG| or Harris).
        descriptors:  ``(n, 128)`` float32, entries in 0..255 (integerized
                      SIFT convention, as VisualPrint hashes them).
    """

    positions: np.ndarray
    scales: np.ndarray
    orientations: np.ndarray
    responses: np.ndarray
    descriptors: np.ndarray

    def __post_init__(self) -> None:
        n = self.positions.shape[0]
        if self.positions.shape != (n, 2):
            raise ValueError(f"positions must be (n, 2), got {self.positions.shape}")
        for name in ("scales", "orientations", "responses"):
            array = getattr(self, name)
            if array.shape != (n,):
                raise ValueError(f"{name} must be (n,), got {array.shape}")
        if self.descriptors.shape != (n, DESCRIPTOR_DIM):
            raise ValueError(
                f"descriptors must be (n, {DESCRIPTOR_DIM}), got {self.descriptors.shape}"
            )

    def __len__(self) -> int:
        return int(self.positions.shape[0])

    @classmethod
    def empty(cls) -> "KeypointSet":
        return cls(
            positions=np.empty((0, 2), dtype=np.float32),
            scales=np.empty(0, dtype=np.float32),
            orientations=np.empty(0, dtype=np.float32),
            responses=np.empty(0, dtype=np.float32),
            descriptors=np.empty((0, DESCRIPTOR_DIM), dtype=np.float32),
        )

    @classmethod
    def concatenate(cls, parts: list["KeypointSet"]) -> "KeypointSet":
        if not parts:
            return cls.empty()
        return cls(
            positions=np.concatenate([p.positions for p in parts]),
            scales=np.concatenate([p.scales for p in parts]),
            orientations=np.concatenate([p.orientations for p in parts]),
            responses=np.concatenate([p.responses for p in parts]),
            descriptors=np.concatenate([p.descriptors for p in parts]),
        )

    def select(self, indices: np.ndarray) -> "KeypointSet":
        """Subset (or reorder) by integer indices / boolean mask."""
        return KeypointSet(
            positions=self.positions[indices],
            scales=self.scales[indices],
            orientations=self.orientations[indices],
            responses=self.responses[indices],
            descriptors=self.descriptors[indices],
        )

    def head(self, count: int) -> "KeypointSet":
        """First ``count`` keypoints as zero-copy slice views.

        Unlike :meth:`select` (fancy indexing, always copies), the
        returned set shares storage with ``self`` — the degradation
        ladder prices and emits shrunken fingerprints without
        duplicating descriptor memory.  Callers must treat the result
        as read-only.
        """
        if count < 0:
            raise ValueError(f"count must be non-negative, got {count}")
        if count >= len(self):
            return self
        return KeypointSet(
            positions=self.positions[:count],
            scales=self.scales[:count],
            orientations=self.orientations[:count],
            responses=self.responses[:count],
            descriptors=self.descriptors[:count],
        )

    def top_by_response(self, count: int) -> "KeypointSet":
        """Keep the ``count`` strongest keypoints."""
        if count < 0:
            raise ValueError(f"count must be non-negative, got {count}")
        if count >= len(self):
            return self
        order = np.argsort(-self.responses, kind="stable")[:count]
        return self.select(order)
