"""BRIEF-style binary descriptors — the paper's "not SIFT specific" path.

"Keypoint detection and description are two separate stages ... One can
use any keypoint detection algorithm with another integer keypoint
description algorithm without modification in the system pipeline."

:class:`BriefDescriptor` describes existing keypoints with 128 smoothed
intensity-pair comparisons (Calonder et al.'s BRIEF), emitted as a
128-dimensional 0/255 integer vector.  Because the vector has the same
shape and integer range as a SIFT descriptor, it flows through the
*unmodified* VisualPrint pipeline — E2LSH quantization, the counting
Bloom filters, serialization — exactly as the paper claims.  For binary
vectors Euclidean distance is a monotone function of Hamming distance
(``d2 = 255^2 * hamming``), so E2LSH's locality remains meaningful;
:func:`hamming_distance` and :class:`HammingMatcher` provide the native
binary matching path for comparison.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import ndimage

from repro.features.keypoint import DESCRIPTOR_DIM, KeypointSet
from repro.util.rng import rng_for

__all__ = ["BriefDescriptor", "HammingMatcher", "hamming_distance"]


@dataclass
class BriefDescriptor:
    """128-bit BRIEF over smoothed patches, as 0/255 integer vectors."""

    patch_radius: int = 12
    smoothing_sigma: float = 2.0
    seed: int = 0

    def __post_init__(self) -> None:
        if self.patch_radius < 2:
            raise ValueError(f"patch_radius must be >= 2, got {self.patch_radius}")
        rng = rng_for(self.seed, "brief/pattern")
        # The classic isotropic Gaussian test pattern, clipped to the patch.
        sigma = self.patch_radius / 2.0
        pattern = rng.normal(0.0, sigma, size=(DESCRIPTOR_DIM, 4))
        self._pattern = np.clip(
            np.rint(pattern), -self.patch_radius, self.patch_radius
        ).astype(np.int64)

    def describe(self, image: np.ndarray, keypoints: KeypointSet) -> KeypointSet:
        """Replace ``keypoints``' descriptors with BRIEF bits (0/255)."""
        image = np.asarray(image, dtype=np.float32)
        if image.ndim != 2:
            raise ValueError(f"image must be 2-D grayscale, got {image.shape}")
        if len(keypoints) == 0:
            return keypoints
        smoothed = ndimage.gaussian_filter(image, self.smoothing_sigma, mode="nearest")
        height, width = image.shape
        margin = self.patch_radius + 1
        xs = np.clip(
            np.rint(keypoints.positions[:, 0]).astype(np.int64), margin, width - margin - 1
        )
        ys = np.clip(
            np.rint(keypoints.positions[:, 1]).astype(np.int64), margin, height - margin - 1
        )
        # (n, 128) samples at both pattern endpoints.
        ax = xs[:, None] + self._pattern[None, :, 0]
        ay = ys[:, None] + self._pattern[None, :, 1]
        bx = xs[:, None] + self._pattern[None, :, 2]
        by = ys[:, None] + self._pattern[None, :, 3]
        bits = smoothed[ay, ax] < smoothed[by, bx]
        descriptors = np.where(bits, 255.0, 0.0).astype(np.float32)
        return KeypointSet(
            positions=keypoints.positions,
            scales=keypoints.scales,
            orientations=keypoints.orientations,
            responses=keypoints.responses,
            descriptors=descriptors,
        )


def hamming_distance(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Pairwise Hamming distances between 0/255 binary descriptor sets.

    ``a``: (n, 128), ``b``: (m, 128); returns (n, m) int64 bit counts.
    """
    a_bits = np.asarray(a) > 127
    b_bits = np.asarray(b) > 127
    if a_bits.ndim != 2 or b_bits.ndim != 2 or a_bits.shape[1] != b_bits.shape[1]:
        raise ValueError("descriptor sets must be (n, d) and (m, d)")
    return (a_bits[:, None, :] != b_bits[None, :, :]).sum(axis=2)


class HammingMatcher:
    """Exact 2-NN matching under Hamming distance with a ratio test."""

    def __init__(self, descriptors: np.ndarray, chunk_size: int = 256) -> None:
        self._database = np.asarray(descriptors) > 127
        if self._database.ndim != 2:
            raise ValueError("descriptors must be 2-D")
        self.chunk_size = int(chunk_size)

    @property
    def size(self) -> int:
        return int(self._database.shape[0])

    def match(
        self, queries: np.ndarray, max_distance: int = 32, ratio: float = 0.8
    ) -> tuple[np.ndarray, np.ndarray]:
        """Ratio-tested matches: ``(query_rows, database_rows)``."""
        query_bits = np.asarray(queries) > 127
        accepted_q: list[int] = []
        accepted_db: list[int] = []
        for start in range(0, query_bits.shape[0], self.chunk_size):
            chunk = query_bits[start : start + self.chunk_size]
            distances = (chunk[:, None, :] != self._database[None, :, :]).sum(axis=2)
            order = np.argsort(distances, axis=1)
            best = order[:, 0]
            best_d = distances[np.arange(chunk.shape[0]), best]
            if self.size > 1:
                second_d = distances[np.arange(chunk.shape[0]), order[:, 1]]
            else:
                second_d = np.full(chunk.shape[0], np.inf)
            good = (best_d <= max_distance) & (best_d < ratio * second_d)
            for row in np.flatnonzero(good):
                accepted_q.append(start + int(row))
                accepted_db.append(int(best[row]))
        return np.array(accepted_q, dtype=np.int64), np.array(
            accepted_db, dtype=np.int64
        )
