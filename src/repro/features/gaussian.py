"""Gaussian scale space and difference-of-Gaussians pyramids (Lowe 2004)."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np
from scipy import ndimage

from repro.util.validation import check_positive

__all__ = ["GaussianPyramid", "DogPyramid"]


@dataclass
class GaussianPyramid:
    """Octave pyramid of progressively blurred images.

    Each octave holds ``scales_per_octave + 3`` levels so that DoG
    extrema can be localized in ``scales_per_octave`` intervals; each
    subsequent octave starts from the level with twice the base sigma,
    downsampled by two.
    """

    octaves: list[np.ndarray] = field(default_factory=list)  # (levels, h, w)
    sigmas: np.ndarray = field(default_factory=lambda: np.empty(0))
    scales_per_octave: int = 3
    base_sigma: float = 1.6

    @classmethod
    def build(
        cls,
        image: np.ndarray,
        num_octaves: int | None = None,
        scales_per_octave: int = 3,
        base_sigma: float = 1.6,
        assumed_blur: float = 0.5,
    ) -> "GaussianPyramid":
        """Build the pyramid from a float grayscale image in ``[0, 1]``."""
        check_positive("scales_per_octave", scales_per_octave)
        check_positive("base_sigma", base_sigma)
        image = np.asarray(image, dtype=np.float32)
        if image.ndim != 2:
            raise ValueError(f"image must be 2-D grayscale, got {image.shape}")
        if num_octaves is None:
            num_octaves = max(1, int(np.log2(min(image.shape))) - 3)

        levels = scales_per_octave + 3
        k = 2.0 ** (1.0 / scales_per_octave)
        sigmas = base_sigma * k ** np.arange(levels)

        # Incremental blur amounts between consecutive levels.
        increments = np.zeros(levels)
        increments[0] = np.sqrt(max(base_sigma**2 - assumed_blur**2, 0.01))
        for level in range(1, levels):
            increments[level] = np.sqrt(sigmas[level] ** 2 - sigmas[level - 1] ** 2)

        pyramid = cls(
            octaves=[], sigmas=sigmas, scales_per_octave=scales_per_octave,
            base_sigma=base_sigma,
        )
        current = image
        for _ in range(num_octaves):
            if min(current.shape) < 8:
                break
            stack = np.empty((levels, *current.shape), dtype=np.float32)
            stack[0] = ndimage.gaussian_filter(current, increments[0], mode="nearest")
            for level in range(1, levels):
                stack[level] = ndimage.gaussian_filter(
                    stack[level - 1], increments[level], mode="nearest"
                )
            pyramid.octaves.append(stack)
            # Next octave seeds from the 2x-sigma level, halved.
            current = stack[scales_per_octave][::2, ::2]
        return pyramid

    @property
    def num_octaves(self) -> int:
        return len(self.octaves)

    def octave_scale(self, octave: int) -> float:
        """Pixel-size multiplier of this octave relative to the input."""
        return float(2**octave)

    def absolute_sigma(self, octave: int, level: int) -> float:
        """Blur sigma in input-image pixels for (octave, level)."""
        return float(self.sigmas[level] * self.octave_scale(octave))


@dataclass
class DogPyramid:
    """Difference-of-Gaussians stacks, one per octave."""

    octaves: list[np.ndarray] = field(default_factory=list)
    gaussian: GaussianPyramid | None = None

    @classmethod
    def from_gaussian(cls, pyramid: GaussianPyramid) -> "DogPyramid":
        dogs = [np.diff(stack, axis=0) for stack in pyramid.octaves]
        return cls(octaves=dogs, gaussian=pyramid)

    @property
    def num_octaves(self) -> int:
        return len(self.octaves)
