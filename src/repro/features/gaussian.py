"""Gaussian scale space and difference-of-Gaussians pyramids (Lowe 2004)."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np
from scipy import ndimage

from repro.util.validation import check_positive

__all__ = ["GaussianPyramid", "DogPyramid"]

# sigma -> precomputed separable correlation weights.  The incremental
# blur amounts are identical for every octave of every frame (they only
# depend on scales_per_octave / base_sigma / assumed_blur), so each
# kernel is built exactly once per process.
_KERNEL_CACHE: dict[float, np.ndarray] = {}


def _gaussian_correlation_kernel(sigma: float) -> np.ndarray:
    """The separable weights :func:`scipy.ndimage.gaussian_filter` would build.

    Same radius rule (``int(4.0 * sigma + 0.5)``, the default
    ``truncate=4.0``), same normalization, reversed for ``correlate1d`` —
    so running them through ``correlate1d`` is bit-identical to calling
    ``gaussian_filter`` (asserted by the pyramid parity tests).
    """
    sigma = float(sigma)
    kernel = _KERNEL_CACHE.get(sigma)
    if kernel is None:
        radius = int(4.0 * sigma + 0.5)
        x = np.arange(-radius, radius + 1)
        phi = np.exp(-0.5 / (sigma * sigma) * x**2)
        phi = phi / phi.sum()
        _KERNEL_CACHE[sigma] = kernel = phi[::-1].copy()
    return kernel


@dataclass
class GaussianPyramid:
    """Octave pyramid of progressively blurred images.

    Each octave holds ``scales_per_octave + 3`` levels so that DoG
    extrema can be localized in ``scales_per_octave`` intervals; each
    subsequent octave starts from the level with twice the base sigma,
    downsampled by two.
    """

    octaves: list[np.ndarray] = field(default_factory=list)  # (levels, h, w)
    sigmas: np.ndarray = field(default_factory=lambda: np.empty(0))
    scales_per_octave: int = 3
    base_sigma: float = 1.6

    @staticmethod
    def _blur_increments(
        levels: int, sigmas: np.ndarray, base_sigma: float, assumed_blur: float
    ) -> np.ndarray:
        """Incremental blur amounts between consecutive levels."""
        increments = np.zeros(levels)
        increments[0] = np.sqrt(max(base_sigma**2 - assumed_blur**2, 0.01))
        for level in range(1, levels):
            increments[level] = np.sqrt(sigmas[level] ** 2 - sigmas[level - 1] ** 2)
        return increments

    @classmethod
    def _prepare(
        cls,
        image: np.ndarray,
        num_octaves: int | None,
        scales_per_octave: int,
        base_sigma: float,
        assumed_blur: float,
    ) -> tuple[np.ndarray, int, int, np.ndarray, np.ndarray, "GaussianPyramid"]:
        check_positive("scales_per_octave", scales_per_octave)
        check_positive("base_sigma", base_sigma)
        image = np.asarray(image, dtype=np.float32)
        if image.ndim != 2:
            raise ValueError(f"image must be 2-D grayscale, got {image.shape}")
        if num_octaves is None:
            num_octaves = max(1, int(np.log2(min(image.shape))) - 3)
        levels = scales_per_octave + 3
        k = 2.0 ** (1.0 / scales_per_octave)
        sigmas = base_sigma * k ** np.arange(levels)
        increments = cls._blur_increments(levels, sigmas, base_sigma, assumed_blur)
        pyramid = cls(
            octaves=[], sigmas=sigmas, scales_per_octave=scales_per_octave,
            base_sigma=base_sigma,
        )
        return image, num_octaves, levels, sigmas, increments, pyramid

    @classmethod
    def build(
        cls,
        image: np.ndarray,
        num_octaves: int | None = None,
        scales_per_octave: int = 3,
        base_sigma: float = 1.6,
        assumed_blur: float = 0.5,
    ) -> "GaussianPyramid":
        """Build the pyramid from a float grayscale image in ``[0, 1]``.

        Each level blurs the previous one (the incremental sigmas make
        the chain sequential by construction), but the per-level work
        runs through :func:`scipy.ndimage.correlate1d` with process-wide
        cached kernels and preallocated outputs — no per-call kernel
        rebuild, no temporary allocations.  Bit-identical to the
        ``gaussian_filter`` loop retained in :meth:`build_reference`.
        """
        image, num_octaves, levels, _, increments, pyramid = cls._prepare(
            image, num_octaves, scales_per_octave, base_sigma, assumed_blur
        )
        kernels = [_gaussian_correlation_kernel(increments[level]) for level in range(levels)]
        current = image
        for _ in range(num_octaves):
            if min(current.shape) < 8:
                break
            stack = np.empty((levels, *current.shape), dtype=np.float32)
            scratch = np.empty(current.shape, dtype=np.float32)
            source = current
            for level in range(levels):
                weights = kernels[level]
                ndimage.correlate1d(
                    source, weights, axis=0, output=scratch, mode="nearest"
                )
                ndimage.correlate1d(
                    scratch, weights, axis=1, output=stack[level], mode="nearest"
                )
                source = stack[level]
            pyramid.octaves.append(stack)
            # Next octave seeds from the 2x-sigma level, halved.
            current = stack[scales_per_octave][::2, ::2]
        return pyramid

    @classmethod
    def build_reference(
        cls,
        image: np.ndarray,
        num_octaves: int | None = None,
        scales_per_octave: int = 3,
        base_sigma: float = 1.6,
        assumed_blur: float = 0.5,
    ) -> "GaussianPyramid":
        """The original per-level ``gaussian_filter`` loop (parity reference)."""
        image, num_octaves, levels, _, increments, pyramid = cls._prepare(
            image, num_octaves, scales_per_octave, base_sigma, assumed_blur
        )
        current = image
        for _ in range(num_octaves):
            if min(current.shape) < 8:
                break
            stack = np.empty((levels, *current.shape), dtype=np.float32)
            stack[0] = ndimage.gaussian_filter(current, increments[0], mode="nearest")
            for level in range(1, levels):
                stack[level] = ndimage.gaussian_filter(
                    stack[level - 1], increments[level], mode="nearest"
                )
            pyramid.octaves.append(stack)
            current = stack[scales_per_octave][::2, ::2]
        return pyramid

    @property
    def num_octaves(self) -> int:
        return len(self.octaves)

    def octave_scale(self, octave: int) -> float:
        """Pixel-size multiplier of this octave relative to the input."""
        return float(2**octave)

    def absolute_sigma(self, octave: int, level: int) -> float:
        """Blur sigma in input-image pixels for (octave, level)."""
        return float(self.sigmas[level] * self.octave_scale(octave))


@dataclass
class DogPyramid:
    """Difference-of-Gaussians stacks, one per octave."""

    octaves: list[np.ndarray] = field(default_factory=list)
    gaussian: GaussianPyramid | None = None

    @classmethod
    def from_gaussian(
        cls,
        pyramid: GaussianPyramid,
        scratch: dict[tuple[int, int, int], np.ndarray] | None = None,
    ) -> "DogPyramid":
        """Adjacent-level differences, optionally into reusable buffers.

        ``scratch`` is a shape-keyed buffer cache (the extractor owns one
        per instance): frame N+1's DoG stacks overwrite frame N's instead
        of allocating fresh ``np.diff`` copies per octave per frame.
        Callers holding a DogPyramid across frames must not pass scratch.
        """
        dogs = []
        for stack in pyramid.octaves:
            shape = (stack.shape[0] - 1, stack.shape[1], stack.shape[2])
            if scratch is None:
                buffer = np.empty(shape, dtype=stack.dtype)
            else:
                buffer = scratch.get(shape)
                if buffer is None or buffer.dtype != stack.dtype:
                    buffer = scratch[shape] = np.empty(shape, dtype=stack.dtype)
            np.subtract(stack[1:], stack[:-1], out=buffer)
            dogs.append(buffer)
        return cls(octaves=dogs, gaussian=pyramid)

    @property
    def num_octaves(self) -> int:
        return len(self.octaves)
