"""The paper's "Evaluation Takeaways" — seven headline numbers.

Each entry pairs the paper's reported value with our measured value and
the shape criterion that must hold for the reproduction to count.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["Takeaway", "PAPER_TAKEAWAYS"]


@dataclass(frozen=True)
class Takeaway:
    """One headline result: paper value + how we reproduce/judge it."""

    key: str
    paper_value: str
    shape_criterion: str
    experiment: str  # which experiment driver produces our number


PAPER_TAKEAWAYS: list[Takeaway] = [
    Takeaway(
        key="precision_recall",
        paper_value="VisualPrint precision/recall roughly comparable to LSH",
        shape_criterion="median precision and recall of VisualPrint-500 within "
        "~10 points of LSH; both well above Random",
        experiment="fig13",
    ),
    Takeaway(
        key="bandwidth",
        paper_value="1/10th bandwidth of whole-frame upload (51.2 KB vs 523 KB)",
        shape_criterion=">= 5x reduction of cumulative upload at end of run "
        "(order-of-magnitude class)",
        experiment="fig14",
    ),
    Takeaway(
        key="disk",
        paper_value="10.5 MB Bloom filters on disk vs 1.3 GB compressed LSH "
        "indices (1/124th)",
        shape_criterion="VisualPrint disk footprint >= 20x smaller than LSH "
        "at the 2.5M-descriptor scale (order-class agreement)",
        experiment="fig15",
    ),
    Takeaway(
        key="memory",
        paper_value="162 MB RAM vs 9.4 GB LSH cached in RAM (1/58th)",
        shape_criterion="VisualPrint RAM >= 20x smaller than LSH at the "
        "2.5M-descriptor scale",
        experiment="fig15",
    ),
    Takeaway(
        key="latency",
        paper_value="SIFT 3300 ms median, Bloom lookups 217 ms median — "
        "SIFT dominates",
        shape_criterion="median SIFT extraction time >= 5x median oracle "
        "ranking time per frame",
        experiment="fig16",
    ),
    Takeaway(
        key="energy",
        paper_value="complete VisualPrint ~6.5 W (camera + compute dominate); "
        "whole-frame offload ~4.9 W",
        shape_criterion="camera+compute >= 70% of total; full pipeline in "
        "the 5-8 W band",
        experiment="fig18",
    ),
    Takeaway(
        key="localization",
        paper_value="median 3D localization error 2.5 m",
        shape_criterion="median error in the 0.5-4 m band across venues, "
        "X/Y better than Z",
        experiment="fig19",
    ),
]
