"""Terminal plotting: ASCII CDFs, boxplots, and line charts.

The paper's evaluation is all CDFs and boxplots; matplotlib is not
available offline, so the experiment drivers and benchmarks render
directly to the terminal.  The renderers are deterministic (pure
character output), which also makes them testable.
"""

from __future__ import annotations

import numpy as np

__all__ = ["ascii_cdf", "ascii_boxplot", "ascii_series"]


def _format_value(value: float) -> str:
    if abs(value) >= 100 or value == int(value):
        return f"{value:.0f}"
    if abs(value) >= 1:
        return f"{value:.2f}"
    return f"{value:.3f}"


def ascii_cdf(
    series: dict[str, np.ndarray],
    width: int = 60,
    height: int = 12,
    label: str = "value",
) -> str:
    """Render one or more empirical CDFs as a character plot.

    Each series gets a marker (a, b, c, ...); the y-axis is the CDF from
    0 to 1, the x-axis spans the pooled data range.
    """
    if not series:
        raise ValueError("need at least one series")
    pooled = np.concatenate([np.asarray(v, dtype=float) for v in series.values()])
    if pooled.size == 0:
        raise ValueError("series are empty")
    low, high = float(pooled.min()), float(pooled.max())
    if high <= low:
        high = low + 1.0

    grid = [[" "] * width for _ in range(height)]
    markers = "abcdefgh"
    legend = []
    for index, (name, values) in enumerate(series.items()):
        marker = markers[index % len(markers)]
        legend.append(f"{marker}={name}")
        data = np.sort(np.asarray(values, dtype=float))
        for column in range(width):
            x = low + (high - low) * column / (width - 1)
            fraction = float(np.searchsorted(data, x, side="right")) / data.size
            row = height - 1 - int(round(fraction * (height - 1)))
            if grid[row][column] == " ":
                grid[row][column] = marker
    lines = []
    for row_index, row in enumerate(grid):
        fraction = 1.0 - row_index / (height - 1)
        lines.append(f"{fraction:4.1f} |" + "".join(row))
    lines.append("     +" + "-" * width)
    lines.append(
        f"      {_format_value(low)}"
        + " " * max(1, width - len(_format_value(low)) - len(_format_value(high)))
        + f"{_format_value(high)}  ({label})"
    )
    lines.append("      " + "  ".join(legend))
    return "\n".join(lines)


def ascii_boxplot(
    series: dict[str, np.ndarray], width: int = 58, label: str = "value"
) -> str:
    """Render horizontal five-number boxplots, one row per series."""
    if not series:
        raise ValueError("need at least one series")
    pooled = np.concatenate([np.asarray(v, dtype=float) for v in series.values()])
    if pooled.size == 0:
        raise ValueError("series are empty")
    low, high = float(pooled.min()), float(pooled.max())
    if high <= low:
        high = low + 1.0

    def column(value: float) -> int:
        return int(round((value - low) / (high - low) * (width - 1)))

    name_width = max(len(name) for name in series)
    lines = []
    for name, values in series.items():
        values = np.asarray(values, dtype=float)
        q0, q1, q2, q3, q4 = np.percentile(values, [0, 25, 50, 75, 100])
        row = [" "] * width
        for position in range(column(q0), column(q4) + 1):
            row[position] = "-"
        for position in range(column(q1), column(q3) + 1):
            row[position] = "="
        row[column(q2)] = "#"
        lines.append(
            f"{name:>{name_width}} |" + "".join(row) + f"| med={_format_value(q2)}"
        )
    lines.append(
        " " * name_width
        + f"  {_format_value(low)}"
        + " " * max(1, width - len(_format_value(low)) - len(_format_value(high)))
        + f"{_format_value(high)}  ({label})"
    )
    return "\n".join(lines)


def ascii_series(
    xs: np.ndarray,
    series: dict[str, np.ndarray],
    width: int = 60,
    height: int = 12,
    log_y: bool = False,
    label: str = "",
) -> str:
    """Render y-vs-x line series as a character plot (Fig. 2 style)."""
    if not series:
        raise ValueError("need at least one series")
    xs = np.asarray(xs, dtype=float)
    all_y = np.concatenate([np.asarray(v, dtype=float) for v in series.values()])
    if log_y:
        all_y = np.log10(np.maximum(all_y, 1e-12))
    y_low, y_high = float(all_y.min()), float(all_y.max())
    if y_high <= y_low:
        y_high = y_low + 1.0
    x_low, x_high = float(xs.min()), float(xs.max())
    if x_high <= x_low:
        x_high = x_low + 1.0

    grid = [[" "] * width for _ in range(height)]
    markers = "abcdefgh"
    legend = []
    for index, (name, values) in enumerate(series.items()):
        marker = markers[index % len(markers)]
        legend.append(f"{marker}={name}")
        ys = np.asarray(values, dtype=float)
        if log_y:
            ys = np.log10(np.maximum(ys, 1e-12))
        for x, y in zip(xs, ys):
            column = int(round((x - x_low) / (x_high - x_low) * (width - 1)))
            row = height - 1 - int(round((y - y_low) / (y_high - y_low) * (height - 1)))
            if 0 <= row < height and 0 <= column < width:
                grid[row][column] = marker
    lines = ["".join(row) for row in grid]
    lines = [f"  |{line}" for line in lines]
    lines.append("  +" + "-" * width)
    suffix = " (log y)" if log_y else ""
    lines.append(f"   x: {_format_value(x_low)}..{_format_value(x_high)} {label}{suffix}")
    lines.append("   " + "  ".join(legend))
    return "\n".join(lines)
