"""Figure 20: localization error split by X / Y / Z.

Shares the fig19 runs.  Expected shape: horizontal (X/Y) errors smaller
than vertical (Z) — "the wardriving motion is also along the X/Y plane".
"""

from __future__ import annotations

import numpy as np

from repro.evaluation.experiments import fig19_localization

__all__ = ["run", "main"]


def run(**kwargs) -> dict:
    """Returns per-venue, per-axis error arrays (Fig. 20 boxplot input)."""
    result = fig19_localization.run(**kwargs)
    return {"axis_errors": result["axis_errors"]}


def main() -> None:
    result = run()
    print("Figure 20: localization error by dimension")
    print(f"{'venue':<11} {'axis':<5} {'p25':>6} {'median':>7} {'p75':>6}")
    for venue, axes in result["axis_errors"].items():
        for axis, values in axes.items():
            print(
                f"{venue:<11} {axis:<5} {np.percentile(values, 25):>6.2f} "
                f"{np.median(values):>7.2f} {np.percentile(values, 75):>6.2f}"
            )


if __name__ == "__main__":
    main()
