"""Figure 3: CDF of SIFT keypoint counts, PNG vs JPEG.

PNG is lossless, so its keypoints are the original image's.  JPEG at a
matched (aggressive) compression ratio destroys low-contrast texture;
we count the keypoints of the decoded JPEG that still correspond to a
keypoint of the original (position within 2 px, similar descriptor).

Measured deviation from the paper: raw post-JPEG keypoint counts do not
drop on synthetic imagery because DCT quantization noise creates
spurious extrema that real photos' statistics suppress; spurious
keypoints cannot match the database, so the *surviving*-keypoint count
is the quantity that carries Fig. 3's message (JPEG CDF left of PNG).
See DESIGN.md §"Known deviations".
"""

from __future__ import annotations

import numpy as np

from repro.codecs import JpegCodec
from repro.features import KeypointSet, SiftExtractor, SiftParams
from repro.imaging import to_float, to_uint8
from repro.imaging.synth import SceneLibrary

__all__ = ["run", "main", "surviving_keypoints"]


def surviving_keypoints(
    original: KeypointSet,
    degraded: KeypointSet,
    position_tolerance: float = 2.0,
    descriptor_tolerance: float = 150.0,
) -> int:
    """Degraded-image keypoints that are the same feature as an original."""
    if len(degraded) == 0 or len(original) == 0:
        return 0
    deltas = degraded.positions[:, np.newaxis, :] - original.positions[np.newaxis, :, :]
    squared = (deltas**2).sum(axis=2)
    nearest = squared.argmin(axis=1)
    close = squared[np.arange(len(degraded)), nearest] < position_tolerance**2
    descriptor_distance = np.linalg.norm(
        degraded.descriptors - original.descriptors[nearest], axis=1
    )
    return int((close & (descriptor_distance < descriptor_tolerance)).sum())


def run(
    seed: int = 7,
    num_images: int = 60,
    image_size: int = 256,
    jpeg_quality: int = 12,
    contrast_threshold: float = 0.008,
) -> dict:
    """Returns keypoint-count samples for the PNG and JPEG CDFs."""
    library = SceneLibrary(
        seed=seed,
        num_scenes=num_images // 2,
        num_distractors=num_images - num_images // 2,
        size=(image_size, image_size),
    )
    extractor = SiftExtractor(SiftParams(contrast_threshold=contrast_threshold))
    codec = JpegCodec(quality=jpeg_quality)

    png_counts: list[int] = []
    jpeg_counts: list[int] = []
    compression_ratios: list[float] = []
    for label, image in library.all_database_images():
        u8 = to_uint8(image)
        original = extractor.extract(to_float(u8))
        payload, decoded = codec.roundtrip(u8)
        degraded = extractor.extract(to_float(decoded))
        png_counts.append(len(original))  # PNG decodes bit-exact
        jpeg_counts.append(surviving_keypoints(original, degraded))
        compression_ratios.append(u8.nbytes / len(payload))
    return {
        "png_counts": np.array(png_counts),
        "jpeg_counts": np.array(jpeg_counts),
        "mean_compression_ratio": float(np.mean(compression_ratios)),
    }


def main() -> None:
    result = run()
    png = result["png_counts"]
    jpeg = result["jpeg_counts"]
    print("Figure 3: SIFT keypoint count CDF, PNG vs JPEG")
    print(f"JPEG compression ratio ~{result['mean_compression_ratio']:.0f}:1")
    for q in (10, 25, 50, 75, 90):
        print(
            f"p{q:<3} PNG {np.percentile(png, q):>7.0f} "
            f"JPEG {np.percentile(jpeg, q):>7.0f}"
        )
    print(f"median drop: {1 - np.median(jpeg) / max(np.median(png), 1):.0%}")


if __name__ == "__main__":
    main()
