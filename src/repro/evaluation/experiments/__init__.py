"""One driver module per paper artifact.

Every module exposes ``run(**params) -> dict`` (the figure's series) and
``main()`` (prints the rows the paper reports).  Benchmarks call
``run``; ``python -m repro.evaluation.experiments.fig13_precision_recall``
runs one standalone.
"""

__all__ = [
    "adaptive_offload",
    "fig2_fps",
    "fig3_keypoints",
    "fig5_feature_ratio",
    "fig6_dimension_stats",
    "fig13_precision_recall",
    "fig14_upload",
    "fig15_memory",
    "fig16_latency",
    "fig18_energy",
    "fig19_localization",
    "fig20_error_axes",
    "latency_e2e",
    "takeaways_exp",
]
