"""Figure 2: uplink bandwidth vs sustainable FPS, by encoding.

Encodes a synthetic capture sequence with each codec to get its bytes
per frame, then sweeps uplink bandwidth.  Expected shape (log-log):
parallel lines ordered H264 > JPEG > PNG > RAW in FPS at any rate, about
an order of magnitude apart per encoder class; lossless streams cannot
sustain 10 FPS below tens of Mbps.
"""

from __future__ import annotations

import numpy as np

from repro.codecs import H264Codec, JpegCodec, PngCodec, RawCodec
from repro.imaging import to_uint8
from repro.imaging.synth import SceneLibrary
from repro.network import fps_curve
from repro.obs import resolve_registry

__all__ = ["run", "main"]


def _capture_sequence(
    seed: int, num_frames: int, size: int
) -> list[np.ndarray]:
    """A panning capture of one scene (adjacent frames overlap heavily)."""
    library = SceneLibrary(seed=seed, num_scenes=1, num_distractors=0, size=(size, size))
    base = to_uint8(library.scene(0))
    return [np.roll(base, shift=3 * i, axis=1) for i in range(num_frames)]


def run(
    seed: int = 7,
    num_frames: int = 12,
    image_size: int = 384,
    jpeg_quality: int = 40,
    bandwidths_mbps: np.ndarray | None = None,
) -> dict:
    """Returns per-encoding bytes/frame and the FPS-vs-bandwidth series."""
    if bandwidths_mbps is None:
        bandwidths_mbps = np.array([1, 2, 4, 8, 16, 32], dtype=float)
    frames = _capture_sequence(seed, num_frames, image_size)

    bytes_per_frame: dict[str, float] = {}
    bytes_per_frame["raw"] = float(
        np.mean([len(RawCodec().encode(f)) for f in frames])
    )
    bytes_per_frame["png"] = float(
        np.mean([len(PngCodec().encode(f)) for f in frames])
    )
    bytes_per_frame["jpeg"] = float(
        np.mean([len(JpegCodec(quality=jpeg_quality).encode(f)) for f in frames])
    )
    bytes_per_frame["h264"] = H264Codec(
        i_quality=jpeg_quality + 20, p_quality=jpeg_quality
    ).mean_bytes_per_frame(frames)

    fps = {
        name: fps_curve(bandwidths_mbps, size)
        for name, size in bytes_per_frame.items()
    }
    # Deterministic scalars for the CI metrics-diff gate (the frames are
    # seeded, so per-encoding sizes are fixed by the workload).
    registry = resolve_registry(None)
    registry.counter(
        "fig2_frames_total", help="frames encoded in the fig2 sweep"
    ).inc(num_frames)
    for name, size in bytes_per_frame.items():
        registry.gauge(
            "fig2_bytes_per_frame",
            help="mean encoded bytes per frame",
            encoding=name,
        ).set(size)
    return {
        "bandwidths_mbps": bandwidths_mbps,
        "bytes_per_frame": bytes_per_frame,
        "fps": fps,
    }


def main() -> None:
    result = run()
    print("Figure 2: sustainable FPS by uplink bandwidth (log-log in paper)")
    print(f"{'encoding':<8} {'bytes/frame':>12}", end="")
    for mbps in result["bandwidths_mbps"]:
        print(f" {mbps:>8.0f}Mbps", end="")
    print()
    for name in ("h264", "jpeg", "png", "raw"):
        print(f"{name:<8} {result['bytes_per_frame'][name]:>12.0f}", end="")
        for value in result["fps"][name]:
            print(f" {value:>12.2f}", end="")
        print()


if __name__ == "__main__":
    main()
