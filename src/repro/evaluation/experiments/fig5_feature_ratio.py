"""Figure 5: CDF of (SIFT feature bytes / image bytes).

"Extracted keypoints typically require at least as much space as the
image itself.  Even after heavy GZIP compression, keypoints require
comparable space for most images, and five times more uncompressed."
The image baseline is the losslessly compressed (PNG) frame — the form
a quality-preserving upload would take (Fig. 3 rules out lossy).
"""

from __future__ import annotations

import numpy as np

from repro.codecs import PngCodec
from repro.features import SiftExtractor, SiftParams, serialize_keypoints
from repro.imaging import to_float, to_uint8
from repro.imaging.synth import SceneLibrary

__all__ = ["run", "main"]


def run(
    seed: int = 7,
    num_images: int = 60,
    image_size: int = 256,
    contrast_threshold: float = 0.008,
) -> dict:
    """Returns per-image feature/image size ratios, raw and GZIP'd."""
    library = SceneLibrary(
        seed=seed,
        num_scenes=num_images // 2,
        num_distractors=num_images - num_images // 2,
        size=(image_size, image_size),
    )
    extractor = SiftExtractor(SiftParams(contrast_threshold=contrast_threshold))
    codec = PngCodec()

    raw_ratios: list[float] = []
    gzip_ratios: list[float] = []
    for label, image in library.all_database_images():
        u8 = to_uint8(image)
        image_bytes = len(codec.encode(u8))
        keypoints = extractor.extract(to_float(u8))
        raw_bytes = len(serialize_keypoints(keypoints, compress=False))
        gzip_bytes = len(serialize_keypoints(keypoints, compress=True))
        raw_ratios.append(raw_bytes / image_bytes)
        gzip_ratios.append(gzip_bytes / image_bytes)
    return {
        "raw_ratios": np.array(raw_ratios),
        "gzip_ratios": np.array(gzip_ratios),
    }


def main() -> None:
    result = run()
    print("Figure 5: feature-size / image-size ratio CDF")
    for q in (10, 25, 50, 75, 90):
        print(
            f"p{q:<3} uncompressed {np.percentile(result['raw_ratios'], q):>6.2f} "
            f"gzip {np.percentile(result['gzip_ratios'], q):>6.2f}"
        )


if __name__ == "__main__":
    main()
