"""Figures 19-20: end-to-end localization error in three venues.

Wardrive each venue (with drift + ICP correction), ingest the mapping
into the cloud service, then localize fingerprint queries captured at
held-out poses.  Expected shape: error CDFs with medians of a couple of
meters; the aisle-heavy grocery store worst; X/Y (walking-plane) errors
smaller than Z.
"""

from __future__ import annotations

import numpy as np

from repro.core import VisualPrintClient, VisualPrintConfig, VisualPrintServer
from repro.features.keypoint import KeypointSet
from repro.geometry import Pose
from repro.localization import error_by_axis, localization_errors
from repro.util.rng import rng_for
from repro.wardrive import DriftModel, IndoorEnvironment, TangoRig, WardriveSession

__all__ = ["run", "main", "query_poses", "simulate_query"]


def query_poses(
    environment: IndoorEnvironment, count: int, seed: int
) -> list[Pose]:
    """Held-out query poses: random interior positions facing a wall."""
    rng = rng_for(seed, f"querypose/{environment.spec.name}")
    spec = environment.spec
    poses: list[Pose] = []
    while len(poses) < count:
        x = float(rng.uniform(3.0, spec.width - 3.0))
        y = float(rng.uniform(3.0, spec.depth - 3.0))
        # Face the nearest wall so enough landmarks are in range.
        distances = {
            0.0: spec.width - x,  # +x wall
            np.pi: x,  # -x wall
            np.pi / 2: spec.depth - y,  # +y wall
            -np.pi / 2: y,  # -y wall
        }
        yaw = min(distances, key=distances.get)
        poses.append(
            Pose(x=x, y=y, z=1.5, yaw=yaw + float(rng.uniform(-0.3, 0.3)))
        )
    return poses


def simulate_query(
    environment: IndoorEnvironment,
    pose: Pose,
    rig: TangoRig,
    rng: np.random.Generator,
    descriptor_noise: float = 3.0,
) -> KeypointSet | None:
    """The query phone's keypoints at ``pose`` (RGB only — no depth)."""
    ids, pixels, _ = rig.observe(pose)
    if ids.size < 8:
        return None
    descriptors = environment.descriptors[ids] + rng.normal(
        0, descriptor_noise, size=(ids.size, 128)
    )
    count = ids.size
    return KeypointSet(
        positions=pixels.astype(np.float32),
        scales=np.ones(count, dtype=np.float32),
        orientations=np.zeros(count, dtype=np.float32),
        responses=np.ones(count, dtype=np.float32),
        descriptors=np.clip(descriptors, 0, 255).astype(np.float32),
    )


def run(
    seed: int = 3,
    venues: tuple[str, ...] = ("office", "cafeteria", "grocery"),
    queries_per_venue: int = 40,
    drift_scale: float = 2.0,
    fingerprint_size: int = 60,
    use_icp: bool = True,
) -> dict:
    """Returns per-venue 3D error arrays and per-axis errors."""
    errors: dict[str, np.ndarray] = {}
    axis_errors: dict[str, dict[str, np.ndarray]] = {}
    for venue in venues:
        environment = IndoorEnvironment.build(venue, seed=seed)
        session = WardriveSession(
            environment, seed=seed, drift=DriftModel(scale=drift_scale)
        )
        mapping = session.run(use_icp=use_icp)
        config = VisualPrintConfig(
            descriptor_capacity=max(mapping.num_mappings, 1024),
            fingerprint_size=fingerprint_size,
        )
        server = VisualPrintServer(config, bounds=environment.bounds)
        server.ingest(mapping.descriptors, mapping.positions)
        client = VisualPrintClient(server.publish_oracle(), config)

        rig = TangoRig(environment, seed=seed + 50)
        rng = rng_for(seed, f"querydesc/{venue}")
        estimated: list[Pose] = []
        truth: list[Pose] = []
        for pose in query_poses(environment, queries_per_venue, seed):
            keypoints = simulate_query(environment, pose, rig, rng)
            if keypoints is None:
                continue
            fingerprint = client.fingerprint_keypoints(keypoints)
            answer = server.localize(fingerprint)
            estimated.append(answer.pose)
            truth.append(pose)
        errors[venue] = localization_errors(estimated, truth)
        axis_errors[venue] = error_by_axis(estimated, truth)
    return {"errors": errors, "axis_errors": axis_errors}


def main() -> None:
    result = run()
    print("Figure 19: 3D localization error CDFs by venue")
    for venue, values in result["errors"].items():
        print(
            f"{venue:<10} n={values.size:<3} median {np.median(values):>5.2f} m  "
            f"p90 {np.percentile(values, 90):>5.2f} m"
        )
    print("Figure 20: error by axis (medians)")
    for venue, axes in result["axis_errors"].items():
        print(
            f"{venue:<10} "
            + "  ".join(
                f"{axis}={np.median(values):.2f}m" for axis, values in axes.items()
            )
        )


if __name__ == "__main__":
    main()
