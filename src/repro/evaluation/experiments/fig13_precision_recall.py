"""Figure 13: precision/recall CDFs for the five matching regimes.

Expected shape: Random worst on both axes; VisualPrint-200 comparable to
LSH; VisualPrint-500 at or slightly above LSH precision (the oracle
discards distracting non-unique keypoints); BruteForce best recall.

The default workload is a scaled version of the paper's (its image
resolution and keypoint budgets are smaller by ~4x; fingerprint sizes
scale with the keypoint budget — see DESIGN.md).
"""

from __future__ import annotations

import numpy as np

from repro.evaluation.datasets import build_workload
from repro.evaluation.retrieval import (
    build_oracle,
    build_scene_database,
    evaluate_scheme_cdfs,
    run_bruteforce,
    run_lsh,
    run_random,
    run_visualprint,
)
from repro.matching import LshMatcher

__all__ = ["run", "main"]


def run(
    seed: int = 7,
    num_scenes: int = 50,
    num_distractors: int = 200,
    views_per_scene: int = 5,
    image_size: int = 320,
    small_count: int = 100,
    large_count: int = 250,
    random_count: int = 250,
    min_votes: int = 5,
    include_bruteforce: bool = True,
    cache_dir: str | None = ".cache",
    workers: int = 1,
) -> dict:
    """Returns per-scheme precision/recall value arrays (CDF inputs).

    ``workers`` fans out the three serial hot paths — workload
    extraction, oracle wardrive ingest, and each scheme's query loop —
    across a process pool; results are bit-identical to ``workers=1``.
    """
    workload = build_workload(
        seed=seed,
        num_scenes=num_scenes,
        num_distractors=num_distractors,
        views_per_scene=views_per_scene,
        image_size=image_size,
        cache_dir=cache_dir,
        workers=workers,
    )
    database = build_scene_database(workload)
    oracle = build_oracle(workload, workers=workers)
    matcher = LshMatcher(database.descriptors)

    results = [
        run_random(
            workload,
            database,
            matcher,
            count=random_count,
            min_votes=min_votes,
            workers=workers,
        ),
        run_visualprint(
            workload,
            database,
            matcher,
            oracle,
            count=small_count,
            min_votes=min_votes,
            workers=workers,
        ),
        run_visualprint(
            workload,
            database,
            matcher,
            oracle,
            count=large_count,
            min_votes=min_votes,
            workers=workers,
        ),
        run_lsh(workload, database, matcher, min_votes=min_votes, workers=workers),
    ]
    if include_bruteforce:
        results.append(
            run_bruteforce(workload, database, min_votes=min_votes, workers=workers)
        )
    cdfs = evaluate_scheme_cdfs(results, database)
    return {
        "cdfs": cdfs,
        "mean_query_keypoints": workload.mean_query_keypoints(),
        "num_database_descriptors": workload.num_database_descriptors,
        "uploaded_keypoints": {
            r.scheme: float(r.uploaded_keypoints.mean()) for r in results
        },
    }


def main(workers: int = 1, **overrides) -> None:
    result = run(workers=workers, **overrides)
    print("Figure 13: per-scene precision/recall by scheme")
    print(
        f"(database: {result['num_database_descriptors']} descriptors, "
        f"mean query keypoints {result['mean_query_keypoints']:.0f})"
    )
    print(f"{'scheme':<18} {'P p25':>6} {'P med':>6} {'P p75':>6} "
          f"{'R p25':>6} {'R med':>6} {'R p75':>6} {'upload':>7}")
    for scheme, pr in result["cdfs"].items():
        p, r = pr["precision"], pr["recall"]
        upload = result["uploaded_keypoints"][scheme]
        print(
            f"{scheme:<18} {np.percentile(p, 25):>6.2f} {np.median(p):>6.2f} "
            f"{np.percentile(p, 75):>6.2f} {np.percentile(r, 25):>6.2f} "
            f"{np.median(r):>6.2f} {np.percentile(r, 75):>6.2f} {upload:>7.0f}"
        )


if __name__ == "__main__":
    main()
