"""Figure 13: precision/recall CDFs for the five matching regimes.

Expected shape: Random worst on both axes; VisualPrint-200 comparable to
LSH; VisualPrint-500 at or slightly above LSH precision (the oracle
discards distracting non-unique keypoints); BruteForce best recall.

The default workload is a scaled version of the paper's (its image
resolution and keypoint budgets are smaller by ~4x; fingerprint sizes
scale with the keypoint budget — see DESIGN.md).
"""

from __future__ import annotations

import numpy as np

from repro.core.fingerprint import degradation_keep_counts
from repro.evaluation.datasets import build_workload
from repro.evaluation.retrieval import (
    build_oracle,
    build_scene_database,
    evaluate_scheme_cdfs,
    run_bruteforce,
    run_lsh,
    run_random,
    run_visualprint,
)
from repro.features.serialize import serialized_size
from repro.matching import LshMatcher
from repro.network import CHANNEL_PRESETS, FaultSpec, FaultyChannel, RetryPolicy
from repro.network.faults import submit_payload
from repro.util.rng import rng_for

__all__ = ["run", "main"]


def _replay_uploads(
    results, seed: int, channel: str, faults: FaultSpec | None, retry: RetryPolicy
) -> dict:
    """Re-run every scheme's query uploads through a (faulty) channel.

    The retrieval stage computes each query's uploaded keypoint count;
    this prices those payloads on the wire and submits them under the
    retry policy, sequentially in the parent — so the fault pattern is
    deterministic for a fixed seed and independent of ``workers``.
    VisualPrint schemes degrade down their fingerprint ladder; the
    fixed-budget baselines retry the full payload.
    """
    uplink = CHANNEL_PRESETS[channel]
    channel_model = FaultyChannel(uplink, faults) if faults is not None else uplink
    rng = rng_for(seed, "fig13/uplink")
    replay: dict[str, dict[str, int]] = {}
    for result in results:
        degradable = "visualprint" in result.scheme.lower()
        counts = {"delivered": 0, "degraded": 0, "abandoned": 0, "retries": 0}
        for keypoints in result.uploaded_keypoints:
            ladder_counts = (
                degradation_keep_counts(int(keypoints))
                if degradable
                else [int(keypoints)]
            )
            outcome = submit_payload(
                channel_model,
                [serialized_size(count) for count in ladder_counts],
                retry,
                rng,
            )
            counts["retries"] += outcome.retries
            if outcome.delivered:
                counts["delivered"] += 1
                counts["degraded"] += outcome.status == "degraded"
            else:
                counts["abandoned"] += 1
        replay[result.scheme] = counts
    return replay


def run(
    seed: int = 7,
    num_scenes: int = 50,
    num_distractors: int = 200,
    views_per_scene: int = 5,
    image_size: int = 320,
    small_count: int = 100,
    large_count: int = 250,
    random_count: int = 250,
    min_votes: int = 5,
    include_bruteforce: bool = True,
    cache_dir: str | None = ".cache",
    workers: int = 1,
    channel: str = "lte",
    faults: FaultSpec | None = None,
    retry: RetryPolicy | None = None,
    serving: int | None = None,
) -> dict:
    """Returns per-scheme precision/recall value arrays (CDF inputs).

    ``workers`` fans out the three serial hot paths — workload
    extraction, oracle wardrive ingest, and each scheme's query loop —
    across a process pool; results are bit-identical to ``workers=1``.

    ``serving`` routes every scheme's query loop through a
    :class:`repro.serving.ServingFrontend` with that many shards (one
    venue per scheme, inline workers).  Queries execute in admission
    order in this process, so results — predictions, spans, metrics —
    are bit-identical to the direct path regardless of the shard count;
    what changes is the request path (admission, routing, per-shard
    accounting), which is exactly what the CI serving smoke diffs.

    With ``retry`` set (the ``--channel-loss`` CLI path), each scheme's
    query uploads additionally replay through ``channel`` under
    ``faults`` and the retry policy, adding an ``uplink`` section to the
    result — the CI lossy smoke gates on its deterministic counts.
    """
    workload = build_workload(
        seed=seed,
        num_scenes=num_scenes,
        num_distractors=num_distractors,
        views_per_scene=views_per_scene,
        image_size=image_size,
        cache_dir=cache_dir,
        workers=workers,
    )
    database = build_scene_database(workload)
    oracle = build_oracle(workload, workers=workers)
    matcher = LshMatcher(database.descriptors)

    frontend = None
    if serving is not None:
        from repro.serving import ServingFrontend

        frontend = ServingFrontend(num_shards=serving, seed=seed)

    results = [
        run_random(
            workload,
            database,
            matcher,
            count=random_count,
            min_votes=min_votes,
            workers=workers,
            frontend=frontend,
        ),
        run_visualprint(
            workload,
            database,
            matcher,
            oracle,
            count=small_count,
            min_votes=min_votes,
            workers=workers,
            frontend=frontend,
        ),
        run_visualprint(
            workload,
            database,
            matcher,
            oracle,
            count=large_count,
            min_votes=min_votes,
            workers=workers,
            frontend=frontend,
        ),
        run_lsh(
            workload,
            database,
            matcher,
            min_votes=min_votes,
            workers=workers,
            frontend=frontend,
        ),
    ]
    if include_bruteforce:
        results.append(
            run_bruteforce(
                workload,
                database,
                min_votes=min_votes,
                workers=workers,
                frontend=frontend,
            )
        )
    if frontend is not None:
        frontend.close()
    cdfs = evaluate_scheme_cdfs(results, database)
    out = {
        "cdfs": cdfs,
        "mean_query_keypoints": workload.mean_query_keypoints(),
        "num_database_descriptors": workload.num_database_descriptors,
        "uploaded_keypoints": {
            r.scheme: float(r.uploaded_keypoints.mean()) for r in results
        },
    }
    if retry is not None:
        out["uplink"] = _replay_uploads(results, seed, channel, faults, retry)
    return out


def main(workers: int = 1, **overrides) -> None:
    result = run(workers=workers, **overrides)
    print("Figure 13: per-scene precision/recall by scheme")
    print(
        f"(database: {result['num_database_descriptors']} descriptors, "
        f"mean query keypoints {result['mean_query_keypoints']:.0f})"
    )
    print(f"{'scheme':<18} {'P p25':>6} {'P med':>6} {'P p75':>6} "
          f"{'R p25':>6} {'R med':>6} {'R p75':>6} {'upload':>7}")
    for scheme, pr in result["cdfs"].items():
        p, r = pr["precision"], pr["recall"]
        upload = result["uploaded_keypoints"][scheme]
        print(
            f"{scheme:<18} {np.percentile(p, 25):>6.2f} {np.median(p):>6.2f} "
            f"{np.percentile(p, 75):>6.2f} {np.percentile(r, 25):>6.2f} "
            f"{np.median(r):>6.2f} {np.percentile(r, 75):>6.2f} {upload:>7.0f}"
        )


if __name__ == "__main__":
    main()
