"""Figure 16: client compute latency CDF — SIFT vs oracle lookups.

The paper's medians on a Galaxy S6: SIFT extraction 3300 ms, Bloom
filter lookups + sorting 217 ms — extraction dominates by ~15x.  Our
absolute numbers come from this host; the hardware-independent shape is
the ratio (SIFT >= 5x oracle ranking per frame).

The driver reads its per-stage samples from the client's metrics
registry (``client_sift_seconds`` / ``client_oracle_seconds``
histograms) and additionally pushes every fingerprint through an uplink
channel model, so a ``--metrics-json`` run captures the full
shutter-to-server accounting: sift/oracle/serialize latency histograms,
upload-byte counters, and ``network_transfer_seconds``.

A ``--trace-out`` run additionally yields one correlated trace per
frame: the "frame" span tree produced in a pool worker plus the
parent-side ``network.transfer`` span, linked by the frame's trace
context (returned alongside each payload size).
"""

from __future__ import annotations

import numpy as np

from repro.core import UniquenessOracle, VisualPrintClient, VisualPrintConfig
from repro.features import SiftExtractor, SiftParams
from repro.imaging.synth import SceneLibrary
from repro.network import CHANNEL_PRESETS
from repro.obs import TraceContext, resolve_registry, use_trace_context
from repro.parallel import get_shared, parallel_map
from repro.util.rng import rng_for

__all__ = ["run", "main"]


def _make_client() -> tuple:
    """Per-chunk setup: a client whose metrics merge back to the parent."""
    library, oracle, config = get_shared()
    return library, VisualPrintClient(oracle, config)


def _process_frame(frame: int, context: tuple) -> tuple[int, TraceContext | None]:
    """Fingerprint one frame; returns (payload size, frame trace context).

    The trace context travels back to the parent so the channel
    transfer — applied sequentially after the pool for rng determinism —
    can join the frame's trace (one ``trace_id`` per query end to end).
    """
    library, client = context
    scene = frame % library.num_scenes
    view = frame % library.views_per_scene
    fingerprint = client.process_frame(library.query_view(scene, view), frame)
    return fingerprint.upload_bytes, client.tracer.last_context()


def run(
    seed: int = 7,
    num_frames: int = 20,
    image_size: int = 320,
    fingerprint_size: int = 200,
    channel: str = "wifi",
    workers: int = 1,
) -> dict:
    """Returns per-frame SIFT, oracle, and transfer latency samples.

    ``workers`` fans the frame loop across a process pool; each worker
    constructs its own :class:`VisualPrintClient` (in ``chunk_setup``)
    so the per-frame latency histograms merge back into this run's
    registry in deterministic chunk order.  Transfer jitter is applied
    in the parent, consuming the rng stream sequentially, so the
    transfer samples match a serial run exactly.
    """
    library = SceneLibrary(
        seed=seed,
        num_scenes=max(2, num_frames // 3),
        num_distractors=max(2, num_frames // 3),
        size=(image_size, image_size),
    )
    config = VisualPrintConfig(
        descriptor_capacity=200_000, fingerprint_size=fingerprint_size
    )
    oracle = UniquenessOracle(config)

    # Seed the oracle with database content using a standalone extractor
    # so the warm-up frames never pollute the client's latency metrics.
    seeder = SiftExtractor(SiftParams(contrast_threshold=0.01))
    for scene in range(min(6, library.num_scenes)):
        keypoints = seeder.extract(library.scene(scene))
        if len(keypoints):
            oracle.insert(keypoints.descriptors)

    registry = resolve_registry(None)
    outcomes = parallel_map(
        _process_frame,
        range(num_frames),
        workers=workers,
        shared=(library, oracle, config),
        chunk_setup=_make_client,
        registry=registry,
    )
    upload_bytes = [size for size, _ in outcomes]

    uplink = CHANNEL_PRESETS[channel]
    rng = rng_for(seed, "fig16/jitter")
    transfer = []
    for size, trace_context in outcomes:
        # Each simulated transfer joins its originating frame's trace.
        with use_trace_context(trace_context):
            transfer.append(uplink.transfer_seconds(size, rng))

    sift = np.array(registry.histogram("client_sift_seconds").values())
    oracle_t = np.array(registry.histogram("client_oracle_seconds").values())
    return {
        "sift_seconds": sift,
        "oracle_seconds": oracle_t,
        "transfer_seconds": np.array(transfer),
        "median_sift": float(np.median(sift)),
        "median_oracle": float(np.median(oracle_t)),
        "median_transfer": float(np.median(transfer)),
        "ratio": float(np.median(sift) / max(np.median(oracle_t), 1e-9)),
    }


def main(workers: int = 1, **overrides) -> None:
    result = run(workers=workers, **overrides)
    print("Figure 16: client compute latency CDF (this host)")
    for q in (10, 50, 90):
        print(
            f"p{q:<3} SIFT {np.percentile(result['sift_seconds'], q) * 1e3:>8.1f} ms   "
            f"oracle {np.percentile(result['oracle_seconds'], q) * 1e3:>7.1f} ms   "
            f"transfer {np.percentile(result['transfer_seconds'], q) * 1e3:>7.1f} ms"
        )
    print(
        f"median ratio SIFT/oracle: {result['ratio']:.1f}x "
        "(paper: 3300 ms / 217 ms ~ 15x)"
    )


if __name__ == "__main__":
    main()
