"""Figure 16: client compute latency CDF — SIFT vs oracle lookups.

The paper's medians on a Galaxy S6: SIFT extraction 3300 ms, Bloom
filter lookups + sorting 217 ms — extraction dominates by ~15x.  Our
absolute numbers come from this host; the hardware-independent shape is
the ratio (SIFT >= 5x oracle ranking per frame).

The driver reads its per-stage samples from the client's metrics
registry (``client_sift_seconds`` / ``client_oracle_seconds``
histograms) and additionally pushes every fingerprint through an uplink
channel model, so a ``--metrics-json`` run captures the full
shutter-to-server accounting: sift/oracle/serialize latency histograms,
upload-byte counters, and ``network_transfer_seconds``.

A ``--trace-out`` run additionally yields one correlated trace per
frame: the "frame" span tree produced in a pool worker plus the
parent-side ``network.transfer`` span, linked by the frame's trace
context (returned alongside each payload size).

With ``faults``/``retry`` set (the ``--channel-loss`` / ``--retry-*``
CLI flags), transfers run through a seeded :class:`FaultyChannel` under
the retry policy: failed attempts back off and step down the
fingerprint degradation ladder, and the result gains a ``faults``
section accounting for every query (delivered + abandoned = frames; no
silent drops).  A null fault spec is bit-identical to the bare channel.
"""

from __future__ import annotations

import numpy as np

from repro.core import UniquenessOracle, VisualPrintClient, VisualPrintConfig
from repro.core.fingerprint import degradation_keep_counts
from repro.features import SiftExtractor, SiftParams
from repro.features.serialize import serialized_size
from repro.imaging.synth import SceneLibrary
from repro.network import CHANNEL_PRESETS, FaultSpec, FaultyChannel, RetryPolicy
from repro.network.faults import submit_payload
from repro.obs import TraceContext, resolve_registry, use_trace_context
from repro.parallel import get_shared, parallel_map
from repro.util.rng import rng_for

__all__ = ["run", "main"]


def _make_client() -> tuple:
    """Per-chunk setup: a client whose metrics merge back to the parent."""
    library, oracle, config = get_shared()
    return library, VisualPrintClient(oracle, config)


def _process_frame(frame: int, context: tuple) -> tuple[int, int, TraceContext | None]:
    """Fingerprint one frame; returns (payload size, keypoints, trace ctx).

    The trace context travels back to the parent so the channel
    transfer — applied sequentially after the pool for rng determinism —
    can join the frame's trace (one ``trace_id`` per query end to end).
    The keypoint count lets the parent build the degradation ladder
    without shipping the fingerprint itself across the pool.
    """
    library, client = context
    scene = frame % library.num_scenes
    view = frame % library.views_per_scene
    fingerprint = client.process_frame(library.query_view(scene, view), frame)
    return fingerprint.upload_bytes, len(fingerprint), client.tracer.last_context()


class _UplinkEngine:
    """The uplink transfer leg as a serving-layer venue engine.

    One payload is a ``_process_frame`` outcome; serving it prices the
    fingerprint on the channel (or pushes it down the retry/degradation
    path) inside the frame's trace context.  The engine consumes the
    shared jitter rng sequentially, so results are identical whether
    the legs run in a plain loop or in admission order through an
    inline :class:`repro.serving.ServingFrontend`.
    """

    def __init__(self, channel_model, rng, retry=None, registry=None) -> None:
        self.channel_model = channel_model
        self.rng = rng
        self.retry = retry
        self.registry = registry

    def serve(self, payload):
        size, num_keypoints, trace_context = payload
        with use_trace_context(trace_context):
            if self.retry is None:
                return self.channel_model.transfer_seconds(size, self.rng)
            ladder = [
                serialized_size(count)
                for count in degradation_keep_counts(num_keypoints)
            ]
            return submit_payload(
                self.channel_model, ladder, self.retry, self.rng,
                registry=self.registry,
            )


def run(
    seed: int = 7,
    num_frames: int = 20,
    image_size: int = 320,
    fingerprint_size: int = 200,
    channel: str = "wifi",
    workers: int = 1,
    faults: FaultSpec | None = None,
    retry: RetryPolicy | None = None,
    serving: int | None = None,
) -> dict:
    """Returns per-frame SIFT, oracle, and transfer latency samples.

    ``workers`` fans the frame loop across a process pool; each worker
    constructs its own :class:`VisualPrintClient` (in ``chunk_setup``)
    so the per-frame latency histograms merge back into this run's
    registry in deterministic chunk order.  Transfer jitter — and every
    fault/retry decision — is applied in the parent, consuming its rng
    streams sequentially, so the samples match a serial run exactly.

    ``serving`` routes the transfer legs through an inline
    :class:`repro.serving.ServingFrontend` venue (``fig16/uplink``)
    instead of the plain loop; admission order is submission order, so
    the rng draw sequence — and every sample — is unchanged.
    """
    library = SceneLibrary(
        seed=seed,
        num_scenes=max(2, num_frames // 3),
        num_distractors=max(2, num_frames // 3),
        size=(image_size, image_size),
    )
    config = VisualPrintConfig(
        descriptor_capacity=200_000, fingerprint_size=fingerprint_size
    )
    oracle = UniquenessOracle(config)

    # Seed the oracle with database content using a standalone extractor
    # so the warm-up frames never pollute the client's latency metrics.
    seeder = SiftExtractor(SiftParams(contrast_threshold=0.01))
    for scene in range(min(6, library.num_scenes)):
        keypoints = seeder.extract(library.scene(scene))
        if len(keypoints):
            oracle.insert(keypoints.descriptors)

    registry = resolve_registry(None)
    outcomes = parallel_map(
        _process_frame,
        range(num_frames),
        workers=workers,
        shared=(library, oracle, config),
        chunk_setup=_make_client,
        registry=registry,
    )
    upload_bytes = [size for size, _, _ in outcomes]

    uplink = CHANNEL_PRESETS[channel]
    channel_model = (
        FaultyChannel(uplink, faults) if faults is not None else uplink
    )
    rng = rng_for(seed, "fig16/jitter")
    uplink_engine = _UplinkEngine(channel_model, rng, retry=retry, registry=registry)
    if serving is not None:
        from repro.serving import ServingFrontend

        # Each simulated transfer joins its originating frame's trace;
        # the legs run in admission order, preserving the rng sequence.
        with ServingFrontend(num_shards=serving, seed=seed) as frontend:
            frontend.register_venue("fig16/uplink", uplink_engine)
            legs = frontend.map("fig16/uplink", outcomes)
    else:
        legs = [uplink_engine.serve(outcome) for outcome in outcomes]

    transfer = []
    result_extra: dict = {}
    if retry is None:
        transfer = [float(leg) for leg in legs]
    else:
        delivered = degraded = abandoned = retries = 0
        for outcome in legs:
            retries += outcome.retries
            if outcome.delivered:
                delivered += 1
                degraded += outcome.status == "degraded"
                transfer.append(outcome.latency_seconds)
            else:
                abandoned += 1
        result_extra["faults"] = {
            "delivered": delivered,
            "degraded": degraded,
            "abandoned": abandoned,
            "retries": retries,
        }

    sift = np.array(registry.histogram("client_sift_seconds").values())
    oracle_t = np.array(registry.histogram("client_oracle_seconds").values())
    transfer_arr = np.array(transfer) if transfer else np.zeros(0)
    return {
        "sift_seconds": sift,
        "oracle_seconds": oracle_t,
        "transfer_seconds": transfer_arr,
        "upload_bytes": np.array(upload_bytes),
        "median_sift": float(np.median(sift)),
        "median_oracle": float(np.median(oracle_t)),
        "median_transfer": float(np.median(transfer_arr)) if transfer else 0.0,
        "ratio": float(np.median(sift) / max(np.median(oracle_t), 1e-9)),
        **result_extra,
    }


def main(workers: int = 1, **overrides) -> None:
    result = run(workers=workers, **overrides)
    print("Figure 16: client compute latency CDF (this host)")
    for q in (10, 50, 90):
        print(
            f"p{q:<3} SIFT {np.percentile(result['sift_seconds'], q) * 1e3:>8.1f} ms   "
            f"oracle {np.percentile(result['oracle_seconds'], q) * 1e3:>7.1f} ms   "
            f"transfer {np.percentile(result['transfer_seconds'], q) * 1e3:>7.1f} ms"
        )
    print(
        f"median ratio SIFT/oracle: {result['ratio']:.1f}x "
        "(paper: 3300 ms / 217 ms ~ 15x)"
    )
    if "faults" in result:
        f = result["faults"]
        print(
            f"faults: delivered {f['delivered']} (degraded {f['degraded']}), "
            f"abandoned {f['abandoned']}, retries {f['retries']}"
        )


if __name__ == "__main__":
    main()
