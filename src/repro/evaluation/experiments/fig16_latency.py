"""Figure 16: client compute latency CDF — SIFT vs oracle lookups.

The paper's medians on a Galaxy S6: SIFT extraction 3300 ms, Bloom
filter lookups + sorting 217 ms — extraction dominates by ~15x.  Our
absolute numbers come from this host; the hardware-independent shape is
the ratio (SIFT >= 5x oracle ranking per frame).
"""

from __future__ import annotations

import numpy as np

from repro.core import UniquenessOracle, VisualPrintClient, VisualPrintConfig
from repro.imaging.synth import SceneLibrary

__all__ = ["run", "main"]


def run(
    seed: int = 7,
    num_frames: int = 20,
    image_size: int = 320,
    fingerprint_size: int = 200,
) -> dict:
    """Returns per-frame SIFT and oracle latency samples (seconds)."""
    library = SceneLibrary(
        seed=seed,
        num_scenes=max(2, num_frames // 3),
        num_distractors=max(2, num_frames // 3),
        size=(image_size, image_size),
    )
    config = VisualPrintConfig(
        descriptor_capacity=200_000, fingerprint_size=fingerprint_size
    )
    oracle = UniquenessOracle(config)
    client = VisualPrintClient(oracle, config)

    # Seed the oracle with database content first.
    for scene in range(min(6, library.num_scenes)):
        keypoints = client.extract_keypoints(library.scene(scene))
        if len(keypoints):
            oracle.insert(keypoints.descriptors)
    client.stats.sift_seconds.clear()

    for frame in range(num_frames):
        scene = frame % library.num_scenes
        view = frame % library.views_per_scene
        client.process_frame(library.query_view(scene, view), frame_index=frame)

    sift = np.array(client.stats.sift_seconds)
    oracle_t = np.array(client.stats.oracle_seconds)
    return {
        "sift_seconds": sift,
        "oracle_seconds": oracle_t,
        "median_sift": float(np.median(sift)),
        "median_oracle": float(np.median(oracle_t)),
        "ratio": float(np.median(sift) / max(np.median(oracle_t), 1e-9)),
    }


def main() -> None:
    result = run()
    print("Figure 16: client compute latency CDF (this host)")
    for q in (10, 50, 90):
        print(
            f"p{q:<3} SIFT {np.percentile(result['sift_seconds'], q) * 1e3:>8.1f} ms   "
            f"oracle {np.percentile(result['oracle_seconds'], q) * 1e3:>7.1f} ms"
        )
    print(
        f"median ratio SIFT/oracle: {result['ratio']:.1f}x "
        "(paper: 3300 ms / 217 ms ~ 15x)"
    )


if __name__ == "__main__":
    main()
