"""Figure 6: why few descriptor dimensions matter.

(a) boxplots of sorted per-dimension squared NN differences — a few
dimensions provide most of the Euclidean distance between a descriptor
and its nearest neighbor; (b) PCA eigenvalue spectrum — a few components
account for the majority of covariance.  Together these justify E2LSH's
low-dimensional projections (M = 7 of 128).
"""

from __future__ import annotations

import numpy as np

from repro.evaluation.datasets import build_workload
from repro.evaluation.descriptor_stats import (
    dimensions_for_variance,
    nearest_neighbor_dimension_profile,
    pca_eigenvalue_spectrum,
)

__all__ = ["run", "main"]


def run(
    seed: int = 7,
    num_scenes: int = 20,
    num_distractors: int = 40,
    image_size: int = 256,
    sample_queries: int = 1500,
    cache_dir: str | None = ".cache",
) -> dict:
    """Returns the sorted-difference profile and the PCA spectrum."""
    workload = build_workload(
        seed=seed,
        num_scenes=num_scenes,
        num_distractors=num_distractors,
        views_per_scene=2,
        image_size=image_size,
        cache_dir=cache_dir,
    )
    database = np.vstack([k.descriptors for k in workload.database_keypoints])
    queries = np.vstack([k.descriptors for k in workload.query_keypoints])
    profile = nearest_neighbor_dimension_profile(
        queries, database, sample=sample_queries
    )
    spectrum = pca_eigenvalue_spectrum(database)
    return {
        "sorted_squared_differences": profile,  # (n, 128)
        "pca_spectrum": spectrum,  # (128,)
        "dims_for_90pct_variance": dimensions_for_variance(spectrum, 0.9),
    }


def main() -> None:
    result = run()
    profile = result["sorted_squared_differences"]
    medians = np.median(profile, axis=0)
    total = medians.sum()
    print("Figure 6a: sorted per-dimension squared NN differences (medians)")
    for rank in (0, 1, 3, 7, 15, 31, 63, 127):
        print(f"rank {rank + 1:>3}: {medians[rank]:>9.1f}")
    top8 = medians[:8].sum() / max(total, 1e-9)
    print(f"top 8 of 128 dimensions carry {top8:.0%} of the median distance")
    print("Figure 6b: PCA spectrum")
    print(
        f"dimensions for 90% variance: {result['dims_for_90pct_variance']} of 128"
    )


if __name__ == "__main__":
    main()
