"""Adaptive vs. reactive offload across loss regimes (fig13/fig14 style).

The reactive client pays for a bad uplink *after* the fact: bytes are
burnt on full-size attempts that the channel was always going to drop,
and the degradation ladder only steps down once the damage is done.
The adaptive policy (:mod:`repro.network.linkstate`) predicts link
quality from observed attempt history and shapes each transmission
before sending.

This experiment prices both policies on identical seeded channels in
three loss regimes:

* ``stationary`` — flat 30% good-state loss,
* ``bursty`` — Gilbert–Elliott outages over a 25% lossy link,
* ``ramp`` — a mobility-driven loss ramp (5% → 50% across four channel
  segments; the adaptive arm's estimator persists across the handoffs).

Headline series per regime and arm: wasted transfer bytes (fully
transmitted then lost), delivery rate and mean delivered keypoints (the
accuracy proxies — the paper's fig13 shows small fingerprints localize
almost as well, so delivering *something small* beats abandoning),
latency quantiles, and attempt counts.  Everything is a deterministic
function of ``seed``: reruns are bit-identical, which the CI
``adaptive-smoke`` job locks.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Sequence

import numpy as np

from repro.core.fingerprint import degradation_keep_counts
from repro.features.serialize import serialized_size
from repro.network import CHANNEL_PRESETS, FaultSpec, FaultyChannel, RetryPolicy
from repro.network.faults import submit_payload
from repro.network.linkstate import AdaptiveConfig, AdaptiveOffloadPolicy
from repro.util.rng import derive_seed, rng_for

__all__ = ["run", "main", "REGIMES"]

#: Regime name → fault-spec fields for each sequential channel segment.
#: Loss components matter: outages fail fast (one RTT, zero bytes), so
#: wasted *bytes* accrue on lossy attempts — the quantity the adaptive
#: policy's pre-degrading is meant to shrink.
REGIMES: dict[str, tuple[dict[str, float], ...]] = {
    "stationary": ({"loss": 0.30},),
    "bursty": ({"loss": 0.25, "outage_enter": 0.06, "outage_exit": 0.3},),
    "ramp": (
        {"loss": 0.05},
        {"loss": 0.20},
        {"loss": 0.35},
        {"loss": 0.50},
    ),
}


def _run_arm(
    regime: str,
    segments: Sequence[dict[str, float]],
    *,
    adaptive: bool,
    queries: int,
    seed: int,
    keep_counts: Sequence[int],
    ladder: Sequence[int],
    retry: RetryPolicy,
    inter_query_seconds: float,
    adaptive_config: AdaptiveConfig | None,
) -> dict[str, Any]:
    """Price ``queries`` fingerprint uploads under one regime and policy.

    Both arms face channels built from the *same* per-segment seeds and
    run the client's AIAD backpressure; the adaptive arm additionally
    consults the policy before each query (entry rung, retry budget,
    backoff scaling) with its estimator persisting across segment
    handoffs.
    """
    arm = "adaptive" if adaptive else "reactive"
    rng = rng_for(seed, f"adaptive_offload/{regime}/{arm}")
    policy = AdaptiveOffloadPolicy(adaptive_config) if adaptive else None
    preset = CHANNEL_PRESETS["lte"]
    per_segment = max(1, queries // len(segments))
    backpressure = 0
    latencies: list[float] = []
    delivered = degraded = abandoned = 0
    delivered_keypoints = 0
    delivered_bytes = 0
    wasted_bytes = 0
    wasted_seconds = 0.0
    attempts = 0
    for index, fields in enumerate(segments):
        spec = FaultSpec(
            **fields,
            seed=derive_seed(seed, f"adaptive_offload/{regime}/segment{index}"),
        )
        channel = FaultyChannel(
            dataclasses.replace(preset, name=f"{regime}-{arm}"), spec
        )
        if policy is not None:
            # Replace semantics: the estimator (and its learned link
            # history) survives the mobility handoff to the new segment.
            policy.register_path(regime, channel)
        for _ in range(per_segment):
            if policy is not None:
                policy.advance(inter_query_seconds)
                decision = policy.decide(ladder_rungs=len(ladder))
                start = max(backpressure, decision.entry_rung)
                attempt_policy = decision.adapt_retry_policy(retry)
            else:
                start = backpressure
                attempt_policy = retry
            outcome = submit_payload(
                channel,
                list(ladder),
                attempt_policy,
                rng,
                start_step=min(start, len(ladder) - 1),
            )
            latencies.append(outcome.latency_seconds)
            attempts += outcome.attempts
            wasted_bytes += outcome.wasted_bytes
            wasted_seconds += outcome.wasted_seconds
            if outcome.delivered:
                backpressure = max(0, outcome.ladder_step - 1)
                delivered += 1
                degraded += outcome.status == "degraded"
                delivered_keypoints += keep_counts[outcome.ladder_step]
                delivered_bytes += outcome.payload_bytes
            else:
                backpressure = min(backpressure + 1, len(ladder) - 1)
                abandoned += 1
    total = len(latencies)
    series = np.asarray(latencies)
    result: dict[str, Any] = {
        "queries": total,
        "delivered": delivered,
        "degraded": degraded,
        "abandoned": abandoned,
        "delivery_rate": delivered / total,
        "mean_delivered_keypoints": (
            delivered_keypoints / delivered if delivered else 0.0
        ),
        "delivered_bytes": delivered_bytes,
        "wasted_bytes": wasted_bytes,
        "total_bytes": delivered_bytes + wasted_bytes,
        "wasted_seconds": wasted_seconds,
        "attempts": attempts,
        "latency_seconds": {
            "p50": float(np.percentile(series, 50)),
            "p99": float(np.percentile(series, 99)),
            "mean": float(series.mean()),
        },
    }
    if policy is not None:
        result["estimator"] = policy.snapshot()["estimators"][regime]
    return result


def run(
    seed: int = 7,
    queries: int = 600,
    fingerprint_size: int = 200,
    inter_query_seconds: float = 0.5,
    retry: RetryPolicy | None = None,
    adaptive_config: AdaptiveConfig | None = None,
    regimes: Sequence[str] | None = None,
) -> dict:
    """Adaptive vs. reactive bytes/accuracy per loss regime.

    Returns per-regime reactive and adaptive series plus the
    ``wasted_bytes_reduction`` headline (fraction of the reactive arm's
    wasted bytes the adaptive arm avoids) and ``regimes_improved`` (the
    acceptance bar: adaptive must strictly reduce wasted bytes in at
    least two of the three regimes with no delivery-rate regression).
    Deterministic in ``seed`` — rerunning yields a bit-identical report.
    """
    retry = retry or RetryPolicy()
    keep_counts = degradation_keep_counts(fingerprint_size)
    ladder = [serialized_size(count) for count in keep_counts]
    names = list(regimes) if regimes is not None else list(REGIMES)
    out_regimes: dict[str, Any] = {}
    improved = 0
    accuracy_held = 0
    for name in names:
        segments = REGIMES[name]
        arms = {}
        for adaptive in (False, True):
            arms["adaptive" if adaptive else "reactive"] = _run_arm(
                name,
                segments,
                adaptive=adaptive,
                queries=queries,
                seed=seed,
                keep_counts=keep_counts,
                ladder=ladder,
                retry=retry,
                inter_query_seconds=inter_query_seconds,
                adaptive_config=adaptive_config,
            )
        reactive, adaptive_arm = arms["reactive"], arms["adaptive"]
        reduction = (
            1.0 - adaptive_arm["wasted_bytes"] / reactive["wasted_bytes"]
            if reactive["wasted_bytes"]
            else 0.0
        )
        regime_improved = adaptive_arm["wasted_bytes"] < reactive["wasted_bytes"]
        regime_accuracy_held = (
            adaptive_arm["delivery_rate"] >= reactive["delivery_rate"]
        )
        improved += regime_improved
        accuracy_held += regime_accuracy_held
        out_regimes[name] = {
            **arms,
            "wasted_bytes_reduction": reduction,
            "improved": bool(regime_improved),
            "accuracy_held": bool(regime_accuracy_held),
        }
    return {
        "params": {
            "seed": seed,
            "queries": queries,
            "fingerprint_size": fingerprint_size,
            "ladder_bytes": ladder,
            "keep_counts": list(keep_counts),
            "inter_query_seconds": inter_query_seconds,
        },
        "regimes": out_regimes,
        "regimes_improved": improved,
        "regimes_accuracy_held": accuracy_held,
    }


def main(workers: int = 1, **overrides) -> None:
    del workers  # single-channel pricing loop; nothing to fan out
    result = run(**overrides)
    print("Adaptive vs. reactive offload across loss regimes")
    print(
        f"(ladder {result['params']['ladder_bytes']} bytes, "
        f"{result['params']['queries']} queries per regime)"
    )
    header = (
        f"{'regime':<11} {'arm':<9} {'wasted_kB':>9} {'total_kB':>9} "
        f"{'deliv%':>7} {'kpts':>6} {'p99 s':>7}"
    )
    print(header)
    for name, regime in result["regimes"].items():
        for arm in ("reactive", "adaptive"):
            series = regime[arm]
            print(
                f"{name:<11} {arm:<9} {series['wasted_bytes'] / 1e3:>9.1f} "
                f"{series['total_bytes'] / 1e3:>9.1f} "
                f"{100 * series['delivery_rate']:>6.1f}% "
                f"{series['mean_delivered_keypoints']:>6.0f} "
                f"{series['latency_seconds']['p99']:>7.3f}"
            )
        print(
            f"{'':<11} -> wasted-bytes reduction "
            f"{100 * regime['wasted_bytes_reduction']:.1f}%"
            + ("" if regime["accuracy_held"] else "  (delivery regressed!)")
        )
    print(
        f"improved {result['regimes_improved']}/{len(result['regimes'])} regimes, "
        f"accuracy held in {result['regimes_accuracy_held']}"
    )


if __name__ == "__main__":
    main()
