"""The §4 "Evaluation Takeaways" table: paper value vs our measurement.

Aggregates small/fast variants of the per-figure experiments into the
seven headline checks.  ``EXPERIMENTS.md`` records a full-scale run.
"""

from __future__ import annotations

import numpy as np

from repro.evaluation.experiments import (
    fig14_upload,
    fig15_memory,
    fig16_latency,
    fig18_energy,
    fig19_localization,
)
from repro.evaluation.takeaways import PAPER_TAKEAWAYS

__all__ = ["run", "main"]


def run(fast: bool = True) -> dict:
    """Returns {takeaway key: (paper value, measured summary, holds?)}."""
    out: dict[str, tuple[str, str, bool]] = {}
    paper = {t.key: t for t in PAPER_TAKEAWAYS}

    upload = fig14_upload.run(duration_seconds=30.0 if fast else 70.0)
    reduction = upload["frame_total_mb"] / max(upload["visualprint_total_mb"], 1e-9)
    out["bandwidth"] = (
        paper["bandwidth"].paper_value,
        f"{upload['mean_fingerprint_bytes'] / 1024:.1f} KB vs "
        f"{upload['mean_frame_bytes'] / 1024:.1f} KB per query; {reduction:.0f}x total",
        reduction >= 5.0,
    )

    memory = fig15_memory.run()
    out["disk"] = (
        paper["disk"].paper_value,
        f"LSH/VisualPrint disk ratio {memory['disk_ratio_lsh_over_vp']:.0f}x at 2.5M",
        # paper reports 124x; our denser-packed filters land in the same
        # order of magnitude (>= 20x qualifies as order-class agreement)
        memory["disk_ratio_lsh_over_vp"] >= 20,
    )
    out["memory"] = (
        paper["memory"].paper_value,
        f"LSH/VisualPrint memory ratio {memory['memory_ratio_lsh_over_vp']:.0f}x at 2.5M",
        memory["memory_ratio_lsh_over_vp"] >= 20,
    )

    latency = fig16_latency.run(num_frames=8 if fast else 20)
    out["latency"] = (
        paper["latency"].paper_value,
        f"SIFT {latency['median_sift'] * 1e3:.0f} ms vs oracle "
        f"{latency['median_oracle'] * 1e3:.0f} ms ({latency['ratio']:.1f}x)",
        latency["ratio"] >= 5.0,
    )

    energy = fig18_energy.run(duration_seconds=10.0 if fast else 70.0)
    full_watts = energy["averages"]["visualprint_full"]
    out["energy"] = (
        paper["energy"].paper_value,
        f"full pipeline {full_watts:.1f} W, camera+compute "
        f"{energy['camera_compute_fraction']:.0%}",
        5.0 <= full_watts <= 8.0 and energy["camera_compute_fraction"] >= 0.7,
    )

    localization = fig19_localization.run(
        venues=("office",) if fast else ("office", "cafeteria", "grocery"),
        queries_per_venue=10 if fast else 40,
    )
    medians = [float(np.median(v)) for v in localization["errors"].values()]
    out["localization"] = (
        paper["localization"].paper_value,
        f"median error(s): {', '.join(f'{m:.2f} m' for m in medians)}",
        all(0.0 <= m <= 4.0 for m in medians),
    )
    return out


def main() -> None:
    result = run(fast=True)
    print("Evaluation takeaways: paper vs measured")
    for key, (paper_value, measured, holds) in result.items():
        status = "OK " if holds else "MISS"
        print(f"[{status}] {key}")
        print(f"      paper:    {paper_value}")
        print(f"      measured: {measured}")


if __name__ == "__main__":
    main()
