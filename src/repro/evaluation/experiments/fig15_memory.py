"""Figure 15: client disk/memory footprint per matching approach.

Measured at our database scale from the live data structures, and
evaluated at the paper's 2.5M-descriptor scale from the same sizing
formulas (takeaways 3-4).  Expected shape (log scale): Random ~ 0,
VisualPrint tens of MB, LSH and BruteForce orders of magnitude larger.
"""

from __future__ import annotations

from repro.core.config import VisualPrintConfig
from repro.evaluation.footprint import (
    format_footprint_table,
    measured_footprints,
    paper_scale_footprints,
)

__all__ = ["run", "main"]


def run(num_descriptors: int = 500_000) -> dict:
    """Returns footprints at our scale and at the paper's 2.5M scale."""
    config = VisualPrintConfig(descriptor_capacity=num_descriptors)
    ours = measured_footprints(num_descriptors, config)
    paper = paper_scale_footprints()
    by_name_paper = {fp.approach: fp for fp in paper}
    lsh = by_name_paper["LSH"]
    vp = by_name_paper["VisualPrint"]
    return {
        "measured": ours,
        "paper_scale": paper,
        "disk_ratio_lsh_over_vp": lsh.disk_bytes / vp.disk_bytes,
        "memory_ratio_lsh_over_vp": lsh.memory_bytes / vp.memory_bytes,
    }


def main() -> None:
    result = run()
    print("Figure 15: client disk/memory footprint by approach")
    print("-- at our database scale --")
    print(format_footprint_table(result["measured"]))
    print("-- at the paper's 2.5M-descriptor scale --")
    print(format_footprint_table(result["paper_scale"]))
    print(
        f"LSH/VisualPrint ratios at 2.5M: disk "
        f"{result['disk_ratio_lsh_over_vp']:.0f}x (paper: 124x), memory "
        f"{result['memory_ratio_lsh_over_vp']:.0f}x (paper: 58x)"
    )


if __name__ == "__main__":
    main()
