"""Figure 14: cumulative data upload over a 70 s capture session.

Whole-frame upload ships every (losslessly compressed) frame the uplink
can carry; VisualPrint ships a ~top-k fingerprint per frame.  Expected
shape: VisualPrint's cumulative curve at least an order of magnitude
below frame upload throughout the run (paper: 51.2 KB vs 523 KB per
query-equivalent).
"""

from __future__ import annotations

import numpy as np

from repro.codecs import PngCodec
from repro.core import UniquenessOracle, VisualPrintClient, VisualPrintConfig
from repro.features import SiftExtractor, SiftParams
from repro.imaging import to_float, to_uint8
from repro.imaging.synth import SceneLibrary
from repro.network import (
    CHANNEL_PRESETS,
    FaultSpec,
    FaultyChannel,
    RetryPolicy,
    simulate_stream,
)
from repro.parallel import get_shared, parallel_map

__all__ = ["run", "main"]


def _extract_frame(frame: np.ndarray):
    """Extract one panning frame's keypoints (pool worker body)."""
    return get_shared().extract(to_float(frame))


def _make_fingerprint_client() -> VisualPrintClient:
    oracle, config = get_shared()
    return VisualPrintClient(oracle, config)


def _fingerprint_frame(item: tuple, client: VisualPrintClient) -> int:
    """Fingerprint one (index, keypoints) pair under a per-frame root span.

    ``fingerprint_keypoints`` alone would emit disjoint "oracle" and
    "serialize" root spans; the explicit "frame" root groups them into
    one trace per frame, mirroring :meth:`VisualPrintClient.process_frame`.
    """
    frame_index, keypoints = item
    with client.tracer.span("frame", frame_index=frame_index):
        return client.fingerprint_keypoints(
            keypoints, frame_index=frame_index
        ).upload_bytes


def run(
    seed: int = 7,
    duration_seconds: float = 70.0,
    capture_fps: float = 10.0,
    # 50 of our ~500-800 keypoints per frame corresponds to the paper's
    # 200 of ~3500 — the fingerprint scales with the keypoint budget.
    fingerprint_size: int = 50,
    image_size: int = 320,
    num_panning_frames: int = 24,
    channel: str = "wifi",
    workers: int = 1,
    faults: FaultSpec | None = None,
    retry: RetryPolicy | None = None,
) -> dict:
    """Returns the two cumulative-upload traces and their totals.

    ``workers`` fans frame extraction, wardrive ingest, and per-frame
    fingerprinting across a process pool; payload sequences are
    bit-identical to ``workers=1``.

    With ``faults``/``retry`` set, each scheme's stream runs through its
    own seeded :class:`FaultyChannel` (same spec, so both schemes face
    the identical fault pattern): lost frames retransmit under the
    policy, burning realtime budget and causing knock-on drops — the
    cumulative curves separate further because a lost 500 KB frame
    wastes far more air time than a lost fingerprint.
    """
    library = SceneLibrary(
        seed=seed, num_scenes=2, num_distractors=2, size=(image_size, image_size)
    )
    base = to_uint8(library.scene(0))
    frames = [np.roll(base, 5 * i, axis=1) for i in range(num_panning_frames)]

    # Whole-frame payloads: lossless (Fig. 3 rules out lossy frames).
    codec = PngCodec()
    frame_payloads = [len(codec.encode(frame)) for frame in frames]

    # VisualPrint payloads: fingerprint the same frames.
    config = VisualPrintConfig(
        descriptor_capacity=100_000, fingerprint_size=fingerprint_size
    )
    oracle = UniquenessOracle(config)
    extractor = SiftExtractor(SiftParams(contrast_threshold=0.008))
    keypoint_sets = parallel_map(
        _extract_frame, frames, workers=workers, shared=extractor
    )
    oracle.insert(
        np.vstack([k.descriptors for k in keypoint_sets]), workers=workers
    )
    fingerprint_payloads = parallel_map(
        _fingerprint_frame,
        list(enumerate(keypoint_sets)),
        workers=workers,
        shared=(oracle, config),
        chunk_setup=_make_fingerprint_client,
    )

    total_frames = int(duration_seconds * capture_fps)
    frame_cycle = [frame_payloads[i % len(frame_payloads)] for i in range(total_frames)]
    fp_cycle = [
        fingerprint_payloads[i % len(fingerprint_payloads)]
        for i in range(total_frames)
    ]
    uplink = CHANNEL_PRESETS[channel]

    def _stream_channel():
        # A fresh wrapper per stream: both schemes replay the same
        # seeded fault sequence from the same initial link state.
        return FaultyChannel(uplink, faults) if faults is not None else uplink

    frame_trace = simulate_stream(
        "frame-upload", frame_cycle, _stream_channel(), capture_fps, retry=retry
    )
    vp_trace = simulate_stream(
        "visualprint", fp_cycle, _stream_channel(), capture_fps, retry=retry
    )

    times = np.arange(0.0, duration_seconds + 1e-9, 5.0)
    return {
        "times": times,
        "frame_cumulative_mb": frame_trace.cumulative_at(times) / 2**20,
        "visualprint_cumulative_mb": vp_trace.cumulative_at(times) / 2**20,
        "frame_total_mb": frame_trace.total_bytes / 2**20,
        "visualprint_total_mb": vp_trace.total_bytes / 2**20,
        "mean_frame_bytes": float(np.mean(frame_payloads)),
        "mean_fingerprint_bytes": float(np.mean(fingerprint_payloads)),
    }


def main(workers: int = 1, **overrides) -> None:
    result = run(workers=workers, **overrides)
    print("Figure 14: cumulative upload (MB) over time")
    print(f"{'t(s)':>5} {'frame-upload':>13} {'visualprint':>12}")
    for t, frame_mb, vp_mb in zip(
        result["times"],
        result["frame_cumulative_mb"],
        result["visualprint_cumulative_mb"],
    ):
        print(f"{t:>5.0f} {frame_mb:>13.2f} {vp_mb:>12.3f}")
    reduction = result["frame_total_mb"] / max(result["visualprint_total_mb"], 1e-9)
    print(
        f"per-query: frame {result['mean_frame_bytes'] / 1024:.1f} KB vs "
        f"fingerprint {result['mean_fingerprint_bytes'] / 1024:.1f} KB; "
        f"total reduction {reduction:.1f}x"
    )


if __name__ == "__main__":
    main()
